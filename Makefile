# Convenience targets; everything assumes the in-tree src/ layout.
PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test benchsmoke bench-fastpath bench-incremental bench-warmstart bench-sharding bench-elastic bench-parallel bench-durability bench-dstd bench-serve docs-lint bench golden

# Tier-1 verification (the command CI runs).
test:
	$(PYTHON) -m pytest -x -q

# Tiny-scale execution of every benchmarks/bench_*.py module.
benchsmoke:
	$(PYTHON) -m pytest -q -m benchsmoke

# Python-vs-numpy backend timings; writes BENCH_fastpath.json.
bench-fastpath:
	$(PYTHON) -m pytest -q benchmarks/bench_fastpath.py

# Incremental-engine epochs vs full rebuilds; writes BENCH_incremental.json.
bench-incremental:
	$(PYTHON) -m pytest -q benchmarks/bench_incremental.py

# Warm-start plan repair vs full solves; writes BENCH_warmstart.json.
bench-warmstart:
	$(PYTHON) -m pytest -q benchmarks/bench_warmstart.py

# Sharded engine vs single-shard epochs; writes BENCH_sharding.json.
bench-sharding:
	$(PYTHON) -m pytest -q benchmarks/bench_sharding.py

# Elastic diff shipping vs full state re-ship; writes BENCH_elastic.json.
bench-elastic:
	$(PYTHON) -m pytest -q benchmarks/bench_elastic.py

# Parallel solve fan-out vs serial solves; writes BENCH_parallel_solve.json.
bench-parallel:
	$(PYTHON) -m pytest -q benchmarks/bench_parallel_solve.py

# Durable-log append overhead + restore/replay throughput; writes
# BENCH_durability.json.
bench-durability:
	$(PYTHON) -m pytest -q benchmarks/bench_durability.py

# Scalar-vs-batched exact ΔE[STD] throughput + epoch phase profile;
# writes BENCH_dstd.json.
bench-dstd:
	$(PYTHON) -m pytest -q benchmarks/bench_dstd.py

# Service-tier open-loop soak: sustained RPS + ingestion tail latency;
# writes BENCH_serve.json.
bench-serve:
	$(PYTHON) -m pytest -q benchmarks/bench_serve.py

# Docstring lint: engine-era packages + benchmarks/ + examples/ (CI runs
# this; the default target set lives in tools/docs_lint.py).
docs-lint:
	$(PYTHON) tools/docs_lint.py

# Full figure-regeneration benchmark suite (slow).
bench:
	$(PYTHON) -m pytest -q benchmarks

# Refresh the golden regression fixture after an intended behaviour change.
golden:
	$(PYTHON) tests/test_golden_regression.py --regenerate
