"""Ablation — RDB-SC solvers against count-oriented and random baselines.

The paper's motivating argument (Section 1, related work): prior spatial
crowdsourcing maximises the *number* of assigned tasks and ignores answer
quality.  MAX-TASK reproduces that objective (maximum bipartite matching
plus round-robin leftovers); this bench shows what it leaves on the table
in RDB-SC's reliability/diversity terms.
"""

from repro.experiments.ablations import baseline_comparison, format_ablation


def test_ablation_baselines(benchmark, show):
    """Compare every solver against the RANDOM/MAX-TASK baselines."""
    rows = benchmark.pedantic(baseline_comparison, rounds=1, iterations=1)
    show(format_ablation(
        "Ablation — RDB-SC solvers vs MAX-TASK / RANDOM baselines",
        rows,
        extra_name="tasks covered",
    ))

    by_label = {row.label: row for row in rows}
    # The quality-aware solvers beat the random floor on diversity.
    for solver in ("SAMPLING", "D&C"):
        assert by_label[solver].total_std > by_label["RANDOM"].total_std * 0.99
    # MAX-TASK spreads workers thin: its minimum reliability cannot beat
    # the best RDB-SC solver's (single-worker tasks pin it to p_min).
    best_rdbsc = max(
        by_label[s].min_reliability for s in ("GREEDY", "SAMPLING", "D&C")
    )
    assert by_label["MAX-TASK"].min_reliability <= best_rdbsc + 1e-9
