"""Ablation — the divide-and-conquer threshold gamma.

Question: how does the leaf-size threshold trade merge work against base-
solver quality?  Small gamma -> many leaves and heavy merging; large gamma
-> one big sampling problem (exactly the SAMPLING solver at the limit).
"""

from repro.experiments.ablations import format_ablation, gamma_ablation


def test_ablation_gamma(benchmark, show):
    """Sweep the D&C partition fan-out gamma and print the trade-off."""
    rows = benchmark.pedantic(gamma_ablation, rounds=1, iterations=1)
    show(format_ablation(
        "Ablation — D&C leaf threshold gamma", rows, extra_name="leaf solves",
    ))

    # Smaller gamma must produce more leaves.
    leaves = [row.extra for row in rows]
    assert leaves[0] > leaves[-1]
    # Every configuration stays in a sane quality band.
    for row in rows:
        assert row.min_reliability >= 0.85
        assert row.total_std > 0.0
