"""Ablation — Pareto local search on top of each base solver.

Question: how much objective quality does a dominance-respecting polish
pass buy on top of GREEDY / SAMPLING / RANDOM, and what does it cost?  By
construction the polished result is never dominated by its base, so this
measures pure upside vs time.
"""

import time

from repro.algorithms import GreedySolver, RandomSolver, SamplingSolver
from repro.algorithms.local_search import LocalSearchSolver
from repro.core.objectives import dominates
from repro.datagen import ExperimentConfig, generate_problem


def run_local_search_ablation(seeds=(1, 2, 3)):
    """Score GREEDY/SAMPLING with and without the local-search refinement."""
    bases = [
        ("GREEDY", GreedySolver),
        ("SAMPLING", lambda: SamplingSolver(num_samples=40)),
        ("RANDOM", RandomSolver),
    ]
    rows = []
    for label, factory in bases:
        base_std = base_rel = base_s = 0.0
        ls_std = ls_rel = ls_s = moves = 0.0
        for seed in seeds:
            problem = generate_problem(
                ExperimentConfig.scaled_defaults(num_tasks=24, num_workers=48), seed
            )
            start = time.perf_counter()
            base = factory().solve(problem, rng=seed)
            base_s += time.perf_counter() - start
            start = time.perf_counter()
            polished = LocalSearchSolver(factory()).solve(problem, rng=seed)
            ls_s += time.perf_counter() - start
            assert not dominates(base.objective, polished.objective)
            base_std += base.objective.total_std
            base_rel += base.objective.min_reliability
            ls_std += polished.objective.total_std
            ls_rel += polished.objective.min_reliability
            moves += polished.stats["local_moves"]
        n = len(seeds)
        rows.append(
            (label, base_rel / n, base_std / n, base_s / n,
             ls_rel / n, ls_std / n, ls_s / n, moves / n)
        )
    return rows


def test_ablation_local_search(benchmark, show):
    """Local search must never worsen either objective."""
    rows = benchmark.pedantic(run_local_search_ablation, rounds=1, iterations=1)

    lines = [
        "Ablation — Pareto local search (+LS) on top of base solvers",
        f"{'base':>9} | {'rel':>7} -> {'rel+LS':>7} | {'STD':>8} -> {'STD+LS':>8} | "
        f"{'time':>6} -> {'t+LS':>6} | moves",
    ]
    for label, b_rel, b_std, b_s, l_rel, l_std, l_s, moves in rows:
        lines.append(
            f"{label:>9} | {b_rel:7.4f} -> {l_rel:7.4f} | {b_std:8.3f} -> "
            f"{l_std:8.3f} | {b_s:6.3f} -> {l_s:6.3f} | {moves:5.1f}"
        )
    show("\n".join(lines))

    by_label = {row[0]: row for row in rows}
    # Local search must visibly lift the weakest start (RANDOM).
    _, _, rand_std, _, _, rand_ls_std, _, rand_moves = by_label["RANDOM"]
    assert rand_ls_std >= rand_std
    assert rand_moves > 0
