"""Ablation — the Section 4.3 bound-based pruning inside GREEDY.

Question: how many exact expected-diversity evaluations does the pruning
save, and what does it cost in solution quality?  (The pruning removes only
dominated candidates, but the dominating-count ranking is then computed
over survivors, so selections can shift — see DESIGN.md.)
"""

from repro.experiments.ablations import format_ablation, pruning_ablation


def test_ablation_pruning(benchmark, show):
    """Lemma 4.3 pruning must cut exact evaluations without changing results."""
    rows = benchmark.pedantic(pruning_ablation, rounds=1, iterations=1)
    show(format_ablation(
        "Ablation — GREEDY bound pruning (Lemma 4.3)", rows,
        extra_name="exact evals",
    ))

    on = next(r for r in rows if r.label == "pruning ON")
    off = next(r for r in rows if r.label == "pruning OFF")
    # The pruning must actually reduce exact evaluation work and wall time...
    assert on.extra < off.extra
    assert on.seconds < off.seconds
    # ...at a bounded quality cost (the survivors-only dominating-count
    # ranking gives up a slice of diversity — the measured trade-off this
    # ablation exists to quantify).
    assert on.total_std >= 0.55 * off.total_std
    assert on.min_reliability >= 0.9 * off.min_reliability
