"""Ablation — SAMPLING's budget K.

Question: how fast does sample quality saturate in K?  This is the knob
behind the paper's G-TRUTH convention (10x the D&C leaf budget) and behind
the Section 5.2 observation that small K already achieves the rank bound.
"""

from repro.experiments.ablations import format_ablation, sampling_budget_ablation


def test_ablation_sampling_budget(benchmark, show):
    """Sweep the SAMPLING budget and print the quality/cost curve."""
    rows = benchmark.pedantic(sampling_budget_ablation, rounds=1, iterations=1)
    show(format_ablation(
        "Ablation — SAMPLING budget K", rows, extra_name="samples",
    ))

    # The dominance-rank winner balances two objectives; with more samples
    # it finds strictly better minimum reliability (total_STD may trade a
    # little the other way).
    assert rows[-1].min_reliability >= rows[0].min_reliability
    # And it never loses much diversity doing so.
    assert rows[-1].total_std >= 0.9 * rows[0].total_std
    # Cost grows roughly linearly with K: the largest budget must be
    # measurably slower than the smallest.
    assert rows[-1].seconds > rows[0].seconds
