"""Exact ΔE[STD] scoring — the batched slab kernels vs the scalar loop.

The headline claim (recorded in ``BENCH_dstd.json`` at the repo root): on
the post-pruning candidate load of a GREEDY round — a block of candidate
(task, worker) pairs scored against evaluator states already carrying
several profiles per task, where each evaluation is an O(r^2) entropy
reduction — :func:`repro.fastpath.batch_delta_estd` delivers **>= 3x the
scalar throughput** of looping
:meth:`repro.core.objectives.IncrementalEvaluator.delta_estd`, while
producing the **exact bits** of every scalar value (asserted before
anything is recorded).

Two sections are recorded, honestly separating kernel from system:

* ``kernel`` rows — the isolated scoring loop at increasing block sizes,
  scalar vs batched, identical inputs, fastest of ``repeats`` runs.  The
  speedup column is the asserted bar.
* ``phase_profile`` rows — whole engine epochs under movement churn on
  both greedy backends, decomposed by the epoch phase profiler
  (``docs/PROFILING.md``).  The point of the vectorisation shows up as
  ``delta_estd``'s share of epoch wall time shrinking on the numpy
  backend relative to the python backend, with the other phases as the
  unchanged remainder.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.algorithms import GreedySolver
from repro.core.objectives import IncrementalEvaluator
from repro.datagen import ExperimentConfig, generate_problem, generate_tasks, generate_workers
from repro.engine import AssignmentEngine, WorkerUpdate
from repro.fastpath import batch_delta_estd
from repro.geometry.points import Point
from repro.utils.hostmeta import host_metadata

RESULT_PATH = Path(__file__).parent.parent / "BENCH_dstd.json"


def _seeded_evaluator(num_tasks, num_workers, seed):
    """A problem + evaluator whose tasks already carry several profiles.

    Each worker is committed to its least-loaded candidate task, so with
    ~10 workers per task the evaluator reaches the deep-``r`` regime
    where the O(r^2) exact evaluation dominates a greedy round.  The
    scoring block is then *every* valid pair queried against that state —
    the shape of a post-pruning survivor set.
    """
    problem = generate_problem(
        ExperimentConfig.scaled_defaults(
            num_tasks=num_tasks, num_workers=num_workers
        ),
        seed,
    )
    evaluator = IncrementalEvaluator(problem)
    pairs = []
    for worker in problem.workers:
        candidates = problem.candidate_tasks(worker.worker_id)
        for task_id in candidates:
            pairs.append((task_id, worker.worker_id))
        if candidates:
            evaluator.apply(
                min(candidates, key=lambda t: len(evaluator.state_of(t).profiles)),
                worker.worker_id,
            )
    return problem, evaluator, pairs


def _score_block(problem, evaluator, pairs, repeats):
    """Time the scalar loop and the batched kernel; assert exact bits."""
    scalar_values = None
    scalar_seconds = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        values = [evaluator.delta_estd(t, w) for t, w in pairs]
        scalar_seconds = min(scalar_seconds, time.perf_counter() - started)
        scalar_values = values
    batched_values = None
    batched_seconds = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        values = batch_delta_estd(problem, evaluator, pairs)
        batched_seconds = min(batched_seconds, time.perf_counter() - started)
        batched_values = values
    for k in range(len(pairs)):
        if batched_values[k] != scalar_values[k]:
            raise AssertionError(
                f"batched ΔE[STD] diverged from scalar at pair {pairs[k]}: "
                f"{batched_values[k]!r} != {scalar_values[k]!r}"
            )
    return scalar_seconds, batched_seconds


def _movement_script(workers, epochs, moves, seed):
    """Per-epoch GPS-jitter batches (identical for every engine row)."""
    rng = np.random.default_rng(seed)
    pool = list(workers)
    script = []
    for _ in range(epochs):
        ops = []
        for index in rng.choice(len(pool), size=moves, replace=False):
            worker = pool[index]
            moved = worker.moved_to(
                Point(
                    float(np.clip(worker.location.x + rng.normal(0.0, 0.004), 0.0, 1.0)),
                    float(np.clip(worker.location.y + rng.normal(0.0, 0.004), 0.0, 1.0)),
                ),
                worker.depart_time,
            )
            pool[index] = moved
            ops.append(WorkerUpdate(time=0.0, worker=moved))
        script.append(ops)
    return script


def _profiled_epochs(backend, tasks, workers, script, solver_seed):
    """Replay the script; return the lifetime phase decomposition.

    Pruning is disabled so every candidate goes through the exact
    evaluation — the regime the vectorisation targets; with Lemma 4.3 on,
    survivor blocks are a handful of pairs and the ``prune`` phase is
    what dominates instead (both regimes read the same with the
    profiler, this one just isolates the claim under test).
    """
    engine = AssignmentEngine(
        solver=GreedySolver(use_pruning=False, backend=backend), rng=solver_seed
    )
    engine.add_tasks(tasks)
    engine.add_workers(workers)
    objectives = []
    for ops in script:
        engine.apply_batch(ops)
        outcome = engine.epoch(0.0)
        objectives.append(
            (outcome.objective.min_reliability, outcome.objective.total_std)
        )
    phases = dict(engine.metrics.phase_seconds)
    engine.close()
    total = sum(phases.values()) or 1.0
    return {
        "backend": backend,
        "phases": phases,
        "delta_estd_share": phases.get("delta_estd", 0.0) / total,
        "objectives": objectives,
    }


def run_dstd_experiment(
    num_tasks: int = 48,
    num_workers: int = 480,
    block_sizes: tuple = (2048, 8192),
    profile_tasks: int = 40,
    profile_workers: int = 160,
    epochs: int = 3,
    moves: int = 40,
    seed: int = 11,
    solver_seed: int = 3,
    repeats: int = 3,
    write_json: bool = True,
):
    """Scalar-vs-batched ΔE[STD] throughput plus the epoch phase profile.

    Kernel rows replicate the seeded candidate list up to each block size
    (greedy rounds score the same surviving candidates epoch after epoch,
    so repetition is the realistic shape — and what the log-dedup in the
    kernel exploits).  Bit-identity of every batched value against its
    scalar twin is asserted inside :func:`_score_block` before timings
    are recorded.
    """
    problem, evaluator, base_pairs = _seeded_evaluator(
        num_tasks, num_workers, seed
    )
    if not base_pairs:
        raise AssertionError("seeded instance has no valid pairs")
    depths = [len(evaluator.state_of(t).profiles) for t, _ in base_pairs]
    kernel_rows = []
    for block_size in block_sizes:
        pairs = (base_pairs * (block_size // len(base_pairs) + 1))[:block_size]
        scalar_seconds, batched_seconds = _score_block(
            problem, evaluator, pairs, repeats
        )
        kernel_rows.append(
            {
                "block_size": len(pairs),
                "mean_profiles_per_row": float(np.mean(depths)),
                "scalar_seconds": scalar_seconds,
                "batched_seconds": batched_seconds,
                "scalar_pairs_per_second": len(pairs) / scalar_seconds,
                "batched_pairs_per_second": len(pairs) / batched_seconds,
                "speedup": scalar_seconds / batched_seconds,
            }
        )

    config = ExperimentConfig.scaled_defaults(
        num_tasks=profile_tasks, num_workers=profile_workers
    ).with_updates(velocity_range=(0.05, 0.12))
    rng = np.random.default_rng(seed + 1)
    tasks = list(generate_tasks(config, rng))
    workers = list(generate_workers(config, rng))
    script = _movement_script(workers, epochs, moves, seed + 2)
    profile_rows = [
        _profiled_epochs(backend, tasks, workers, script, solver_seed)
        for backend in ("python", "numpy")
    ]
    if profile_rows[0]["objectives"] != profile_rows[1]["objectives"]:
        raise AssertionError("greedy backends diverged under the phase profile")
    for row in profile_rows:
        del row["objectives"]

    payload = {
        "kernel": kernel_rows,
        "phase_profile": profile_rows,
        "seed": seed,
        "solver_seed": solver_seed,
        "host": host_metadata(),
    }
    if write_json:
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_dstd_speedup(benchmark, show):
    """The recorded claim: >= 3x batched ΔE[STD] on candidate blocks."""
    payload = benchmark.pedantic(run_dstd_experiment, rounds=1, iterations=1)

    lines = [
        "Exact ΔE[STD] scoring — batched slab kernels vs the scalar loop",
        f"{'block':>7} | {'scalar p/s':>11} | {'batched p/s':>11} | {'speedup':>8}",
    ]
    for row in payload["kernel"]:
        lines.append(
            f"{row['block_size']:>7} | {row['scalar_pairs_per_second']:11.0f} | "
            f"{row['batched_pairs_per_second']:11.0f} | {row['speedup']:7.2f}x"
        )
    for row in payload["phase_profile"]:
        lines.append(
            f"phase profile [{row['backend']:>6}]: "
            f"delta_estd share {row['delta_estd_share']:6.1%}"
        )
    show("\n".join(lines))

    # The acceptance bar: the best candidate-block scale clears 3x, and
    # the vectorised backend spends a smaller fraction of its epochs in
    # exact ΔE[STD] than the scalar backend does.
    best = max(payload["kernel"], key=lambda row: row["speedup"])
    assert best["speedup"] >= 3.0
    shares = {row["backend"]: row["delta_estd_share"] for row in payload["phase_profile"]}
    assert shares["numpy"] < shares["python"]
    assert RESULT_PATH.exists()


if __name__ == "__main__":
    print(json.dumps(run_dstd_experiment(), indent=2))
