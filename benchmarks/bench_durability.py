"""Durable logging — WAL append overhead and restore+replay throughput.

The headline claim (recorded in ``BENCH_durability.json`` at the repo
root): attaching a :class:`repro.engine.durable.DurableLog` to an
:class:`repro.engine.engine.AssignmentEngine` running a churn-heavy
Section 7.2 workload (~5% of the population arriving, leaving or moving
between re-planning instants) costs **< 10% of the epoch time** in WAL
appends, while a kill-and-recover (``restore_engine``: snapshot + full
tail replay) reproduces the dead engine's plans bit-exactly.

Both sides replay the same pre-generated churn script with the same
seeded solver, so the comparison is purely about the logging layer.
Timings take the min over ``repeats`` runs; the restore side re-runs the
solver for every replayed epoch, so its throughput is reported in both
events/s and epochs/s.
"""

import dataclasses
import json
import math
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.algorithms.greedy import GreedySolver
from repro.datagen import ExperimentConfig, generate_tasks, generate_workers
from repro.engine import AssignmentEngine
from repro.engine.durable import restore_engine
from repro.geometry.points import Point
from repro.utils.hostmeta import host_metadata

RESULT_PATH = Path(__file__).parent.parent / "BENCH_durability.json"

#: Fresh entity ids start here so replacements never collide with the
#: initial population.
_FRESH_ID_BASE = 10**6


def _sparse_config(num_tasks, num_workers):
    """Paper-regime instance: narrow cones, slow workers, long windows
    (tasks stay live across the whole bench horizon)."""
    return ExperimentConfig(
        num_tasks=num_tasks,
        num_workers=num_workers,
        start_time_range=(0.0, 1.0),
        expiration_range=(50.0, 100.0),
        velocity_range=(0.05, 0.15),
        angle_range_max=math.pi / 6.0,
    )


def _churn_script(workers, spare_workers, epochs, churn_workers, seed):
    """Per-epoch worker churn ops (leave / arrive / in-place move)."""
    script = []
    wpool = list(workers)
    next_wid = _FRESH_ID_BASE
    spare = 0
    rng = np.random.default_rng(seed)
    for _ in range(epochs):
        ops = []
        for _ in range(churn_workers):
            kind = int(rng.integers(0, 3))
            if kind == 0 and len(wpool) > churn_workers:
                index = int(rng.integers(0, len(wpool)))
                ops.append(("worker_leave", wpool.pop(index).worker_id))
            elif kind == 1:
                worker = dataclasses.replace(
                    spare_workers[spare % len(spare_workers)], worker_id=next_wid
                )
                next_wid += 1
                spare += 1
                wpool.append(worker)
                ops.append(("worker_arrive", worker))
            else:
                index = int(rng.integers(0, len(wpool)))
                worker = wpool[index]
                moved = worker.moved_to(
                    Point(
                        min(max(worker.location.x + float(rng.normal(0.0, 0.01)), 0.0), 1.0),
                        min(max(worker.location.y + float(rng.normal(0.0, 0.01)), 0.0), 1.0),
                    ),
                    worker.depart_time,
                )
                wpool[index] = moved
                ops.append(("worker_update", moved))
        script.append(ops)
    return script


def _apply(engine, op):
    kind, payload = op
    if kind == "worker_leave":
        engine.remove_worker(payload)
    elif kind == "worker_arrive":
        engine.add_worker(payload)
    else:
        engine.update_worker(payload)


def _run_epochs(engine, tasks, workers, script):
    """Register the population, drive the script, return (plans, seconds)."""
    for task in tasks:
        engine.add_task(task)
    for worker in workers:
        engine.add_worker(worker)
    plans = []
    started = time.perf_counter()
    for k, ops in enumerate(script):
        for op in ops:
            _apply(engine, op)
        result = engine.epoch(float(k))
        plans.append(sorted(result.dispatch.items()))
    return plans, time.perf_counter() - started


def run_durability_experiment(
    num_tasks: int = 60,
    num_workers: int = 400,
    epochs: int = 8,
    churn_workers: int = 20,
    eta: float = 0.0625,
    seed: int = 11,
    solver_seed: int = 3,
    repeats: int = 2,
    write_json: bool = True,
):
    """Baseline vs durable epochs, plus one kill-and-recover, per backend."""
    config = _sparse_config(num_tasks, num_workers)
    rng = np.random.default_rng(seed)
    tasks = generate_tasks(config, rng)
    workers = generate_workers(config, rng)
    spare_workers = generate_workers(
        config.with_updates(num_workers=num_workers), rng
    )
    script = _churn_script(workers, spare_workers, epochs, churn_workers, seed + 1)

    rows = []
    for backend in ("python", "numpy"):
        baseline_seconds = durable_seconds = append_seconds = math.inf
        restore_seconds = math.inf
        baseline_plans = durable_plans = recovered_tail = None
        events_replayed = 0
        for repeat in range(repeats):
            engine = AssignmentEngine(
                solver=GreedySolver(), eta=eta, rng=solver_seed, backend=backend
            )
            plans, seconds = _run_epochs(engine, tasks, workers, script)
            baseline_seconds = min(baseline_seconds, seconds)
            baseline_plans = plans
            engine.close()

            with tempfile.TemporaryDirectory() as tmp:
                path = Path(tmp) / f"bench-{backend}-{repeat}.db"
                # snapshot cadence past the horizon: recovery replays the
                # whole log, which is what the throughput row measures.
                engine = AssignmentEngine(
                    solver=GreedySolver(),
                    eta=eta,
                    rng=solver_seed,
                    backend=backend,
                    durable_path=path,
                    durable_snapshot_every=10 * epochs,
                )
                plans, seconds = _run_epochs(engine, tasks, workers, script)
                durable_seconds = min(durable_seconds, seconds)
                append_seconds = min(
                    append_seconds, engine.durable.timings["append_seconds"]
                )
                durable_plans = plans
                events_replayed = engine.durable.last_seq()
                del engine  # crash: recovery starts from the WAL alone

                started = time.perf_counter()
                recovered = restore_engine(path, solver=GreedySolver())
                restore_seconds = min(restore_seconds, time.perf_counter() - started)
                recovered_tail = sorted(recovered.assignment.pairs())
                recovered.close()

        if durable_plans != baseline_plans:
            raise AssertionError(f"durable epochs diverged on {backend}")
        expected_tail = sorted(
            (t, w) for w, t in dict(baseline_plans[-1]).items()
        )
        if recovered_tail != expected_tail:
            raise AssertionError(f"recovered assignment diverged on {backend}")

        rows.append(
            {
                "backend": backend,
                "m_tasks": num_tasks,
                "n_workers": num_workers,
                "epochs": epochs,
                "churn_ops_per_epoch": churn_workers,
                "events_logged": events_replayed,
                "baseline_seconds": baseline_seconds,
                "durable_seconds": durable_seconds,
                "append_seconds": append_seconds,
                "append_overhead_fraction": append_seconds / baseline_seconds,
                "restore_seconds": restore_seconds,
                "replay_events_per_second": events_replayed / restore_seconds,
                "replay_epochs_per_second": epochs / restore_seconds,
            }
        )

    if write_json:
        RESULT_PATH.write_text(
            json.dumps(
                {
                    "rows": rows,
                    "seed": seed,
                    "solver_seed": solver_seed,
                    "repeats": repeats,
                    "host": host_metadata(),
                },
                indent=2,
            )
            + "\n"
        )
    return rows


def test_durability_overhead(benchmark, show):
    """Record log-append overhead + replay throughput into BENCH_durability.json."""
    rows = benchmark.pedantic(run_durability_experiment, rounds=1, iterations=1)

    lines = [
        "Durable logging — WAL append overhead and restore+replay throughput (5% churn)",
        f"{'backend':>8} | {'epochs':>6} | {'events':>6} | {'base (s)':>9} | "
        f"{'append (s)':>10} | {'overhead':>8} | {'replay ev/s':>11}",
    ]
    for row in rows:
        lines.append(
            f"{row['backend']:>8} | {row['epochs']:>6} | {row['events_logged']:>6} | "
            f"{row['baseline_seconds']:9.3f} | {row['append_seconds']:10.4f} | "
            f"{row['append_overhead_fraction']:7.1%} | "
            f"{row['replay_events_per_second']:11.0f}"
        )
    show("\n".join(lines))

    # The acceptance bar: WAL appends cost < 10% of the epoch time.
    for row in rows:
        assert row["append_overhead_fraction"] < 0.10, row["backend"]
    assert RESULT_PATH.exists()


if __name__ == "__main__":
    for line in run_durability_experiment():
        print(line)
