"""Elastic shard residency — diff shipping vs full state re-ship.

The headline claim (recorded in ``BENCH_elastic.json`` at the repo
root): on a marching-population workload — a dense worker cohort walking
across the unit square epoch after epoch, dragging load across shard
block boundaries, over a large (8000-worker) static background fleet —
a 4-shard
:class:`repro.engine.elastic.ElasticShardedAssignmentEngine` shipping
per-epoch :class:`~repro.engine.elastic.ShardDiff` packets to resident
shard states delivers **>= 2x the epoch throughput** of the same engine
re-shipping every resident's full sub-problem each epoch
(``diff_shipping=False``), with **diff bytes < 20% of full-ship bytes**
and bit-identical per-epoch objectives.

The table decomposes the claim honestly:

* ``single/batched`` — the single-shard engine fed the identical typed
  event batches: the bit-identity reference and the ``speedup_vs_single``
  denominator.
* ``elastic-4/full-reship`` — resident shards rebuilt from a full-resync
  diff every epoch: what "no residency" costs once state lives with the
  workers (every epoch pays full serialisation *and* a from-scratch
  index rebuild, pair cache included).
* ``elastic-4/diff`` — residents advanced by O(delta) diffs, with the
  workload-aware :class:`~repro.engine.elastic.RebalancePolicy` live, so
  the row also records how many split/merge/migrate reshapes the
  marching load provoked and what the resync fallback cost (zero unless
  a resident drifted).

Both elastic rows run the same deterministic rebalance policy, so the
reshape trajectories — and therefore the plans — are identical; the only
difference is what crosses the shard boundary each epoch.
"""

import json
import math
import time
from pathlib import Path

import numpy as np

from repro.algorithms import GreedySolver
from repro.datagen import ExperimentConfig, generate_tasks, generate_workers
from repro.engine import (
    AssignmentEngine,
    ElasticShardedAssignmentEngine,
    RebalancePolicy,
    ShardMap,
    TaskArrive,
    TaskWithdraw,
    WorkerArrive,
    WorkerLeave,
    WorkerUpdate,
)
from repro.geometry.points import Point
from repro.utils.hostmeta import host_metadata

RESULT_PATH = Path(__file__).parent.parent / "BENCH_elastic.json"

#: Fresh entity ids start here so replacements never collide.
_FRESH_ID_BASE = 10**6


def _local_config(num_tasks, num_workers):
    """Slow workers, short windows: tight reach, so halos stay small."""
    return ExperimentConfig(
        num_tasks=num_tasks,
        num_workers=num_workers,
        start_time_range=(0.0, 0.5),
        expiration_range=(0.5, 1.0),
        velocity_range=(0.02, 0.06),
        angle_range_max=math.pi / 4.0,
    )


def _march_cohort(workers, cohort, seed):
    """Repack the first ``cohort`` workers into a strip at the left edge."""
    rng = np.random.default_rng(seed)
    marched = list(workers)
    for index in range(cohort):
        worker = marched[index]
        marched[index] = worker.moved_to(
            Point(float(rng.uniform(0.0, 0.12)), worker.location.y),
            worker.depart_time,
        )
    return marched


def _marching_script(
    tasks, workers, spare_tasks, spare_workers,
    cohort, epochs, stride, worker_churn, task_churn, seed,
):
    """Typed per-epoch event batches every engine replays identically.

    Each epoch the cohort takes one stride to the right (with a small
    seeded y-jitter), plus a fringe of worker arrive/leave and task
    replacement churn so the diff stream carries every run kind — the
    GPS-ping profile of a fleet with a rush-hour wavefront in it.
    """
    import dataclasses

    rng = np.random.default_rng(seed)
    wpool = list(workers)
    tpool = list(tasks)
    next_wid = next_tid = _FRESH_ID_BASE
    spare_w = spare_t = 0
    script = []
    for _ in range(epochs):
        ops = []
        for index in range(cohort):
            worker = wpool[index]
            marched = worker.moved_to(
                Point(
                    float(min(0.98, worker.location.x + stride)),
                    float(
                        np.clip(
                            worker.location.y + rng.normal(0.0, 0.01), 0.0, 1.0
                        )
                    ),
                ),
                worker.depart_time,
            )
            wpool[index] = marched
            ops.append(WorkerUpdate(time=0.0, worker=marched))
        for _ in range(worker_churn):
            index = int(rng.integers(cohort, len(wpool)))
            ops.append(WorkerLeave(time=0.0, worker_id=wpool.pop(index).worker_id))
            fresh = dataclasses.replace(
                spare_workers[spare_w % len(spare_workers)], worker_id=next_wid
            )
            next_wid += 1
            spare_w += 1
            wpool.append(fresh)
            ops.append(WorkerArrive(time=0.0, worker=fresh))
        for _ in range(task_churn):
            index = int(rng.integers(0, len(tpool)))
            ops.append(TaskWithdraw(time=0.0, task_id=tpool.pop(index).task_id))
            fresh_task = dataclasses.replace(
                spare_tasks[spare_t % len(spare_tasks)], task_id=next_tid
            )
            next_tid += 1
            spare_t += 1
            tpool.append(fresh_task)
            ops.append(TaskArrive(time=0.0, task=fresh_task))
        script.append(ops)
    return script


def _run(make_engine, tasks, workers, script):
    """Replay one script; returns timings, objectives and elastic stats."""
    engine = make_engine()
    engine.add_tasks(tasks)
    engine.add_workers(workers)
    engine.epoch(0.0)  # first plan (and resident build) excluded from timing
    solve_before = engine.metrics.solve_seconds
    objectives = []
    started = time.perf_counter()
    for ops in script:
        engine.apply_batch(ops)
        outcome = engine.epoch(0.0)
        objectives.append(
            (outcome.objective.min_reliability, outcome.objective.total_std)
        )
    epoch_seconds = time.perf_counter() - started
    elastic_stats = dict(getattr(engine, "elastic_stats", {}) or {})
    close = getattr(engine, "close", None)
    if close is not None:
        close()
    return {
        "epoch_seconds": epoch_seconds,
        "solve_seconds": engine.metrics.solve_seconds - solve_before,
        "objectives": objectives,
        "elastic_stats": elastic_stats,
    }


def run_elastic_experiment(
    num_tasks: int = 60,
    num_workers: int = 8000,
    cohort: int = 600,
    epochs: int = 10,
    stride: float = 0.06,
    worker_churn: int = 40,
    task_churn: int = 6,
    eta: float = 0.08,
    seed: int = 11,
    solver_seed: int = 3,
    rebalance_every: int = 2,
    solve_mode: str = "warm",
    write_json: bool = True,
):
    """Time diff shipping against full re-ship on the marching workload.

    Every row replays the same typed event script; per-epoch objectives
    are asserted bit-identical across rows before anything is recorded.
    """
    config = _local_config(num_tasks, num_workers)
    rng = np.random.default_rng(seed)
    tasks = list(generate_tasks(config, rng))
    workers = _march_cohort(
        list(generate_workers(config, rng)), cohort, seed + 2
    )
    spare_tasks = list(
        generate_tasks(config.with_updates(num_tasks=2 * num_tasks), rng)
    )
    spare_workers = list(
        generate_workers(config.with_updates(num_workers=max(4, num_workers // 8)), rng)
    )
    halo = ShardMap.halo_bound(tasks + spare_tasks, workers + spare_workers)
    script = _marching_script(
        tasks, workers, spare_tasks, spare_workers,
        cohort, epochs, stride, worker_churn, task_churn, seed + 1,
    )

    def policy():
        return RebalancePolicy(
            every=rebalance_every,
            imbalance=1.3,
            min_workers=max(4, num_workers // 200),
        )

    def elastic(diff_shipping):
        return ElasticShardedAssignmentEngine(
            solver=GreedySolver(), eta=eta, rng=solver_seed,
            num_shards=4, halo=halo, executor="sequential",
            rebalance=policy(), diff_shipping=diff_shipping,
            solve_mode=solve_mode,
        )

    modes = [
        ("single/batched", lambda: AssignmentEngine(
            solver=GreedySolver(), eta=eta, rng=solver_seed,
            solve_mode=solve_mode)),
        ("elastic-4/full-reship", lambda: elastic(False)),
        ("elastic-4/diff", lambda: elastic(True)),
    ]

    rows = []
    reference = None
    baseline_seconds = None
    full_reship_seconds = None
    for label, make_engine in modes:
        outcome = _run(make_engine, tasks, workers, script)
        if reference is None:
            reference = outcome["objectives"]
            baseline_seconds = outcome["epoch_seconds"]
        elif outcome["objectives"] != reference:
            raise AssertionError(f"{label}: objectives diverged from single-shard")
        if label == "elastic-4/full-reship":
            full_reship_seconds = outcome["epoch_seconds"]
        stats = outcome["elastic_stats"]
        row = {
            "mode": label,
            "m_tasks": num_tasks,
            "n_workers": num_workers,
            "cohort": cohort,
            "epochs": epochs,
            "events_per_epoch": cohort + 2 * worker_churn + 2 * task_churn,
            "halo": halo,
            "epoch_seconds": outcome["epoch_seconds"],
            "solve_seconds": outcome["solve_seconds"],
            "epochs_per_second": epochs / outcome["epoch_seconds"],
            "speedup_vs_single": baseline_seconds / outcome["epoch_seconds"],
            "speedup_vs_full_reship": (
                None
                if full_reship_seconds is None
                else full_reship_seconds / outcome["epoch_seconds"]
            ),
        }
        if stats:
            row.update(
                {
                    "ship_bytes": stats["diff_bytes"],
                    "full_ship_bytes": stats["full_bytes"],
                    "ship_fraction": (
                        stats["diff_bytes"] / stats["full_bytes"]
                        if stats["full_bytes"]
                        else None
                    ),
                    "resyncs": stats["resyncs"],
                    "rebalance_ops": stats["rebalance_ops"],
                    "splits": stats["splits"],
                    "merges": stats["merges"],
                    "migrates": stats["migrates"],
                }
            )
        rows.append(row)

    if write_json:
        RESULT_PATH.write_text(
            json.dumps(
                {
                    "rows": rows,
                    "seed": seed,
                    "solver_seed": solver_seed,
                    "host": host_metadata(),
                },
                indent=2,
            )
            + "\n"
        )
    return rows


def test_elastic_diff_shipping_speedup(benchmark, show):
    """The recorded claim: >= 2x throughput, diff bytes < 20% of full."""
    rows = benchmark.pedantic(run_elastic_experiment, rounds=1, iterations=1)

    lines = [
        "Elastic shard residency — diff shipping vs full state re-ship",
        f"{'mode':>22} | {'epochs/s':>9} | {'epoch (s)':>9} | "
        f"{'ship MB':>8} | {'ship %':>7} | {'reshapes':>8}",
    ]
    for row in rows:
        ship = row.get("ship_bytes")
        fraction = row.get("ship_fraction")
        lines.append(
            f"{row['mode']:>22} | {row['epochs_per_second']:9.2f} | "
            f"{row['epoch_seconds']:9.3f} | "
            f"{'-' if ship is None else f'{ship / 1e6:8.2f}'[:8]:>8} | "
            f"{'-' if fraction is None else f'{100 * fraction:6.1f}%':>7} | "
            f"{row.get('rebalance_ops', 0):>8}"
        )
    show("\n".join(lines))

    diff_row = next(row for row in rows if row["mode"] == "elastic-4/diff")
    # The acceptance bar: residency + diff shipping must beat re-shipping
    # the full sub-problems by >= 2x epoch throughput, shipping < 20% of
    # the bytes, while the marching load actually provokes reshapes.
    assert diff_row["speedup_vs_full_reship"] >= 2.0
    assert diff_row["ship_fraction"] < 0.20
    assert diff_row["rebalance_ops"] >= 1
    assert diff_row["resyncs"] == 0
    assert RESULT_PATH.exists()


if __name__ == "__main__":
    for line in run_elastic_experiment():
        print(line)
