"""Fast path — scalar backends vs the :mod:`repro.fastpath` batch kernels.

The headline claim (recorded in ``BENCH_fastpath.json`` at the repo root):
at the 200-task x 2000-worker scale, batched valid-pair retrieval under the
paper's Table 2 regime (pi/6 cones, local velocities) beats the scalar
``O(m * n)`` scan by >= 10x while returning a bit-identical pair set.  The
dense regime (full reach, ~55k valid pairs) is reported alongside for
honesty — there the cost is dominated by materialising the pairs
themselves, so the kernel's margin is structurally smaller.
"""

import json
import math
import time
from pathlib import Path

from repro.algorithms import GreedySolver, SamplingSolver
from repro.datagen import ExperimentConfig, generate_problem
from repro.fastpath import batch_valid_pairs
from repro.index.grid import RdbscGrid, retrieve_pairs_without_index
from repro.utils.hostmeta import host_metadata

RESULT_PATH = Path(__file__).parent.parent / "BENCH_fastpath.json"


def _best_seconds(fn, repeats):
    best = math.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _sparse_config(num_tasks, num_workers):
    """Paper-regime instance: narrow cones, slow workers, short windows."""
    return ExperimentConfig(
        num_tasks=num_tasks,
        num_workers=num_workers,
        start_time_range=(0.0, 1.0),
        expiration_range=(0.5, 1.0),
        velocity_range=(0.05, 0.15),
        angle_range_max=math.pi / 6.0,
    )


def run_fastpath_experiment(
    num_tasks: int = 200,
    num_workers: int = 2000,
    seed: int = 11,
    repeats: int = 3,
    write_json: bool = True,
):
    """Time every python/numpy backend pair on one instance family."""
    rows = []

    # -- valid-pair retrieval, sparse (the asserted regime) and dense ----
    for regime, config in (
        ("sparse", _sparse_config(num_tasks, num_workers)),
        (
            "dense",
            ExperimentConfig.scaled_defaults(
                num_tasks=num_tasks, num_workers=num_workers
            ),
        ),
    ):
        problem = generate_problem(config, seed)
        t_scalar, scalar_pairs = _best_seconds(
            lambda: retrieve_pairs_without_index(
                problem.tasks, problem.workers, problem.validity
            ),
            repeats,
        )
        t_numpy, numpy_pairs = _best_seconds(
            lambda: batch_valid_pairs(problem.tasks, problem.workers, problem.validity),
            repeats,
        )
        if set(scalar_pairs) != set(numpy_pairs):
            raise AssertionError(f"backends disagree on {regime} pair set")
        rows.append(
            {
                "operation": f"valid_pair_retrieval[{regime}]",
                "m_tasks": num_tasks,
                "n_workers": num_workers,
                "pairs": len(scalar_pairs),
                "python_seconds": t_scalar,
                "numpy_seconds": t_numpy,
                "speedup": t_scalar / t_numpy,
            }
        )

    # -- grid-index retrieval -------------------------------------------
    problem = generate_problem(_sparse_config(num_tasks, num_workers), seed)
    grids = {
        backend: RdbscGrid.bulk_load(
            problem.tasks, problem.workers, 0.1, problem.validity, backend=backend
        )
        for backend in ("python", "numpy")
    }
    for grid in grids.values():
        grid.build_all_tcell_lists()
    t_grid_py, py_pairs = _best_seconds(grids["python"].valid_pairs, repeats)
    t_grid_np, np_pairs = _best_seconds(grids["numpy"].valid_pairs, repeats)
    if set(py_pairs) != set(np_pairs):
        raise AssertionError("grid backends disagree on pair set")
    rows.append(
        {
            "operation": "grid_index_retrieval[sparse]",
            "m_tasks": num_tasks,
            "n_workers": num_workers,
            "pairs": len(py_pairs),
            "python_seconds": t_grid_py,
            "numpy_seconds": t_grid_np,
            "speedup": t_grid_py / t_grid_np,
        }
    )

    # -- solver scoring (smaller instance keeps the bench quick) --------
    solver_problem = generate_problem(
        _sparse_config(max(num_tasks // 2, 2), max(num_workers // 4, 4)), seed
    )
    for label, make_py, make_np in (
        (
            "greedy_solve",
            lambda: GreedySolver(),
            lambda: GreedySolver(backend="numpy"),
        ),
        (
            "sampling_solve[K=200]",
            lambda: SamplingSolver(num_samples=200),
            lambda: SamplingSolver(num_samples=200, backend="numpy"),
        ),
    ):
        t_py, r_py = _best_seconds(
            lambda: make_py().solve(solver_problem, rng=seed), repeats
        )
        t_np, r_np = _best_seconds(
            lambda: make_np().solve(solver_problem, rng=seed), repeats
        )
        if sorted(r_py.assignment.pairs()) != sorted(r_np.assignment.pairs()):
            raise AssertionError(f"backends disagree on {label} assignment")
        rows.append(
            {
                "operation": label,
                "m_tasks": solver_problem.num_tasks,
                "n_workers": solver_problem.num_workers,
                "pairs": solver_problem.num_pairs,
                "python_seconds": t_py,
                "numpy_seconds": t_np,
                "speedup": t_py / t_np,
            }
        )

    if write_json:
        RESULT_PATH.write_text(
            json.dumps(
                {
                    "rows": rows,
                    "seed": seed,
                    "repeats": repeats,
                    "host": host_metadata(),
                },
                indent=2,
            )
            + "\n"
        )
    return rows


def test_fastpath_speedup(benchmark, show):
    """Record the numpy-vs-python retrieval speedup into BENCH_fastpath.json."""
    rows = benchmark.pedantic(run_fastpath_experiment, rounds=1, iterations=1)

    lines = [
        "Fast path — python vs numpy backends (best of 3)",
        f"{'operation':>30} | {'m':>4} | {'n':>5} | {'pairs':>6} | "
        f"{'python (s)':>10} | {'numpy (s)':>10} | {'speedup':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row['operation']:>30} | {row['m_tasks']:>4} | {row['n_workers']:>5} | "
            f"{row['pairs']:>6} | {row['python_seconds']:10.4f} | "
            f"{row['numpy_seconds']:10.4f} | {row['speedup']:7.1f}x"
        )
    show("\n".join(lines))

    headline = rows[0]
    assert headline["operation"] == "valid_pair_retrieval[sparse]"
    # The acceptance bar: >= 10x batched retrieval at 200 x 2000.
    assert headline["speedup"] >= 10.0
    # The other fast paths run with thinner margins (pair materialisation
    # and E[STD] evaluation are shared costs); guard against outright
    # regressions without flaking on timer noise.
    for row in rows:
        assert row["speedup"] > 0.5, row["operation"]
    assert RESULT_PATH.exists()


if __name__ == "__main__":
    for line in run_fastpath_experiment():
        print(line)
