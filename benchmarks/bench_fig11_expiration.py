"""Figure 11 — effect of tasks' expiration time range rt (real-data substitute).

Paper claims: minimum reliability is stable across rt; total_STD grows with
longer expiration times (more reachable workers per task); SAMPLING and D&C
beat GREEDY on diversity and sit close to G-TRUTH.
"""

from repro.experiments import run_experiment
from repro.experiments.figures import fig11_expiration_real
from repro.experiments.reporting import format_figure


def test_fig11_expiration_real(benchmark, show):
    """Regenerate Figure 11: objectives vs task expiration time."""
    experiment = fig11_expiration_real()
    result = benchmark.pedantic(
        run_experiment, args=(experiment,), kwargs={"seeds": (1,)}, rounds=1, iterations=1
    )
    show(format_figure(result))

    labels = [p.label for p in experiment.points]
    shortest, longest = labels[0], labels[-1]
    # Longer expiration -> more diversity (paper: total_STD gradually grows).
    for solver in ("SAMPLING", "D&C", "G-TRUTH"):
        assert (
            result.row(longest, solver).total_std
            > result.row(shortest, solver).total_std
        )
    # Reliability stays high and stable across the sweep.
    for row in result.rows:
        assert row.min_reliability >= 0.80
    # SAMPLING and D&C dominate GREEDY on diversity at the default rt.
    default = "[1.0, 2.0]"
    assert result.row(default, "D&C").total_std >= result.row(default, "GREEDY").total_std
