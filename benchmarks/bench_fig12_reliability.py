"""Figure 12 — effect of workers' reliability range [p_min, p_max] (real data).

Paper claims: higher worker reliabilities raise the minimum task
reliability for every algorithm (Eq. 1), and total_STD increases slightly
(Lemma 3.1: more reliable workers weight the diverse worlds more).
"""

from repro.experiments import run_experiment
from repro.experiments.figures import fig12_reliability_real
from repro.experiments.reporting import format_figure


def test_fig12_reliability_real(benchmark, show):
    """Regenerate Figure 12: objectives vs worker reliability."""
    experiment = fig12_reliability_real()
    result = benchmark.pedantic(
        run_experiment,
        args=(experiment,),
        kwargs={"seeds": (1, 2)},
        rounds=1,
        iterations=1,
    )
    show(format_figure(result))

    labels = [p.label for p in experiment.points]
    lowest, highest = labels[0], labels[-1]
    solvers = result.solvers()

    def mean_min_rel(label: str) -> float:
        return sum(result.row(label, s).min_reliability for s in solvers) / len(solvers)

    # Minimum reliability tracks the worker-confidence floor upward (the
    # per-solver lines are noisy at laptop scale; the figure-level trend is
    # asserted on the solver average).
    assert mean_min_rel(highest) > mean_min_rel(lowest)
    # And with (0.95, 1) confidences every solver must sit very high.
    for solver in solvers:
        assert result.row(highest, solver).min_reliability >= 0.93
    # Diversity should not collapse as reliability rises (paper: slight increase).
    for solver in ("SAMPLING", "D&C"):
        assert (
            result.row(highest, solver).total_std
            >= 0.8 * result.row(lowest, solver).total_std
        )
