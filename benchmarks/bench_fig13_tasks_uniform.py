"""Figure 13 — effect of the number of tasks m (UNIFORM).

Paper claims: all approaches keep minimum reliability near 0.9; for small
m, SAMPLING and D&C achieve much higher total_STD than GREEDY (GREEDY's
"bad start-up": joining empty tasks only buys temporal diversity); GREEDY's
diversity improves as m grows.
"""

from repro.experiments import run_experiment
from repro.experiments.figures import fig13_tasks_uniform
from repro.experiments.reporting import format_figure


def test_fig13_tasks_uniform(benchmark, show):
    """Regenerate Figure 13: objectives vs task count (uniform)."""
    experiment = fig13_tasks_uniform()
    result = benchmark.pedantic(
        run_experiment, args=(experiment,), kwargs={"seeds": (1,)}, rounds=1, iterations=1
    )
    show(format_figure(result))

    labels = [p.label for p in experiment.points]
    smallest, largest = labels[0], labels[-1]
    # Reliability stays high everywhere.
    for row in result.rows:
        assert row.min_reliability >= 0.85
    # The paper's headline: SAMPLING/D&C >> GREEDY on diversity at small m.
    assert result.row(smallest, "SAMPLING").total_std > result.row(smallest, "GREEDY").total_std
    assert result.row(smallest, "D&C").total_std > result.row(smallest, "GREEDY").total_std
    # GREEDY's diversity improves as m grows (better start-up odds).
    assert result.row(largest, "GREEDY").total_std > result.row(smallest, "GREEDY").total_std
    # D&C tracks G-TRUTH closely (within 15%).
    for label in labels:
        dc = result.row(label, "D&C").total_std
        gt = result.row(label, "G-TRUTH").total_std
        assert dc >= 0.85 * gt
