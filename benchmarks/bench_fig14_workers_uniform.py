"""Figure 14 — effect of the number of workers n (UNIFORM).

Paper claims: minimum reliability is insensitive to n (some task always
gets a single worker, pinning the minimum near the confidence floor);
total_STD grows with n for every approach (Lemma 4.2); SAMPLING and D&C
stay close to G-TRUTH and above GREEDY.
"""

from repro.experiments import run_experiment
from repro.experiments.figures import fig14_workers_uniform
from repro.experiments.reporting import format_figure


def test_fig14_workers_uniform(benchmark, show):
    """Regenerate Figure 14: objectives vs worker count (uniform)."""
    experiment = fig14_workers_uniform()
    result = benchmark.pedantic(
        run_experiment, args=(experiment,), kwargs={"seeds": (1,)}, rounds=1, iterations=1
    )
    show(format_figure(result))

    labels = [p.label for p in experiment.points]
    fewest, most = labels[0], labels[-1]
    # Diversity grows with the worker pool for every solver.
    for solver in result.solvers():
        assert result.row(most, solver).total_std > result.row(fewest, solver).total_std
    # Reliability stays pinned near the confidence floor across the sweep.
    for row in result.rows:
        assert row.min_reliability >= 0.85
    # SAMPLING and D&C above GREEDY at the largest pool.
    assert result.row(most, "SAMPLING").total_std > result.row(most, "GREEDY").total_std
    assert result.row(most, "D&C").total_std > result.row(most, "GREEDY").total_std
