"""Figure 15 — effect of the range of moving angles (UNIFORM).

Paper claims: minimum reliability is insensitive to the cone width and
stays above ~0.9; SAMPLING and D&C achieve much higher total_STD than
GREEDY across the sweep and sit close to G-TRUTH.
"""

from repro.experiments import run_experiment
from repro.experiments.figures import fig15_angles_uniform
from repro.experiments.reporting import format_figure


def test_fig15_angles_uniform(benchmark, show):
    """Regenerate Figure 15: objectives vs direction-cone width (uniform)."""
    experiment = fig15_angles_uniform()
    result = benchmark.pedantic(
        run_experiment, args=(experiment,), kwargs={"seeds": (1,)}, rounds=1, iterations=1
    )
    show(format_figure(result))

    labels = [p.label for p in experiment.points]
    for row in result.rows:
        assert row.min_reliability >= 0.85
    # SAMPLING / D&C dominate GREEDY on diversity across the sweep.
    for label in labels:
        assert result.row(label, "D&C").total_std > result.row(label, "GREEDY").total_std
    # D&C close to G-TRUTH everywhere.
    for label in labels:
        assert (
            result.row(label, "D&C").total_std
            >= 0.85 * result.row(label, "G-TRUTH").total_std
        )
