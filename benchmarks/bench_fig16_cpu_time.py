"""Figure 16 — running-time comparison of the RDB-SC approaches.

Paper claims: running times of all approaches except SAMPLING grow quickly
with m; with n, GREEDY's time grows fastest (more assignment rounds);
SAMPLING stays cheap throughout (small sample size); D&C trades time for
quality relative to SAMPLING.
"""

from repro.experiments import run_experiment
from repro.experiments.figures import fig16_cpu_time
from repro.experiments.reporting import format_series


def test_fig16_cpu_time(benchmark, show):
    """Regenerate Figure 16: CPU time vs instance size."""
    vs_m, vs_n = fig16_cpu_time()

    def run_both():
        return run_experiment(vs_m, seeds=(1,)), run_experiment(vs_n, seeds=(1,))

    result_m, result_n = benchmark.pedantic(run_both, rounds=1, iterations=1)
    show(format_series(result_m, "seconds"))
    show(format_series(result_n, "seconds"))

    m_labels = [p.label for p in vs_m.points]
    n_labels = [p.label for p in vs_n.points]

    # GREEDY and D&C get meaningfully slower as m grows 10x.
    for solver in ("GREEDY", "D&C", "G-TRUTH"):
        assert (
            result_m.row(m_labels[-1], solver).seconds
            > result_m.row(m_labels[0], solver).seconds
        )
    # SAMPLING stays fast at the largest m — well under the slowest solver.
    slowest_at_max = max(
        result_m.row(m_labels[-1], s).seconds for s in result_m.solvers()
    )
    assert result_m.row(m_labels[-1], "SAMPLING").seconds < 0.5 * slowest_at_max
    # GREEDY cost rises with n (more rounds).
    assert (
        result_n.row(n_labels[-1], "GREEDY").seconds
        > result_n.row(n_labels[0], "GREEDY").seconds
    )
