"""Figure 17 — efficiency of the RDB-SC-Grid index.

Paper claims: index construction stays cheap as n grows (17a), and
index-assisted worker-task pair retrieval is dramatically faster than
retrieval without the index (up to 67% reduction, 17b).
"""

from repro.experiments.figures import run_index_experiment


def test_fig17_index(benchmark, show):
    """Regenerate Figure 17: grid-index construction and retrieval cost."""
    rows = benchmark.pedantic(run_index_experiment, rounds=1, iterations=1)

    lines = [
        "Figure 17 — RDB-SC-Grid index efficiency",
        f"{'n':>6} | {'eta':>6} | {'build (s)':>10} | {'retrieve w/ idx (s)':>20} | "
        f"{'retrieve w/o idx (s)':>21} | {'pairs':>7}",
    ]
    for row in rows:
        lines.append(
            f"{row.n_workers:>6} | {row.eta:6.3f} | {row.construction_seconds:10.4f} | "
            f"{row.retrieval_with_index_seconds:20.4f} | "
            f"{row.retrieval_without_index_seconds:21.4f} | {row.pairs:>7}"
        )
    show("\n".join(lines))

    largest = rows[-1]
    # 17(b): the index must beat brute-force retrieval at scale.
    assert (
        largest.retrieval_with_index_seconds
        < largest.retrieval_without_index_seconds
    )
    # 17(a): construction stays modest (sub-second at every laptop scale).
    for row in rows:
        assert row.construction_seconds < 5.0
