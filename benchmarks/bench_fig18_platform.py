"""Figure 18 — effect of the incremental-update interval (platform run).

Paper claims: with larger t_interval every approach collects less total
diversity (fewer assignments fit in the run); the minimum reliability stays
high except for GREEDY, which becomes erratic (it tends to pin single
workers onto tasks); SAMPLING and D&C stay well above GREEDY on diversity.
"""

from repro.experiments.figures import run_platform_experiment


def test_fig18_platform(benchmark, show):
    """Regenerate Figure 18: platform metrics vs the update interval."""
    rows = benchmark.pedantic(
        run_platform_experiment,
        kwargs={"t_intervals": (1.0, 2.0, 3.0, 4.0), "sim_minutes": 30.0},
        rounds=1,
        iterations=1,
    )

    lines = [
        "Figure 18 — effect of the updating interval t_interval (minutes)",
        f"{'t_interval':>10} | {'solver':>9} | {'min rel':>8} | {'total_STD':>10} | {'time (s)':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row.t_interval:>10} | {row.solver:>9} | {row.min_reliability:8.4f} | "
            f"{row.total_std:10.4f} | {row.seconds:9.3f}"
        )
    show("\n".join(lines))

    def cell(t, solver):
        for row in rows:
            if row.t_interval == t and row.solver == solver:
                return row
        raise KeyError((t, solver))

    # Diversity shrinks as updates get rarer (compare the endpoints).
    for solver in ("SAMPLING", "D&C", "G-TRUTH"):
        assert cell(4.0, solver).total_std < cell(1.0, solver).total_std
    # SAMPLING and D&C collect far more diversity than GREEDY throughout.
    for t in (1.0, 2.0, 3.0, 4.0):
        assert cell(t, "SAMPLING").total_std > cell(t, "GREEDY").total_std
        assert cell(t, "D&C").total_std > cell(t, "GREEDY").total_std
