"""Figures 19-20 — the 3-D reconstruction showcase, as angular coverage.

The paper reconstructs a landmark from crowdsourced photos and shows the
experimental model captures the general shape of the ground truth.  The
quantitative content is viewing-angle coverage: the assigned workers'
photos must cover the landmark from (nearly) all around.  This bench
rebuilds that comparison: coverage of each solver's assigned workers vs
coverage of the full worker pool.
"""

from repro.experiments.figures import run_coverage_showcase


def test_fig19_20_coverage(benchmark, show):
    """Regenerate Figures 19/20: spatial/temporal coverage showcase."""
    reports = benchmark.pedantic(run_coverage_showcase, rounds=1, iterations=1)

    lines = [
        "Figures 19-20 — landmark viewing-angle coverage (tolerance pi/12)",
        f"{'solver':>9} | {'experimental':>12} | {'ground truth':>12} | {'ratio':>6}",
    ]
    for solver, report in reports.items():
        lines.append(
            f"{solver:>9} | {report.experimental:12.3f} | "
            f"{report.ground_truth:12.3f} | {report.ratio:6.3f}"
        )
    show("\n".join(lines))

    for solver, report in reports.items():
        # Experimental coverage can never exceed the all-photos model.
        assert report.experimental <= report.ground_truth + 1e-9
        # Every solver assigns *someone* to the landmark: nonzero coverage.
        assert report.experimental > 0.0
    # The paper's takeaway: the experimental model captures the general
    # shape — a solid fraction of the ground-truth coverage.
    assert max(r.ratio for r in reports.values()) >= 0.5
