"""Figure 22 (appendix) — effect of the requester weight range beta.

Paper claims: both objectives are robust across the whole beta sweep —
reliability stays above ~0.9 and diversity stays flat, with SAMPLING/D&C
near G-TRUTH.
"""

from repro.experiments import run_experiment
from repro.experiments.figures import fig22_beta_real
from repro.experiments.reporting import format_figure


def test_fig22_beta_real(benchmark, show):
    """Regenerate Figure 22: objectives vs the beta diversity weight."""
    experiment = fig22_beta_real()
    result = benchmark.pedantic(
        run_experiment, args=(experiment,), kwargs={"seeds": (1,)}, rounds=1, iterations=1
    )
    show(format_figure(result))

    labels = [p.label for p in experiment.points]
    # Reliability is insensitive to beta.
    for row in result.rows:
        assert row.min_reliability >= 0.85
    # Diversity does not blow up or collapse across the sweep (robustness):
    # max/min ratio per solver stays bounded.
    for solver in result.solvers():
        values = [result.row(label, solver).total_std for label in labels]
        assert min(values) > 0.0
        assert max(values) / min(values) < 4.0
