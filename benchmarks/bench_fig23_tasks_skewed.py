"""Figure 23 — effect of the number of tasks m (SKEWED).

Paper claims: same shape as the UNIFORM sweep (Figure 13) — reliability
insensitive to m; SAMPLING/D&C beat GREEDY on diversity at small m; GREEDY
improves as m grows.
"""

from repro.experiments import run_experiment
from repro.experiments.figures import fig23_tasks_skewed
from repro.experiments.reporting import format_figure


def test_fig23_tasks_skewed(benchmark, show):
    """Regenerate Figure 23: objectives vs task count (skewed)."""
    experiment = fig23_tasks_skewed()
    result = benchmark.pedantic(
        run_experiment, args=(experiment,), kwargs={"seeds": (1,)}, rounds=1, iterations=1
    )
    show(format_figure(result))

    labels = [p.label for p in experiment.points]
    smallest, largest = labels[0], labels[-1]
    for row in result.rows:
        assert row.min_reliability >= 0.85
    assert result.row(smallest, "SAMPLING").total_std > result.row(smallest, "GREEDY").total_std
    assert result.row(smallest, "D&C").total_std > result.row(smallest, "GREEDY").total_std
    assert result.row(largest, "GREEDY").total_std > result.row(smallest, "GREEDY").total_std
