"""Figure 24 — effect of the number of workers n (SKEWED).

Paper claims: same shape as the UNIFORM sweep (Figure 14) — reliability
insensitive to n, diversity grows with n for every approach.
"""

from repro.experiments import run_experiment
from repro.experiments.figures import fig24_workers_skewed
from repro.experiments.reporting import format_figure


def test_fig24_workers_skewed(benchmark, show):
    """Regenerate Figure 24: objectives vs worker count (skewed)."""
    experiment = fig24_workers_skewed()
    result = benchmark.pedantic(
        run_experiment, args=(experiment,), kwargs={"seeds": (1,)}, rounds=1, iterations=1
    )
    show(format_figure(result))

    labels = [p.label for p in experiment.points]
    fewest, most = labels[0], labels[-1]
    for solver in result.solvers():
        assert result.row(most, solver).total_std > result.row(fewest, solver).total_std
    for row in result.rows:
        assert row.min_reliability >= 0.85
    assert result.row(most, "D&C").total_std > result.row(most, "GREEDY").total_std
