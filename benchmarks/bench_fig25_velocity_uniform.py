"""Figure 25 — effect of the workers' velocity range (UNIFORM).

Paper claims: minimum reliability stays high (~0.9) across velocities;
SAMPLING and D&C remain well above GREEDY on diversity and close to
G-TRUTH.
"""

from repro.experiments import run_experiment
from repro.experiments.figures import fig25_velocity_uniform
from repro.experiments.reporting import format_figure


def test_fig25_velocity_uniform(benchmark, show):
    """Regenerate Figure 25: objectives vs worker velocity (uniform)."""
    experiment = fig25_velocity_uniform()
    result = benchmark.pedantic(
        run_experiment, args=(experiment,), kwargs={"seeds": (1,)}, rounds=1, iterations=1
    )
    show(format_figure(result))

    labels = [p.label for p in experiment.points]
    for row in result.rows:
        assert row.min_reliability >= 0.85
    for label in labels:
        assert result.row(label, "D&C").total_std > result.row(label, "GREEDY").total_std
        assert (
            result.row(label, "D&C").total_std
            >= 0.8 * result.row(label, "G-TRUTH").total_std
        )
