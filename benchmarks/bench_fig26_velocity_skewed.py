"""Figure 26 — effect of the workers' velocity range (SKEWED).

Paper claims: same shape as Figure 25 — reliability insensitive to the
velocity range; SAMPLING/D&C well above GREEDY on diversity.
"""

from repro.experiments import run_experiment
from repro.experiments.figures import fig26_velocity_skewed
from repro.experiments.reporting import format_figure


def test_fig26_velocity_skewed(benchmark, show):
    """Regenerate Figure 26: objectives vs worker velocity (skewed)."""
    experiment = fig26_velocity_skewed()
    result = benchmark.pedantic(
        run_experiment, args=(experiment,), kwargs={"seeds": (1,)}, rounds=1, iterations=1
    )
    show(format_figure(result))

    labels = [p.label for p in experiment.points]
    for row in result.rows:
        assert row.min_reliability >= 0.85
    for label in labels:
        assert result.row(label, "D&C").total_std > result.row(label, "GREEDY").total_std
