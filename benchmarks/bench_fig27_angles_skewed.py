"""Figure 27 — effect of the range of moving angles (SKEWED).

Paper claims: same shape as Figure 15 — reliability insensitive to cone
width; SAMPLING and D&C achieve much higher diversity than GREEDY and sit
near G-TRUTH.
"""

from repro.experiments import run_experiment
from repro.experiments.figures import fig27_angles_skewed
from repro.experiments.reporting import format_figure


def test_fig27_angles_skewed(benchmark, show):
    """Regenerate Figure 27: objectives vs direction-cone width (skewed)."""
    experiment = fig27_angles_skewed()
    result = benchmark.pedantic(
        run_experiment, args=(experiment,), kwargs={"seeds": (1,)}, rounds=1, iterations=1
    )
    show(format_figure(result))

    labels = [p.label for p in experiment.points]
    for row in result.rows:
        assert row.min_reliability >= 0.85
    for label in labels:
        assert result.row(label, "D&C").total_std > result.row(label, "GREEDY").total_std
        assert (
            result.row(label, "D&C").total_std
            >= 0.8 * result.row(label, "G-TRUTH").total_std
        )
