"""Incremental engine — delta-driven epochs vs per-epoch full rebuilds.

The headline claim (recorded in ``BENCH_incremental.json`` at the repo
root): on a churn-heavy Section 7.2 workload — 200 tasks x 2000 workers in
the paper's sparse Table 2 regime, ~5% of the population arriving, leaving
or moving between consecutive re-planning instants — an
:class:`repro.engine.engine.AssignmentEngine` epoch (incremental grid pair
cache + slot-stable arrays + solve) beats the naive epoch (rebuild the
grid index from scratch, retrieve every pair, re-pack, solve) by >= 5x,
while producing *identical* pairs, assignments and objectives every epoch.

Both sides replay the same pre-generated churn script with the same seeded
solver, so the comparison is purely about maintenance strategy.
"""

import dataclasses
import json
import math
import time
from pathlib import Path

import numpy as np

from repro.algorithms.random_assign import RandomSolver
from repro.core.problem import RdbscProblem
from repro.datagen import ExperimentConfig, generate_tasks, generate_workers
from repro.engine import AssignmentEngine
from repro.geometry.points import Point
from repro.index.grid import RdbscGrid
from repro.utils.hostmeta import host_metadata

RESULT_PATH = Path(__file__).parent.parent / "BENCH_incremental.json"

#: Fresh entity ids start here so replacements never collide with the
#: initial population.
_FRESH_ID_BASE = 10**6


def _sparse_config(num_tasks, num_workers):
    """Paper-regime instance: narrow cones, slow workers, short windows."""
    return ExperimentConfig(
        num_tasks=num_tasks,
        num_workers=num_workers,
        start_time_range=(0.0, 1.0),
        expiration_range=(0.5, 1.0),
        velocity_range=(0.05, 0.15),
        angle_range_max=math.pi / 6.0,
    )


def _churn_script(tasks, workers, spare_tasks, spare_workers, epochs,
                  churn_workers, churn_tasks, seed):
    """Pre-generate per-epoch churn ops so both strategies replay the same
    sequence: worker leave / arrive / in-place update, task leave / arrive."""
    script = []
    wpool, tpool = list(workers), list(tasks)
    next_wid = next_tid = _FRESH_ID_BASE
    spare_w = spare_t = 0
    rng = np.random.default_rng(seed)
    for _ in range(epochs):
        ops = []
        for _ in range(churn_workers):
            kind = int(rng.integers(0, 3))
            if kind == 0 and len(wpool) > churn_workers:
                index = int(rng.integers(0, len(wpool)))
                ops.append(("worker_leave", wpool.pop(index).worker_id))
            elif kind == 1:
                worker = dataclasses.replace(
                    spare_workers[spare_w % len(spare_workers)],
                    worker_id=next_wid,
                )
                next_wid += 1
                spare_w += 1
                wpool.append(worker)
                ops.append(("worker_arrive", worker))
            else:
                index = int(rng.integers(0, len(wpool)))
                worker = wpool[index]
                moved = worker.moved_to(
                    Point(
                        min(max(worker.location.x + float(rng.normal(0.0, 0.01)), 0.0), 1.0),
                        min(max(worker.location.y + float(rng.normal(0.0, 0.01)), 0.0), 1.0),
                    ),
                    worker.depart_time,
                )
                wpool[index] = moved
                ops.append(("worker_update", moved))
        for _ in range(churn_tasks):
            if int(rng.integers(0, 2)) == 0 and len(tpool) > churn_tasks * 2:
                index = int(rng.integers(0, len(tpool)))
                ops.append(("task_leave", tpool.pop(index).task_id))
            else:
                task = dataclasses.replace(
                    spare_tasks[spare_t % len(spare_tasks)], task_id=next_tid
                )
                next_tid += 1
                spare_t += 1
                tpool.append(task)
                ops.append(("task_arrive", task))
        script.append(ops)
    return script


def _apply_to_engine(engine, op):
    kind, payload = op
    if kind == "worker_leave":
        engine.remove_worker(payload)
    elif kind == "worker_arrive":
        engine.add_worker(payload)
    elif kind == "worker_update":
        engine.update_worker(payload)
    elif kind == "task_leave":
        engine.withdraw_task(payload)
    else:
        engine.add_task(payload)


def _apply_to_dicts(tdict, wdict, op):
    kind, payload = op
    if kind == "worker_leave":
        del wdict[payload]
    elif kind in ("worker_arrive", "worker_update"):
        wdict[payload.worker_id] = payload
    elif kind == "task_leave":
        del tdict[payload]
    else:
        tdict[payload.task_id] = payload


def run_incremental_experiment(
    num_tasks: int = 200,
    num_workers: int = 2000,
    epochs: int = 15,
    churn_workers: int = 100,
    churn_tasks: int = 10,
    eta: float = 0.05,
    seed: int = 11,
    solver_seed: int = 3,
    write_json: bool = True,
):
    """Time incremental vs full-rebuild epochs on one churn script."""
    config = _sparse_config(num_tasks, num_workers)
    rng = np.random.default_rng(seed)
    tasks = generate_tasks(config, rng)
    workers = generate_workers(config, rng)
    spare_tasks = generate_tasks(config.with_updates(num_tasks=2 * num_tasks), rng)
    spare_workers = generate_workers(config.with_updates(num_workers=num_workers), rng)
    script = _churn_script(
        tasks, workers, spare_tasks, spare_workers,
        epochs, churn_workers, churn_tasks, seed + 1,
    )

    rows = []
    for backend in ("python", "numpy"):
        solver = RandomSolver()

        # -- incremental: one engine, churn applied per event ------------
        engine = AssignmentEngine(solver=solver, eta=eta, rng=solver_seed, backend=backend)
        for task in tasks:
            engine.add_task(task)
        for worker in workers:
            engine.add_worker(worker)
        engine.epoch(0.0)  # warm start: first epoch builds every cache entry
        incremental = []
        started = time.perf_counter()
        for ops in script:
            for op in ops:
                _apply_to_engine(engine, op)
            outcome = engine.epoch(0.0)
            incremental.append((outcome.num_pairs, outcome.objective))
        incremental_seconds = time.perf_counter() - started

        # -- full rebuild: index + pairs + problem from scratch per epoch -
        tdict = {t.task_id: t for t in tasks}
        wdict = {w.worker_id: w for w in workers}
        rebuild = []
        started = time.perf_counter()
        for ops in script:
            for op in ops:
                _apply_to_dicts(tdict, wdict, op)
            grid = RdbscGrid.bulk_load(
                list(tdict.values()), list(wdict.values()), eta, backend=backend
            )
            problem = RdbscProblem(
                list(tdict.values()),
                list(wdict.values()),
                precomputed_pairs=grid.valid_pairs(),
                backend=backend,
            )
            result = solver.solve(problem, rng=solver_seed)
            rebuild.append((problem.num_pairs, result.objective))
        rebuild_seconds = time.perf_counter() - started

        # -- equivalence: every epoch agreed, and the final pair sets are
        # bit-identical (arrivals included).
        if incremental != rebuild:
            raise AssertionError(f"strategies disagree on {backend} epochs")
        final = RdbscGrid.bulk_load(
            list(tdict.values()), list(wdict.values()), eta, backend=backend
        )
        if sorted(
            (p.task_id, p.worker_id, p.arrival) for p in engine.current_pairs()
        ) != sorted(
            (p.task_id, p.worker_id, p.arrival) for p in final.valid_pairs()
        ):
            raise AssertionError(f"final pair sets disagree on {backend}")

        rows.append(
            {
                "backend": backend,
                "m_tasks": num_tasks,
                "n_workers": num_workers,
                "epochs": epochs,
                "churn_ops_per_epoch": churn_workers + churn_tasks,
                "pairs_final": incremental[-1][0],
                "incremental_seconds": incremental_seconds,
                "rebuild_seconds": rebuild_seconds,
                "speedup": rebuild_seconds / incremental_seconds,
                "epochs_per_second_incremental": epochs / incremental_seconds,
                "epochs_per_second_rebuild": epochs / rebuild_seconds,
                "pair_cache_hit_rate": engine.metrics.cache_hit_rate(),
            }
        )

    if write_json:
        RESULT_PATH.write_text(
            json.dumps(
                {
                    "rows": rows,
                    "seed": seed,
                    "solver_seed": solver_seed,
                    "host": host_metadata(),
                },
                indent=2,
            )
            + "\n"
        )
    return rows


def test_incremental_speedup(benchmark, show):
    """Record the incremental-epoch speedup into BENCH_incremental.json."""
    rows = benchmark.pedantic(run_incremental_experiment, rounds=1, iterations=1)

    lines = [
        "Incremental engine — delta-driven epochs vs full rebuilds (5% churn)",
        f"{'backend':>8} | {'epochs':>6} | {'ops/epoch':>9} | {'incr (s)':>9} | "
        f"{'rebuild (s)':>11} | {'speedup':>8} | {'hit rate':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row['backend']:>8} | {row['epochs']:>6} | {row['churn_ops_per_epoch']:>9} | "
            f"{row['incremental_seconds']:9.3f} | {row['rebuild_seconds']:11.3f} | "
            f"{row['speedup']:7.1f}x | {row['pair_cache_hit_rate']:8.3f}"
        )
    show("\n".join(lines))

    python_row = next(row for row in rows if row["backend"] == "python")
    # The acceptance bar: >= 5x epoch throughput under ~5% churn.
    assert python_row["speedup"] >= 5.0
    # The numpy side shares the caches; guard against outright regression.
    for row in rows:
        assert row["speedup"] > 1.0, row["backend"]
    assert RESULT_PATH.exists()


if __name__ == "__main__":
    for line in run_incremental_experiment():
        print(line)
