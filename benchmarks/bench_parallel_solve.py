"""Parallel solve epochs — sample fan-out vs the serial global solve.

The headline claim (recorded in ``BENCH_parallel_solve.json`` at the repo
root): on a sampling-heavy epoch workload — a 150-task / 500-worker
instance re-planned with a 512-sample SAMPLING solve under light movement
churn, the regime where per-epoch *solve* time dominates everything the
previous PRs already made incremental — the parallel solve subsystem at
**4 processes** delivers **>= 2x the epoch-solve throughput** of the
status-quo serial solver, with a decomposition that shows where the win
comes from, honestly:

* ``sampling/serial`` — the baseline: the legacy shared-stream SAMPLING
  solve, one sample drawn and scored at a time (how every engine solved
  before this subsystem).
* ``sampling/substream`` — the new substream determinism contract, still
  serial and unchunked: per-sample child generators cost about the same,
  they just stop coupling samples together.
* ``sampling/chunked`` — the executor with ``processes=0``: the same
  chunked scoring the worker processes run, inline.  The gap to
  ``substream`` is the :class:`repro.engine.parallel.SampleChunkScorer`
  contribution (grouped choice scoring + per-(task, worker set)
  memoisation) with zero IPC.
* ``sampling/parallel-2`` / ``sampling/parallel-4`` — real pinned
  process pools.  On a multi-core host the chunks overlap; on a
  single-core host (like CI) these rows mostly add IPC on top of
  ``chunked``, which is why the decomposition is recorded — the asserted
  bar stays honest either way because the chunked scoring alone clears
  it.
* ``greedy/serial`` / ``greedy/parallel-4`` — the shard-batched greedy
  round scoring, whose contract is bit-identity (asserted) rather than
  throughput: typical rounds are far below the fan-out threshold, so the
  row mostly measures that the batching layer costs nothing.

Every sampling row under the substream contract must report bit-identical
per-epoch objectives (asserted), and both greedy rows must match each
other exactly; the legacy baseline row plays by its own (old) draw order
and is asserted *different* — that is the point of the versioned
contract.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.algorithms import GreedySolver, SamplingSolver
from repro.algorithms.sampling import SHARED_STREAM_V0
from repro.datagen import ExperimentConfig, generate_tasks, generate_workers
from repro.engine import AssignmentEngine, ParallelSolveExecutor, WorkerUpdate
from repro.geometry.points import Point
from repro.utils.hostmeta import host_metadata

RESULT_PATH = Path(__file__).parent.parent / "BENCH_parallel_solve.json"


def _workload(num_tasks, num_workers, seed):
    """A mid-density instance: enough pairs that samples genuinely vary."""
    config = ExperimentConfig.scaled_defaults(
        num_tasks=num_tasks, num_workers=num_workers
    )
    config = config.with_updates(
        velocity_range=(0.05, 0.12), expiration_range=(0.4, 1.0)
    )
    rng = np.random.default_rng(seed)
    return list(generate_tasks(config, rng)), list(generate_workers(config, rng))


def _movement_script(workers, epochs, moves, seed):
    """Per-epoch same-instant GPS-jitter batches (identical for every row)."""
    rng = np.random.default_rng(seed)
    pool = list(workers)
    script = []
    for _ in range(epochs):
        ops = []
        for index in rng.choice(len(pool), size=moves, replace=False):
            worker = pool[index]
            moved = worker.moved_to(
                Point(
                    float(np.clip(worker.location.x + rng.normal(0.0, 0.004), 0.0, 1.0)),
                    float(np.clip(worker.location.y + rng.normal(0.0, 0.004), 0.0, 1.0)),
                ),
                worker.depart_time,
            )
            pool[index] = moved
            ops.append(WorkerUpdate(time=0.0, worker=moved))
        script.append(ops)
    return script


def _run(make_engine, tasks, workers, script):
    """Replay the script on a fresh engine; time epochs and solves."""
    engine = make_engine()
    engine.add_tasks(tasks)
    engine.add_workers(workers)
    engine.epoch(0.0)  # warm-up plan (pool start-up, first retrieval) untimed
    solve_before = engine.metrics.solve_seconds
    objectives = []
    started = time.perf_counter()
    for ops in script:
        engine.apply_batch(ops)
        outcome = engine.epoch(0.0)
        objectives.append(
            (outcome.objective.min_reliability, outcome.objective.total_std)
        )
    epoch_seconds = time.perf_counter() - started
    solve_seconds = engine.metrics.solve_seconds - solve_before
    engine.close()
    return {
        "epoch_seconds": epoch_seconds,
        "solve_seconds": solve_seconds,
        "objectives": objectives,
    }


def run_parallel_solve_experiment(
    num_tasks: int = 150,
    num_workers: int = 500,
    num_samples: int = 512,
    epochs: int = 4,
    moves: int = 150,
    seed: int = 7,
    solver_seed: int = 3,
    processes: tuple = (2, 4),
    repeats: int = 2,
    write_json: bool = True,
):
    """Time the parallel solve subsystem against the serial solvers.

    Every row replays the same movement script ``repeats`` times on fresh
    engines and keeps the fastest run — the single-core containers these
    records come from see tens-of-seconds CPU-steal patches, and the
    minimum over repeats is the standard noise filter.  Identity groups
    (substream sampling rows, greedy rows) are asserted bit-identical per
    epoch, across repeats, before anything is recorded.
    """
    tasks, workers = _workload(num_tasks, num_workers, seed)
    script = _movement_script(workers, epochs, moves, seed + 1)

    def engine_with(solver, solve_executor=None):
        return lambda: AssignmentEngine(
            solver=solver(), rng=solver_seed, solve_executor=solve_executor
        )

    legacy = lambda: SamplingSolver(
        num_samples=num_samples, rng_contract=SHARED_STREAM_V0
    )
    substream = lambda: SamplingSolver(num_samples=num_samples)

    modes = [
        ("sampling/serial", "baseline", engine_with(legacy)),
        ("sampling/substream", "substream", engine_with(substream)),
        (
            "sampling/chunked",
            "substream",
            engine_with(substream, ParallelSolveExecutor(processes=0)),
        ),
    ]
    for count in processes:
        modes.append(
            (
                f"sampling/parallel-{count}",
                "substream",
                engine_with(substream, count),
            )
        )
    modes.append(("greedy/serial", "greedy", engine_with(GreedySolver)))
    modes.append(
        (
            f"greedy/parallel-{processes[-1]}",
            "greedy",
            engine_with(GreedySolver, processes[-1]),
        )
    )

    rows = []
    references = {}
    baseline_solve = None
    for label, group, make_engine in modes:
        outcome = _run(make_engine, tasks, workers, script)
        for _ in range(max(0, repeats - 1)):
            again = _run(make_engine, tasks, workers, script)
            if again["objectives"] != outcome["objectives"]:
                raise AssertionError(f"{label}: objectives diverged across repeats")
            for key in ("epoch_seconds", "solve_seconds"):
                outcome[key] = min(outcome[key], again[key])
        if group in ("substream", "greedy"):
            reference = references.setdefault(group, outcome["objectives"])
            if outcome["objectives"] != reference:
                raise AssertionError(f"{label}: objectives diverged from {group}")
        if label == "sampling/serial":
            # The legacy row is the timing baseline only: its objectives
            # follow the old draw order and are *expected* to differ from
            # the substream rows' (the golden fixture pins both contracts;
            # at tiny smoke scales the winners can still coincide).
            baseline_solve = outcome["solve_seconds"]
        rows.append(
            {
                "mode": label,
                "m_tasks": num_tasks,
                "n_workers": num_workers,
                "samples": num_samples,
                "epochs": epochs,
                "moves_per_epoch": moves,
                "epoch_seconds": outcome["epoch_seconds"],
                "solve_seconds": outcome["solve_seconds"],
                "solves_per_second": epochs / outcome["solve_seconds"],
                "solve_speedup_vs_serial": (
                    baseline_solve / outcome["solve_seconds"]
                    if baseline_solve
                    else 1.0
                ),
            }
        )

    if write_json:
        RESULT_PATH.write_text(
            json.dumps(
                {
                    "rows": rows,
                    "seed": seed,
                    "solver_seed": solver_seed,
                    "host": host_metadata(),
                },
                indent=2,
            )
            + "\n"
        )
    return rows


def test_parallel_solve_speedup(benchmark, show):
    """The recorded claim: >= 2x epoch-solve throughput at 4 processes."""
    rows = benchmark.pedantic(
        run_parallel_solve_experiment, rounds=1, iterations=1
    )

    lines = [
        "Parallel solve epochs — sample fan-out vs the serial global solve",
        f"{'mode':>20} | {'solves/s':>9} | {'solve (s)':>9} | {'epoch (s)':>9} | "
        f"{'speedup':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row['mode']:>20} | {row['solves_per_second']:9.2f} | "
            f"{row['solve_seconds']:9.3f} | {row['epoch_seconds']:9.3f} | "
            f"{row['solve_speedup_vs_serial']:7.2f}x"
        )
    show("\n".join(lines))

    headline = next(row for row in rows if row["mode"] == "sampling/parallel-4")
    # The acceptance bar: >= 2x epoch-solve throughput at 4 processes on
    # the sampling-heavy workload, against the status-quo serial solve.
    assert headline["solve_speedup_vs_serial"] >= 2.0
    assert RESULT_PATH.exists()


if __name__ == "__main__":
    for line in run_parallel_solve_experiment():
        print(line)
