"""Section 7.2 — dynamic maintenance cost of the RDB-SC-Grid index.

The paper states the maintenance complexities in prose: worker insert /
remove are O(1) placement plus a tcell_list refresh; task insert / remove
touch every worker cell in the worst case.  This bench regenerates that
claim as a throughput table — and checks the asymmetry it implies (worker
ops stay cheap; task ops scale with the occupied cells).
"""

import math
import time

from repro.datagen import ExperimentConfig, generate_problem
from repro.index.grid import RdbscGrid


def run_maintenance_experiment(n_ops: int = 150, seed: int = 3):
    """Time a random stream of Section 7.2 index maintenance operations."""
    config = ExperimentConfig(
        num_tasks=400,
        num_workers=800,
        start_time_range=(0.0, 1.0),
        expiration_range=(0.5, 1.0),
        velocity_range=(0.05, 0.15),
        angle_range_max=math.pi / 2,
    )
    problem = generate_problem(config, seed)
    grid = RdbscGrid.bulk_load(problem.tasks, problem.workers, eta=0.1, validity=problem.validity)
    grid.build_all_tcell_lists()

    rows = []

    def timed(label, do, undo, items):
        start = time.perf_counter()
        for item in items:
            do(item)
        forward = time.perf_counter() - start
        start = time.perf_counter()
        for item in items:
            undo(item)
        backward = time.perf_counter() - start
        rows.append((label, len(items), forward, backward))

    workers = problem.workers[:n_ops]
    tasks = problem.tasks[:n_ops]
    timed(
        "worker remove+insert",
        lambda w: grid.remove_worker(w.worker_id),
        grid.insert_worker,
        workers,
    )
    timed(
        "task remove+insert",
        lambda t: grid.remove_task(t.task_id),
        grid.insert_task,
        tasks,
    )
    # A full rebuild for scale: what churn maintenance is amortising away.
    start = time.perf_counter()
    rebuilt = RdbscGrid.bulk_load(
        problem.tasks, problem.workers, eta=0.1, validity=problem.validity
    )
    rebuilt.build_all_tcell_lists()
    rebuild_seconds = time.perf_counter() - start
    return rows, rebuild_seconds, grid, problem


def test_section72_maintenance(benchmark, show):
    """Index maintenance must stay cheap relative to a full rebuild."""
    rows, rebuild_seconds, grid, problem = benchmark.pedantic(
        run_maintenance_experiment, rounds=1, iterations=1
    )

    lines = [
        "Section 7.2 — dynamic maintenance cost (400 tasks, 800 workers)",
        f"{'operation':>22} | {'ops':>4} | {'remove (s)':>10} | {'insert (s)':>10} | per-op (us)",
    ]
    for label, count, forward, backward in rows:
        per_op = (forward + backward) / (2 * count) * 1e6
        lines.append(
            f"{label:>22} | {count:>4} | {forward:10.4f} | {backward:10.4f} | {per_op:10.1f}"
        )
    lines.append(f"{'full index rebuild':>22} | {'1':>4} | {rebuild_seconds:10.4f} |")
    show("\n".join(lines))

    # Correctness after all that churn: the index still matches the truth.
    from repro.index.grid import retrieve_pairs_without_index

    assert sorted((p.task_id, p.worker_id) for p in grid.valid_pairs()) == sorted(
        (p.task_id, p.worker_id)
        for p in retrieve_pairs_without_index(
            problem.tasks, problem.workers, problem.validity
        )
    )
    # The asymmetry the paper describes: per-op maintenance beats a rebuild.
    worker_row = rows[0]
    per_worker_op = (worker_row[2] + worker_row[3]) / (2 * worker_row[1])
    assert per_worker_op < rebuild_seconds
