"""Service tier — sustained ingestion throughput and tail latency.

The headline claim (recorded in ``BENCH_serve.json`` at the repo root):
the asyncio service tier sustains an open-loop Poisson ping stream at
hundreds of requests per second over one JSON-lines connection — while a
deadline loop re-plans concurrently — with **zero lost requests** (every
frame is acked or rejected, never dropped) and single-digit-millisecond
p99 ingestion latency.  In-place refreshes superseded before they cost
an invalidation are counted as ``updates_shed``: shedding is a designed
outcome here, loss is a bug.

Each row drives :class:`repro.serve.loadgen.LoadGenerator` (seeded
arrival schedule, coordinated-omission-resistant) against an in-process
:class:`repro.serve.server.AssignmentServer` whose engine was seeded
with a paper-regime population.  The best-of-``repeats`` run (by p99) is
recorded per offered rate.
"""

import asyncio
import json
import math
from pathlib import Path

import numpy as np

from repro.algorithms.greedy import GreedySolver
from repro.datagen import ExperimentConfig, generate_tasks, generate_workers
from repro.engine import AssignmentEngine
from repro.serve import AssignmentServer, LoadGenerator
from repro.serve.loadgen import fetch_stats
from repro.utils.hostmeta import host_metadata

RESULT_PATH = Path(__file__).parent.parent / "BENCH_serve.json"


def _population(num_tasks, num_workers, seed):
    """Paper-regime entities with windows outlasting the soak horizon."""
    config = ExperimentConfig.scaled_defaults(
        num_tasks=num_tasks, num_workers=num_workers
    ).with_updates(
        start_time_range=(0.0, 1.0),
        expiration_range=(50.0, 100.0),
        velocity_range=(0.05, 0.15),
        angle_range_max=math.pi / 4.0,
    )
    rng = np.random.default_rng(seed)
    return generate_tasks(config, rng), generate_workers(config, rng)


async def _soak(engine, workers, rate_hz, duration_s, capacity, epoch_interval, seed):
    """One soak run: server up, load through, stats out, server down."""
    server = AssignmentServer(
        engine,
        capacity=capacity,
        admission="wait",
        epoch_interval=epoch_interval,
        epoch_dt=epoch_interval,
    )
    async with server:
        generator = LoadGenerator(
            "127.0.0.1",
            server.bound_port,
            workers,
            rate_hz=rate_hz,
            duration_s=duration_s,
            seed=seed,
        )
        report = await generator.run(settle_s=5.0)
        report.server = await fetch_stats("127.0.0.1", server.bound_port)
    return report


def run_serve_experiment(
    num_tasks: int = 16,
    num_workers: int = 48,
    rates=(150.0, 300.0),
    duration_s: float = 2.0,
    epoch_interval: float = 0.25,
    capacity: int = 8192,
    eta: float = 0.125,
    seed: int = 11,
    solver_seed: int = 3,
    repeats: int = 2,
    write_json: bool = True,
):
    """Soak the server at each offered rate; best-of-repeats per row."""
    rows = []
    for rate_hz in rates:
        best = None
        for repeat in range(repeats):
            tasks, workers = _population(num_tasks, num_workers, seed)
            engine = AssignmentEngine(
                solver=GreedySolver(), eta=eta, rng=solver_seed
            )
            # Register the population before the server starts: the id
            # registries seed from the engine, so every loadgen ping is
            # an in-place (sheddable) update of a known worker.
            for task in tasks:
                engine.add_task(task)
            for worker in workers:
                engine.add_worker(worker)
            report = asyncio.run(
                _soak(
                    engine,
                    workers,
                    rate_hz,
                    duration_s,
                    capacity,
                    epoch_interval,
                    seed + repeat,
                )
            )
            if report.lost or report.errors:
                raise AssertionError(
                    f"soak at {rate_hz} Hz lost {report.lost} / "
                    f"errored {report.errors} requests"
                )
            if best is None or report.latency_p99_ms < best.latency_p99_ms:
                best = report

        serve = best.server["serve"]
        rows.append(
            {
                "rate_hz": rate_hz,
                "m_tasks": num_tasks,
                "n_workers": num_workers,
                "epoch_interval_s": epoch_interval,
                **best.summary_row(),
                "epochs": serve["epochs"],
                "deadline_misses": serve["deadline_misses"],
                "events_ingested": serve["events_ingested"],
                "updates_shed": serve["updates_shed"],
                "admission_waits": serve["admission_waits"],
                "queue_high_watermark": serve["queue_high_watermark"],
            }
        )

    if write_json:
        RESULT_PATH.write_text(
            json.dumps(
                {
                    "rows": rows,
                    "seed": seed,
                    "solver_seed": solver_seed,
                    "repeats": repeats,
                    "host": host_metadata(),
                },
                indent=2,
            )
            + "\n"
        )
    return rows


def test_serve_soak(benchmark, show):
    """Record sustained RPS + tail latency into BENCH_serve.json."""
    rows = benchmark.pedantic(run_serve_experiment, rounds=1, iterations=1)

    lines = [
        "Service tier — open-loop Poisson soak (zero-loss, concurrent epochs)",
        f"{'rate':>6} | {'acked':>6} | {'rps':>7} | {'p50 ms':>7} | "
        f"{'p95 ms':>7} | {'p99 ms':>7} | {'epochs':>6} | {'shed':>6}",
    ]
    for row in rows:
        lines.append(
            f"{row['rate_hz']:6.0f} | {row['acked']:>6} | "
            f"{row['sustained_rps']:7.1f} | {row['latency_p50_ms']:7.2f} | "
            f"{row['latency_p95_ms']:7.2f} | {row['latency_p99_ms']:7.2f} | "
            f"{row['epochs']:>6} | {row['updates_shed']:>6}"
        )
    show("\n".join(lines))

    # The acceptance bar: nothing lost, epochs ran under load.
    for row in rows:
        assert row["lost"] == 0 and row["errors"] == 0, row["rate_hz"]
        assert row["epochs"] > 0, row["rate_hz"]
        assert row["latency_p99_ms"] == row["latency_p99_ms"], row["rate_hz"]
    assert RESULT_PATH.exists()


if __name__ == "__main__":
    for line in run_serve_experiment():
        print(line)
