"""Sharded engine epochs — fanned-out cell blocks vs the single engine.

The headline claim (recorded in ``BENCH_sharding.json`` at the repo
root): on a large maintenance-heavy instance — 6000 slow workers under
continuous GPS-ping movement churn plus worker/task arrival and
departure churn, 60 short-window tasks, the regime where per-epoch index
maintenance dominates — a 4-shard
:class:`repro.engine.sharding.ShardedAssignmentEngine` delivers **>= 2x
the epoch throughput** of the single-shard
:class:`~repro.engine.engine.AssignmentEngine` applying the same event
stream eagerly per event (how every driver ran before the sharded era),
with bit-identical per-epoch objectives.

The table decomposes where the speedup comes from, honestly:

* ``single/event`` — the baseline: one grid, one eager index update per
  event (PR-2/PR-3 behaviour).
* ``single/batched`` — the same single grid fed per-instant batches
  through ``apply_batch`` (the coalesced churn runs alone).
* ``sharded-1/seq`` / ``sharded-4/seq`` — the sharded engine's deferred
  fan-out: routed buffers applied per shard as per-cell-grouped batches
  at the epoch.  On a single core the win is the batching + the smaller
  per-shard sweeps; partitioning overhead shows as the gap to
  ``single/batched``.
* ``sharded-4/proc`` — the same four shards pinned to worker processes.
  On a multi-core host the four collects overlap; on a single-core host
  (like CI) this row mostly measures IPC overhead, which is why it is
  reported but not asserted on.  The row additionally records the
  engine-side executor decomposition — ``route_seconds`` (batch routing +
  submission, i.e. the serialisation hand-off), ``wait_seconds``
  (blocking on the overlapped shard collects) and ``unpack_seconds``
  (deserialising the packed pair reports) — so routing/serialisation
  cost is measured in its own right instead of being lumped into shard
  compute (the ROADMAP's open measurement for deciding whether shipping
  needs to overlap with compute).
"""

import dataclasses
import json
import math
import time
from pathlib import Path

import numpy as np

from repro.algorithms import GreedySolver
from repro.datagen import ExperimentConfig, generate_tasks, generate_workers
from repro.engine import (
    AssignmentEngine,
    ShardMap,
    ShardedAssignmentEngine,
    TaskArrive,
    TaskWithdraw,
    WorkerArrive,
    WorkerLeave,
    WorkerUpdate,
)
from repro.geometry.points import Point
from repro.utils.hostmeta import host_metadata

RESULT_PATH = Path(__file__).parent.parent / "BENCH_sharding.json"

#: Fresh entity ids start here so replacements never collide.
_FRESH_ID_BASE = 10**6


def _local_config(num_tasks, num_workers):
    """Slow workers, short windows: tight reach, so halos stay small."""
    return ExperimentConfig(
        num_tasks=num_tasks,
        num_workers=num_workers,
        start_time_range=(0.0, 0.5),
        expiration_range=(0.5, 1.0),
        velocity_range=(0.02, 0.06),
        angle_range_max=math.pi / 4.0,
    )


def _churn_script(tasks, workers, spare_tasks, spare_workers, epochs,
                  moves, worker_churn, task_churn, seed):
    """Typed per-epoch event batches every engine replays identically.

    Each epoch's batch is movement-dominated (``moves`` same-instant
    position jitters — the GPS-ping profile of a live worker fleet) with
    a fringe of worker arrivals/leaves and task replacements.
    """
    rng = np.random.default_rng(seed)
    wpool, tpool = list(workers), list(tasks)
    next_wid = next_tid = _FRESH_ID_BASE
    spare_w = spare_t = 0
    script = []
    for _ in range(epochs):
        ops = []
        for _ in range(worker_churn):
            index = int(rng.integers(0, len(wpool)))
            ops.append(WorkerLeave(time=0.0, worker_id=wpool.pop(index).worker_id))
            fresh = dataclasses.replace(
                spare_workers[spare_w % len(spare_workers)], worker_id=next_wid
            )
            next_wid += 1
            spare_w += 1
            wpool.append(fresh)
            ops.append(WorkerArrive(time=0.0, worker=fresh))
        moved = rng.choice(len(wpool), size=moves, replace=False)
        for index in moved:
            worker = wpool[index]
            jittered = worker.moved_to(
                Point(
                    float(np.clip(worker.location.x + rng.normal(0.0, 0.005), 0.0, 1.0)),
                    float(np.clip(worker.location.y + rng.normal(0.0, 0.005), 0.0, 1.0)),
                ),
                worker.depart_time,
            )
            wpool[index] = jittered
            ops.append(WorkerUpdate(time=0.0, worker=jittered))
        for _ in range(task_churn):
            index = int(rng.integers(0, len(tpool)))
            ops.append(TaskWithdraw(time=0.0, task_id=tpool.pop(index).task_id))
            fresh_task = dataclasses.replace(
                spare_tasks[spare_t % len(spare_tasks)], task_id=next_tid
            )
            next_tid += 1
            spare_t += 1
            tpool.append(fresh_task)
            ops.append(TaskArrive(time=0.0, task=fresh_task))
        script.append(ops)
    return script


def _run(engine, tasks, workers, script, eager):
    """Replay one script; returns timings plus the objective series."""
    engine.add_tasks(tasks)
    engine.add_workers(workers)
    engine.epoch(0.0)  # first plan (and pool warm-up) excluded from timing
    solve_before = engine.metrics.solve_seconds
    objectives = []
    started = time.perf_counter()
    for ops in script:
        if eager:
            for event in ops:
                engine.apply(event)
        else:
            engine.apply_batch(ops)
        outcome = engine.epoch(0.0)
        objectives.append(
            (outcome.objective.min_reliability, outcome.objective.total_std)
        )
    epoch_seconds = time.perf_counter() - started
    executor_timings = dict(
        getattr(getattr(engine, "executor", None), "timings", {}) or {}
    )
    close = getattr(engine, "close", None)
    if close is not None:
        close()
    return {
        "epoch_seconds": epoch_seconds,
        "solve_seconds": engine.metrics.solve_seconds - solve_before,
        "objectives": objectives,
        "executor_timings": executor_timings,
    }


def run_sharding_experiment(
    num_tasks: int = 60,
    num_workers: int = 6000,
    epochs: int = 6,
    moves: int = 4000,
    worker_churn: int = 100,
    task_churn: int = 8,
    eta: float = 0.08,
    seed: int = 11,
    solver_seed: int = 3,
    include_process: bool = True,
    write_json: bool = True,
):
    """Time the sharded engine against the single-shard engine.

    Every row replays the same typed event script; per-epoch objectives
    are asserted bit-identical across rows before anything is recorded.
    """
    config = _local_config(num_tasks, num_workers)
    rng = np.random.default_rng(seed)
    tasks = list(generate_tasks(config, rng))
    workers = list(generate_workers(config, rng))
    spare_tasks = list(
        generate_tasks(config.with_updates(num_tasks=2 * num_tasks), rng)
    )
    spare_workers = list(
        generate_workers(config.with_updates(num_workers=num_workers // 2), rng)
    )
    halo = ShardMap.halo_bound(
        tasks + spare_tasks, workers + spare_workers
    )
    script = _churn_script(
        tasks, workers, spare_tasks, spare_workers,
        epochs, moves, worker_churn, task_churn, seed + 1,
    )

    def single():
        return AssignmentEngine(solver=GreedySolver(), eta=eta, rng=solver_seed)

    def sharded(num_shards, executor):
        return ShardedAssignmentEngine(
            solver=GreedySolver(), eta=eta, rng=solver_seed,
            num_shards=num_shards, halo=halo, executor=executor,
        )

    modes = [
        ("single/event", lambda: single(), True),
        ("single/batched", lambda: single(), False),
        ("sharded-1/seq", lambda: sharded(1, "sequential"), False),
        ("sharded-4/seq", lambda: sharded(4, "sequential"), False),
    ]
    if include_process:
        modes.append(("sharded-4/proc", lambda: sharded(4, "process"), False))

    rows = []
    reference = None
    baseline_seconds = None
    for label, make_engine, eager in modes:
        outcome = _run(make_engine(), tasks, workers, script, eager)
        if reference is None:
            reference = outcome["objectives"]
            baseline_seconds = outcome["epoch_seconds"]
        elif outcome["objectives"] != reference:
            raise AssertionError(f"{label}: objectives diverged from single-shard")
        row = {
            "mode": label,
            "m_tasks": num_tasks,
            "n_workers": num_workers,
            "epochs": epochs,
            "events_per_epoch": moves + 2 * worker_churn + 2 * task_churn,
            "halo": halo,
            "epoch_seconds": outcome["epoch_seconds"],
            "solve_seconds": outcome["solve_seconds"],
            "epochs_per_second": epochs / outcome["epoch_seconds"],
            "speedup_vs_single": baseline_seconds / outcome["epoch_seconds"],
        }
        if outcome["executor_timings"]:
            # Engine-side fan-out decomposition: routing/serialisation and
            # report deserialisation measured apart from shard compute.
            row.update(
                {
                    f"executor_{key}": value
                    for key, value in outcome["executor_timings"].items()
                }
            )
        rows.append(row)

    if write_json:
        RESULT_PATH.write_text(
            json.dumps(
                {
                    "rows": rows,
                    "seed": seed,
                    "solver_seed": solver_seed,
                    "host": host_metadata(),
                },
                indent=2,
            )
            + "\n"
        )
    return rows


def test_sharding_speedup(benchmark, show):
    """The recorded claim: >= 2x epoch throughput at 4 shards."""
    rows = benchmark.pedantic(run_sharding_experiment, rounds=1, iterations=1)

    lines = [
        "Sharded engine epochs — fanned-out cell blocks vs the single engine",
        f"{'mode':>15} | {'epochs/s':>9} | {'epoch (s)':>9} | {'solve (s)':>9} | "
        f"{'speedup':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row['mode']:>15} | {row['epochs_per_second']:9.2f} | "
            f"{row['epoch_seconds']:9.3f} | {row['solve_seconds']:9.3f} | "
            f"{row['speedup_vs_single']:7.2f}x"
        )
        if "executor_route_seconds" in row:
            lines.append(
                f"{'':>15} |   fan-out: route {row['executor_route_seconds']:.3f}s, "
                f"wait {row['executor_wait_seconds']:.3f}s, "
                f"unpack {row['executor_unpack_seconds']:.3f}s"
            )
    show("\n".join(lines))

    headline = next(row for row in rows if row["mode"] == "sharded-4/seq")
    # The acceptance bar: >= 2x epoch throughput at 4 shards on the large
    # instance, against the single-shard engine on the same event stream.
    assert headline["speedup_vs_single"] >= 2.0
    assert RESULT_PATH.exists()


if __name__ == "__main__":
    for line in run_sharding_experiment():
        print(line)
