"""Table 2 — experiment settings.

Regenerates the parameter table the evaluation sweeps over and checks the
paper's defaults are wired in (bold entries of Table 2), then benchmarks
instance generation at the laptop scale every figure uses.
"""

import math

from repro.datagen import ExperimentConfig, average_degree, generate_problem
from repro.datagen.config import (
    PAPER_ANGLE_RANGE_MAX,
    PAPER_BETA_RANGE,
    PAPER_EXPIRATION_RANGE,
    PAPER_RELIABILITY_RANGE,
    PAPER_VELOCITY_RANGE,
)


def test_table2_defaults_and_generation(benchmark, show):
    """Check the Table 2 defaults generate instances of the paper's shape."""
    paper = ExperimentConfig.paper_defaults()
    assert paper.num_tasks == 10_000
    assert paper.num_workers == 10_000
    assert paper.expiration_range == PAPER_EXPIRATION_RANGE == (1.0, 2.0)
    assert paper.reliability_range == PAPER_RELIABILITY_RANGE == (0.9, 1.0)
    assert paper.velocity_range == PAPER_VELOCITY_RANGE == (0.2, 0.3)
    assert math.isclose(paper.angle_range_max, PAPER_ANGLE_RANGE_MAX)
    assert math.isclose(paper.angle_range_max, math.pi / 6.0)
    assert paper.beta_range == PAPER_BETA_RANGE == (0.4, 0.6)

    scaled = ExperimentConfig.scaled_defaults()
    problem = benchmark.pedantic(
        generate_problem, args=(scaled, 42), rounds=3, iterations=1
    )
    degree = average_degree(problem)

    lines = [
        "Table 2 — Experiments setting (paper defaults in bold -> our defaults)",
        f"  range of expiration time rt : {paper.expiration_range}",
        f"  reliability [p_min, p_max]  : {paper.reliability_range}",
        f"  number of tasks m           : {paper.num_tasks} (scaled: {scaled.num_tasks})",
        f"  number of workers n         : {paper.num_workers} (scaled: {scaled.num_workers})",
        f"  velocities [v-, v+]         : {paper.velocity_range}",
        f"  range of moving angles      : (0, pi/6]",
        f"  balancing weight beta       : {paper.beta_range}",
        f"  scaled instance avg degree  : {degree:.2f} (graph-density check)",
    ]
    show("\n".join(lines))

    # The scaled preset must keep the bipartite graph paper-like: each
    # worker sees a handful of valid tasks, not zero and not all of them.
    assert 1.0 <= degree <= 30.0
