"""Warm-start epochs — plan repair vs from-scratch solves at low churn.

The headline claim (recorded in ``BENCH_warmstart.json`` at the repo
root): on the same churn-heavy Section 7.2 workload the incremental
benchmark uses — 200 tasks x 2000 workers in the paper's sparse Table 2
regime, ~5% of the population churning between consecutive re-planning
instants — an engine running ``solve_mode="warm"`` repairs the previous
epoch's plan (:mod:`repro.solvers.incremental`) and spends >= 3x less
*solver* time per epoch than the paper-faithful ``solve_mode="full"``
engine, for GREEDY on the python backend (the acceptance bar), with the
other solver/backend combinations recorded alongside.

Both engines replay the same pre-generated churn script with the same
seeds, so the comparison is purely full solve vs warm repair; quality
columns record each mode's mean objective so the speedup is shown not to
be bought with assignment quality (``tests/test_warmstart.py`` pins the
per-epoch dominance relation).
"""

import dataclasses
import json
import math
import time
from pathlib import Path

import numpy as np

from repro.algorithms import GreedySolver, SamplingSolver
from repro.datagen import ExperimentConfig, generate_tasks, generate_workers
from repro.engine import AssignmentEngine
from repro.geometry.points import Point
from repro.utils.hostmeta import host_metadata

RESULT_PATH = Path(__file__).parent.parent / "BENCH_warmstart.json"

#: Fresh entity ids start here so replacements never collide with the
#: initial population.
_FRESH_ID_BASE = 10**6


def _sparse_config(num_tasks, num_workers):
    """Paper-regime instance: narrow cones, slow workers, short windows."""
    return ExperimentConfig(
        num_tasks=num_tasks,
        num_workers=num_workers,
        start_time_range=(0.0, 1.0),
        expiration_range=(0.5, 1.0),
        velocity_range=(0.05, 0.15),
        angle_range_max=math.pi / 6.0,
    )


def _churn_script(tasks, workers, spare_tasks, spare_workers, epochs,
                  churn_workers, churn_tasks, seed):
    """Per-epoch churn ops both engines replay identically."""
    script = []
    wpool, tpool = list(workers), list(tasks)
    next_wid = next_tid = _FRESH_ID_BASE
    spare_w = spare_t = 0
    rng = np.random.default_rng(seed)
    for _ in range(epochs):
        ops = []
        for _ in range(churn_workers):
            kind = int(rng.integers(0, 3))
            if kind == 0 and len(wpool) > churn_workers:
                index = int(rng.integers(0, len(wpool)))
                ops.append(("worker_leave", wpool.pop(index).worker_id))
            elif kind == 1:
                worker = dataclasses.replace(
                    spare_workers[spare_w % len(spare_workers)],
                    worker_id=next_wid,
                )
                next_wid += 1
                spare_w += 1
                wpool.append(worker)
                ops.append(("worker_arrive", worker))
            else:
                index = int(rng.integers(0, len(wpool)))
                worker = wpool[index]
                moved = worker.moved_to(
                    Point(
                        min(max(worker.location.x + float(rng.normal(0.0, 0.01)), 0.0), 1.0),
                        min(max(worker.location.y + float(rng.normal(0.0, 0.01)), 0.0), 1.0),
                    ),
                    worker.depart_time,
                )
                wpool[index] = moved
                ops.append(("worker_update", moved))
        for _ in range(churn_tasks):
            if int(rng.integers(0, 2)) == 0 and len(tpool) > churn_tasks * 2:
                index = int(rng.integers(0, len(tpool)))
                ops.append(("task_leave", tpool.pop(index).task_id))
            else:
                task = dataclasses.replace(
                    spare_tasks[spare_t % len(spare_tasks)], task_id=next_tid
                )
                next_tid += 1
                spare_t += 1
                tpool.append(task)
                ops.append(("task_arrive", task))
        script.append(ops)
    return script


def _apply(engine, op):
    kind, payload = op
    if kind == "worker_leave":
        engine.remove_worker(payload)
    elif kind == "worker_arrive":
        engine.add_worker(payload)
    elif kind == "worker_update":
        engine.update_worker(payload)
    elif kind == "task_leave":
        engine.withdraw_task(payload)
    else:
        engine.add_task(payload)


def _make_solver(kind, backend):
    if kind == "greedy":
        return GreedySolver(backend=backend)
    return SamplingSolver(num_samples=40, backend=backend)


def _run_mode(kind, backend, mode, tasks, workers, script, eta, solver_seed):
    """Replay one churn script on one engine; returns timing + quality."""
    engine = AssignmentEngine(
        solver=_make_solver(kind, backend),
        eta=eta,
        rng=solver_seed,
        backend=backend,
        solve_mode=mode,
    )
    for task in tasks:
        engine.add_task(task)
    for worker in workers:
        engine.add_worker(worker)
    engine.epoch(0.0)  # establishes the first plan; excluded from timings
    solve_before = engine.metrics.solve_seconds
    objectives = []
    started = time.perf_counter()
    for ops in script:
        for op in ops:
            _apply(engine, op)
        outcome = engine.epoch(0.0)
        objectives.append(
            (outcome.objective.min_reliability, outcome.objective.total_std)
        )
    epoch_seconds = time.perf_counter() - started
    return {
        "solve_seconds": engine.metrics.solve_seconds - solve_before,
        "epoch_seconds": epoch_seconds,
        "warm_solves": engine.metrics.warm_solves,
        "mean_min_reliability": float(np.mean([o[0] for o in objectives])),
        "mean_total_std": float(np.mean([o[1] for o in objectives])),
    }


def run_warmstart_experiment(
    num_tasks: int = 200,
    num_workers: int = 2000,
    epochs: int = 10,
    churn_workers: int = 100,
    churn_tasks: int = 10,
    eta: float = 0.05,
    seed: int = 11,
    solver_seed: int = 3,
    solvers: tuple = ("greedy", "sampling"),
    backends: tuple = ("python", "numpy"),
    write_json: bool = True,
):
    """Time warm-repair vs full-solve epochs on one churn script."""
    config = _sparse_config(num_tasks, num_workers)
    rng = np.random.default_rng(seed)
    tasks = generate_tasks(config, rng)
    workers = generate_workers(config, rng)
    spare_tasks = generate_tasks(config.with_updates(num_tasks=2 * num_tasks), rng)
    spare_workers = generate_workers(config.with_updates(num_workers=num_workers), rng)
    script = _churn_script(
        tasks, workers, spare_tasks, spare_workers,
        epochs, churn_workers, churn_tasks, seed + 1,
    )

    rows = []
    for kind in solvers:
        for backend in backends:
            full = _run_mode(
                kind, backend, "full", tasks, workers, script, eta, solver_seed
            )
            warm = _run_mode(
                kind, backend, "warm", tasks, workers, script, eta, solver_seed
            )
            if warm["warm_solves"] != epochs:
                raise AssertionError(
                    f"{kind}/{backend}: expected {epochs} warm epochs, "
                    f"got {warm['warm_solves']}"
                )
            rows.append(
                {
                    "solver": kind,
                    "backend": backend,
                    "m_tasks": num_tasks,
                    "n_workers": num_workers,
                    "epochs": epochs,
                    "churn_ops_per_epoch": churn_workers + churn_tasks,
                    "full_solve_seconds": full["solve_seconds"],
                    "warm_solve_seconds": warm["solve_seconds"],
                    "solve_speedup": full["solve_seconds"] / warm["solve_seconds"],
                    "epochs_per_second_full_solver": epochs / full["solve_seconds"],
                    "epochs_per_second_warm_solver": epochs / warm["solve_seconds"],
                    "full_mean_min_reliability": full["mean_min_reliability"],
                    "warm_mean_min_reliability": warm["mean_min_reliability"],
                    "full_mean_total_std": full["mean_total_std"],
                    "warm_mean_total_std": warm["mean_total_std"],
                }
            )

    if write_json:
        RESULT_PATH.write_text(
            json.dumps(
                {
                    "rows": rows,
                    "seed": seed,
                    "solver_seed": solver_seed,
                    "host": host_metadata(),
                },
                indent=2,
            )
            + "\n"
        )
    return rows


def test_warmstart_speedup(benchmark, show):
    """Record the warm-start solve speedup into BENCH_warmstart.json."""
    rows = benchmark.pedantic(run_warmstart_experiment, rounds=1, iterations=1)

    lines = [
        "Warm-start epochs — plan repair vs full solves (5% churn)",
        f"{'solver':>8} | {'backend':>7} | {'full (s)':>9} | {'warm (s)':>9} | "
        f"{'speedup':>8} | {'minR full/warm':>15} | {'E[STD] full/warm':>17}",
    ]
    for row in rows:
        lines.append(
            f"{row['solver']:>8} | {row['backend']:>7} | "
            f"{row['full_solve_seconds']:9.3f} | {row['warm_solve_seconds']:9.3f} | "
            f"{row['solve_speedup']:7.1f}x | "
            f"{row['full_mean_min_reliability']:.4f}/{row['warm_mean_min_reliability']:.4f} | "
            f"{row['full_mean_total_std']:8.3f}/{row['warm_mean_total_std']:8.3f}"
        )
    show("\n".join(lines))

    headline = next(
        row for row in rows if row["solver"] == "greedy" and row["backend"] == "python"
    )
    # The acceptance bar: >= 3x epoch-solve throughput at <= 5% churn.
    assert headline["solve_speedup"] >= 3.0
    # Every other combination must at least not regress.
    for row in rows:
        assert row["solve_speedup"] > 1.0, (row["solver"], row["backend"])
    assert RESULT_PATH.exists()


if __name__ == "__main__":
    for line in run_warmstart_experiment():
        print(line)
