"""Shared fixtures for the figure-regeneration benchmarks.

Every benchmark prints the series the corresponding paper figure plots;
the ``show`` fixture bypasses pytest's capture so the tables land in the
terminal (and in ``bench_output.txt`` when the run is teed).
"""

import pytest


@pytest.fixture
def show(capfd):
    """Print ``text`` straight to the terminal, uncaptured."""

    def _show(text: str) -> None:
        with capfd.disabled():
            print()
            print(text)

    return _show
