"""A crash-safe session: durable logging, kill-and-recover, cold analytics.

One churn-heavy morning is driven through a ``CrowdsourcingSession``
with ``durable_path=`` set, so every churn event, epoch marker and
periodic full-state snapshot lands in a SQLite write-ahead log.  Halfway
through, the session object is dropped without ``close()`` — a crash.
``CrowdsourcingSession.restore`` then rebuilds the engine from the log
(latest snapshot + tail replay) and the remaining epochs continue as if
nothing happened: the recovered plans are compared epoch-by-epoch with
an uninterrupted twin session and must match bit-exactly.

The log outlives the session, so the final section walks
``DurableLog.epoch_history()`` — the whole assignment history (clock,
solve mode, objective, dispatch) read cold from disk, no solver re-run.

Run with ``PYTHONPATH=src python examples/durable_session.py``.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.algorithms import GreedySolver
from repro.datagen import ExperimentConfig, generate_tasks, generate_workers
from repro.dynamic import CrowdsourcingSession
from repro.engine.durable import DurableLog

EPOCHS = 10
KILL_AFTER = 5              # the "power cut" lands after this many re-plans
CHURN_PER_EPOCH = 6


def build_workload(seed=17):
    """Initial population plus a per-epoch churn script both runs replay."""
    config = ExperimentConfig(
        num_tasks=48,
        num_workers=160,
        velocity_range=(0.05, 0.2),
        expiration_range=(30.0, 60.0),
    )
    rng = np.random.default_rng(seed)
    tasks = list(generate_tasks(config, rng))
    workers = list(generate_workers(config, rng))
    initial_workers, worker_pool = workers[:120], workers[120:]

    script = []
    crng = np.random.default_rng(seed + 1)
    live = [w.worker_id for w in initial_workers]
    for _ in range(EPOCHS):
        ops = []
        for _ in range(CHURN_PER_EPOCH):
            if int(crng.integers(0, 2)) == 0 and worker_pool:
                fresh = worker_pool.pop()
                live.append(fresh.worker_id)
                ops.append(("add_worker", fresh))
            elif len(live) > CHURN_PER_EPOCH:
                index = int(crng.integers(0, len(live)))
                ops.append(("remove_worker", live.pop(index)))
        script.append(ops)
    return tasks, initial_workers, script


def drive(session, tasks, workers, script, start=0, register=True):
    """Replay script epochs ``start..``; returns the per-epoch dispatches."""
    if register:
        for task in tasks:
            session.add_task(task)
        for worker in workers:
            session.add_worker(worker)
    plans = []
    for k in range(start, len(script)):
        for op, payload in script[k]:
            getattr(session, op)(payload)
        outcome = session.reassign(float(k))
        plans.append(sorted(outcome.assignment.pairs()))
    return plans


def main():
    """Run the kill-and-recover demonstration and print the comparison."""
    tasks, workers, script = build_workload()

    # The uninterrupted twin: same workload, never crashes.
    twin = CrowdsourcingSession(solver=GreedySolver(), rng=7)
    twin_plans = drive(twin, tasks, workers, script)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "session.db"

        session = CrowdsourcingSession(
            solver=GreedySolver(),
            rng=7,
            durable_path=path,
            durable_snapshot_every=3,
        )
        before = drive(
            session, tasks, workers, [script[k] for k in range(KILL_AFTER)]
        )
        del session  # crash: no close(), no flush beyond the WAL
        print(f"crashed after {KILL_AFTER} re-plans; log survives at {path.name}")

        recovered = CrowdsourcingSession.restore(path, solver=GreedySolver())
        print(
            f"recovered: {recovered.num_tasks} tasks, "
            f"{recovered.num_workers} workers, "
            f"{recovered.engine.metrics.epochs} epochs already on the books"
        )
        after = drive(
            recovered, tasks, workers, script, start=KILL_AFTER, register=False
        )

        plans = before + after
        matches = sum(a == b for a, b in zip(plans, twin_plans))
        print(f"bit-identical epochs vs the uninterrupted twin: "
              f"{matches}/{len(twin_plans)}")
        assert plans == twin_plans

        recovered.close()

        # Cold analytics: the assignment history without re-running anything.
        with DurableLog(path) as log:
            print("\nepoch history (read cold from the log):")
            for entry in log.epoch_history():
                reliability, total_std = entry["objective"]
                print(
                    f"  t={entry['now']:4.1f}  mode={entry['mode']:>4}  "
                    f"min-reliability={reliability:6.3f}  "
                    f"dispatched={len(entry['dispatch'])}"
                )


if __name__ == "__main__":
    main()
