"""A drifting population on resident elastic shards.

A worker cohort marches across the unit square over a static background
fleet, dragging load from shard block to shard block.  The same typed
event script is replayed three times: through the single-grid
``AssignmentEngine`` (the bit-identity reference), and through
``ElasticShardedAssignmentEngine`` at four shards with diff shipping
off (every epoch re-ships each resident's full sub-problem) and on
(residents advance by O(delta) ``ShardDiff`` packets).  Both elastic
runs share a live ``RebalancePolicy``, so the script also shows the
split/merge/migrate reshapes the marching load provokes — WAL-loggable,
plan-invisible — and the shipped-bytes gap residency buys.

Run with ``PYTHONPATH=src python examples/elastic_session.py``.
"""

import math
import time

import numpy as np

from repro.algorithms import GreedySolver
from repro.datagen import ExperimentConfig, generate_tasks, generate_workers
from repro.engine import (
    AssignmentEngine,
    ElasticShardedAssignmentEngine,
    RebalancePolicy,
    WorkerUpdate,
)
from repro.geometry.points import Point

EPOCHS = 6
COHORT = 300        # the marching wavefront
STRIDE = 0.09       # how far it advances per epoch


def build_workload(seed=43):
    """A fleet with a left-edge cohort plus its marching event script."""
    config = ExperimentConfig(
        num_tasks=40,
        num_workers=2000,
        start_time_range=(0.0, 0.5),
        expiration_range=(0.5, 1.0),
        velocity_range=(0.02, 0.06),   # slow workers: tight validity reach
        angle_range_max=math.pi / 4.0,
    )
    rng = np.random.default_rng(seed)
    tasks = list(generate_tasks(config, rng))
    workers = list(generate_workers(config, rng))
    for index in range(COHORT):       # pack the cohort against the left edge
        worker = workers[index]
        workers[index] = worker.moved_to(
            Point(float(rng.uniform(0.0, 0.1)), worker.location.y),
            worker.depart_time,
        )

    cohort = [workers[index] for index in range(COHORT)]
    script = []
    for _ in range(EPOCHS):
        ops = []
        for index, worker in enumerate(cohort):
            marched = worker.moved_to(
                Point(
                    float(min(0.98, worker.location.x + STRIDE)),
                    float(np.clip(worker.location.y + rng.normal(0, 0.01), 0, 1)),
                ),
                worker.depart_time,
            )
            cohort[index] = marched
            ops.append(WorkerUpdate(time=0.0, worker=marched))
        script.append(ops)
    return tasks, workers, script


def replay(engine, tasks, workers, script):
    """Feed the script through one engine; returns the run summary."""
    engine.add_tasks(tasks)
    engine.add_workers(workers)
    engine.epoch(0.0)   # first plan (and resident build) excluded
    objectives = []
    started = time.perf_counter()
    for ops in script:
        engine.apply_batch(ops)
        outcome = engine.epoch(0.0)
        objectives.append(
            (outcome.objective.min_reliability, outcome.objective.total_std)
        )
    seconds = time.perf_counter() - started
    stats = dict(getattr(engine, "elastic_stats", {}) or {})
    close = getattr(engine, "close", None)
    if close is not None:
        close()
    return seconds, objectives, stats


def main():
    """Replay the marching stream and print the residency comparison."""
    tasks, workers, script = build_workload()
    print(
        f"{len(tasks)} tasks x {len(workers)} workers, {EPOCHS} epochs, "
        f"a {COHORT}-worker cohort marching {STRIDE} per epoch\n"
    )

    def elastic(diff_shipping):
        return ElasticShardedAssignmentEngine(
            solver=GreedySolver(), eta=0.08, rng=3, num_shards=4,
            rebalance=RebalancePolicy(every=2, imbalance=1.3, min_workers=10),
            diff_shipping=diff_shipping,
        )

    rows = []
    for label, make_engine in (
        ("single engine", lambda: AssignmentEngine(
            solver=GreedySolver(), eta=0.08, rng=3)),
        ("elastic x4, full re-ship", lambda: elastic(False)),
        ("elastic x4, diff shipping", lambda: elastic(True)),
    ):
        seconds, objectives, stats = replay(make_engine(), tasks, workers, script)
        rows.append((label, seconds, objectives, stats))

    reference = rows[0][2]
    for label, _, objectives, _ in rows[1:]:
        assert objectives == reference, f"{label} diverged from the single engine"

    print(f"{'mode':>26} | {'epochs/s':>9} | {'shipped':>10} | reshapes")
    for label, seconds, _, stats in rows:
        shipped = (
            f"{stats['diff_bytes'] / 1e3:8.1f}kB" if stats else f"{'-':>10}"
        )
        reshapes = (
            f"{stats['splits']}s/{stats['merges']}m/{stats['migrates']}g"
            if stats
            else "-"
        )
        print(f"{label:>26} | {EPOCHS / seconds:9.2f} | {shipped:>10} | {reshapes}")

    diff_stats = rows[2][3]
    print(
        f"\nDiff shipping moved {diff_stats['diff_bytes'] / 1e3:.1f}kB where "
        f"full re-ship moves {diff_stats['full_bytes'] / 1e3:.1f}kB "
        f"({100 * diff_stats['diff_bytes'] / diff_stats['full_bytes']:.1f}%), "
        f"with {diff_stats['rebalance_ops']} live reshapes and "
        f"{diff_stats['resyncs']} resyncs;"
        "\nevery epoch's (min reliability, total E[STD]) matched bit for bit."
    )


if __name__ == "__main__":
    main()
