"""Tuning the RDB-SC-Grid cell size with the Appendix I cost model.

Shows the full cost-model pipeline on both a uniform and a clustered
(Beijing-substitute) task field:

1. estimate the correlation fractal dimension D2 of the task locations,
2. solve Eq. 23 for the cost-minimising cell side eta,
3. compare valid-pair retrieval times for that eta against naive choices
   and against the no-index baseline.
"""

import math
import time

import numpy as np

from repro.datagen import ExperimentConfig, generate_poi_field, generate_tasks, generate_workers
from repro.geometry.points import Point
from repro.index.cost_model import optimal_eta, update_cost
from repro.index.fractal import correlation_dimension
from repro.index.grid import RdbscGrid, retrieve_pairs_without_index


def time_retrieval(tasks, workers, eta):
    """Wall-clock one valid-pair retrieval at the given cell size."""
    grid = RdbscGrid.bulk_load(tasks, workers, eta)
    grid.build_all_tcell_lists()
    start = time.perf_counter()
    pairs = grid.valid_pairs()
    return time.perf_counter() - start, len(pairs), grid.num_cells


def main() -> None:
    """Compare cost-model eta suggestions against measured retrieval times."""
    config = ExperimentConfig(
        num_tasks=300,
        num_workers=600,
        start_time_range=(0.0, 1.0),
        expiration_range=(0.5, 1.0),
        velocity_range=(0.05, 0.15),
        angle_range_max=math.pi / 2,
    )
    rng = np.random.default_rng(1)
    workers = generate_workers(config, rng)

    for label, tasks in (
        ("uniform field", generate_tasks(config, rng)),
        (
            "clustered field (Beijing substitute)",
            [
                t.with_period(t.start, t.end)
                for t in generate_tasks(config, rng)
            ],
        ),
    ):
        if "clustered" in label:
            pois = generate_poi_field(len(tasks), rng)
            tasks = [
                type(t)(t.task_id, pois[i], t.start, t.end, t.beta)
                for i, t in enumerate(tasks)
            ]
        d2 = correlation_dimension([t.location for t in tasks])
        horizon = max(t.end for t in tasks)
        l_max = min(max(w.velocity for w in workers) * horizon, math.sqrt(2.0))
        eta_star = min(max(optimal_eta(l_max, len(tasks), d2), 0.02), 0.5)

        print(f"\n=== {label} ===")
        print(f"D2 ~= {d2:.2f}, L_max = {l_max:.3f}, "
              f"cost-model eta* = {eta_star:.4f} "
              f"(predicted update cost {update_cost(eta_star, l_max, len(tasks), d2):.0f})")

        start = time.perf_counter()
        baseline_pairs = retrieve_pairs_without_index(tasks, workers)
        baseline = time.perf_counter() - start
        print(f"  no index      : {baseline * 1e3:7.1f} ms "
              f"({len(baseline_pairs)} pairs)")

        for eta in (eta_star / 4, eta_star, min(4 * eta_star, 1.0)):
            elapsed, n_pairs, n_cells = time_retrieval(tasks, workers, eta)
            marker = "  <- cost-model choice" if eta == eta_star else ""
            print(f"  eta = {eta:6.4f} : {elapsed * 1e3:7.1f} ms "
                  f"({n_cells:4d} cells){marker}")
            assert n_pairs == len(baseline_pairs)


if __name__ == "__main__":
    main()
