"""Example 1 from the paper: photographing a landmark from all around.

A single task (the Statue of Liberty stand-in) sits at the centre of the
map with a firework-show time window; workers walk towards it from various
directions.  The spatial crowdsourcing system must pick workers whose
approach angles and arrival times are as diverse as possible — photos from
the back of the statue and at night are worth more than five identical
daytime shots from the front.

The script assigns workers with D&C, then:
* reports the task's reliability and expected spatial/temporal diversity,
* measures the viewing-angle coverage against the all-workers ceiling
  (the quantitative version of the paper's 3-D reconstruction showcase),
* aggregates the answers into representative groups (Section 2.3).
"""

import math

import numpy as np

from repro import DivideConquerSolver, MovingWorker, RdbscProblem, SpatialTask
from repro.analysis import aggregate_answers, coverage_report
from repro.core.diversity import worker_profiles
from repro.core.expected import expected_std
from repro.core.reliability import reliability
from repro.geometry.angles import AngleInterval, bearing
from repro.geometry.points import Point


def build_scene(n_workers: int = 30, seed: int = 4):
    """One landmark task plus photographers approaching from varied angles."""
    rng = np.random.default_rng(seed)
    landmark = SpatialTask(
        task_id=0,
        location=Point(0.5, 0.5),
        start=0.0,
        end=5.0,  # the firework show window, in hours
        beta=0.7,  # the requester mostly wants angular variety
    )
    # Competing attractions nearby: the solver has to decide who shoots the
    # landmark and who covers the rest, instead of dumping everyone on one
    # task.
    rivals = [
        SpatialTask(1, Point(0.25, 0.7), 0.0, 5.0, beta=0.7),
        SpatialTask(2, Point(0.75, 0.3), 0.0, 5.0, beta=0.7),
    ]
    workers = []
    for j in range(n_workers):
        angle = float(rng.uniform(0.0, 2.0 * math.pi))
        radius = float(rng.uniform(0.1, 0.45))
        location = Point(
            0.5 + radius * math.cos(angle), 0.5 + radius * math.sin(angle)
        )
        # Each worker is headed roughly towards the landmark (a tourist
        # wandering that way) with a cone of acceptable directions.
        towards = bearing(location, landmark.location)
        workers.append(
            MovingWorker(
                worker_id=j,
                location=location,
                velocity=float(rng.uniform(0.15, 0.45)),
                cone=AngleInterval(towards - 0.9, 1.8),
                confidence=float(rng.uniform(0.7, 0.98)),
            )
        )
    return landmark, rivals, workers


def main() -> None:
    """Solve the landmark scene and report the chosen photographers."""
    landmark, rivals, workers = build_scene()
    problem = RdbscProblem([landmark, *rivals], workers)
    print(f"{problem.num_pairs} of {len(workers)} tourists can reach the "
          f"landmark inside the show window\n")

    result = DivideConquerSolver(gamma=4).solve(problem, rng=1)
    chosen_ids = sorted(result.assignment.workers_for(landmark.task_id))
    chosen = [problem.workers_by_id[w] for w in chosen_ids]
    profiles = worker_profiles(landmark, chosen, problem.validity)

    print(f"Assigned {len(chosen)} workers to the landmark")
    print(f"  reliability (>=1 good photo): "
          f"{reliability(w.confidence for w in chosen):.4f}")
    print(f"  expected spatial/temporal diversity: "
          f"{expected_std(landmark, profiles):.4f}\n")

    all_angles = [
        bearing(landmark.location, w.location)
        for w in workers
        if w.location != landmark.location
    ]
    chosen_angles = [p.angle for p in profiles]
    report = coverage_report(chosen_angles, all_angles, tolerance=math.pi / 10)
    print("Viewing-angle coverage (the 3-D reconstruction showcase metric):")
    print(f"  assigned workers : {report.experimental:.1%}")
    print(f"  every candidate  : {report.ground_truth:.1%}")
    print(f"  captured         : {report.ratio:.1%} of the achievable view\n")

    groups = aggregate_answers(landmark, profiles, n_groups=4, rng=0)
    print(f"Answer digest ({len(groups)} representative photos):")
    for i, group in enumerate(groups, start=1):
        rep = group.representative
        print(
            f"  group {i}: {len(group.members)} photos — representative from "
            f"{math.degrees(rep.angle):5.1f} deg at t={rep.arrival:4.2f} h"
        )


if __name__ == "__main__":
    main()
