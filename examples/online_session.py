"""A live RDB-SC system under churn: the paper's dynamic scenario.

Tasks arrive as a Poisson stream, workers register and leave, the grid
index absorbs every change (Section 7.2), and the session re-plans every
half hour with the SAMPLING solver (Figure 10's strategy, library-level).
Finishes with a terminal map of the final system state.
"""

from repro.algorithms import SamplingSolver
from repro.datagen.streams import StreamConfig, generate_event_stream, replay_stream
from repro.dynamic import CrowdsourcingSession
from repro.viz import render_instance, series_with_sparkline


def main() -> None:
    """Run a Poisson-churn session with periodic re-assignment."""
    config = StreamConfig(
        horizon=6.0,        # hours
        task_rate=8.0,      # tasks arriving per hour
        worker_rate=4.0,    # workers registering per hour
        initial_workers=12,
        mean_dwell=2.5,     # hours a worker stays
    )
    events = generate_event_stream(config, rng=9)
    n_tasks = sum(1 for e in events if e.kind == "task_arrival")
    n_workers = sum(1 for e in events if e.kind == "worker_arrival")
    n_departs = sum(1 for e in events if e.kind == "worker_departure")
    print(
        f"stream: {n_tasks} task arrivals, {n_workers} worker arrivals, "
        f"{n_departs} departures over {config.horizon} h\n"
    )

    session = CrowdsourcingSession(
        solver=SamplingSolver(num_samples=40), eta=0.125, rng=9
    )
    outcomes = replay_stream(
        session, events, reassign_every=0.5, horizon=config.horizon
    )

    print(f"{'time':>5} | {'tasks':>5} | {'workers':>7} | {'pairs':>5} | "
          f"{'min rel':>8} | {'total_STD':>9}")
    for step, outcome in enumerate(outcomes):
        now = step * 0.5
        print(
            f"{now:5.1f} | {outcome.num_tasks:5d} | {outcome.num_workers:7d} | "
            f"{outcome.num_pairs:5d} | {outcome.objective.min_reliability:8.4f} | "
            f"{outcome.objective.total_std:9.4f}"
        )

    print()
    print(series_with_sparkline(
        "total_STD over time", [o.objective.total_std for o in outcomes]
    ))
    print(series_with_sparkline(
        "live tasks over time", [float(o.num_tasks) for o in outcomes], precision=0
    ))
    print(
        f"\nsession stats: {session.stats.tasks_added} tasks added, "
        f"{session.stats.tasks_expired} expired, "
        f"{session.stats.workers_added} workers added, "
        f"{session.stats.workers_removed} left, "
        f"{session.stats.reassignments} reassignments\n"
    )
    print("final system state:")
    print(render_instance(session.current_problem(), width=48, height=14))


if __name__ == "__main__":
    main()
