"""One sampling-heavy session, serial vs parallel solve: identical plans.

A session whose epochs are dominated by the SAMPLING solve — a
mid-density instance re-planned with a 512-sample budget under light
movement churn — is replayed three times over the same event stream:
serially (the substream contract, no executor), through the inline
chunked scorer (``solve_executor`` with zero processes — the
memoisation win alone), and through a 4-process pinned pool.  The
script asserts every epoch's plan is bit-identical across all three,
then prints the solve-throughput table: the parallel solve subsystem's
whole pitch in one screen — same plans, same numbers, a multiple of the
solves per second.

Run with ``PYTHONPATH=src python examples/parallel_session.py``.
"""

import time

import numpy as np

from repro.algorithms import SamplingSolver
from repro.dynamic import CrowdsourcingSession
from repro.datagen import ExperimentConfig, generate_tasks, generate_workers
from repro.engine import ParallelSolveExecutor
from repro.geometry.points import Point

EPOCHS = 4
NUM_SAMPLES = 512
MOVES_PER_EPOCH = 120


def build_workload(seed=47):
    """A mid-density fleet plus one shared per-epoch movement script."""
    config = ExperimentConfig.scaled_defaults(num_tasks=120, num_workers=420)
    config = config.with_updates(
        velocity_range=(0.05, 0.12), expiration_range=(0.4, 1.0)
    )
    rng = np.random.default_rng(seed)
    tasks = list(generate_tasks(config, rng))
    workers = list(generate_workers(config, rng))
    crng = np.random.default_rng(seed + 1)
    pool = list(workers)
    script = []
    for _ in range(EPOCHS):
        ops = []
        for index in crng.choice(len(pool), size=MOVES_PER_EPOCH, replace=False):
            worker = pool[index]
            moved = worker.moved_to(
                Point(
                    float(np.clip(worker.location.x + crng.normal(0.0, 0.004), 0.0, 1.0)),
                    float(np.clip(worker.location.y + crng.normal(0.0, 0.004), 0.0, 1.0)),
                ),
                worker.depart_time,
            )
            pool[index] = moved
            ops.append(moved)
        script.append(ops)
    return tasks, workers, script


def replay(label, solve_executor, tasks, workers, script):
    """Run the session once; returns (label, plans, epoch time, solve time)."""
    session = CrowdsourcingSession(
        solver=SamplingSolver(num_samples=NUM_SAMPLES),
        rng=7,
        solve_executor=solve_executor,
    )
    for task in tasks:
        session.add_task(task)
    for worker in workers:
        session.add_worker(worker)
    session.reassign(0.0)  # warm-up plan (pool start-up) excluded from timing
    solve_before = session.engine.metrics.solve_seconds
    plans = []
    started = time.perf_counter()
    for ops in script:
        for moved in ops:
            session.update_worker(moved)
        outcome = session.reassign(0.0)
        plans.append(
            (sorted(outcome.assignment.pairs()), outcome.objective)
        )
    epoch_seconds = time.perf_counter() - started
    solve_seconds = session.engine.metrics.solve_seconds - solve_before
    session.close()
    return label, plans, epoch_seconds, solve_seconds


def main():
    """Replay the same session three ways and print the throughput table."""
    tasks, workers, script = build_workload()
    rows = [
        replay("serial", None, tasks, workers, script),
        replay("chunked (0 proc)", ParallelSolveExecutor(processes=0),
               tasks, workers, script),
        replay("parallel (4 proc)", 4, tasks, workers, script),
    ]
    reference = rows[0][1]
    for label, plans, _, _ in rows[1:]:
        assert plans == reference, f"{label}: plans diverged from serial"
    print(f"{EPOCHS} epochs x {NUM_SAMPLES} samples, "
          f"{len(tasks)} tasks x {len(workers)} workers — identical plans\n")
    print(f"{'mode':>18} | {'epoch (s)':>9} | {'solve (s)':>9} | {'speedup':>8}")
    base = rows[0][3]
    for label, _, epoch_seconds, solve_seconds in rows:
        print(
            f"{label:>18} | {epoch_seconds:9.3f} | {solve_seconds:9.3f} | "
            f"{base / solve_seconds:7.2f}x"
        )


if __name__ == "__main__":
    main()
