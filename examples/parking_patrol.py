"""Example 2 from the paper: monitoring parking availability over a region.

Parking lots across a district need photos from diverse directions (cars
hide free spaces from a single angle) and at diverse times of the morning
(availability trends need temporal spread).  Tasks get a low ``beta`` —
temporal diversity matters most for trend prediction — and a valid period
matching each lot's open hours.

This example also exercises the grid index end to end: the cost model picks
a cell size from the task distribution's fractal dimension, the index
retrieves the valid pairs, and the solver consumes the index-fed problem.
"""

import math

import numpy as np

from repro import GreedySolver, MovingWorker, RdbscProblem, SamplingSolver, SpatialTask
from repro.core.reliability import min_reliability
from repro.geometry.angles import AngleInterval
from repro.geometry.points import Point
from repro.index.cost_model import optimal_eta
from repro.index.fractal import correlation_dimension
from repro.index.grid import RdbscGrid


def build_district(n_lots: int = 25, n_patrollers: int = 50, seed: int = 11):
    """Parking lots and patrol workers for the patrol scenario."""
    rng = np.random.default_rng(seed)
    # Parking lots cluster around two commercial centres.
    centres = [(0.3, 0.35), (0.7, 0.65)]
    tasks = []
    for i in range(n_lots):
        cx, cy = centres[i % len(centres)]
        location = Point(
            float(np.clip(rng.normal(cx, 0.08), 0, 1)),
            float(np.clip(rng.normal(cy, 0.08), 0, 1)),
        )
        open_at = float(rng.uniform(0.0, 2.0))  # staggered morning openings
        tasks.append(
            SpatialTask(
                task_id=i,
                location=location,
                start=open_at,
                end=open_at + float(rng.uniform(1.5, 3.0)),
                beta=0.25,  # mostly temporal diversity for trend prediction
            )
        )
    workers = []
    for j in range(n_patrollers):
        heading = float(rng.uniform(0, 2 * math.pi))
        workers.append(
            MovingWorker(
                worker_id=j,
                location=Point(float(rng.uniform(0, 1)), float(rng.uniform(0, 1))),
                velocity=float(rng.uniform(0.2, 0.4)),
                cone=AngleInterval(heading, float(rng.uniform(math.pi / 2, math.pi))),
                confidence=float(rng.uniform(0.8, 0.99)),
            )
        )
    return tasks, workers


def main() -> None:
    """Plan directionally/temporally diverse parking-lot patrols."""
    tasks, workers = build_district()

    # --- Index-driven pair retrieval (Section 7 + Appendix I) ----------
    # Fractal-dimension estimation needs enough points for the power law
    # to show; with a couple dozen lots we floor it at 1 (anything lower
    # is estimator noise, not geometry).
    d2 = max(correlation_dimension([t.location for t in tasks]), 1.0)
    horizon = max(t.end for t in tasks)
    l_max = min(max(w.velocity for w in workers) * horizon, math.sqrt(2.0))
    eta = min(max(optimal_eta(l_max, len(tasks), d2), 0.04), 0.4)
    print(f"Task field fractal dimension D2 ~= {d2:.2f}; "
          f"cost-model cell size eta = {eta:.3f}")

    grid = RdbscGrid.bulk_load(tasks, workers, eta)
    grid.build_all_tcell_lists()
    pairs = grid.valid_pairs()
    print(f"Grid index: {grid.num_cells} cells, {len(pairs)} valid "
          f"(lot, patroller) pairs, "
          f"{grid.stats['cells_pruned_time'] + grid.stats['cells_pruned_angle']} "
          f"cell pairs pruned\n")

    problem = RdbscProblem(tasks, workers, precomputed_pairs=pairs)

    # --- Assignment -----------------------------------------------------
    for solver in (GreedySolver(), SamplingSolver(num_samples=80)):
        result = solver.solve(problem, rng=3)
        covered = len(result.assignment.assigned_tasks())
        print(f"{solver.name:>9}: {covered}/{len(tasks)} lots covered, "
              f"min reliability {result.objective.min_reliability:.4f}, "
              f"total E[STD] {result.objective.total_std:.4f}")

    # --- Dynamic churn ---------------------------------------------------
    # A patroller goes off shift, a new lot opens; the index absorbs both.
    grid.remove_worker(workers[0].worker_id)
    new_lot = SpatialTask(len(tasks), Point(0.5, 0.5), 1.0, 4.0, beta=0.25)
    grid.insert_task(new_lot)
    refreshed = grid.valid_pairs()
    print(f"\nAfter churn (one patroller left, one lot opened): "
          f"{len(refreshed)} valid pairs")


if __name__ == "__main__":
    main()
