"""A simulated gMission deployment (Section 8.4).

Runs the platform simulator — 10 workers, 5 task sites two walking minutes
apart, 15-minute task windows — under the Figure 10 incremental updating
strategy, comparing update intervals and solvers, then demonstrates the
Section 8.1 answer-accuracy model on the collected answers.
"""

import math

from repro.algorithms import DivideConquerSolver, GreedySolver, SamplingSolver
from repro.platform_sim import PlatformConfig, PlatformSimulator, answer_accuracy


def main() -> None:
    """Simulate one deployment day and print the Figure 18 metrics."""
    print("Simulated deployment: 10 workers, 5 sites, 15-minute task windows\n")
    print(f"{'t_interval':>10} | {'solver':>9} | {'min rel':>8} | "
          f"{'total_STD':>9} | {'answers':>7} | {'success':>7}")
    print("-" * 66)

    answers_for_demo = None
    config_for_demo = None
    for t_interval in (1.0, 2.0, 4.0):
        config = PlatformConfig(t_interval=t_interval, sim_minutes=30.0)
        simulator = PlatformSimulator(config)
        for solver in (
            GreedySolver(),
            SamplingSolver(num_samples=25),
            DivideConquerSolver(gamma=6, base_solver=SamplingSolver(num_samples=25)),
        ):
            outcome = simulator.run(solver, rng=8)
            print(
                f"{t_interval:>10} | {solver.name:>9} | "
                f"{outcome.min_reliability:8.4f} | {outcome.total_std:9.4f} | "
                f"{len(outcome.answers):7d} | {outcome.success_rate:6.1%}"
            )
            if answers_for_demo is None and outcome.answers:
                answers_for_demo = outcome.answers
                config_for_demo = config

    print(
        "\nPaper shape (Figure 18): rarer updates -> less total diversity; "
        "SAMPLING/D&C\ncollect much more diversity than GREEDY at every "
        "interval.\n"
    )

    # ------------------------------------------------------------------ #
    # Accuracy model demo: score the first few answers against a
    # requester who asked for a photo from the east at the window start.
    # ------------------------------------------------------------------ #
    if answers_for_demo:
        print("Answer accuracy model (Section 8.1), first five answers:")
        requested_angle = 0.0
        period = config_for_demo.task_open_minutes
        for answer in answers_for_demo[:5]:
            dtheta = abs(answer.angle - requested_angle) % (2 * math.pi)
            dtheta = min(dtheta, 2 * math.pi - dtheta)
            dt = min(answer.time % period, period - 1e-9)
            score = answer_accuracy(dtheta, dt, beta=0.5, period=period)
            print(
                f"  worker {answer.worker_id} on task {answer.task_id}: "
                f"dtheta={math.degrees(dtheta):5.1f} deg, dt={dt:4.1f} min "
                f"-> accuracy {score:.3f}"
            )


if __name__ == "__main__":
    main()
