"""Where an epoch's time goes: the phase profiler on both greedy backends.

The same movement-churn session is driven twice through an
``AssignmentEngine`` — once with ``GreedySolver(backend="python")``, once
with ``backend="numpy"`` — and the built-in epoch phase profiler
(``docs/PROFILING.md``) decomposes each run.  The plans are bit-identical
by contract; what changes is *where the time goes*: the numpy backend
routes exact ΔE[STD] scoring through the batched slab kernels
(``repro.fastpath.batch_delta_estd``), so the ``delta_estd`` share of
epoch wall time shrinks and the remaining phases grow in relative terms.

Pruning is disabled so every candidate pays the exact O(r²) evaluation —
the regime the vectorised objective targets and the clearest view of the
shift (with Lemma 4.3 pruning on, survivor blocks are small and the
``prune`` phase dominates instead).

Run with ``PYTHONPATH=src python examples/profiled_session.py``.
"""

import numpy as np

from repro.algorithms import GreedySolver
from repro.datagen import ExperimentConfig, generate_tasks, generate_workers
from repro.engine import AssignmentEngine, WorkerUpdate
from repro.geometry.points import Point

EPOCHS = 4
MOVES_PER_EPOCH = 30
SEED = 23
SOLVER_SEED = 5


def build_workload(seed=SEED):
    """Initial population plus a per-epoch GPS-jitter script both runs replay."""
    config = ExperimentConfig.scaled_defaults(
        num_tasks=36, num_workers=150
    ).with_updates(velocity_range=(0.05, 0.12))
    rng = np.random.default_rng(seed)
    tasks = list(generate_tasks(config, rng))
    workers = list(generate_workers(config, rng))

    script = []
    pool = list(workers)
    crng = np.random.default_rng(seed + 1)
    for _ in range(EPOCHS):
        ops = []
        for index in crng.choice(len(pool), size=MOVES_PER_EPOCH, replace=False):
            worker = pool[index]
            moved = worker.moved_to(
                Point(
                    float(np.clip(worker.location.x + crng.normal(0.0, 0.004), 0.0, 1.0)),
                    float(np.clip(worker.location.y + crng.normal(0.0, 0.004), 0.0, 1.0)),
                ),
                worker.depart_time,
            )
            pool[index] = moved
            ops.append(WorkerUpdate(time=0.0, worker=moved))
        script.append(ops)
    return tasks, workers, script


def profile_backend(backend, tasks, workers, script):
    """Drive the script on one backend; return (per-epoch phases, lifetime, plans)."""
    engine = AssignmentEngine(
        solver=GreedySolver(use_pruning=False, backend=backend), rng=SOLVER_SEED
    )
    engine.add_tasks(tasks)
    engine.add_workers(workers)
    epoch_phases = []
    plans = []
    for ops in script:
        engine.apply_batch(ops)
        outcome = engine.epoch(0.0)
        epoch_phases.append(dict(engine.metrics.history[-1].phases))
        plans.append(sorted(outcome.assignment.pairs()))
    lifetime = dict(engine.metrics.phase_seconds)
    engine.close()
    return epoch_phases, lifetime, plans


def print_profile(backend, epoch_phases, lifetime):
    """Print per-epoch phase rows and the lifetime share decomposition."""
    names = sorted(lifetime, key=lifetime.get, reverse=True)
    print(f"\n[{backend}] per-epoch phase seconds:")
    header = "  epoch | " + " | ".join(f"{name:>12}" for name in names)
    print(header)
    for k, phases in enumerate(epoch_phases):
        row = " | ".join(f"{phases.get(name, 0.0):12.4f}" for name in names)
        print(f"  {k:>5} | {row}")
    total = sum(lifetime.values()) or 1.0
    print(f"[{backend}] lifetime shares:")
    for name in names:
        print(f"  {name:>12}  {lifetime[name]:8.4f}s  {lifetime[name] / total:6.1%}")


def main():
    """Profile both backends on the same churn session and compare shares."""
    tasks, workers, script = build_workload()

    results = {}
    for backend in ("python", "numpy"):
        epoch_phases, lifetime, plans = profile_backend(
            backend, tasks, workers, script
        )
        print_profile(backend, epoch_phases, lifetime)
        results[backend] = (lifetime, plans)

    assert results["python"][1] == results["numpy"][1], "backends must agree"

    shares = {}
    for backend, (lifetime, _) in results.items():
        total = sum(lifetime.values()) or 1.0
        shares[backend] = lifetime.get("delta_estd", 0.0) / total
    print(
        f"\nplans bit-identical across backends; delta_estd share: "
        f"python {shares['python']:.1%} -> numpy {shares['numpy']:.1%}"
    )


if __name__ == "__main__":
    main()
