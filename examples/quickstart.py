"""Quickstart: generate an RDB-SC instance and compare the paper's solvers.

Run with::

    python examples/quickstart.py

Generates a laptop-scale synthetic workload (Table 2 parameters, scaled),
solves it with GREEDY, SAMPLING, divide-and-conquer and the G-TRUTH
reference, and prints the two objectives the paper reports: the minimum
task reliability and the total expected spatial/temporal diversity.
"""

import time

from repro import (
    DivideConquerSolver,
    ExperimentConfig,
    GreedySolver,
    GroundTruthSolver,
    SamplingSolver,
    generate_problem,
)
from repro.datagen import average_degree


def main() -> None:
    """Solve one synthetic instance with every paper solver."""
    config = ExperimentConfig.scaled_defaults(num_tasks=40, num_workers=80)
    problem = generate_problem(config, seed=2026)
    print(f"Instance: {problem.num_tasks} tasks, {problem.num_workers} workers, "
          f"{problem.num_pairs} valid pairs "
          f"(avg {average_degree(problem):.1f} candidate tasks per worker)\n")

    solvers = [
        GreedySolver(),
        SamplingSolver(num_samples=60),
        DivideConquerSolver(gamma=8, base_solver=SamplingSolver(num_samples=60)),
        GroundTruthSolver(gamma=8),
    ]

    print(f"{'solver':>10} | {'min reliability':>15} | {'total E[STD]':>12} | {'time':>8}")
    print("-" * 58)
    for solver in solvers:
        start = time.perf_counter()
        result = solver.solve(problem, rng=7)
        elapsed = time.perf_counter() - start
        print(
            f"{solver.name:>10} | {result.objective.min_reliability:15.4f} | "
            f"{result.objective.total_std:12.4f} | {elapsed:7.2f}s"
        )

    print(
        "\nExpected shape (paper, Figures 13-14): SAMPLING and D&C collect "
        "notably more\ndiversity than GREEDY at this scale, with D&C close "
        "to the G-TRUTH ceiling."
    )


if __name__ == "__main__":
    main()
