"""A served session: wire ingestion, folding under load, live decisions.

One in-process :class:`repro.serve.AssignmentServer` is stood up over a
seeded engine, and a :class:`repro.serve.ServeClient` plays a morning of
traffic against it over the JSON-lines protocol: tasks submitted,
workers pinging (with deliberately redundant refreshes for the load
shedder to fold away), a subscription streaming every epoch's dispatch
as push frames, and a deadline loop re-planning on a wall-clock cadence
while the client keeps sending.

The final stats frame shows the tier's accounting: every request acked,
redundant pings counted as ``updates_shed`` instead of costing engine
invalidations, and the epochs the deadline loop ran concurrently.

Run with ``PYTHONPATH=src python examples/serve_session.py``.
"""

import asyncio

import numpy as np

from repro.algorithms import GreedySolver
from repro.datagen import ExperimentConfig, generate_tasks, generate_workers
from repro.engine import AssignmentEngine
from repro.geometry.points import Point
from repro.serve import AssignmentServer, ServeClient

EPOCHS = 6
PINGS_PER_EPOCH = 12


def build_population(seed=23):
    """A modest paper-regime population with long task windows."""
    config = ExperimentConfig(
        num_tasks=24,
        num_workers=60,
        velocity_range=(0.05, 0.2),
        expiration_range=(30.0, 60.0),
    )
    rng = np.random.default_rng(seed)
    return list(generate_tasks(config, rng)), list(generate_workers(config, rng))


async def play_session():
    """Drive the whole wire session; returns the final stats payload."""
    tasks, workers = build_population()
    rng = np.random.default_rng(5)
    engine = AssignmentEngine(solver=GreedySolver(), rng=7)

    async with AssignmentServer(engine, epoch_interval=0.25) as server:
        print(f"serving on 127.0.0.1:{server.bound_port}")
        async with ServeClient("127.0.0.1", server.bound_port) as client:
            await client.subscribe()

            # Register the morning's population over the wire.
            for task in tasks:
                await client.submit_task(0.0, task)
            for worker in workers:
                await client.ping(0.0, worker)

            # Stream churn while the deadline loop re-plans underneath.
            # Each worker pings twice per burst: the first position is
            # stale by the time the second lands, so the batcher folds
            # it away instead of invalidating the engine twice.
            for k in range(EPOCHS):
                for _ in range(PINGS_PER_EPOCH):
                    index = int(rng.integers(0, len(workers)))
                    worker = workers[index]
                    for _ in range(2):
                        worker = worker.moved_to(
                            Point(float(rng.uniform()), float(rng.uniform())),
                            float(k),
                        )
                        await client.ping(float(k), worker)
                    workers[index] = worker
                await asyncio.sleep(0.25)

            pushes = await client.drain_pushes(1, timeout=2.0)
            print(f"\nlive decisions streamed: {len(client.pushes)} push frames")
            for push in client.pushes[-3:]:
                print(
                    f"  t={push['now']:5.2f}  mode={push['mode']:>4}  "
                    f"dispatched={len(push['dispatch'])}  "
                    f"min-reliability={push['objective'][0]:6.3f}"
                )

            stats = await client.stats()
            return stats, pushes


def main():
    """Run the served session and print the tier's accounting."""
    stats, _ = asyncio.run(play_session())
    serve = stats["serve"]
    print("\nservice-tier accounting:")
    print(f"  events ingested:   {serve['events_ingested']}")
    print(f"  updates shed:      {serve['updates_shed']} "
          "(stale pings folded before costing an invalidation)")
    print(f"  epochs run:        {serve['epochs']} "
          f"({serve['deadline_misses']} deadline misses)")
    print(f"  frames streamed:   {serve['frames_streamed']}")
    print(f"  engine epochs:     {stats['engine']['epochs']}")
    assert serve["updates_shed"] > 0


if __name__ == "__main__":
    main()
