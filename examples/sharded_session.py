"""One churn stream, one shard vs four: identical plans, faster epochs.

A movement-dominated workload — thousands of slow workers drip-feeding
GPS position refreshes between re-planning instants, with a fringe of
worker and task turnover — is replayed three times over the same typed
event script: through the plain single-grid ``AssignmentEngine``
(applying each event eagerly, as every pre-sharding driver did), and
through ``ShardedAssignmentEngine`` at one and at four cell-block
shards, whose routed buffers are applied per shard as per-cell-grouped
batches at each epoch.  The script asserts every epoch's objective is
bit-identical across all three, then prints the throughput table — the
sharded engine's whole pitch in one screen: same plans, same numbers,
several times the epochs per second.

Run with ``PYTHONPATH=src python examples/sharded_session.py``.
"""

import dataclasses
import math
import time

import numpy as np

from repro.algorithms import GreedySolver
from repro.datagen import ExperimentConfig, generate_tasks, generate_workers
from repro.engine import (
    AssignmentEngine,
    ShardMap,
    ShardedAssignmentEngine,
    TaskArrive,
    TaskWithdraw,
    WorkerArrive,
    WorkerLeave,
    WorkerUpdate,
)
from repro.geometry.points import Point

EPOCHS = 5
MOVES_PER_EPOCH = 2000      # GPS pings between re-planning instants
WORKER_TURNOVER = 50        # leave + arrive pairs per epoch
TASK_TURNOVER = 5           # withdraw + post pairs per epoch


def build_workload(seed=41):
    """A local-reach fleet plus one shared typed-event churn script."""
    config = ExperimentConfig(
        num_tasks=50,
        num_workers=3000,
        start_time_range=(0.0, 0.5),
        expiration_range=(0.5, 1.0),
        velocity_range=(0.02, 0.06),   # slow workers: tight validity reach
        angle_range_max=math.pi / 4.0,
    )
    rng = np.random.default_rng(seed)
    tasks = list(generate_tasks(config, rng))
    workers = list(generate_workers(config, rng))
    spare_tasks = list(generate_tasks(config.with_updates(num_tasks=100), rng))
    spare_workers = list(generate_workers(config.with_updates(num_workers=500), rng))
    halo = ShardMap.halo_bound(tasks + spare_tasks, workers + spare_workers)

    wpool, tpool = list(workers), list(tasks)
    next_id = 10**6
    spare_w = spare_t = 0
    script = []
    for _ in range(EPOCHS):
        ops = []
        for _ in range(WORKER_TURNOVER):
            index = int(rng.integers(0, len(wpool)))
            ops.append(WorkerLeave(time=0.0, worker_id=wpool.pop(index).worker_id))
            fresh = dataclasses.replace(
                spare_workers[spare_w % len(spare_workers)], worker_id=next_id
            )
            next_id += 1
            spare_w += 1
            wpool.append(fresh)
            ops.append(WorkerArrive(time=0.0, worker=fresh))
        for index in rng.choice(len(wpool), size=MOVES_PER_EPOCH, replace=False):
            worker = wpool[index]
            moved = worker.moved_to(
                Point(
                    float(np.clip(worker.location.x + rng.normal(0, 0.005), 0, 1)),
                    float(np.clip(worker.location.y + rng.normal(0, 0.005), 0, 1)),
                ),
                worker.depart_time,
            )
            wpool[index] = moved
            ops.append(WorkerUpdate(time=0.0, worker=moved))
        for _ in range(TASK_TURNOVER):
            index = int(rng.integers(0, len(tpool)))
            ops.append(TaskWithdraw(time=0.0, task_id=tpool.pop(index).task_id))
            fresh_task = dataclasses.replace(
                spare_tasks[spare_t % len(spare_tasks)], task_id=next_id
            )
            next_id += 1
            spare_t += 1
            tpool.append(fresh_task)
            ops.append(TaskArrive(time=0.0, task=fresh_task))
        script.append(ops)
    return tasks, workers, halo, script


def replay(engine, tasks, workers, script, eager):
    """Feed the script through one engine; returns (seconds, objectives)."""
    engine.add_tasks(tasks)
    engine.add_workers(workers)
    engine.epoch(0.0)   # first plan excluded from the timing
    objectives = []
    started = time.perf_counter()
    for ops in script:
        if eager:
            for event in ops:
                engine.apply(event)
        else:
            engine.apply_batch(ops)
        outcome = engine.epoch(0.0)
        objectives.append(
            (outcome.objective.min_reliability, outcome.objective.total_std)
        )
    seconds = time.perf_counter() - started
    close = getattr(engine, "close", None)
    if close is not None:
        close()
    return seconds, objectives


def main():
    """Replay the stream at 1 and 4 shards and print the comparison."""
    tasks, workers, halo, script = build_workload()
    events = sum(len(ops) for ops in script)
    print(
        f"{len(tasks)} tasks x {len(workers)} workers, {EPOCHS} epochs, "
        f"{events} churn events, halo={halo:.3f}\n"
    )

    rows = []
    for label, make_engine, eager in (
        ("single engine (eager)",
         lambda: AssignmentEngine(solver=GreedySolver(), eta=0.08, rng=3), True),
        ("sharded x1 (sequential)",
         lambda: ShardedAssignmentEngine(
             solver=GreedySolver(), eta=0.08, rng=3,
             num_shards=1, halo=halo), False),
        ("sharded x4 (sequential)",
         lambda: ShardedAssignmentEngine(
             solver=GreedySolver(), eta=0.08, rng=3,
             num_shards=4, halo=halo), False),
    ):
        seconds, objectives = replay(make_engine(), tasks, workers, script, eager)
        rows.append((label, seconds, objectives))

    reference = rows[0][2]
    for label, _, objectives in rows[1:]:
        assert objectives == reference, f"{label} diverged from the single engine"

    baseline = rows[0][1]
    print(f"{'mode':>24} | {'epochs/s':>9} | {'speedup':>8} | identical plans")
    for label, seconds, _ in rows:
        print(
            f"{label:>24} | {EPOCHS / seconds:9.2f} | "
            f"{baseline / seconds:7.2f}x | yes"
        )
    print(
        "\nEvery epoch's (min reliability, total E[STD]) matched bit for bit;"
        "\nthe sharded engine buys throughput, never answers."
    )


if __name__ == "__main__":
    main()
