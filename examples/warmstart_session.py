"""A week-long churn session: full re-solves vs warm-start plan repair.

The same seven-day workload — a stable worker population with a steady
drip of arrivals, departures and position refreshes, plus tasks posted
and expiring around the clock — is replayed twice through
``CrowdsourcingSession``: once with ``solve_mode="full"`` (the
paper-faithful GREEDY solve at every re-planning instant) and once with
``solve_mode="warm"`` (quiet epochs repair the previous plan through
``repro.solvers.incremental``).  The comparison printed at the end is
the whole point of warm starts: solver time drops severalfold while the
objective series stays on top of the full solve's.

Run with ``PYTHONPATH=src python examples/warmstart_session.py``.
"""

import math

import numpy as np

from repro.algorithms import GreedySolver
from repro.datagen import ExperimentConfig, generate_tasks, generate_workers
from repro.dynamic import CrowdsourcingSession
from repro.geometry.points import Point
from repro.viz import series_with_sparkline

DAYS = 7
EPOCHS_PER_DAY = 8          # a re-plan every three "hours"
CHURN_PER_EPOCH = 4         # entities churned between re-plans (~4%)


def build_workload(seed=29):
    """The initial population plus one shared churn script for the week.

    The paper's sparse regime (narrow cones, slow workers) — the regime
    long-lived deployments live in, and the one where repairing a plan
    beats re-deriving it: most workers are untouched by any given delta.
    """
    config = ExperimentConfig(
        num_tasks=320,
        num_workers=400,
        velocity_range=(0.05, 0.2),
        angle_range_max=math.pi / 5.0,
    )
    rng = np.random.default_rng(seed)
    tasks = list(generate_tasks(config, rng))
    workers = list(generate_workers(config, rng))
    initial_tasks, task_pool = tasks[:64], tasks[64:]
    initial_workers, worker_pool = workers[:220], workers[220:]

    script = []
    live_workers = [w.worker_id for w in initial_workers]
    by_id = {w.worker_id: w for w in workers}
    crng = np.random.default_rng(seed + 1)
    for _ in range(DAYS * EPOCHS_PER_DAY):
        ops = []
        for _ in range(CHURN_PER_EPOCH):
            roll = int(crng.integers(0, 4))
            if roll == 0 and task_pool:
                ops.append(("add_task", task_pool.pop()))
            elif roll == 1 and worker_pool:
                worker = worker_pool.pop()
                live_workers.append(worker.worker_id)
                by_id[worker.worker_id] = worker
                ops.append(("add_worker", worker))
            elif roll == 2 and len(live_workers) > 40:
                index = int(crng.integers(0, len(live_workers)))
                ops.append(("remove_worker", live_workers.pop(index)))
            else:
                worker_id = live_workers[int(crng.integers(0, len(live_workers)))]
                worker = by_id[worker_id]
                moved = worker.moved_to(
                    Point(
                        float(np.clip(worker.location.x + crng.normal(0, 0.02), 0, 1)),
                        float(np.clip(worker.location.y + crng.normal(0, 0.02), 0, 1)),
                    ),
                    worker.depart_time,
                )
                by_id[worker_id] = moved
                ops.append(("update_worker", moved))
        script.append(ops)
    return initial_tasks, initial_workers, script


def run_session(mode, initial_tasks, initial_workers, script):
    """Replay the shared script; returns per-epoch objectives and timings."""
    session = CrowdsourcingSession(
        solver=GreedySolver(), eta=0.125, rng=7, solve_mode=mode
    )
    for task in initial_tasks:
        session.add_task(task)
    for worker in initial_workers:
        session.add_worker(worker)
    session.reassign(0.0)  # epoch zero establishes the first plan
    objectives = []
    for ops in script:
        for kind, payload in ops:
            getattr(session, kind)(payload)
        outcome = session.reassign(0.0)
        objectives.append(outcome.objective)
    metrics = session.engine.metrics
    return objectives, metrics


def main() -> None:
    """Replay a week of churn in full vs warm mode and compare."""
    initial_tasks, initial_workers, script = build_workload()
    print(
        f"workload: {DAYS} days x {EPOCHS_PER_DAY} re-plans, "
        f"{CHURN_PER_EPOCH} churned entities per interval, GREEDY solver\n"
    )

    results = {}
    for mode in ("full", "warm"):
        objectives, metrics = run_session(
            mode, initial_tasks, initial_workers, script
        )
        results[mode] = (objectives, metrics)
        print(
            f"solve_mode={mode!r}: {metrics.epochs} epochs "
            f"({metrics.warm_solves} warm, {metrics.full_solves} full), "
            f"solver time {metrics.solve_seconds:.2f}s"
        )

    full_obj, full_metrics = results["full"]
    warm_obj, warm_metrics = results["warm"]
    print(
        f"\nsolver-time speedup: "
        f"{full_metrics.solve_seconds / warm_metrics.solve_seconds:.1f}x"
    )

    print("\nper-day mean objective (warm should track or beat full):")
    print(f"{'day':>4} | {'min rel full':>12} | {'min rel warm':>12} | "
          f"{'E[STD] full':>11} | {'E[STD] warm':>11}")
    for day in range(DAYS):
        chunk = slice(day * EPOCHS_PER_DAY, (day + 1) * EPOCHS_PER_DAY)
        fo, wo = full_obj[chunk], warm_obj[chunk]
        print(
            f"{day + 1:4d} | "
            f"{np.mean([o.min_reliability for o in fo]):12.4f} | "
            f"{np.mean([o.min_reliability for o in wo]):12.4f} | "
            f"{np.mean([o.total_std for o in fo]):11.3f} | "
            f"{np.mean([o.total_std for o in wo]):11.3f}"
        )

    print()
    print(series_with_sparkline(
        "full E[STD] ", [o.total_std for o in full_obj]
    ))
    print(series_with_sparkline(
        "warm E[STD] ", [o.total_std for o in warm_obj]
    ))


if __name__ == "__main__":
    main()
