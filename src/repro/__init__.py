"""repro — reproduction of "Reliable Diversity-Based Spatial Crowdsourcing
by Moving Workers" (Cheng et al., PVLDB 8(10), 2015).

The package implements the paper's full stack:

* the RDB-SC problem model with its reliability and expected
  spatial/temporal diversity objectives (:mod:`repro.core`),
* the GREEDY, SAMPLING, divide-and-conquer and G-TRUTH solvers
  (:mod:`repro.algorithms`),
* the cost-model-based grid index for dynamic maintenance, with a
  persistent valid-pair cache for incremental retrieval
  (:mod:`repro.index`),
* the event-driven incremental assignment engine powering the session
  and the platform simulator (:mod:`repro.engine`),
* NumPy batch kernels behind the ``backend="numpy"`` flags of the
  problem, index, solvers and session, plus slot-stable packed arrays
  for per-event updates (:mod:`repro.fastpath`),
* Table-2 synthetic workload generators and substitutes for the paper's
  real datasets (:mod:`repro.datagen`),
* a gMission-style platform simulator with the incremental updating
  strategy (:mod:`repro.platform_sim`),
* the experiment harness regenerating every figure (:mod:`repro.experiments`).

Quickstart::

    from repro import GreedySolver, generate_problem
    from repro.datagen import ExperimentConfig

    problem = generate_problem(ExperimentConfig.scaled_defaults(), seed=7)
    result = GreedySolver().solve(problem, rng=7)
    print(result.objective)
"""

from repro.algorithms import (
    DivideConquerSolver,
    ExhaustiveSolver,
    GreedySolver,
    GroundTruthSolver,
    LocalSearchSolver,
    MaxTaskSolver,
    RandomSolver,
    SamplePlan,
    SamplingSolver,
    Solver,
    SolverResult,
)
from repro.core import (
    Assignment,
    MovingWorker,
    ObjectiveValue,
    RdbscProblem,
    SpatialTask,
    ValidityRule,
    evaluate_assignment,
)
from repro.datagen import ExperimentConfig, generate_problem
from repro.dynamic import CrowdsourcingSession
from repro.engine import AssignmentEngine

__version__ = "1.0.0"

__all__ = [
    "Assignment",
    "AssignmentEngine",
    "CrowdsourcingSession",
    "DivideConquerSolver",
    "ExhaustiveSolver",
    "ExperimentConfig",
    "GreedySolver",
    "GroundTruthSolver",
    "LocalSearchSolver",
    "MaxTaskSolver",
    "MovingWorker",
    "ObjectiveValue",
    "RandomSolver",
    "RdbscProblem",
    "SamplePlan",
    "SamplingSolver",
    "Solver",
    "SolverResult",
    "SpatialTask",
    "ValidityRule",
    "evaluate_assignment",
    "generate_problem",
    "__version__",
]
