"""The paper's RDB-SC solvers and their supporting machinery.

Solvers (all implement :class:`repro.algorithms.base.Solver`):

``GreedySolver``
    Figure 3 — n rounds of best-(task, worker)-pair selection with
    dominance pruning and dominating-count ranking, plus the Section 4.3
    bound-based candidate pruning.
``SamplingSolver``
    Figure 5 — K random full assignments ranked by dominance score, with
    the Section 5.2 (epsilon, delta) sample-size machinery.
``DivideConquerSolver``
    Figure 6 — recursive BG_Partition / solve / SA_Merge.
``GroundTruthSolver``
    The paper's G-TRUTH reference: D&C with a 10x sampling budget.
``ExhaustiveSolver``
    True enumeration for tiny instances (test oracle only).
``RandomSolver``
    Uniform-random assignment baseline.
``MaxTaskSolver``
    GeoCrowd-style coverage maximiser (related-work baseline).
"""

from repro.algorithms.base import Solver, SolverResult, make_rng
from repro.algorithms.divide_conquer import DivideConquerSolver
from repro.algorithms.exhaustive import ExhaustiveSolver
from repro.algorithms.greedy import GreedySolver
from repro.algorithms.ground_truth import GroundTruthSolver
from repro.algorithms.local_search import LocalSearchSolver
from repro.algorithms.max_task import MaxTaskSolver
from repro.algorithms.random_assign import RandomSolver
from repro.algorithms.sample_size import SamplePlan, required_sample_size
from repro.algorithms.sampling import SamplingSolver

__all__ = [
    "DivideConquerSolver",
    "ExhaustiveSolver",
    "GreedySolver",
    "GroundTruthSolver",
    "LocalSearchSolver",
    "MaxTaskSolver",
    "RandomSolver",
    "SamplePlan",
    "SamplingSolver",
    "Solver",
    "SolverResult",
    "make_rng",
    "required_sample_size",
]
