"""Common solver interface.

Every algorithm consumes an :class:`repro.core.problem.RdbscProblem` and
produces a :class:`SolverResult`: the assignment, its objective value and a
bag of solver-specific statistics (rounds run, samples drawn, subproblems
solved, ...) that the experiment harness reports alongside timings.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

from repro.core.assignment import Assignment
from repro.core.objectives import ObjectiveValue, evaluate_assignment
from repro.core.problem import RdbscProblem

RngLike = Union[None, int, np.random.Generator]


def make_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``None`` / seed / generator into a ``numpy`` Generator.

    Solvers accept any of the three so callers can be as explicit about
    determinism as they need; benches always pass seeds.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


@dataclass
class SolverResult:
    """Outcome of one solver run.

    Attributes:
        assignment: the produced task-and-worker assignment.
        objective: its (min reliability, total E[STD]) value.
        stats: solver-specific counters for reporting.
    """

    assignment: Assignment
    objective: ObjectiveValue
    stats: Dict[str, float] = field(default_factory=dict)


class Solver(abc.ABC):
    """Abstract RDB-SC solver."""

    #: Human-readable name used in experiment tables ("GREEDY", "D&C", ...).
    name: str = "SOLVER"

    @abc.abstractmethod
    def solve(self, problem: RdbscProblem, rng: RngLike = None) -> SolverResult:
        """Produce an assignment for ``problem``.

        Implementations must be deterministic given the same ``rng`` seed.
        """

    def _finish(
        self,
        problem: RdbscProblem,
        assignment: Assignment,
        stats: Optional[Dict[str, float]] = None,
    ) -> SolverResult:
        """Package an assignment with its freshly evaluated objective."""
        return SolverResult(
            assignment=assignment,
            objective=evaluate_assignment(problem, assignment),
            stats=dict(stats or {}),
        )
