"""The divide-and-conquer solver (Figure 6, Section 6).

Recursively split the problem with ``BG_Partition`` until the task count
drops to the threshold ``gamma``, solve the leaves with a base solver
(SAMPLING by default, as the paper's experiments do "to accelerate D&C"),
then stitch the answers back together with ``SA_Merge``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.algorithms.base import RngLike, Solver, SolverResult, make_rng
from repro.algorithms.merge import sa_merge
from repro.algorithms.partition import bg_partition
from repro.algorithms.sampling import SamplingSolver
from repro.core.assignment import Assignment
from repro.core.problem import RdbscProblem


class DivideConquerSolver(Solver):
    """Recursive partition / solve / merge.

    Args:
        gamma: subproblems with at most this many tasks are solved directly
            (the paper's threshold γ).
        base_solver: leaf solver; defaults to :class:`SamplingSolver`.
        max_group_size: passed through to ``SA_Merge``.
    """

    name = "D&C"

    def __init__(
        self,
        gamma: int = 8,
        base_solver: Optional[Solver] = None,
        max_group_size: int = 10,
    ) -> None:
        if gamma < 1:
            raise ValueError("gamma must be at least 1")
        self.gamma = gamma
        self.base_solver = base_solver if base_solver is not None else SamplingSolver()
        self.max_group_size = max_group_size

    def solve(self, problem: RdbscProblem, rng: RngLike = None) -> SolverResult:
        generator = make_rng(rng)
        stats: Dict[str, float] = {
            "leaf_solves": 0.0,
            "max_depth": 0.0,
            "conflicts_resolved": 0.0,
        }
        assignment = self._solve_recursive(problem, generator, 0, stats)
        return self._finish(problem, assignment, stats)

    def _solve_recursive(
        self,
        problem: RdbscProblem,
        generator,
        depth: int,
        stats: Dict[str, float],
    ) -> Assignment:
        stats["max_depth"] = max(stats["max_depth"], float(depth))
        if problem.num_tasks <= self.gamma:
            stats["leaf_solves"] += 1.0
            return self.base_solver.solve(problem, generator).assignment

        partition = bg_partition(problem, generator)
        sub1 = problem.restricted_to(partition.task_ids_1, partition.worker_ids_1)
        sub2 = problem.restricted_to(partition.task_ids_2, partition.worker_ids_2)
        answer1 = self._solve_recursive(sub1, generator, depth + 1, stats)
        answer2 = self._solve_recursive(sub2, generator, depth + 1, stats)
        merged, merge_stats = sa_merge(
            problem,
            answer1,
            answer2,
            partition.conflicting_worker_ids,
            self.max_group_size,
        )
        stats["conflicts_resolved"] += float(merge_stats.conflicts)
        return merged
