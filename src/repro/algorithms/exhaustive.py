"""Exhaustive enumeration of the assignment population (test oracle).

RDB-SC is NP-hard (Lemma 3.2), so exhaustive search only exists here as the
correctness oracle for tiny instances: it enumerates every point of the
Section 5.1 population (each worker independently picks one of its valid
tasks) and returns the assignment with the best dominance rank — the same
selection rule SAMPLING applies to its sample pool, so approximation-quality
tests compare like with like.
"""

from __future__ import annotations

from itertools import product
from typing import List, Tuple

from repro.algorithms.base import RngLike, Solver, SolverResult
from repro.core.assignment import Assignment
from repro.core.objectives import evaluate_assignment
from repro.core.problem import RdbscProblem
from repro.skyline.dominance import best_index_by_dominance

#: Populations above this size make enumeration unreasonable.
MAX_POPULATION = 200_000


def population_size(problem: RdbscProblem) -> int:
    """``prod_j deg(w_j)`` over workers with at least one valid task.

    Raises:
        OverflowError: if the product exceeds ``MAX_POPULATION`` (the caller
            should be using an approximation algorithm instead).
    """
    size = 1
    for worker in problem.workers:
        deg = problem.degree(worker.worker_id)
        if deg > 0:
            size *= deg
        if size > MAX_POPULATION:
            raise OverflowError(
                f"assignment population exceeds {MAX_POPULATION}; "
                f"exhaustive search refused"
            )
    return size


class ExhaustiveSolver(Solver):
    """Enumerate all assignments; pick the best by dominance ranking."""

    name = "EXHAUSTIVE"

    def solve(self, problem: RdbscProblem, rng: RngLike = None) -> SolverResult:
        population_size(problem)  # raises early if too large
        worker_choices: List[Tuple[int, List[int]]] = [
            (w.worker_id, problem.candidate_tasks(w.worker_id))
            for w in problem.workers
            if problem.degree(w.worker_id) > 0
        ]
        if not worker_choices:
            return self._finish(problem, Assignment(), {"population": 1.0})

        assignments: List[Assignment] = []
        scores: List[Tuple[float, float]] = []
        worker_ids = [worker_id for worker_id, _ in worker_choices]
        for combo in product(*(tasks for _, tasks in worker_choices)):
            assignment = Assignment()
            for worker_id, task_id in zip(worker_ids, combo):
                assignment.assign(task_id, worker_id)
            value = evaluate_assignment(problem, assignment)
            assignments.append(assignment)
            scores.append((value.min_reliability, value.total_std))
        best = best_index_by_dominance(scores)
        return self._finish(
            problem, assignments[best], {"population": float(len(assignments))}
        )

    def pareto_front(self, problem: RdbscProblem) -> List[SolverResult]:
        """All non-dominated assignments (for studying solution structure)."""
        population_size(problem)
        worker_choices = [
            (w.worker_id, problem.candidate_tasks(w.worker_id))
            for w in problem.workers
            if problem.degree(w.worker_id) > 0
        ]
        if not worker_choices:
            return [self._finish(problem, Assignment())]
        assignments: List[Assignment] = []
        scores: List[Tuple[float, float]] = []
        worker_ids = [worker_id for worker_id, _ in worker_choices]
        for combo in product(*(tasks for _, tasks in worker_choices)):
            assignment = Assignment()
            for worker_id, task_id in zip(worker_ids, combo):
                assignment.assign(task_id, worker_id)
            value = evaluate_assignment(problem, assignment)
            assignments.append(assignment)
            scores.append((value.min_reliability, value.total_std))
        from repro.skyline.dominance import skyline_indices

        return [self._finish(problem, assignments[i]) for i in skyline_indices(scores)]
