"""The RDB-SC greedy algorithm (Figure 3, Section 4).

In each of up to ``n`` rounds the solver scores every candidate
(task, worker) pair by the increase it would cause in the two objectives —
``(Δmin_R, ΔE[STD])`` — filters out Pareto-dominated pairs, ranks the
survivors by how many pairs they dominate (the [22] dominating score), and
commits the top pair.

Two optimisations keep the inner loop honest at scale:

* Exact ``ΔE[STD]`` values are cached per (task, worker) and invalidated
  only when the task's worker set changes; ``Δmin_R`` is O(1) from the
  evaluator's (min, second-min) reliability pair.
* With ``use_pruning=True`` (the default), the Section 4.3 bound-based
  pruning discards provably inferior pairs before any exact ``ΔE[STD]``
  work is spent on them (Lemma 4.3).
* With ``backend="numpy"`` the per-round ``Δmin_R`` scoring and the
  Lemma 4.3 sweep run as :mod:`repro.fastpath` array kernels over all
  candidates at once — same selections, same result, less interpreter
  time per candidate.
* With ``backend="numpy"`` the post-pruning exact ``ΔE[STD]`` work also
  leaves the interpreter: surviving uncached candidates are scored as one
  block through :func:`repro.fastpath.diversity.batch_delta_estd`, whose
  kernels are bitwise-equal to the scalar ``expected_std`` reduction.
* With a ``scorer`` attached (the engine's ``solve_executor`` knob binds a
  :class:`repro.engine.parallel.ShardBatchedScorer`), each round's
  ``Δmin_R`` scoring — and, on the numpy backend, its exact ``ΔE[STD]``
  block — is evaluated in per-shard batches, inline or across a process
  pool, and merged back into candidate order *before* the global argmax,
  so the committed plan stays bit-identical to the serial greedy at every
  batch count and pool size.

The scoring stages report their wall time through the engine phase
profiler (:mod:`repro.engine.profile`) when an engine has activated one;
standalone solves skip the timers entirely.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.base import RngLike, Solver, SolverResult
from repro.algorithms.pruning import (
    CandidateBounds,
    diversity_increase_bounds,
    prune_candidates,
)
from repro.core.objectives import IncrementalEvaluator
from repro.core.problem import RdbscProblem

#: Below this many uncached candidates, the scalar per-pair loop beats
#: slab packing + kernel dispatch (post-pruning survivor blocks are often
#: a handful of rows).  Both paths produce identical bits, so the switch
#: is invisible to every equality contract.
_MIN_BLOCK_DSTD = 32


class GreedySolver(Solver):
    """Iteratively assign the locally best (task, worker) pair.

    Args:
        use_pruning: apply the Lemma 4.3 bound-based pruning before exact
            diversity increases are computed.  Results are identical either
            way whenever the pruned pairs were genuinely dominated; the flag
            exists for the ablation benchmark.
        backend: ``"python"`` scores candidates one by one; ``"numpy"``
            batches the ``Δmin_R`` scoring and pruning sweep through the
            fastpath kernels.  Both backends commit identical assignments.
        scorer: optional shard-batched round scorer (duck-typed to
            :class:`repro.engine.parallel.ShardBatchedScorer`); when set,
            each round's ``Δmin_R`` values come from per-shard kernel
            batches merged before the argmax — identical selections on
            both backends.  The engine attaches this via its
            ``solve_executor`` knob.
    """

    name = "GREEDY"

    def __init__(
        self, use_pruning: bool = True, backend: str = "python", scorer=None
    ) -> None:
        if backend not in ("python", "numpy"):
            raise ValueError(f"unknown backend {backend!r}")
        self.use_pruning = use_pruning
        self.backend = backend
        self.scorer = scorer

    def solve(self, problem: RdbscProblem, rng: RngLike = None) -> SolverResult:
        evaluator = IncrementalEvaluator(problem)
        unassigned = sorted(
            w.worker_id for w in problem.workers if problem.degree(w.worker_id) > 0
        )
        stats = self.run_rounds(problem, evaluator, unassigned)
        return SolverResult(
            assignment=evaluator.assignment,
            objective=evaluator.value(),
            stats=stats,
        )

    def run_rounds(
        self,
        problem: RdbscProblem,
        evaluator: IncrementalEvaluator,
        unassigned: List[int],
        log_weights: Optional[Dict[int, float]] = None,
    ) -> Dict[str, float]:
        """Run greedy rounds until ``unassigned`` drains (or no pairs remain).

        The core of :meth:`solve`, factored out so callers can start from a
        *partially filled* evaluator — the warm-start solver
        (:class:`repro.solvers.incremental.WarmStartGreedySolver`) seeds the
        evaluator with the repaired previous plan and passes only the dirty
        workers here.  ``unassigned`` is consumed in place; each round
        commits one (task, worker) pair into ``evaluator``.

        Args:
            problem: the instance being solved.
            evaluator: incremental objective state; may already hold
                assignments (they are treated exactly like committed rounds).
            unassigned: worker ids still to place, each with degree > 0.
            log_weights: optional ``{worker_id: -ln(1 - p_j)}`` map for the
                numpy backend (e.g. gathered from packed slot slabs); built
                on the fly from the worker objects when omitted.

        Returns:
            The solver stats dict (rounds, exact evaluations, pruned count).
        """
        if self.backend == "numpy" or self.scorer is not None:
            if log_weights is None:
                log_weights = {
                    worker_id: problem.workers_by_id[worker_id].log_confidence_weight
                    for worker_id in unassigned
                }
            self._log_weights: Optional[Dict[int, float]] = log_weights
        else:
            self._log_weights = None
        # Per-(task, worker) caches, invalidated per task on assignment;
        # pair profiles are memoised by the problem itself.  Bounds and
        # exact deltas both depend only on the task's current worker set,
        # so rounds that leave a task untouched reuse everything.
        dstd_cache: Dict[int, Dict[int, float]] = {}
        bounds_cache: Dict[int, Dict[int, Tuple[float, float]]] = {}

        rounds = 0
        exact_evaluations = 0
        pruned = 0

        while unassigned:
            min_two = evaluator.min_two_r()
            pairs: List[Tuple[int, int]] = [
                (task_id, worker_id)
                for worker_id in unassigned
                for task_id in sorted(problem.candidate_tasks(worker_id))
            ]
            if not pairs:
                break

            chosen_pairs, n_exact, n_pruned = self._score_round(
                problem, evaluator, pairs, min_two, dstd_cache, bounds_cache
            )
            exact_evaluations += n_exact
            pruned += n_pruned

            scores = [(dr, dd) for _, dr, dd in chosen_pairs]
            from repro.skyline.dominance import best_index_by_dominance

            best = best_index_by_dominance(scores)
            task_id, worker_id = chosen_pairs[best][0]
            evaluator.apply(task_id, worker_id)
            unassigned.remove(worker_id)
            dstd_cache.pop(task_id, None)
            bounds_cache.pop(task_id, None)
            rounds += 1

        return {
            "rounds": float(rounds),
            "exact_delta_evaluations": float(exact_evaluations),
            "pruned_candidates": float(pruned),
        }

    # ------------------------------------------------------------------ #

    def _round_dr_array(
        self,
        problem: RdbscProblem,
        evaluator: IncrementalEvaluator,
        pairs: List[Tuple[int, int]],
        min_two: Tuple[float, float],
    ) -> np.ndarray:
        """``Δmin_R`` for every candidate of one round, as an array.

        Packs the per-candidate kernel inputs — the target task's current
        ``(R, occupied)`` state, looked up once per task, and the worker's
        Eq. 8 weight — then evaluates through the attached shard-batched
        scorer when one is set, or one direct
        :func:`repro.fastpath.kernels.batch_delta_min_r` call otherwise.
        The kernel is element-wise, so both routes (and any batch
        partition) produce the same values as the scalar
        ``delta_min_r`` — bit for bit.
        """
        best, second = min_two
        weights = self._log_weights
        assert weights is not None
        n = len(pairs)
        task_r = np.empty(n)
        task_has = np.empty(n, dtype=bool)
        pair_weights = np.empty(n)
        # Per-round memo: each task's (R, occupied) is looked up once.
        seen: Dict[int, Tuple[float, bool]] = {}
        for k, (task_id, worker_id) in enumerate(pairs):
            cached = seen.get(task_id)
            if cached is None:
                state = evaluator.state_of(task_id)
                cached = (state.r_value, bool(state.profiles))
                seen[task_id] = cached
            task_r[k] = cached[0]
            task_has[k] = cached[1]
            pair_weights[k] = weights[worker_id]
        if self.scorer is not None:
            return self.scorer.round_delta_min_r(
                problem, pairs, task_r, task_has, pair_weights, best, second
            )
        from repro.fastpath.kernels import batch_delta_min_r

        return batch_delta_min_r(task_r, task_has, pair_weights, best, second)

    def _exact_dstd(
        self,
        evaluator: IncrementalEvaluator,
        dstd_cache: Dict[int, Dict[int, float]],
        task_id: int,
        worker_id: int,
    ) -> Tuple[float, bool]:
        """Cached exact diversity increase; returns (value, was_computed)."""
        per_task = dstd_cache.setdefault(task_id, {})
        cached = per_task.get(worker_id)
        if cached is not None:
            return cached, False
        value = evaluator.delta_estd(task_id, worker_id)
        per_task[worker_id] = value
        return value, True

    def _block_dstd(
        self,
        problem: RdbscProblem,
        evaluator: IncrementalEvaluator,
        dstd_cache: Dict[int, Dict[int, float]],
        pairs: List[Tuple[int, int]],
    ) -> None:
        """Exact ``ΔE[STD]`` for a block of uncached candidates at once.

        Packs one padded profile slab for the block and evaluates it
        through the attached shard-batched scorer when one is set
        (per-shard batches, remote through the pinned pools) or one
        direct :func:`repro.fastpath.diversity.batch_expected_std` call.
        Every value lands in ``dstd_cache`` exactly as the scalar
        :meth:`_exact_dstd` would have stored it — the batched kernels
        are bitwise-equal to the scalar reduction, so the cache contents
        and every downstream selection are identical.  Unscored blocks
        below :data:`_MIN_BLOCK_DSTD` take the scalar loop instead: slab
        packing + kernel dispatch costs more than a handful of O(r^2)
        evaluations.
        """
        from repro.fastpath.diversity import batch_expected_std, pack_delta_slab

        if self.scorer is None and len(pairs) < _MIN_BLOCK_DSTD:
            for task_id, worker_id in pairs:
                self._exact_dstd(evaluator, dstd_cache, task_id, worker_id)
            return
        slab, old_estd = pack_delta_slab(problem, evaluator, pairs)
        if self.scorer is not None and hasattr(self.scorer, "round_delta_estd"):
            values = self.scorer.round_delta_estd(problem, pairs, slab, old_estd)
        else:
            values = batch_expected_std(slab) - old_estd
        for (task_id, worker_id), value in zip(pairs, values.tolist()):
            dstd_cache.setdefault(task_id, {})[worker_id] = value

    def _score_round(
        self,
        problem: RdbscProblem,
        evaluator: IncrementalEvaluator,
        pairs: List[Tuple[int, int]],
        min_two: Tuple[float, float],
        dstd_cache: Dict[int, Dict[int, float]],
        bounds_cache: Dict[int, Dict[int, Tuple[float, float]]],
    ) -> Tuple[List[Tuple[Tuple[int, int], float, float]], int, int]:
        """Score candidate pairs, optionally pruning with Section 4.3 bounds.

        Returns ``(scored pairs, exact evaluations, pruned count)`` where
        each scored pair is ``((task_id, worker_id), delta_min_r, dstd)``.
        """
        if self.backend == "numpy":
            return self._score_round_numpy(
                problem, evaluator, pairs, min_two, dstd_cache, bounds_cache
            )
        from repro.engine.profile import phase

        # With a shard-batched scorer attached the round's Δmin_R values
        # come from the merged kernel batches (bit-identical to the scalar
        # delta_min_r); otherwise they are computed pair by pair.
        dr_array = (
            self._round_dr_array(problem, evaluator, pairs, min_two)
            if self.scorer is not None
            else None
        )
        exact = 0
        if not self.use_pruning:
            # The scalar loop interleaves Δmin_R and ΔE[STD] per pair;
            # the exact diversity reduction dominates, so the whole loop
            # is attributed to the delta_estd phase.
            with phase("delta_estd"):
                out = []
                for k, (task_id, worker_id) in enumerate(pairs):
                    dr = (
                        float(dr_array[k])
                        if dr_array is not None
                        else evaluator.delta_min_r(task_id, worker_id, min_two)
                    )
                    dd, computed = self._exact_dstd(
                        evaluator, dstd_cache, task_id, worker_id
                    )
                    exact += computed
                    out.append(((task_id, worker_id), dr, dd))
            return out, exact, 0

        with phase("prune"):
            bounded: List[CandidateBounds] = []
            for k, (task_id, worker_id) in enumerate(pairs):
                dr = (
                    float(dr_array[k])
                    if dr_array is not None
                    else evaluator.delta_min_r(task_id, worker_id, min_two)
                )
                cached = dstd_cache.get(task_id, {}).get(worker_id)
                if cached is not None:
                    lb = ub = cached
                else:
                    per_task_bounds = bounds_cache.setdefault(task_id, {})
                    known = per_task_bounds.get(worker_id)
                    if known is None:
                        task = problem.tasks_by_id[task_id]
                        state = evaluator.state_of(task_id)
                        new_profile = problem.pair_profile(task_id, worker_id)
                        known = diversity_increase_bounds(
                            task, state.profiles, new_profile
                        )
                        per_task_bounds[worker_id] = known
                    lb, ub = known
                bounded.append(CandidateBounds(task_id, worker_id, dr, lb, ub))

            survivors = prune_candidates(bounded)
        n_pruned = len(bounded) - len(survivors)
        with phase("delta_estd"):
            out = []
            for cand in survivors:
                dd, computed = self._exact_dstd(
                    evaluator, dstd_cache, cand.task_id, cand.worker_id
                )
                exact += computed
                out.append(((cand.task_id, cand.worker_id), cand.delta_min_r, dd))
        return out, exact, n_pruned

    def _score_round_numpy(
        self,
        problem: RdbscProblem,
        evaluator: IncrementalEvaluator,
        pairs: List[Tuple[int, int]],
        min_two: Tuple[float, float],
        dstd_cache: Dict[int, Dict[int, float]],
        bounds_cache: Dict[int, Dict[int, Tuple[float, float]]],
    ) -> Tuple[List[Tuple[Tuple[int, int], float, float]], int, int]:
        """The fastpath twin of the scalar scoring loop.

        ``Δmin_R`` for every candidate comes from the broadcast kernel —
        one direct call, or per-shard batches merged back into candidate
        order when a scorer is attached (:meth:`_round_dr_array`) — and
        the Lemma 4.3 sweep is the vectorised
        :func:`repro.fastpath.kernels.lemma43_prune_order`.  Surviving
        candidates not already covered by the dstd cache are scored as
        one block (:meth:`_block_dstd`); bound and exact-``ΔE[STD]``
        values reuse the same per-task caches as the scalar path, so
        both backends make identical selections.
        """
        from repro.engine.profile import phase
        from repro.fastpath.kernels import lemma43_prune_order

        n = len(pairs)
        with phase("delta_min_r"):
            dr = self._round_dr_array(problem, evaluator, pairs, min_two)

        if not self.use_pruning:
            with phase("delta_estd"):
                block = [
                    (task_id, worker_id)
                    for task_id, worker_id in pairs
                    if dstd_cache.get(task_id, {}).get(worker_id) is None
                ]
                if block:
                    self._block_dstd(problem, evaluator, dstd_cache, block)
            out = [
                ((task_id, worker_id), float(dr[k]), dstd_cache[task_id][worker_id])
                for k, (task_id, worker_id) in enumerate(pairs)
            ]
            return out, len(block), 0

        with phase("prune"):
            lb = np.empty(n)
            ub = np.empty(n)
            for k, (task_id, worker_id) in enumerate(pairs):
                cached_dd = dstd_cache.get(task_id, {}).get(worker_id)
                if cached_dd is not None:
                    lb[k] = ub[k] = cached_dd
                    continue
                per_task_bounds = bounds_cache.setdefault(task_id, {})
                known = per_task_bounds.get(worker_id)
                if known is None:
                    task = problem.tasks_by_id[task_id]
                    state = evaluator.state_of(task_id)
                    new_profile = problem.pair_profile(task_id, worker_id)
                    known = diversity_increase_bounds(
                        task, state.profiles, new_profile
                    )
                    per_task_bounds[worker_id] = known
                lb[k], ub[k] = known

            survivor_order = lemma43_prune_order(dr, lb, ub)
        n_pruned = n - int(survivor_order.shape[0])
        survivors = survivor_order.tolist()
        with phase("delta_estd"):
            # The dstd cache acts as the slab-level mask: only survivors
            # it does not already cover enter the batched kernel call.
            block = []
            for k in survivors:
                task_id, worker_id = pairs[k]
                if dstd_cache.get(task_id, {}).get(worker_id) is None:
                    block.append((task_id, worker_id))
            if block:
                self._block_dstd(problem, evaluator, dstd_cache, block)
        out = []
        for k in survivors:
            task_id, worker_id = pairs[k]
            out.append(
                ((task_id, worker_id), float(dr[k]), dstd_cache[task_id][worker_id])
            )
        return out, len(block), n_pruned
