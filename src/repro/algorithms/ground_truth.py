"""The paper's G-TRUTH reference solver (Section 8.1).

The real optimum of an NP-hard bi-objective problem is unavailable at
evaluation scale, so the paper compares everything against a high-budget
run: divide-and-conquer whose embedded sampling leaves draw **10x** the
sample count used by the plain D&C configuration.  This is a *suboptimal
ground truth* — treat it as the quality ceiling the approximations are
measured against, not as the true optimum.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import RngLike, Solver, SolverResult
from repro.algorithms.divide_conquer import DivideConquerSolver
from repro.algorithms.sample_size import SamplePlan
from repro.algorithms.sampling import SamplingSolver


class GroundTruthSolver(Solver):
    """D&C with a ``multiplier``-times sampling budget at the leaves."""

    name = "G-TRUTH"

    def __init__(
        self,
        gamma: int = 8,
        plan: Optional[SamplePlan] = None,
        multiplier: int = 10,
        max_group_size: int = 10,
    ) -> None:
        if multiplier < 1:
            raise ValueError("multiplier must be at least 1")
        base_plan = plan if plan is not None else SamplePlan()
        self.multiplier = multiplier
        self._solver = DivideConquerSolver(
            gamma=gamma,
            base_solver=SamplingSolver(base_plan.scaled(multiplier)),
            max_group_size=max_group_size,
        )

    def solve(self, problem, rng: RngLike = None) -> SolverResult:
        result = self._solver.solve(problem, rng)
        result.stats["sample_multiplier"] = float(self.multiplier)
        return result
