"""Pareto local search: polish any assignment by single-worker moves.

None of the paper's three algorithms revisits a placement once made —
GREEDY commits pair by pair, SAMPLING keeps a whole sample, D&C merges leaf
answers.  This extension adds the natural post-pass: repeatedly try moving
one worker to another of its valid tasks and keep the move when the new
objective value *Pareto-dominates* the old one (strictly better in one of
minimum reliability / total E[STD], no worse in the other).

By construction the result is never dominated by the input, so wrapping any
solver with :class:`LocalSearchSolver` is a safe quality knob — the
ablation benchmark quantifies what it buys on top of each base solver.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.algorithms.base import RngLike, Solver, SolverResult, make_rng
from repro.algorithms.greedy import GreedySolver
from repro.core.assignment import Assignment
from repro.core.objectives import ObjectiveValue, dominates, evaluate_assignment
from repro.core.problem import RdbscProblem


def improve_assignment(
    problem: RdbscProblem,
    assignment: Assignment,
    max_rounds: int = 5,
    rng: RngLike = None,
) -> Tuple[Assignment, ObjectiveValue, int]:
    """Hill-climb by single-worker relocations under Pareto dominance.

    Returns ``(improved assignment, its value, number of accepted moves)``.
    Each round visits every assigned worker in a random order and tries its
    alternative candidate tasks; a move is kept iff the full objective
    value dominates the current one.  Stops early on a move-free round.

    The loop re-evaluates the full objective per trial move — O(tasks)
    each — so this is a polish for small/medium instances, not an inner
    loop (the ablation bench reports the measured cost).
    """
    if max_rounds < 0:
        raise ValueError("max_rounds must be non-negative")
    generator = make_rng(rng)
    current = assignment.copy()
    current_value = evaluate_assignment(problem, current)
    accepted = 0

    for _ in range(max_rounds):
        moved_this_round = False
        worker_ids = [worker_id for _, worker_id in current.pairs()]
        generator.shuffle(worker_ids)  # type: ignore[arg-type]
        for worker_id in worker_ids:
            home = current.task_of(worker_id)
            if home is None:
                continue
            for target in problem.candidate_tasks(worker_id):
                if target == home:
                    continue
                current.unassign(worker_id)
                current.assign(target, worker_id)
                trial_value = evaluate_assignment(problem, current)
                if dominates(trial_value, current_value):
                    current_value = trial_value
                    home = target
                    accepted += 1
                    moved_this_round = True
                else:
                    current.unassign(worker_id)
                    current.assign(home, worker_id)
        if not moved_this_round:
            break
    return current, current_value, accepted


class LocalSearchSolver(Solver):
    """A base solver followed by Pareto local search.

    Args:
        base_solver: produces the starting assignment (GREEDY by default).
        max_rounds: local-search sweep budget.
    """

    name = "LOCAL"

    def __init__(
        self, base_solver: Optional[Solver] = None, max_rounds: int = 5
    ) -> None:
        self.base_solver = base_solver if base_solver is not None else GreedySolver()
        self.max_rounds = max_rounds
        self.name = f"{self.base_solver.name}+LS"

    def solve(self, problem: RdbscProblem, rng: RngLike = None) -> SolverResult:
        generator = make_rng(rng)
        base = self.base_solver.solve(problem, generator)
        improved, value, moves = improve_assignment(
            problem, base.assignment, self.max_rounds, generator
        )
        stats = dict(base.stats)
        stats["local_moves"] = float(moves)
        return SolverResult(assignment=improved, objective=value, stats=stats)
