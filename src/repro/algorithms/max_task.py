"""A GeoCrowd-style baseline: maximise the number of covered tasks.

The paper positions RDB-SC against prior spatial-crowdsourcing work
(Kazemi & Shahabi's GeoCrowd [20], Deng et al. [18]) whose objective is the
*count* of assigned/completed tasks, with no notion of answer quality.
This solver reproduces that behaviour as a comparison baseline: a maximum
bipartite matching between workers and tasks (each worker serving at most
one task, each task needing only one worker to count as covered), with any
leftover workers spread round-robin over their least-loaded candidate tasks.

The ablation benchmark uses it to show what the paper's intro argues: a
coverage-maximising assignment leaves substantial reliability/diversity on
the table relative to the RDB-SC solvers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.algorithms.base import RngLike, Solver, SolverResult, make_rng
from repro.core.assignment import Assignment
from repro.core.problem import RdbscProblem


def maximum_task_matching(problem: RdbscProblem) -> Dict[int, int]:
    """A maximum matching ``worker_id -> task_id`` via augmenting paths.

    Classic Hungarian-style augmentation on the validity graph: iterate
    workers (fewest candidates first — a strong heuristic order), and for
    each try to place it on a free task, recursively displacing earlier
    workers when necessary.
    """
    match_of_task: Dict[int, int] = {}

    def try_place(worker_id: int, banned: Set[int]) -> bool:
        for task_id in problem.candidate_tasks(worker_id):
            if task_id in banned:
                continue
            banned.add(task_id)
            holder = match_of_task.get(task_id)
            if holder is None or try_place(holder, banned):
                match_of_task[task_id] = worker_id
                return True
        return False

    workers = sorted(
        (w.worker_id for w in problem.workers if problem.degree(w.worker_id) > 0),
        key=problem.degree,
    )
    for worker_id in workers:
        try_place(worker_id, set())
    return {worker_id: task_id for task_id, worker_id in match_of_task.items()}


class MaxTaskSolver(Solver):
    """Cover as many tasks as possible; quality objectives are incidental.

    Args:
        assign_leftovers: when true (default), workers not used by the
            matching still get sent to their least-loaded candidate task —
            the paper's model assigns every willing worker somewhere.
    """

    name = "MAX-TASK"

    def __init__(self, assign_leftovers: bool = True) -> None:
        self.assign_leftovers = assign_leftovers

    def solve(self, problem: RdbscProblem, rng: RngLike = None) -> SolverResult:
        matching = maximum_task_matching(problem)
        assignment = Assignment()
        load: Dict[int, int] = {}
        for worker_id, task_id in sorted(matching.items()):
            assignment.assign(task_id, worker_id)
            load[task_id] = load.get(task_id, 0) + 1

        leftovers = 0
        if self.assign_leftovers:
            for worker in problem.workers:
                worker_id = worker.worker_id
                if worker_id in matching or problem.degree(worker_id) == 0:
                    continue
                candidates = problem.candidate_tasks(worker_id)
                target = min(candidates, key=lambda t: (load.get(t, 0), t))
                assignment.assign(target, worker_id)
                load[target] = load.get(target, 0) + 1
                leftovers += 1

        return self._finish(
            problem,
            assignment,
            {
                "tasks_covered": float(len(matching)),
                "leftover_workers": float(leftovers),
            },
        )
