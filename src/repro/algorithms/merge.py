"""Merging sub-solutions: ``SA_Merge`` (Figure 9, Section 6.3).

After solving the two halves of a partitioned problem, every *conflicting*
worker (duplicated into both halves) may hold an assignment on each side;
exactly one copy must survive.  Deleting a copy never perturbs
non-conflicting workers (Lemma 6.1), and copy deletions interact only
within groups of conflicting workers chained together by shared tasks
(Lemma 6.2): an *independent* conflicting worker (ICW) can be settled on
its own, while *dependent* conflicting workers (DCWs) are settled jointly
by enumerating the ``2^k`` keep-side combinations of their group.

Groups larger than ``max_group_size`` fall back to a per-worker greedy
settlement (same local objective, linear cost) so merge time stays bounded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.assignment import Assignment
from repro.core.diversity import WorkerProfile
from repro.core.expected import expected_std
from repro.core.problem import RdbscProblem
from repro.skyline.dominance import best_index_by_dominance
from repro.utils.disjoint_set import DisjointSet


@dataclass
class MergeStats:
    """Counters describing one merge.

    Attributes:
        conflicts: genuinely double-assigned workers.
        icw_count: singleton conflict groups (independent conflicting workers).
        dcw_groups: multi-worker groups settled jointly.
        enumerated_groups: groups settled by full 2^k enumeration.
        greedy_groups: oversized groups settled by the greedy fallback.
    """

    conflicts: int = 0
    icw_count: int = 0
    dcw_groups: int = 0
    enumerated_groups: int = 0
    greedy_groups: int = 0


def conflict_groups(
    assignment1: Assignment,
    assignment2: Assignment,
    conflicting_ids: Sequence[int],
) -> List[List[int]]:
    """Group genuinely conflicting workers by task-sharing dependence.

    A worker conflicts only if assigned on *both* sides.  Two conflicting
    workers are dependent when they share an assigned task in the same
    sub-solution; groups are the connected components of that relation.
    """
    genuine = [
        w
        for w in conflicting_ids
        if assignment1.task_of(w) is not None and assignment2.task_of(w) is not None
    ]
    dsu = DisjointSet(genuine)
    for assignment in (assignment1, assignment2):
        by_task: Dict[int, int] = {}
        for worker_id in genuine:
            task_id = assignment.task_of(worker_id)
            assert task_id is not None  # genuine conflicts are assigned
            if task_id in by_task:
                dsu.union(by_task[task_id], worker_id)
            else:
                by_task[task_id] = worker_id
    return dsu.groups()


class _LocalScorer:
    """Scores keep-side combinations on the tasks a conflict group touches."""

    def __init__(self, problem: RdbscProblem, base: Assignment) -> None:
        self.problem = problem
        self.base = base
        self._profile_cache: Dict[Tuple[int, int], WorkerProfile] = {}

    def profile(self, task_id: int, worker_id: int) -> WorkerProfile:
        key = (task_id, worker_id)
        cached = self._profile_cache.get(key)
        if cached is None:
            cached = self.problem.pair_profile(task_id, worker_id)
            self._profile_cache[key] = cached
        return cached

    def score(
        self,
        affected_tasks: Sequence[int],
        placements: Dict[int, List[int]],
    ) -> Tuple[float, float]:
        """``(min R, total E[STD])`` over the affected tasks.

        ``placements`` maps each affected task to the extra (conflicting)
        workers choosing it; base workers on those tasks always count.
        Tasks left empty are skipped in the minimum, matching the global
        objective's non-empty-task convention.
        """
        min_r = float("inf")
        total_std = 0.0
        workers_by_id = self.problem.workers_by_id
        for task_id in affected_tasks:
            worker_ids = sorted(self.base.workers_for(task_id)) + sorted(
                placements.get(task_id, [])
            )
            if not worker_ids:
                continue
            r_value = sum(
                workers_by_id[w].log_confidence_weight for w in worker_ids
            )
            profiles = [self.profile(task_id, w) for w in worker_ids]
            total_std += expected_std(self.problem.tasks_by_id[task_id], profiles)
            min_r = min(min_r, r_value)
        if min_r == float("inf"):
            min_r = 0.0
        return min_r, total_std


def _settle_group_enumerate(
    scorer: _LocalScorer,
    group: Sequence[int],
    side1_task: Dict[int, int],
    side2_task: Dict[int, int],
) -> Dict[int, int]:
    """Best keep-side per worker by enumerating all 2^k combinations."""
    affected = sorted(
        {side1_task[w] for w in group} | {side2_task[w] for w in group}
    )
    combos: List[Dict[int, int]] = []
    scores: List[Tuple[float, float]] = []
    for mask in range(1 << len(group)):
        placements: Dict[int, List[int]] = {}
        choice: Dict[int, int] = {}
        for bit, worker_id in enumerate(group):
            task_id = (
                side1_task[worker_id]
                if mask & (1 << bit)
                else side2_task[worker_id]
            )
            choice[worker_id] = task_id
            placements.setdefault(task_id, []).append(worker_id)
        combos.append(choice)
        scores.append(scorer.score(affected, placements))
    best = best_index_by_dominance(scores)
    return combos[best]


def _settle_group_greedy(
    scorer: _LocalScorer,
    group: Sequence[int],
    side1_task: Dict[int, int],
    side2_task: Dict[int, int],
) -> Dict[int, int]:
    """Linear-cost settlement for oversized groups.

    Workers are fixed one at a time: each compares keeping its side-1 copy
    against its side-2 copy with all previously fixed workers in place, and
    takes the locally dominant option.
    """
    affected = sorted(
        {side1_task[w] for w in group} | {side2_task[w] for w in group}
    )
    choice: Dict[int, int] = {}

    def placements_with(extra_worker: int, extra_task: int) -> Dict[int, List[int]]:
        placements: Dict[int, List[int]] = {}
        for worker_id, task_id in choice.items():
            placements.setdefault(task_id, []).append(worker_id)
        placements.setdefault(extra_task, []).append(extra_worker)
        return placements

    for worker_id in group:
        option1 = scorer.score(affected, placements_with(worker_id, side1_task[worker_id]))
        option2 = scorer.score(affected, placements_with(worker_id, side2_task[worker_id]))
        best = best_index_by_dominance([option1, option2])
        choice[worker_id] = (
            side1_task[worker_id] if best == 0 else side2_task[worker_id]
        )
    return choice


def sa_merge(
    problem: RdbscProblem,
    assignment1: Assignment,
    assignment2: Assignment,
    conflicting_ids: Sequence[int],
    max_group_size: int = 10,
) -> Tuple[Assignment, MergeStats]:
    """Merge two sub-solutions into one assignment (Figure 9).

    Args:
        problem: the *parent* problem (scoring needs all tasks/workers).
        assignment1 / assignment2: solutions of the two subproblems.
        conflicting_ids: workers duplicated into both subproblems.
        max_group_size: largest dependent group settled by exhaustive
            enumeration; larger groups use the greedy fallback.

    Returns:
        The merged assignment and merge statistics.
    """
    stats = MergeStats()
    genuine: Set[int] = {
        w
        for w in conflicting_ids
        if assignment1.task_of(w) is not None and assignment2.task_of(w) is not None
    }
    stats.conflicts = len(genuine)

    merged = Assignment()
    for assignment in (assignment1, assignment2):
        for task_id, worker_id in assignment.pairs():
            if worker_id not in genuine:
                merged.assign(task_id, worker_id)

    if not genuine:
        return merged, stats

    side1_task = {w: assignment1.task_of(w) for w in genuine}
    side2_task = {w: assignment2.task_of(w) for w in genuine}
    scorer = _LocalScorer(problem, merged)

    for group in conflict_groups(assignment1, assignment2, sorted(genuine)):
        if len(group) == 1:
            stats.icw_count += 1
        else:
            stats.dcw_groups += 1
        if len(group) <= max_group_size:
            stats.enumerated_groups += 1
            choice = _settle_group_enumerate(scorer, group, side1_task, side2_task)
        else:
            stats.greedy_groups += 1
            choice = _settle_group_greedy(scorer, group, side1_task, side2_task)
        for worker_id, task_id in sorted(choice.items()):
            merged.assign(task_id, worker_id)

    return merged, stats
