"""Bipartite-graph partitioning for divide-and-conquer (Figure 7).

``BG_Partition`` splits the task set into two geographically coherent,
balanced halves (the paper uses k-means; we run 2-means from scratch and
then balance at the median of the signed centroid-distance difference),
then routes each worker to the side(s) containing its valid tasks.  Workers
whose candidates straddle both halves are *conflicting*: they join both
subproblems and ``SA_Merge`` later deletes one copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

import numpy as np

from repro.algorithms.base import RngLike, make_rng
from repro.core.problem import RdbscProblem
from repro.geometry.points import Point


def two_means(
    points: Sequence[Point], rng: RngLike = None, n_iter: int = 25
) -> Tuple[Point, Point]:
    """Plain 2-means over points, returning the two centroids.

    Lloyd's algorithm with k-means++-style seeding (first centre uniform,
    second weighted by squared distance).  Built from scratch per the
    reproduction's no-substrate-left-behind rule.

    Raises:
        ValueError: if fewer than two points are supplied.
    """
    if len(points) < 2:
        raise ValueError("two_means() needs at least two points")
    generator = make_rng(rng)
    coords = np.array([(p.x, p.y) for p in points], dtype=float)

    first = int(generator.integers(0, len(points)))
    d2 = ((coords - coords[first]) ** 2).sum(axis=1)
    total = float(d2.sum())
    if total <= 0.0:
        # All points coincide; any pair of equal centroids will do.
        centre = Point(*coords[0])
        return centre, centre
    second = int(generator.choice(len(points), p=d2 / total))
    centres = coords[[first, second]].copy()

    for _ in range(n_iter):
        d0 = ((coords - centres[0]) ** 2).sum(axis=1)
        d1 = ((coords - centres[1]) ** 2).sum(axis=1)
        labels = d1 < d0
        new_centres = centres.copy()
        if (~labels).any():
            new_centres[0] = coords[~labels].mean(axis=0)
        if labels.any():
            new_centres[1] = coords[labels].mean(axis=0)
        if np.allclose(new_centres, centres):
            break
        centres = new_centres
    return Point(*centres[0]), Point(*centres[1])


def balanced_task_split(
    tasks_points: Sequence[Point], rng: RngLike = None
) -> Tuple[List[int], List[int]]:
    """Split point indices into two *even* geographically coherent halves.

    2-means provides the geometry; exact balance comes from sorting by the
    signed difference ``d(p, c1) - d(p, c2)`` and cutting at the median, so
    each half gets ``ceil(m/2)`` / ``floor(m/2)`` points.  This is the
    "partition tasks into two even sets with KMeans" step of Figure 7.
    """
    m = len(tasks_points)
    if m < 2:
        raise ValueError("cannot split fewer than two tasks")
    c1, c2 = two_means(tasks_points, rng)
    signed = [
        (p.distance_to(c1) - p.distance_to(c2), i)
        for i, p in enumerate(tasks_points)
    ]
    signed.sort()
    half = (m + 1) // 2
    left = sorted(i for _, i in signed[:half])
    right = sorted(i for _, i in signed[half:])
    return left, right


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of ``BG_Partition``.

    Attributes:
        task_ids_1 / task_ids_2: the two disjoint task halves.
        worker_ids_1 / worker_ids_2: worker sets per subproblem; conflicting
            workers appear in both.
        conflicting_worker_ids: workers whose valid tasks straddle halves.
    """

    task_ids_1: Tuple[int, ...]
    task_ids_2: Tuple[int, ...]
    worker_ids_1: Tuple[int, ...]
    worker_ids_2: Tuple[int, ...]
    conflicting_worker_ids: Tuple[int, ...]


def bg_partition(problem: RdbscProblem, rng: RngLike = None) -> PartitionResult:
    """Figure 7: split a problem into two balanced subproblems.

    Workers with no valid task are dropped (they cannot affect any
    assignment); workers valid only within one half are isolated there;
    the rest are duplicated into both halves as conflicting workers.
    """
    points = [t.location for t in problem.tasks]
    left_idx, right_idx = balanced_task_split(points, rng)
    t1: Set[int] = {problem.tasks[i].task_id for i in left_idx}
    t2: Set[int] = {problem.tasks[i].task_id for i in right_idx}

    w1: List[int] = []
    w2: List[int] = []
    conflicting: List[int] = []
    for worker in problem.workers:
        candidates = problem.candidate_tasks(worker.worker_id)
        if not candidates:
            continue
        in1 = any(task_id in t1 for task_id in candidates)
        in2 = any(task_id in t2 for task_id in candidates)
        if in1 and not in2:
            w1.append(worker.worker_id)
        elif in2 and not in1:
            w2.append(worker.worker_id)
        else:
            conflicting.append(worker.worker_id)
            w1.append(worker.worker_id)
            w2.append(worker.worker_id)

    return PartitionResult(
        task_ids_1=tuple(sorted(t1)),
        task_ids_2=tuple(sorted(t2)),
        worker_ids_1=tuple(w1),
        worker_ids_2=tuple(w2),
        conflicting_worker_ids=tuple(conflicting),
    )
