"""Bound-based candidate pruning for the greedy solver (Section 4.3).

Computing the exact diversity increase of a candidate (task, worker) pair
means re-running the expected-STD reduction on the task's enlarged worker
set — ``O(r^2)`` per pair.  The paper instead derives cheap lower/upper
bounds on the increase and discards pairs whose upper bound is beaten by
another pair's lower bound while also losing on the reliability increase
(Lemma 4.3).  Only the survivors pay for exact evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.diversity import WorkerProfile
from repro.core.expected import expected_std_bounds
from repro.core.task import SpatialTask


@dataclass(frozen=True)
class CandidateBounds:
    """A candidate pair with its reliability delta and diversity-delta bounds.

    Attributes:
        task_id / worker_id: the candidate pair.
        delta_min_r: exact increase of the minimum log-reliability
            (cheap to compute, so never bounded).
        lb_delta_std: lower bound on the pair's E[STD] increase.
        ub_delta_std: upper bound on the pair's E[STD] increase.
    """

    task_id: int
    worker_id: int
    delta_min_r: float
    lb_delta_std: float
    ub_delta_std: float


def diversity_increase_bounds(
    task: SpatialTask,
    current_profiles: Sequence[WorkerProfile],
    new_profile: WorkerProfile,
) -> Tuple[float, float]:
    """``(lb, ub)`` of the E[STD] increase from adding ``new_profile``.

    Following Section 4.3: with ``lb_b/ub_b`` the bounds before insertion
    and ``lb_a/ub_a`` after, the increase lies within
    ``[lb_a - ub_b, ub_a - lb_b]``.  The lower end is clamped at zero since
    the increase is non-negative by Lemma 4.2.
    """
    lb_before, ub_before = expected_std_bounds(task, current_profiles)
    lb_after, ub_after = expected_std_bounds(task, [*current_profiles, new_profile])
    lower = max(lb_after - ub_before, 0.0)
    upper = max(ub_after - lb_before, lower)
    return lower, upper


def prune_candidates(candidates: Sequence[CandidateBounds]) -> List[CandidateBounds]:
    """Apply Lemma 4.3: drop pairs provably inferior to some other pair.

    Pair ``c'`` is pruned when another pair ``c`` (``c != c'``) has
    ``delta_min_r(c) >= delta_min_r(c')`` *and*
    ``lb_delta_std(c) > ub_delta_std(c')``.

    Implemented as a sweep over candidates sorted by ``delta_min_r``
    descending.  Candidates tied on ``delta_min_r`` may prune each other
    (the lemma's reliability condition is non-strict), so each tie group
    tests its members against the running maximum lower bound *excluding
    the member itself*.
    """
    if not candidates:
        return []
    order = sorted(range(len(candidates)), key=lambda i: -candidates[i].delta_min_r)
    survivors: List[CandidateBounds] = []
    max_lb_prev = -math.inf  # max lb among strictly better delta_min_r
    idx = 0
    n = len(order)
    while idx < n:
        group_end = idx
        dr = candidates[order[idx]].delta_min_r
        while group_end < n and candidates[order[group_end]].delta_min_r == dr:
            group_end += 1
        group = [candidates[order[i]] for i in range(idx, group_end)]

        best_lb = -math.inf
        second_lb = -math.inf
        best_count = 0
        for c in group:
            if c.lb_delta_std > best_lb:
                second_lb = best_lb
                best_lb = c.lb_delta_std
                best_count = 1
            elif c.lb_delta_std == best_lb:
                best_count += 1
            elif c.lb_delta_std > second_lb:
                second_lb = c.lb_delta_std

        for c in group:
            if c.lb_delta_std == best_lb and best_count == 1:
                others_best = second_lb
            else:
                others_best = best_lb
            threat = max(max_lb_prev, others_best)
            if threat <= c.ub_delta_std:
                survivors.append(c)
        max_lb_prev = max(max_lb_prev, best_lb)
        idx = group_end
    return survivors
