"""Uniform-random assignment baseline.

Not one of the paper's named competitors, but the natural floor: each worker
independently picks one of its valid tasks uniformly.  A single draw of the
SAMPLING solver is exactly this, so RANDOM lower-bounds what K samples can
buy — useful in ablations and as a smoke-test baseline.
"""

from __future__ import annotations

from repro.algorithms.base import RngLike, Solver, SolverResult, make_rng
from repro.core.assignment import Assignment
from repro.core.problem import RdbscProblem


def draw_random_assignment(problem: RdbscProblem, rng: RngLike = None) -> Assignment:
    """One uniform draw from the assignment population of Section 5.1.

    Workers with no valid task stay unassigned, contributing no edge.
    """
    generator = make_rng(rng)
    assignment = Assignment()
    for worker in problem.workers:
        candidates = problem.candidate_tasks(worker.worker_id)
        if not candidates:
            continue
        choice = int(generator.integers(0, len(candidates)))
        assignment.assign(candidates[choice], worker.worker_id)
    return assignment


class RandomSolver(Solver):
    """Assign every worker to a uniformly random valid task."""

    name = "RANDOM"

    def solve(self, problem: RdbscProblem, rng: RngLike = None) -> SolverResult:
        assignment = draw_random_assignment(problem, rng)
        return self._finish(problem, assignment, {"workers_assigned": len(assignment)})
