"""Uniform-random assignment baseline.

Not one of the paper's named competitors, but the natural floor: each worker
independently picks one of its valid tasks uniformly.  A single draw of the
SAMPLING solver is exactly this, so RANDOM lower-bounds what K samples can
buy — useful in ablations and as a smoke-test baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import RngLike, Solver, SolverResult, make_rng
from repro.core.assignment import Assignment
from repro.core.problem import RdbscProblem


def draw_random_assignment(problem: RdbscProblem, rng: RngLike = None) -> Assignment:
    """One uniform draw from the assignment population of Section 5.1.

    Workers with no valid task stay unassigned, contributing no edge.
    """
    generator = make_rng(rng)
    assignment = Assignment()
    for worker in problem.workers:
        candidates = problem.candidate_tasks(worker.worker_id)
        if not candidates:
            continue
        choice = int(generator.integers(0, len(candidates)))
        assignment.assign(candidates[choice], worker.worker_id)
    return assignment


@dataclass(frozen=True)
class CandidateTable:
    """Flattened candidate-task lists of every positive-degree worker.

    The Section 5.1 population, in array form: worker ``k`` (in the
    problem's worker order, zero-degree workers dropped) owns the slice
    ``flat_tasks[offsets[k]:offsets[k] + degrees[k]]``.  Building the
    table once amortises the per-draw candidate lookups across the K
    samples of the SAMPLING solver.
    """

    worker_ids: np.ndarray
    degrees: np.ndarray
    offsets: np.ndarray
    flat_tasks: np.ndarray

    @classmethod
    def from_problem(cls, problem: RdbscProblem) -> "CandidateTable":
        worker_ids = []
        degrees = []
        flat: list = []
        for worker in problem.workers:
            candidates = problem.candidate_tasks(worker.worker_id)
            if not candidates:
                continue
            worker_ids.append(worker.worker_id)
            degrees.append(len(candidates))
            flat.extend(candidates)
        degrees_arr = np.asarray(degrees, dtype=np.int64)
        offsets = np.zeros(len(degrees), dtype=np.int64)
        if len(degrees) > 1:
            np.cumsum(degrees_arr[:-1], out=offsets[1:])
        return cls(
            worker_ids=np.asarray(worker_ids, dtype=np.int64),
            degrees=degrees_arr,
            offsets=offsets,
            flat_tasks=np.asarray(flat, dtype=np.int64),
        )


def draw_random_assignment_batch(
    table: CandidateTable, rng: RngLike = None
) -> Assignment:
    """Batched twin of :func:`draw_random_assignment`.

    One ``Generator.integers`` call with the degree vector replaces the
    per-worker loop.  The bounded-integer sampler consumes the underlying
    bit stream element by element exactly as the scalar calls do, so for
    the same generator state this draws the *same* assignment.
    """
    generator = make_rng(rng)
    assignment = Assignment()
    if table.worker_ids.shape[0] == 0:
        return assignment
    choices = generator.integers(0, table.degrees)
    picked = table.flat_tasks[table.offsets + choices]
    for task_id, worker_id in zip(picked.tolist(), table.worker_ids.tolist()):
        assignment.assign(task_id, worker_id)
    return assignment


class RandomSolver(Solver):
    """Assign every worker to a uniformly random valid task."""

    name = "RANDOM"

    def solve(self, problem: RdbscProblem, rng: RngLike = None) -> SolverResult:
        assignment = draw_random_assignment(problem, rng)
        return self._finish(problem, assignment, {"workers_assigned": len(assignment)})
