"""Sample-size determination for the sampling solver (Section 5.2).

The population is every full assignment (size ``N = prod_j deg(w_j)``).  The
paper asks for the smallest ``K`` such that, with probability greater than
``delta``, the best of ``K`` accepted samples ranks inside the top
``epsilon`` fraction of the population — formally the smallest ``K`` with
``F(K) = Pr{X <= (1 - epsilon) N} <= 1 - delta`` (Eqs. 13–16), searched
inside the Eq. 15 bracket.

``N`` overflows any machine float for realistic instances, so everything is
evaluated in log space: the binomial coefficient through ``lgamma`` when
``M = (1 - epsilon) N`` is representable, and through the Stirling
approximation ``ln C(M, K) ~= K (ln M - ln K + 1) - ln sqrt(2 pi K)``
otherwise.  The resulting ``K̂`` is small — the paper itself leans on that
("SAMPLING only takes several seconds due to small sample size") — so
:class:`SamplePlan` carries a ``min_samples`` floor giving callers a quality
knob, and G-TRUTH scales a plan by 10x (Section 8.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

#: Populations with log size above this use the asymptotic Stirling path
#: (``M`` itself stops being representable as a float near ``e^709``).
_FLOAT_LOG_LIMIT = 700.0


def _ln_binomial(ln_m: float, k: int) -> float:
    """``ln C(M, K)`` with ``M = e^{ln_m}``, robust to astronomical ``M``.

    The direct ``lgamma(M+1) - lgamma(M-K+1)`` difference cancels
    catastrophically once ``lgamma(M)`` exceeds float granularity (around
    ``M ~ 1e10``), so the falling-factorial sum ``sum ln(M - i)`` is used
    instead whenever ``M`` is representable; beyond that, Stirling on the
    ``K!`` factor with ``K << M``.
    """
    if k <= 0:
        return 0.0
    if ln_m <= _FLOAT_LOG_LIMIT:
        m = math.exp(ln_m)
        if k > m:
            return -math.inf  # C(M, K) = 0 when K exceeds M
        return sum(math.log(m - i) for i in range(k)) - math.lgamma(k + 1.0)
    return k * (ln_m - math.log(k) + 1.0) - 0.5 * math.log(2.0 * math.pi * k)


def log_rank_cdf(k: int, log_population: float, epsilon: float) -> float:
    """``ln F(K) = ln Pr{X <= (1 - epsilon) N}`` (Eq. 18 in log space).

    ``X`` is the population rank of the largest of ``K`` samples accepted
    with probability ``p = 1/N`` each.
    """
    if k <= 0:
        return 0.0  # no samples: the "largest sample" trivially ranks low
    ln_n = max(log_population, 0.0)
    ln_m = ln_n + math.log1p(-epsilon)
    if ln_m < 0.0:
        return -math.inf  # M < 1: any sample beats the threshold
    # p = 1/N; for huge N, N ln(1-p) -> -1 and ln(1-p) -> 0.
    if ln_n <= math.log(1e8):
        n = math.exp(ln_n)
        p = 1.0 / n
        n_ln_1mp = n * math.log1p(-p)
        ln_1mp = math.log1p(-p)
    else:
        n_ln_1mp = -1.0
        ln_1mp = 0.0
    ln_p = -ln_n
    return n_ln_1mp + k * (ln_p - ln_1mp) + _ln_binomial(ln_m, k)


def eq15_lower_bound(log_population: float, epsilon: float) -> float:
    """The Eq. 15 lower bracket ``(p M e - 1 + p) / (1 - p + e p)``.

    ``p M = (1 - epsilon)`` identically (``p = 1/N``, ``M = (1-eps) N``), so
    the bound stays finite no matter how large the population is.
    """
    p = math.exp(-max(log_population, 0.0))
    pm = 1.0 - epsilon
    return (pm * math.e - 1.0 + p) / (1.0 - p + math.e * p)


def required_sample_size(
    log_population: float,
    epsilon: float = 0.1,
    delta: float = 0.9,
    max_samples: int = 10_000,
) -> int:
    """Smallest ``K`` achieving the ``(epsilon, delta)`` rank bound.

    Binary search for the smallest ``K`` in the Eq. 15 bracket with
    ``F(K) <= 1 - delta``; clamped to ``max_samples`` when even that budget
    cannot achieve the bound (degenerate parameters).

    Raises:
        ValueError: for out-of-range ``epsilon`` / ``delta``.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if log_population <= 0.0:
        return 1  # a population of one assignment
    target = math.log1p(-delta)

    lo = max(1, int(math.ceil(eq15_lower_bound(log_population, epsilon))))
    hi = max_samples
    if log_rank_cdf(hi, log_population, epsilon) > target:
        return max_samples
    while log_rank_cdf(lo, log_population, epsilon) <= target and lo > 1:
        # The bracket start already satisfies the bound; F is monotone
        # decreasing past the bracket, so search downward for minimality.
        hi = lo
        lo = max(1, lo // 2)
        if lo == 1:
            break
    while lo < hi:
        mid = (lo + hi) // 2
        if log_rank_cdf(mid, log_population, epsilon) <= target:
            hi = mid
        else:
            lo = mid + 1
    return hi


@dataclass(frozen=True)
class SamplePlan:
    """How many random assignments the sampling solver should draw.

    Attributes:
        epsilon: rank-error tolerance of Section 5.2.
        delta: confidence level of the rank bound.
        min_samples: floor applied after the (epsilon, delta) computation —
            the practical quality knob, since K̂ is small for large
            populations.
        max_samples: hard budget cap.
    """

    epsilon: float = 0.1
    delta: float = 0.9
    min_samples: int = 50
    max_samples: int = 10_000

    def __post_init__(self) -> None:
        if self.min_samples < 1:
            raise ValueError("min_samples must be at least 1")
        if self.max_samples < self.min_samples:
            raise ValueError("max_samples must be >= min_samples")

    def resolve(self, log_population: float) -> int:
        """The sample count for a population of the given log size."""
        k_hat = required_sample_size(
            log_population, self.epsilon, self.delta, self.max_samples
        )
        return min(max(k_hat, self.min_samples), self.max_samples)

    def scaled(self, factor: int) -> "SamplePlan":
        """A plan with ``factor``-times the sampling budget (G-TRUTH's 10x)."""
        if factor < 1:
            raise ValueError("factor must be at least 1")
        return replace(
            self,
            min_samples=self.min_samples * factor,
            max_samples=max(self.max_samples, self.min_samples * factor),
        )
