"""The RDB-SC sampling algorithm (Figure 5, Section 5).

Each sample is a full assignment drawn from the Section 5.1 population:
every worker independently picks one of its valid tasks uniformly (one bold
edge per worker node in Figure 4).  ``K`` samples are scored on
``(min reliability, total E[STD])`` and the winner is the sample with the
best dominance rank — the skyline member dominating the most other samples,
exactly the paper's [22]-style tie-break for when no sample dominates all
others.

**Determinism contracts.**  How the ``K`` draws consume randomness is an
explicit, versioned contract (:data:`SUBSTREAM_V1` /
:data:`SHARED_STREAM_V0`):

* ``"substream-v1"`` (the default) draws **one** base seed from the
  caller's generator and then gives sample ``i`` its *own* child generator,
  spawned deterministically as ``SeedSequence(base, spawn_key=(i,))``.
  Sample ``i`` therefore depends only on ``(base, i)`` — never on how many
  samples preceded it, which process drew it, or how a pool chunked the
  batch — so the solved plan is bit-identical at every pool size (serial,
  and fanned out across any number of executor processes).  This is the
  contract the parallel solve subsystem (:mod:`repro.engine.parallel`)
  requires.
* ``"shared-v0"`` is the legacy behaviour: all samples consume one shared
  generator stream in draw order.  It is kept behind the flag for
  reproducing pre-substream results; it cannot be fanned out (sample ``i``
  depends on every draw before it).

With ``backend="numpy"`` each sample's per-worker choices are drawn in one
bounded-``integers`` call over a flattened candidate table instead of a
Python loop.  NumPy's ``Generator.integers`` consumes the bit stream
identically for an array of bounds and for element-wise scalar calls, so
the drawn samples — and therefore the returned assignment — are identical
to the python backend for the same seed and contract (pinned by the
differential test suite).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.base import RngLike, Solver, SolverResult, make_rng
from repro.algorithms.random_assign import (
    CandidateTable,
    draw_random_assignment,
    draw_random_assignment_batch,
)
from repro.algorithms.sample_size import SamplePlan
from repro.core.assignment import Assignment
from repro.core.objectives import evaluate_assignment
from repro.core.problem import RdbscProblem
from repro.skyline.dominance import best_index_by_dominance

#: The substream determinism contract (see the module docstring): one base
#: seed per solve, per-sample child generators, pool-size-independent plans.
SUBSTREAM_V1 = "substream-v1"

#: The legacy shared-stream contract: all samples consume one generator in
#: draw order.  Serial-only; kept for reproducing pre-substream results.
SHARED_STREAM_V0 = "shared-v0"

#: Contracts a :class:`SamplingSolver` accepts.
RNG_CONTRACTS = (SUBSTREAM_V1, SHARED_STREAM_V0)

#: Exclusive upper bound of the base-seed draw — the full non-negative
#: ``int64`` range, so one ``integers`` call advances the caller's stream
#: by exactly one bounded draw.
_BASE_SEED_BOUND = 2**63


def substream_base_seed(generator: np.random.Generator) -> int:
    """Draw the solve's base seed: one bounded integer off the stream.

    The single draw is the only randomness the substream contract consumes
    from the caller's generator, so a persistent generator still yields
    fresh (but reproducible) sample sets epoch after epoch, while warm and
    full solves starting from equal generator state derive the same base —
    and therefore bit-identical samples.
    """
    return int(generator.integers(0, _BASE_SEED_BOUND))


def substream_rng(base_seed: int, index: int) -> np.random.Generator:
    """Sample ``index``'s child generator under :data:`SUBSTREAM_V1`.

    ``SeedSequence(base, spawn_key=(i,))`` is exactly the ``i``-th child
    ``SeedSequence(base).spawn()`` would produce, without materialising the
    siblings — any process can mint any sample's generator independently.
    """
    return np.random.default_rng(
        np.random.SeedSequence(entropy=base_seed, spawn_key=(index,))
    )


class SamplePool:
    """Scores for a drawn sample batch, with on-demand materialisation.

    The fan-out path ships only per-sample *scores* back from the worker
    processes (a K x 2 float block) — whole assignments would dominate the
    wire — so the pool re-draws an assignment locally when a caller asks
    for one (cheap: one sample's draw, no scoring).  Serial paths pass the
    materialised samples instead and ``assignment`` is a list lookup.

    Args:
        scores: per-sample ``(min reliability, total E[STD])`` pairs, in
            sample-index order.
        samples: the materialised assignments, when the drawing path kept
            them.
        drawer: fallback ``index -> Assignment`` used when ``samples`` is
            not supplied.
    """

    def __init__(
        self,
        scores: List[Tuple[float, float]],
        samples: Optional[List[Assignment]] = None,
        drawer: Optional[Callable[[int], Assignment]] = None,
    ) -> None:
        if samples is None and drawer is None and scores:
            raise ValueError("a non-empty pool needs samples or a drawer")
        self.scores = scores
        self._samples = samples
        self._drawer = drawer

    def __len__(self) -> int:
        return len(self.scores)

    def assignment(self, index: int) -> Assignment:
        """The sample at ``index`` (materialised or re-drawn on demand)."""
        if self._samples is not None:
            return self._samples[index]
        assert self._drawer is not None
        return self._drawer(index)


class SamplingSolver(Solver):
    """Draw K random assignments; keep the dominance-rank winner.

    Args:
        plan: the (epsilon, delta) sample-size plan; ignored when
            ``num_samples`` pins the count explicitly.
        num_samples: fixed sample count override.
        backend: ``"python"`` draws each worker's choice in a loop;
            ``"numpy"`` draws a whole sample at once (same RNG stream,
            identical samples).
        rng_contract: :data:`SUBSTREAM_V1` (default — per-sample child
            generators, pool-size-independent plans) or
            :data:`SHARED_STREAM_V0` (legacy shared stream, serial only).
        executor: optional sample fan-out executor (duck-typed to
            :class:`repro.engine.parallel.ParallelSampleExecutor`); when
            set, substream sample batches are evaluated through it instead
            of the in-line loop.  Requires the substream contract.  The
            engine attaches this via its ``solve_executor`` knob.
    """

    name = "SAMPLING"

    def __init__(
        self,
        plan: Optional[SamplePlan] = None,
        num_samples: Optional[int] = None,
        backend: str = "python",
        rng_contract: str = SUBSTREAM_V1,
        executor=None,
    ) -> None:
        if backend not in ("python", "numpy"):
            raise ValueError(f"unknown backend {backend!r}")
        if rng_contract not in RNG_CONTRACTS:
            raise ValueError(
                f"unknown rng_contract {rng_contract!r}; expected one of "
                f"{RNG_CONTRACTS}"
            )
        self.plan = plan if plan is not None else SamplePlan()
        self.num_samples = num_samples
        self.backend = backend
        self.rng_contract = rng_contract
        self.executor = executor

    def resolve_sample_count(self, problem: RdbscProblem) -> int:
        """The number of samples this solver would draw for ``problem``."""
        if self.num_samples is not None:
            if self.num_samples < 1:
                raise ValueError("num_samples must be at least 1")
            return self.num_samples
        return self.plan.resolve(problem.log_population_size())

    def solve(self, problem: RdbscProblem, rng: RngLike = None) -> SolverResult:
        generator = make_rng(rng)
        k = self.resolve_sample_count(problem)
        pool = self.scored_sample_pool(problem, generator, k)
        if not len(pool):
            return self._finish(problem, Assignment(), {"samples": 0.0})
        best = best_index_by_dominance(pool.scores)
        return self._finish(problem, pool.assignment(best), {"samples": float(k)})

    # ------------------------------------------------------------------ #
    # Sample drawing
    # ------------------------------------------------------------------ #

    def _draw_one(self, problem: RdbscProblem, table, generator) -> Assignment:
        """One population draw on this solver's backend."""
        if table is not None:
            return draw_random_assignment_batch(table, generator)
        return draw_random_assignment(problem, generator)

    def scored_sample_pool(
        self,
        problem: RdbscProblem,
        generator: np.random.Generator,
        count: int,
    ) -> SamplePool:
        """Draw and score ``count`` samples under the active contract.

        The core of :meth:`solve`, shared with the warm-start wrapper
        (:class:`repro.solvers.incremental.WarmStartSamplingSolver`) so
        warm and full solves consume randomness identically: for equal
        generator state, sample ``i`` here is bit-identical to sample
        ``i`` of :meth:`solve` — on either backend, and (under the
        substream contract) at any executor pool size.
        """
        if self.rng_contract == SHARED_STREAM_V0:
            if self.executor is not None:
                raise ValueError(
                    "sample fan-out requires the substream contract; "
                    "rng_contract='shared-v0' solvers must run serially"
                )
            return self._shared_stream_pool(problem, generator, count)
        base_seed = substream_base_seed(generator)
        if self.executor is not None:
            scores = self.executor.scored_sample_chunks(problem, base_seed, count)
            table = (
                CandidateTable.from_problem(problem)
                if self.backend == "numpy"
                else None
            )
            return SamplePool(
                scores,
                drawer=lambda index: self._draw_one(
                    problem, table, substream_rng(base_seed, index)
                ),
            )
        table = (
            CandidateTable.from_problem(problem) if self.backend == "numpy" else None
        )
        samples: List[Assignment] = []
        scores: List[Tuple[float, float]] = []
        for index in range(count):
            assignment = self._draw_one(
                problem, table, substream_rng(base_seed, index)
            )
            value = evaluate_assignment(problem, assignment)
            samples.append(assignment)
            scores.append((value.min_reliability, value.total_std))
        return SamplePool(scores, samples=samples)

    def _shared_stream_pool(
        self,
        problem: RdbscProblem,
        generator: np.random.Generator,
        count: int,
    ) -> SamplePool:
        """The legacy draw loop: all samples off one shared stream."""
        table = (
            CandidateTable.from_problem(problem) if self.backend == "numpy" else None
        )
        samples: List[Assignment] = []
        scores: List[Tuple[float, float]] = []
        for _ in range(count):
            assignment = self._draw_one(problem, table, generator)
            value = evaluate_assignment(problem, assignment)
            samples.append(assignment)
            scores.append((value.min_reliability, value.total_std))
        return SamplePool(scores, samples=samples)

    def draw_scored_samples(
        self,
        problem: RdbscProblem,
        generator,
        count: int,
    ) -> Tuple[List[Assignment], List[Tuple[float, float]]]:
        """Materialised ``(samples, scores)`` view of a sample pool.

        Compatibility wrapper over :meth:`scored_sample_pool` for callers
        that want every assignment in hand (tests, analysis code); the
        solve paths use the pool directly so the fan-out path only
        materialises the winner.
        """
        pool = self.scored_sample_pool(problem, generator, count)
        return [pool.assignment(i) for i in range(len(pool))], list(pool.scores)
