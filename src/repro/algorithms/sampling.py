"""The RDB-SC sampling algorithm (Figure 5, Section 5).

Each sample is a full assignment drawn from the Section 5.1 population:
every worker independently picks one of its valid tasks uniformly (one bold
edge per worker node in Figure 4).  ``K`` samples are scored on
``(min reliability, total E[STD])`` and the winner is the sample with the
best dominance rank — the skyline member dominating the most other samples,
exactly the paper's [22]-style tie-break for when no sample dominates all
others.

With ``backend="numpy"`` each sample's per-worker choices are drawn in one
bounded-``integers`` call over a flattened candidate table instead of a
Python loop.  NumPy's ``Generator.integers`` consumes the bit stream
identically for an array of bounds and for element-wise scalar calls, so
the drawn samples — and therefore the returned assignment — are identical
to the python backend for the same seed (pinned by the differential test
suite).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.algorithms.base import RngLike, Solver, SolverResult, make_rng
from repro.algorithms.random_assign import (
    CandidateTable,
    draw_random_assignment,
    draw_random_assignment_batch,
)
from repro.algorithms.sample_size import SamplePlan
from repro.core.assignment import Assignment
from repro.core.objectives import evaluate_assignment
from repro.core.problem import RdbscProblem
from repro.skyline.dominance import best_index_by_dominance


class SamplingSolver(Solver):
    """Draw K random assignments; keep the dominance-rank winner.

    Args:
        plan: the (epsilon, delta) sample-size plan; ignored when
            ``num_samples`` pins the count explicitly.
        num_samples: fixed sample count override.
        backend: ``"python"`` draws each worker's choice in a loop;
            ``"numpy"`` draws a whole sample at once (same RNG stream,
            identical samples).
    """

    name = "SAMPLING"

    def __init__(
        self,
        plan: Optional[SamplePlan] = None,
        num_samples: Optional[int] = None,
        backend: str = "python",
    ) -> None:
        if backend not in ("python", "numpy"):
            raise ValueError(f"unknown backend {backend!r}")
        self.plan = plan if plan is not None else SamplePlan()
        self.num_samples = num_samples
        self.backend = backend

    def resolve_sample_count(self, problem: RdbscProblem) -> int:
        """The number of samples this solver would draw for ``problem``."""
        if self.num_samples is not None:
            if self.num_samples < 1:
                raise ValueError("num_samples must be at least 1")
            return self.num_samples
        return self.plan.resolve(problem.log_population_size())

    def solve(self, problem: RdbscProblem, rng: RngLike = None) -> SolverResult:
        generator = make_rng(rng)
        k = self.resolve_sample_count(problem)
        samples, scores = self.draw_scored_samples(problem, generator, k)
        if not samples:
            return self._finish(problem, Assignment(), {"samples": 0.0})
        best = best_index_by_dominance(scores)
        return self._finish(problem, samples[best], {"samples": float(k)})

    def draw_scored_samples(
        self,
        problem: RdbscProblem,
        generator,
        count: int,
    ) -> Tuple[List[Assignment], List[Tuple[float, float]]]:
        """Draw and score ``count`` samples from the Section 5.1 population.

        The drawing loop of :meth:`solve`, factored out so warm-start
        callers (:class:`repro.solvers.incremental.WarmStartSamplingSolver`)
        consume the *same* RNG stream as a full solve: for equal generator
        state, sample ``i`` here is bit-identical to sample ``i`` of
        :meth:`solve` on either backend.

        Returns:
            ``(samples, scores)`` where ``scores[i]`` is sample ``i``'s
            (min reliability, total E[STD]) pair.
        """
        table: Optional[CandidateTable] = (
            CandidateTable.from_problem(problem) if self.backend == "numpy" else None
        )
        samples: List[Assignment] = []
        scores: List[Tuple[float, float]] = []
        for _ in range(count):
            if table is not None:
                assignment = draw_random_assignment_batch(table, generator)
            else:
                assignment = draw_random_assignment(problem, generator)
            value = evaluate_assignment(problem, assignment)
            samples.append(assignment)
            scores.append((value.min_reliability, value.total_std))
        return samples, scores
