"""Answer post-processing: aggregation and angular-coverage analysis.

``aggregation``
    Section 2.3's answer aggregation: group the collected answers by
    spatial/temporal similarity and surface one representative per group,
    so a requester is not buried under near-duplicate photos.
``coverage``
    The quantitative substitute for the paper's 3-D-reconstruction showcase
    (Figures 19–20): how much of the viewing circle the collected answers
    cover, experimental assignment versus ground truth.
"""

from repro.analysis.aggregation import AnswerGroup, aggregate_answers
from repro.analysis.coverage import CoverageReport, angular_coverage, coverage_report

__all__ = [
    "AnswerGroup",
    "AnswerGroup",
    "CoverageReport",
    "aggregate_answers",
    "angular_coverage",
    "coverage_report",
]
