"""Answer aggregation (Section 2.3).

A well-covered task collects many answers; the requester wants a digest,
not a dump.  The paper proposes grouping answers "with similar
spatial/temporal diversities" and returning one representative per group.
We realise that with a small from-scratch k-means over the answers'
(angle, time) features — the angle embedded on the unit circle so that
359 degrees and 1 degree land in the same group — and the group medoid as
the representative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.algorithms.base import RngLike, make_rng
from repro.core.diversity import WorkerProfile
from repro.core.task import SpatialTask


@dataclass(frozen=True)
class AnswerGroup:
    """A cluster of similar answers.

    Attributes:
        members: the clustered answer profiles.
        representative: the medoid — the member closest to the group mean.
    """

    members: tuple
    representative: WorkerProfile


def _features(
    profiles: Sequence[WorkerProfile], task: SpatialTask, beta: float
) -> np.ndarray:
    """Embed answers as (beta cos, beta sin, (1-beta) time) feature rows."""
    duration = max(task.duration, 1e-12)
    rows = []
    for p in profiles:
        t = (min(max(p.arrival, task.start), task.end) - task.start) / duration
        rows.append(
            (
                beta * math.cos(p.angle),
                beta * math.sin(p.angle),
                (1.0 - beta) * 2.0 * t,  # spread times over a comparable scale
            )
        )
    return np.array(rows, dtype=float)


def aggregate_answers(
    task: SpatialTask,
    profiles: Sequence[WorkerProfile],
    n_groups: int,
    beta: Optional[float] = None,
    rng: RngLike = None,
    n_iter: int = 30,
) -> List[AnswerGroup]:
    """Cluster answers into at most ``n_groups`` and pick representatives.

    Groups respect the task's spatial/temporal weight: with ``beta = 1``
    only the approach angle matters, with ``beta = 0`` only the answer
    time.  Fewer answers than groups yields singleton groups.

    Raises:
        ValueError: for ``n_groups < 1``.
    """
    if n_groups < 1:
        raise ValueError("n_groups must be at least 1")
    if not profiles:
        return []
    b = task.beta if beta is None else beta
    k = min(n_groups, len(profiles))
    features = _features(profiles, task, b)
    generator = make_rng(rng)

    # k-means++ seeding.
    centres = [features[int(generator.integers(0, len(features)))]]
    while len(centres) < k:
        d2 = np.min(
            [((features - c) ** 2).sum(axis=1) for c in centres], axis=0
        )
        total = float(d2.sum())
        if total <= 0.0:
            centres.append(features[int(generator.integers(0, len(features)))])
            continue
        centres.append(features[int(generator.choice(len(features), p=d2 / total))])
    centroid = np.array(centres)

    labels = np.zeros(len(features), dtype=int)
    for _ in range(n_iter):
        distances = ((features[:, None, :] - centroid[None, :, :]) ** 2).sum(axis=2)
        new_labels = distances.argmin(axis=1)
        if (new_labels == labels).all():
            labels = new_labels
            break
        labels = new_labels
        for j in range(k):
            members = features[labels == j]
            if len(members):
                centroid[j] = members.mean(axis=0)

    groups: List[AnswerGroup] = []
    for j in range(k):
        member_idx = [i for i, label in enumerate(labels) if label == j]
        if not member_idx:
            continue
        member_features = features[member_idx]
        mean = member_features.mean(axis=0)
        medoid_local = int(((member_features - mean) ** 2).sum(axis=1).argmin())
        members = tuple(profiles[i] for i in member_idx)
        groups.append(AnswerGroup(members, members[medoid_local]))
    groups.sort(key=lambda g: g.representative.arrival)
    return groups
