"""Angular coverage: the quantitative core of the 3-D showcase (Figs. 19-20).

The paper's showcase reconstructs a 3-D model from crowdsourced photos and
compares it visually with a ground-truth model; the visual claim is that
the assigned workers photographed the landmark *from all around*.  Without
humans and VisualSFM, this module measures exactly that: the fraction of the
viewing circle within an angular tolerance of at least one photo, for the
experimental assignment versus an all-workers ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.geometry.angles import TWO_PI, normalize_angle


def _covered_segments(
    angles: Sequence[float], tolerance: float
) -> List[Tuple[float, float]]:
    """Disjoint ``(start, end)`` segments of ``[0, 2*pi]`` covered by the arcs.

    Each arc ``[a - tol, a + tol]`` is unrolled onto ``[0, 2*pi]`` — arcs
    crossing the origin split into two plain segments — after which a single
    sorted sweep merges overlaps.  No wrap-around special cases survive the
    unrolling, which is what makes the computation obviously monotone in the
    angle set.
    """
    if not angles or tolerance <= 0.0:
        return []
    if tolerance >= TWO_PI / 2.0:
        return [(0.0, TWO_PI)]
    segments: List[Tuple[float, float]] = []
    for a in angles:
        start = normalize_angle(a - tolerance)
        end = start + 2.0 * tolerance
        if end <= TWO_PI:
            segments.append((start, end))
        else:
            segments.append((start, TWO_PI))
            segments.append((0.0, end - TWO_PI))
    segments.sort()
    merged: List[Tuple[float, float]] = [segments[0]]
    for start, end in segments[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def angular_coverage(angles: Sequence[float], tolerance: float) -> float:
    """Fraction of the circle within ``tolerance`` of some photo angle.

    Raises:
        ValueError: for negative tolerance.
    """
    if tolerance < 0.0:
        raise ValueError("tolerance must be non-negative")
    covered = sum(end - start for start, end in _covered_segments(angles, tolerance))
    return min(covered / TWO_PI, 1.0)


@dataclass(frozen=True)
class CoverageReport:
    """Experimental vs ground-truth angular coverage.

    Attributes:
        experimental: coverage of the assignment under study.
        ground_truth: coverage had every candidate worker photographed.
        ratio: experimental / ground-truth (1.0 when ground truth is 0 —
            nothing was coverable, nothing was missed).
    """

    experimental: float
    ground_truth: float

    @property
    def ratio(self) -> float:
        if self.ground_truth <= 0.0:
            return 1.0
        return min(self.experimental / self.ground_truth, 1.0)


def coverage_report(
    experimental_angles: Sequence[float],
    ground_truth_angles: Sequence[float],
    tolerance: float,
) -> CoverageReport:
    """Compare an assignment's photo coverage against the full worker pool."""
    return CoverageReport(
        experimental=angular_coverage(experimental_angles, tolerance),
        ground_truth=angular_coverage(ground_truth_angles, tolerance),
    )
