"""Command-line interface: run solvers, figures and ablations from a shell.

Examples::

    python -m repro list
    python -m repro solve --tasks 40 --workers 80 --solver greedy --seed 7
    python -m repro figure fig13_tasks_uniform --seeds 1 2
    python -m repro index
    python -m repro platform --intervals 1 2 4 --minutes 30
    python -m repro coverage
    python -m repro ablation pruning
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, List, Optional, Sequence

from repro.algorithms import (
    DivideConquerSolver,
    GreedySolver,
    GroundTruthSolver,
    MaxTaskSolver,
    RandomSolver,
    SamplingSolver,
    Solver,
)
from repro.datagen import ExperimentConfig, average_degree, generate_problem
from repro.experiments import format_table, run_experiment
from repro.experiments import figures as figure_builders
from repro.experiments.ablations import (
    baseline_comparison,
    format_ablation,
    gamma_ablation,
    pruning_ablation,
    sampling_budget_ablation,
)
from repro.experiments.reporting import format_figure
from repro.experiments.spec import Experiment

#: Figure registry: CLI name -> zero-argument experiment builder.
FIGURES: Dict[str, Callable[[], Experiment]] = {
    "fig11_expiration_real": figure_builders.fig11_expiration_real,
    "fig12_reliability_real": figure_builders.fig12_reliability_real,
    "fig13_tasks_uniform": figure_builders.fig13_tasks_uniform,
    "fig14_workers_uniform": figure_builders.fig14_workers_uniform,
    "fig15_angles_uniform": figure_builders.fig15_angles_uniform,
    "fig22_beta_real": figure_builders.fig22_beta_real,
    "fig23_tasks_skewed": figure_builders.fig23_tasks_skewed,
    "fig24_workers_skewed": figure_builders.fig24_workers_skewed,
    "fig25_velocity_uniform": figure_builders.fig25_velocity_uniform,
    "fig26_velocity_skewed": figure_builders.fig26_velocity_skewed,
    "fig27_angles_skewed": figure_builders.fig27_angles_skewed,
}

ABLATIONS: Dict[str, Callable[[], object]] = {
    "pruning": lambda: format_ablation(
        "Ablation — GREEDY bound pruning (Lemma 4.3)",
        pruning_ablation(),
        extra_name="exact evals",
    ),
    "gamma": lambda: format_ablation(
        "Ablation — D&C leaf threshold gamma", gamma_ablation(), extra_name="leaf solves"
    ),
    "sampling": lambda: format_ablation(
        "Ablation — SAMPLING budget K", sampling_budget_ablation(), extra_name="samples"
    ),
    "baselines": lambda: format_ablation(
        "Ablation — RDB-SC vs MAX-TASK / RANDOM",
        baseline_comparison(),
        extra_name="tasks covered",
    ),
}


def make_solver(name: str) -> Solver:
    """A fresh solver instance by CLI name.

    Raises:
        ValueError: for unknown solver names.
    """
    factories: Dict[str, Callable[[], Solver]] = {
        "greedy": GreedySolver,
        "sampling": lambda: SamplingSolver(num_samples=60),
        "dc": lambda: DivideConquerSolver(
            gamma=8, base_solver=SamplingSolver(num_samples=60)
        ),
        "gtruth": lambda: GroundTruthSolver(gamma=8),
        "random": RandomSolver,
        "maxtask": MaxTaskSolver,
    }
    try:
        return factories[name]()
    except KeyError:
        raise ValueError(
            f"unknown solver {name!r}; choose from {sorted(factories)}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RDB-SC reproduction (Cheng et al., VLDB 2015)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list available figures and ablations")

    solve = commands.add_parser("solve", help="solve one synthetic instance")
    solve.add_argument("--tasks", type=int, default=40)
    solve.add_argument("--workers", type=int, default=80)
    solve.add_argument(
        "--distribution", choices=("uniform", "skewed"), default="uniform"
    )
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument(
        "--solver",
        default="all",
        help="greedy | sampling | dc | gtruth | random | maxtask | all",
    )

    figure = commands.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("name", choices=sorted(FIGURES))
    figure.add_argument("--seeds", type=int, nargs="+", default=[1])
    figure.add_argument(
        "--table", action="store_true", help="print the full grid, not the series"
    )

    commands.add_parser("index", help="run the Figure 17 index experiment")

    platform = commands.add_parser(
        "platform", help="run the Figure 18 platform experiment"
    )
    platform.add_argument("--intervals", type=float, nargs="+", default=[1, 2, 3, 4])
    platform.add_argument("--minutes", type=float, default=30.0)
    platform.add_argument("--seed", type=int, default=5)

    commands.add_parser("coverage", help="run the Figures 19-20 showcase")

    ablation = commands.add_parser("ablation", help="run one ablation study")
    ablation.add_argument("name", choices=sorted(ABLATIONS))

    return parser


def _cmd_list() -> List[str]:
    lines = ["figures:"]
    lines.extend(f"  {name}" for name in sorted(FIGURES))
    lines.append("harnesses: index (Fig 17), platform (Fig 18), coverage (Figs 19-20)")
    lines.append("ablations:")
    lines.extend(f"  {name}" for name in sorted(ABLATIONS))
    return lines


def _cmd_solve(args: argparse.Namespace) -> List[str]:
    config = ExperimentConfig.scaled_defaults(
        num_tasks=args.tasks, num_workers=args.workers
    ).with_updates(distribution=args.distribution)
    problem = generate_problem(config, args.seed)
    lines = [
        f"instance: {problem.num_tasks} tasks, {problem.num_workers} workers, "
        f"{problem.num_pairs} pairs (avg degree {average_degree(problem):.1f})"
    ]
    names = (
        ["greedy", "sampling", "dc", "gtruth"]
        if args.solver == "all"
        else [args.solver]
    )
    for name in names:
        solver = make_solver(name)
        result = solver.solve(problem, rng=args.seed)
        lines.append(
            f"{solver.name:>9}: min_rel={result.objective.min_reliability:.4f} "
            f"total_STD={result.objective.total_std:.4f}"
        )
    return lines


def _cmd_figure(args: argparse.Namespace) -> List[str]:
    experiment = FIGURES[args.name]()
    result = run_experiment(experiment, seeds=tuple(args.seeds))
    text = format_table(result) if args.table else format_figure(result)
    return text.splitlines()


def _cmd_index() -> List[str]:
    rows = figure_builders.run_index_experiment()
    lines = ["Figure 17 — RDB-SC-Grid index efficiency"]
    for row in rows:
        lines.append(
            f"n={row.n_workers:5d} eta={row.eta:.3f} build={row.construction_seconds:.3f}s "
            f"with={row.retrieval_with_index_seconds:.4f}s "
            f"without={row.retrieval_without_index_seconds:.4f}s pairs={row.pairs}"
        )
    return lines


def _cmd_platform(args: argparse.Namespace) -> List[str]:
    rows = figure_builders.run_platform_experiment(
        t_intervals=tuple(args.intervals), sim_minutes=args.minutes, seed=args.seed
    )
    lines = ["Figure 18 — platform incremental updates"]
    for row in rows:
        lines.append(
            f"t={row.t_interval:4.1f}min {row.solver:>9}: "
            f"min_rel={row.min_reliability:.4f} total_STD={row.total_std:.4f} "
            f"({row.seconds:.2f}s)"
        )
    return lines


def _cmd_coverage() -> List[str]:
    reports = figure_builders.run_coverage_showcase()
    lines = ["Figures 19-20 — landmark viewing-angle coverage"]
    for solver, report in reports.items():
        lines.append(
            f"{solver:>9}: experimental={report.experimental:.3f} "
            f"ground_truth={report.ground_truth:.3f} ratio={report.ratio:.3f}"
        )
    return lines


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        lines = _cmd_list()
    elif args.command == "solve":
        lines = _cmd_solve(args)
    elif args.command == "figure":
        lines = _cmd_figure(args)
    elif args.command == "index":
        lines = _cmd_index()
    elif args.command == "platform":
        lines = _cmd_platform(args)
    elif args.command == "coverage":
        lines = _cmd_coverage()
    elif args.command == "ablation":
        lines = str(ABLATIONS[args.name]()).splitlines()
    else:  # pragma: no cover - argparse enforces the choices
        return 2
    print("\n".join(lines))
    return 0
