"""The RDB-SC problem model: the paper's primary abstractions.

This package holds the paper's Definitions 1–4 and the quality measures:

``task`` / ``worker``
    Time-constrained spatial tasks and dynamically moving workers.
``validity``
    When a (task, worker) pair is assignable: the worker's direction cone
    admits the bearing to the task and the straight-line arrival time falls
    inside the task's valid period.
``problem``
    The bipartite task/worker instance with its valid-pair graph.
``assignment``
    A mutable assignment strategy (each worker does at most one task).
``reliability``
    Eq. 1 and its log-domain reduction Eq. 8.
``diversity``
    Deterministic spatial/temporal diversity, Eqs. 3–5.
``possible_worlds``
    Exact O(2^r) possible-world enumeration (Eq. 2) — the testing oracle.
``expected``
    The O(r^3) matrix reduction for expected diversity (Lemma 3.1).
``objectives``
    The bi-objective value (min reliability, total expected STD) and its
    Pareto dominance relation.
"""

from repro.core.assignment import Assignment
from repro.core.objectives import (
    ObjectiveValue,
    TaskState,
    dominates,
    evaluate_assignment,
)
from repro.core.problem import RdbscProblem, ValidPair
from repro.core.reliability import log_reliability, min_reliability, reliability
from repro.core.task import SpatialTask
from repro.core.validity import ValidityRule
from repro.core.worker import MovingWorker

__all__ = [
    "Assignment",
    "MovingWorker",
    "ObjectiveValue",
    "RdbscProblem",
    "SpatialTask",
    "TaskState",
    "ValidPair",
    "ValidityRule",
    "dominates",
    "evaluate_assignment",
    "log_reliability",
    "min_reliability",
    "reliability",
]
