"""Assignment strategies: which worker serves which task.

An assignment maps each worker to at most one task (a worker cannot be in
two places), while a task may receive any number of workers — that is the
whole point of the diversity objective.  The structure is intentionally a
thin bidirectional mapping; objective values live in
:mod:`repro.core.objectives`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple


class Assignment:
    """A mutable worker-to-task assignment.

    Supports O(1) assign/unassign/lookup in both directions and cheap
    copying; solvers mutate a working copy and return it.
    """

    def __init__(self) -> None:
        self._worker_to_task: Dict[int, int] = {}
        self._task_to_workers: Dict[int, Set[int]] = {}

    @classmethod
    def from_pairs(cls, pairs: "list[tuple[int, int]]") -> "Assignment":
        """Build an assignment from ``(task_id, worker_id)`` pairs.

        Raises:
            ValueError: if a worker appears twice.
        """
        assignment = cls()
        for task_id, worker_id in pairs:
            assignment.assign(task_id, worker_id)
        return assignment

    def assign(self, task_id: int, worker_id: int) -> None:
        """Assign ``worker_id`` to ``task_id``.

        Raises:
            ValueError: if the worker is already assigned (unassign first —
                silent reassignment hides solver bugs).
        """
        if worker_id in self._worker_to_task:
            raise ValueError(
                f"worker {worker_id} already assigned to task "
                f"{self._worker_to_task[worker_id]}"
            )
        self._worker_to_task[worker_id] = task_id
        self._task_to_workers.setdefault(task_id, set()).add(worker_id)

    def unassign(self, worker_id: int) -> int:
        """Remove the worker's assignment, returning the task it had.

        Raises:
            KeyError: if the worker is not assigned.
        """
        task_id = self._worker_to_task.pop(worker_id)
        workers = self._task_to_workers[task_id]
        workers.discard(worker_id)
        if not workers:
            del self._task_to_workers[task_id]
        return task_id

    def task_of(self, worker_id: int) -> Optional[int]:
        """The task a worker is assigned to, or ``None``."""
        return self._worker_to_task.get(worker_id)

    def workers_for(self, task_id: int) -> FrozenSet[int]:
        """The set of workers assigned to a task (possibly empty)."""
        return frozenset(self._task_to_workers.get(task_id, frozenset()))

    def is_assigned(self, worker_id: int) -> bool:
        return worker_id in self._worker_to_task

    def assigned_tasks(self) -> List[int]:
        """Ids of tasks with at least one worker."""
        return list(self._task_to_workers.keys())

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """Iterate over ``(task_id, worker_id)`` pairs."""
        for worker_id, task_id in self._worker_to_task.items():
            yield task_id, worker_id

    def copy(self) -> "Assignment":
        clone = Assignment()
        clone._worker_to_task = dict(self._worker_to_task)
        clone._task_to_workers = {
            task_id: set(workers)
            for task_id, workers in self._task_to_workers.items()
        }
        return clone

    def __len__(self) -> int:
        """Number of assigned workers."""
        return len(self._worker_to_task)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Assignment):
            return NotImplemented
        return self._worker_to_task == other._worker_to_task

    def __hash__(self) -> int:
        return hash(frozenset(self._worker_to_task.items()))

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Assignment({len(self)} workers on {len(self._task_to_workers)} tasks)"
