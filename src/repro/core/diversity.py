"""Deterministic spatial/temporal diversity (Eqs. 3-5).

Given a task and the workers that *actually* complete it, spatial diversity
is the entropy of the circular gaps between the rays from the task location
towards the workers' origins (Figure 2a), and temporal diversity is the
entropy of the sub-intervals into which the workers' arrival times cut the
valid period (Figure 2b).  The combined ``STD`` blends the two with the
requester weight ``beta``.

This module is deterministic: it scores a *concrete* set of completing
workers.  Expectation over which workers succeed lives in
:mod:`repro.core.possible_worlds` (exact) and :mod:`repro.core.expected`
(polynomial reduction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.task import SpatialTask
from repro.core.validity import ValidityRule
from repro.core.worker import MovingWorker
from repro.geometry.angles import TWO_PI, bearing, circular_gaps
from repro.geometry.entropy import entropy_of_partition


@dataclass(frozen=True)
class WorkerProfile:
    """A worker's view of one task: everything diversity math needs.

    Attributes:
        worker_id: the worker.
        angle: bearing from the task location towards the worker's origin —
            the direction the worker approaches (and photographs) from.
        arrival: effective arrival time at the task location.
        confidence: the worker's success probability ``p``.
    """

    worker_id: int
    angle: float
    arrival: float
    confidence: float


def approach_angle(task: SpatialTask, worker: MovingWorker) -> float:
    """Direction of the ray from the task towards the worker's origin.

    A worker standing exactly on the task gets angle ``0.0`` by convention
    (any single direction is as uninformative as any other).
    """
    if worker.location == task.location:
        return 0.0
    return bearing(task.location, worker.location)


def worker_profile(
    task: SpatialTask,
    worker: MovingWorker,
    rule: Optional[ValidityRule] = None,
) -> WorkerProfile:
    """Build the :class:`WorkerProfile` of ``worker`` w.r.t. ``task``.

    Raises:
        ValueError: if the pair is invalid under ``rule``.
    """
    rule = rule if rule is not None else ValidityRule()
    arrival = rule.effective_arrival(worker, task)
    if arrival is None:
        raise ValueError(
            f"worker {worker.worker_id} cannot validly serve task {task.task_id}"
        )
    return WorkerProfile(
        worker.worker_id, approach_angle(task, worker), arrival, worker.confidence
    )


def worker_profiles(
    task: SpatialTask,
    workers: Sequence[MovingWorker],
    rule: Optional[ValidityRule] = None,
) -> List[WorkerProfile]:
    """Profiles for every worker in a task's assigned set."""
    return [worker_profile(task, w, rule) for w in workers]


def spatial_diversity(angles: Sequence[float]) -> float:
    """``SD`` — entropy of the circular gaps between approach rays (Eq. 3).

    Zero for fewer than two rays: a lone photographer covers a single
    direction, however you spin it.
    """
    if len(angles) < 2:
        return 0.0
    return entropy_of_partition(circular_gaps(angles), TWO_PI)


def arrival_intervals(
    arrivals: Sequence[float], start: float, end: float
) -> List[float]:
    """Lengths of the ``r + 1`` sub-intervals cut by ``r`` arrival times.

    Arrival times are clamped into ``[start, end]`` (a validity-checked
    arrival can only sit outside through floating-point noise).
    """
    if end < start:
        raise ValueError(f"invalid period: end ({end}) precedes start ({start})")
    clamped = sorted(min(max(a, start), end) for a in arrivals)
    bounds = [start, *clamped, end]
    return [b - a for a, b in zip(bounds, bounds[1:])]


def temporal_diversity(
    arrivals: Sequence[float], start: float, end: float
) -> float:
    """``TD`` — entropy of the arrival-time partition of ``[start, end]``.

    Zero for no arrivals (one full-length interval) and for a zero-length
    valid period.  Note the asymmetry with ``SD``: a *single* arrival does
    create temporal diversity (two sub-intervals), which is why greedily
    adding a worker to an empty task improves TD but not SD — the paper's
    explanation of GREEDY's "bad start-up" behaviour.
    """
    if not arrivals:
        return 0.0
    duration = end - start
    if duration <= 0.0:
        return 0.0
    return entropy_of_partition(arrival_intervals(arrivals, start, end), duration)


def std(
    task: SpatialTask,
    profiles: Sequence[WorkerProfile],
    beta: Optional[float] = None,
) -> float:
    """Combined diversity ``STD = beta * SD + (1 - beta) * TD`` (Eq. 5).

    ``beta`` defaults to the task's own requester weight.
    """
    b = task.beta if beta is None else beta
    if not 0.0 <= b <= 1.0:
        raise ValueError(f"beta must be in [0, 1], got {b}")
    sd = spatial_diversity([p.angle for p in profiles])
    td = temporal_diversity([p.arrival for p in profiles], task.start, task.end)
    return b * sd + (1.0 - b) * td


def std_of_workers(
    task: SpatialTask,
    workers: Sequence[MovingWorker],
    rule: Optional[ValidityRule] = None,
    beta: Optional[float] = None,
) -> float:
    """Convenience wrapper: ``std`` straight from worker objects."""
    return std(task, worker_profiles(task, workers, rule), beta)
