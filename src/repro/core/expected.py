"""Polynomial-time expected diversity (Section 3.2, Lemma 3.1).

Direct expectation over possible worlds costs ``O(2^r)``.  The paper's
reduction observes that ``E[SD]`` and ``E[TD]`` decompose over *arcs* and
*merged intervals*: an arc between the rays of workers ``j`` and ``k``
contributes its entropy term exactly when ``j`` and ``k`` both succeed and
every worker whose ray lies strictly between them fails (Eq. 9); a merged
time interval between two arrival boundaries contributes when its end
boundaries survive and the interior boundaries vanish (Eq. 10).

The paper bounds the computation by ``O(r^3)``; sharing the interior-failure
products across a row brings it to ``O(r^2)`` here, which matters for the
GREEDY solver's inner loop.  The paper's Eq. 9/10 subscripts are loose about
boundary workers, so this module derives the marginalisation explicitly; the
test suite property-checks it against the exact enumeration of
:mod:`repro.core.possible_worlds` on random instances.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.core.diversity import WorkerProfile, std
from repro.core.task import SpatialTask
from repro.geometry.angles import TWO_PI, normalize_angle
from repro.geometry.entropy import entropy_term


def expected_spatial_diversity(
    angles: Sequence[float], confidences: Sequence[float]
) -> float:
    """``E[SD]`` over possible worlds in ``O(r^2)``.

    For every ordered pair ``(j, k)`` of distinct workers, the arc running
    counter-clockwise from ray ``j`` to ray ``k`` is an atomic angle of the
    realised world exactly when ``j`` and ``k`` succeed and all workers
    strictly between them (CCW) fail.  Worlds with fewer than two survivors
    have ``SD = 0`` and need no terms.
    """
    if len(angles) != len(confidences):
        raise ValueError("angles and confidences must align")
    r = len(angles)
    if r < 2:
        return 0.0
    order = sorted(range(r), key=lambda i: normalize_angle(angles[i]))
    thetas = [normalize_angle(angles[i]) for i in order]
    ps = [confidences[i] for i in order]
    gaps = [thetas[(x + 1) % r] - thetas[x] for x in range(r - 1)]
    gaps.append(TWO_PI - thetas[-1] + thetas[0])

    total = 0.0
    for j in range(r):
        arc = 0.0
        survivors_fail = ps[j]  # p_j * prod of (1 - p_x) for x between j and k
        if survivors_fail == 0.0:
            continue
        for step in range(1, r):
            k = (j + step) % r
            arc += gaps[(j + step - 1) % r]
            total += entropy_term(min(arc, TWO_PI) / TWO_PI) * survivors_fail * ps[k]
            survivors_fail *= 1.0 - ps[k]
            if survivors_fail == 0.0:
                break
    return total


def expected_temporal_diversity(
    arrivals: Sequence[float],
    confidences: Sequence[float],
    start: float,
    end: float,
) -> float:
    """``E[TD]`` over possible worlds in ``O(r^2)``.

    Arrival times define ``r + 2`` interval boundaries: the period edges
    (always present) plus one boundary per worker (present iff the worker
    succeeds).  The merged interval between boundaries ``j < k`` appears in
    the realised partition exactly when both end boundaries are present and
    all interior ones are absent.
    """
    if len(arrivals) != len(confidences):
        raise ValueError("arrivals and confidences must align")
    duration = end - start
    r = len(arrivals)
    if r == 0 or duration <= 0.0:
        return 0.0
    order = sorted(range(r), key=lambda i: arrivals[i])
    taus = [min(max(arrivals[i], start), end) for i in order]
    # Boundary i: 0 is `start`, 1..r are worker arrivals, r+1 is `end`.
    bounds = [start, *taus, end]
    present = [1.0, *(confidences[i] for i in order), 1.0]

    total = 0.0
    for j in range(r + 1):
        survivors_fail = present[j]
        if survivors_fail == 0.0:
            continue
        for k in range(j + 1, r + 2):
            length = bounds[k] - bounds[j]
            total += (
                entropy_term(min(length, duration) / duration)
                * survivors_fail
                * present[k]
            )
            survivors_fail *= 1.0 - present[k]
            if survivors_fail == 0.0:
                break
    return total


def expected_std(
    task: SpatialTask,
    profiles: Sequence[WorkerProfile],
    beta: Optional[float] = None,
) -> float:
    """``E[STD]`` (Eq. 6) via the matrix reduction (Lemma 3.1)."""
    b = task.beta if beta is None else beta
    if not 0.0 <= b <= 1.0:
        raise ValueError(f"beta must be in [0, 1], got {b}")
    angles = [p.angle for p in profiles]
    arrivals = [p.arrival for p in profiles]
    confidences = [p.confidence for p in profiles]
    sd = expected_spatial_diversity(angles, confidences) if b > 0.0 else 0.0
    td = (
        expected_temporal_diversity(arrivals, confidences, task.start, task.end)
        if b < 1.0
        else 0.0
    )
    return b * sd + (1.0 - b) * td


# --------------------------------------------------------------------- #
# Lower / upper bounds (Section 4.3)
# --------------------------------------------------------------------- #


def _success_tail_probabilities(confidences: Sequence[float]) -> Tuple[float, float]:
    """``(P[at least 1 succeeds], P[at least 2 succeed])``."""
    none = 1.0
    exactly_one = 0.0
    for p in confidences:
        exactly_one = exactly_one * (1.0 - p) + none * p
        none *= 1.0 - p
    at_least_one = 1.0 - none
    at_least_two = 1.0 - none - exactly_one
    return at_least_one, max(at_least_two, 0.0)


def _min_pairwise_spatial_diversity(angles: Sequence[float]) -> float:
    """Smallest SD over any 2-worker world — achieved by the tightest gap.

    ``h(a) + h(1 - a)`` is increasing on ``(0, 1/2]``, so the minimising
    pair is the adjacent pair with the smallest circular gap.  O(r) given
    sorted angles; O(r log r) here.
    """
    r = len(angles)
    if r < 2:
        return 0.0
    thetas = sorted(normalize_angle(a) for a in angles)
    gaps = [b - a for a, b in zip(thetas, thetas[1:])]
    gaps.append(TWO_PI - thetas[-1] + thetas[0])
    g = min(gaps)
    frac = g / TWO_PI
    return entropy_term(frac) + entropy_term(1.0 - frac)


def _min_single_temporal_diversity(
    arrivals: Sequence[float], start: float, end: float
) -> float:
    """Smallest TD over any 1-worker world.

    A lone arrival at ``tau`` splits the period into ``tau - start`` and
    ``end - tau``; the least diverse lone worker is the one closest to an
    edge of the period.
    """
    duration = end - start
    if not arrivals or duration <= 0.0:
        return 0.0
    best = math.inf
    for tau in arrivals:
        t = min(max(tau, start), end)
        left = (t - start) / duration
        value = entropy_term(left) + entropy_term(1.0 - left)
        best = min(best, value)
    return best


def expected_std_bounds(
    task: SpatialTask,
    profiles: Sequence[WorkerProfile],
    beta: Optional[float] = None,
) -> Tuple[float, float]:
    """Cheap ``(lower, upper)`` bounds on ``E[STD]`` (Section 4.3).

    Upper bound: by the monotonicity of Lemma 4.2, every possible world's
    STD is at most the deterministic STD of the full worker set, so
    ``E[STD] <= STD(W)``.

    Lower bound: worlds with at least two survivors have
    ``SD >= min-pair SD`` and worlds with at least one survivor have
    ``TD >= min-singleton TD`` (monotonicity again), giving
    ``E[STD] >= beta * P[>=2] * minSD + (1-beta) * P[>=1] * minTD``.
    """
    b = task.beta if beta is None else beta
    if not profiles:
        return 0.0, 0.0
    confidences = [p.confidence for p in profiles]
    at_least_one, at_least_two = _success_tail_probabilities(confidences)
    lower = b * at_least_two * _min_pairwise_spatial_diversity(
        [p.angle for p in profiles]
    ) + (1.0 - b) * at_least_one * _min_single_temporal_diversity(
        [p.arrival for p in profiles], task.start, task.end
    )
    upper = std(task, profiles, b)
    return lower, upper
