"""The bi-objective value of an assignment and incremental evaluation.

RDB-SC maximises two things at once (Definition 4): the minimum reliability
over (non-empty) tasks and the total expected spatial/temporal diversity.
:func:`evaluate_assignment` scores a finished assignment;
:class:`IncrementalEvaluator` maintains the score while a solver adds
workers one at a time, answering "what would assigning (t, w) change?" in
amortised ``O(r^2)`` for the touched task instead of re-scoring everything.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.assignment import Assignment
from repro.core.diversity import WorkerProfile
from repro.core.expected import expected_std
from repro.core.problem import RdbscProblem
from repro.core.reliability import log_to_reliability

#: Tolerance for dominance comparisons; keeps floating-point ties honest.
DOMINANCE_EPS = 1e-12


@dataclass(frozen=True, order=True)
class ObjectiveValue:
    """The pair the paper optimises: ``(min reliability, total E[STD])``.

    ``min_reliability`` is in probability units (Eq. 1), ``total_std`` is
    the Eq. 7 sum.  Ordering is lexicographic and exists only for stable
    sorting; preference between strategies is the *dominance* relation.
    """

    min_reliability: float
    total_std: float


def dominates(a: ObjectiveValue, b: ObjectiveValue) -> bool:
    """Pareto dominance: ``a`` is at least as good everywhere, better somewhere."""
    if a.min_reliability < b.min_reliability - DOMINANCE_EPS:
        return False
    if a.total_std < b.total_std - DOMINANCE_EPS:
        return False
    return (
        a.min_reliability > b.min_reliability + DOMINANCE_EPS
        or a.total_std > b.total_std + DOMINANCE_EPS
    )


@dataclass
class TaskState:
    """Cached per-task quantities used during incremental evaluation.

    Attributes:
        profiles: the assigned workers' views of this task.
        r_value: the log-domain reliability ``R = sum -ln(1 - p)``.
        estd: the task's current ``E[STD]``.
    """

    profiles: List[WorkerProfile] = field(default_factory=list)
    r_value: float = 0.0
    estd: float = 0.0


def evaluate_assignment(
    problem: RdbscProblem,
    assignment: Assignment,
    include_empty: bool = False,
) -> ObjectiveValue:
    """Score a complete assignment from scratch.

    Diversity uses the polynomial expected-STD reduction; reliability is the
    minimum over non-empty tasks unless ``include_empty`` (see
    :func:`repro.core.reliability.min_reliability` for why).
    """
    total_std = 0.0
    min_r = math.inf
    any_assigned = False
    for task in problem.tasks:
        worker_ids = assignment.workers_for(task.task_id)
        if not worker_ids:
            if include_empty:
                min_r = 0.0
            continue
        any_assigned = True
        workers = [problem.workers_by_id[w] for w in sorted(worker_ids)]
        profiles = [
            problem.pair_profile(task.task_id, w.worker_id) for w in workers
        ]
        total_std += expected_std(task, profiles)
        r_value = sum(w.log_confidence_weight for w in workers)
        min_r = min(min_r, r_value)
    if not any_assigned:
        return ObjectiveValue(0.0, 0.0)
    if math.isinf(min_r) and min_r > 0:
        min_rel = 1.0
    else:
        min_rel = log_to_reliability(max(min_r, 0.0))
    return ObjectiveValue(min_rel, total_std)


class IncrementalEvaluator:
    """Maintains objective values while workers are assigned one by one.

    Supports the GREEDY inner loop (Figure 3) and the D&C merge: querying
    the effect of a candidate assignment without mutating, then committing
    the chosen one.  Only additions are supported — the paper's solvers
    never retract an assignment mid-run (the merge step works on copies).
    """

    def __init__(self, problem: RdbscProblem) -> None:
        self.problem = problem
        self.assignment = Assignment()
        self._states: Dict[int, TaskState] = {}
        self.total_std = 0.0

    # -- queries ---------------------------------------------------------

    def state_of(self, task_id: int) -> TaskState:
        """Current cached state of a task (empty state if unassigned)."""
        return self._states.get(task_id, TaskState())

    def min_r(self) -> float:
        """Minimum log-domain reliability over non-empty tasks.

        ``inf`` when nothing is assigned yet (so that the first assignment
        registers as a drop to its own value rather than a rise from 0 —
        callers translating to probability units should map ``inf`` of an
        empty evaluator to 0).
        """
        if not self._states:
            return math.inf
        return min(state.r_value for state in self._states.values())

    def value(self) -> ObjectiveValue:
        """Current objective value in the paper's reporting units."""
        if not self._states:
            return ObjectiveValue(0.0, 0.0)
        return ObjectiveValue(log_to_reliability(self.min_r()), self.total_std)

    def min_two_r(self) -> Tuple[float, float]:
        """The smallest and second-smallest task ``R`` (inf-padded).

        With these two values, the effect of any single assignment on the
        minimum is an O(1) computation — the greedy inner loop depends on
        that (see :meth:`delta_min_r`).
        """
        best = math.inf
        second = math.inf
        for state in self._states.values():
            if state.r_value < best:
                second = best
                best = state.r_value
            elif state.r_value < second:
                second = state.r_value
        return best, second

    def delta_min_r(
        self, task_id: int, worker_id: int, min_two: Optional[Tuple[float, float]] = None
    ) -> float:
        """Change of the minimum log-reliability if the pair were assigned.

        O(1) given ``min_two`` (pass :meth:`min_two_r` when querying many
        pairs in one round).  Can be negative: opening a brand-new task
        whose lone reliability becomes the new minimum drags it down.
        """
        worker = self.problem.workers_by_id[worker_id]
        state = self._states.get(task_id)
        best, second = min_two if min_two is not None else self.min_two_r()
        if state is None:
            new_r = worker.log_confidence_weight
            new_min = min(best, new_r)
        else:
            new_r = state.r_value + worker.log_confidence_weight
            if state.r_value == best:
                new_min = min(new_r, second)
            else:
                new_min = best
        if math.isinf(best):
            # First assignment overall: treat the old minimum as 0 so the
            # delta rewards opening the first task.
            return new_min
        return new_min - best

    def delta_estd(self, task_id: int, worker_id: int) -> float:
        """Exact ``E[STD]`` increase of the touched task, no mutation.

        Always non-negative (Lemma 4.2); costs ``O(r^2)`` for the task's
        current worker count ``r``.
        """
        task = self.problem.tasks_by_id[task_id]
        state = self._states.get(task_id)
        old_estd = state.estd if state else 0.0
        profiles = list(state.profiles) if state else []
        profiles.append(self.problem.pair_profile(task_id, worker_id))
        return expected_std(task, profiles) - old_estd

    def delta_if_assigned(self, task_id: int, worker_id: int) -> Tuple[float, float]:
        """``(delta min-R, delta E[STD])`` of assigning the pair, no mutation.

        Convenience wrapper over :meth:`delta_min_r` and :meth:`delta_estd`.
        """
        return (
            self.delta_min_r(task_id, worker_id),
            self.delta_estd(task_id, worker_id),
        )

    # -- mutation --------------------------------------------------------

    def apply(self, task_id: int, worker_id: int) -> None:
        """Commit the assignment of ``worker_id`` to ``task_id``."""
        task = self.problem.tasks_by_id[task_id]
        worker = self.problem.workers_by_id[worker_id]
        state = self._states.setdefault(task_id, TaskState())
        state.profiles.append(self.problem.pair_profile(task_id, worker_id))
        state.r_value += worker.log_confidence_weight
        new_estd = expected_std(task, state.profiles)
        self.total_std += new_estd - state.estd
        state.estd = new_estd
        self.assignment.assign(task_id, worker_id)
