"""Exact possible-world semantics for task completion (Section 2.3).

Each subset of a task's assigned workers is a *possible world* — the workers
who actually succeed — with probability given by Eq. 2.  Expected diversity
is the probability-weighted average of the deterministic STD over all
``2^r`` worlds (Eq. 6).

This is exponential and exists as (a) the semantics reference and (b) the
oracle that the ``O(r^3)`` matrix reduction in :mod:`repro.core.expected` is
property-tested against.  Solvers never call it on large worker sets.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.diversity import (
    WorkerProfile,
    spatial_diversity,
    std,
    temporal_diversity,
)
from repro.core.task import SpatialTask

#: Worker sets above this size make 2^r enumeration unreasonable; the
#: functions below refuse rather than silently burning CPU.
MAX_EXACT_WORKERS = 22


def enumerate_worlds(
    confidences: Sequence[float],
) -> Iterator[Tuple[Tuple[int, ...], float]]:
    """Yield every ``(included_indices, probability)`` possible world.

    Probabilities follow Eq. 2: included workers succeed, the rest fail.
    The worlds' probabilities sum to one.

    Raises:
        ValueError: if there are more than ``MAX_EXACT_WORKERS`` workers.
    """
    r = len(confidences)
    if r > MAX_EXACT_WORKERS:
        raise ValueError(
            f"refusing exact enumeration of 2^{r} worlds; "
            f"use repro.core.expected for large sets"
        )
    indices = range(r)
    for size in range(r + 1):
        for world in combinations(indices, size):
            included = set(world)
            prob = 1.0
            for i in indices:
                prob *= confidences[i] if i in included else 1.0 - confidences[i]
            yield world, prob


def exact_expected_spatial_diversity(
    angles: Sequence[float], confidences: Sequence[float]
) -> float:
    """``E[SD]`` by direct enumeration of possible worlds."""
    if len(angles) != len(confidences):
        raise ValueError("angles and confidences must align")
    total = 0.0
    for world, prob in enumerate_worlds(confidences):
        total += prob * spatial_diversity([angles[i] for i in world])
    return total


def exact_expected_temporal_diversity(
    arrivals: Sequence[float],
    confidences: Sequence[float],
    start: float,
    end: float,
) -> float:
    """``E[TD]`` by direct enumeration of possible worlds."""
    if len(arrivals) != len(confidences):
        raise ValueError("arrivals and confidences must align")
    total = 0.0
    for world, prob in enumerate_worlds(confidences):
        total += prob * temporal_diversity([arrivals[i] for i in world], start, end)
    return total


def exact_expected_std(
    task: SpatialTask,
    profiles: Sequence[WorkerProfile],
    beta: Optional[float] = None,
) -> float:
    """``E[STD]`` (Eq. 6) by direct enumeration of possible worlds."""
    confidences = [p.confidence for p in profiles]
    total = 0.0
    for world, prob in enumerate_worlds(confidences):
        world_profiles: List[WorkerProfile] = [profiles[i] for i in world]
        total += prob * std(task, world_profiles, beta)
    return total
