"""The RDB-SC problem instance: tasks, workers and the valid-pair graph.

An instance is the bipartite graph of Figure 4: task nodes, worker nodes,
and an edge wherever a worker can validly serve a task.  All solvers consume
this object; the grid index (``repro.index``) can build the same edge set
faster, so :class:`RdbscProblem` accepts precomputed pairs.

The ``O(m * n)`` edge scan runs on one of two backends: ``"python"`` (the
scalar reference loop over :class:`repro.core.validity.ValidityRule`) or
``"numpy"`` (the broadcast kernel of :mod:`repro.fastpath`, which produces
a bit-identical edge set batch-wise).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.task import SpatialTask
from repro.core.validity import ValidityRule
from repro.core.worker import MovingWorker


@dataclass(frozen=True)
class ValidPair:
    """An edge of the assignment graph.

    Attributes:
        task_id: the task endpoint.
        worker_id: the worker endpoint.
        arrival: the worker's effective arrival time at the task location.
    """

    task_id: int
    worker_id: int
    arrival: float


class RdbscProblem:
    """A static RDB-SC instance (Definition 4's input).

    The valid-pair graph is computed once, eagerly, either by brute force
    over all (task, worker) combinations or from ``precomputed_pairs``
    supplied by an index.

    Args:
        tasks: the time-constrained spatial tasks.
        workers: the dynamically moving workers.
        validity: the pair-validity policy (strict arrival by default).
        precomputed_pairs: optional valid pairs from an external retriever
            (e.g. :class:`repro.index.grid.RdbscGrid`); skips the O(m*n)
            scan when given.
        backend: ``"python"`` (scalar scan) or ``"numpy"`` (batch kernel)
            for building the valid-pair graph; irrelevant when
            ``precomputed_pairs`` is supplied.  Both produce the same
            edges and arrivals.

    Raises:
        ValueError: on duplicate task or worker identifiers, or an unknown
            backend.
    """

    def __init__(
        self,
        tasks: Sequence[SpatialTask],
        workers: Sequence[MovingWorker],
        validity: Optional[ValidityRule] = None,
        precomputed_pairs: Optional[Iterable[ValidPair]] = None,
        backend: str = "python",
    ) -> None:
        if backend not in ("python", "numpy"):
            raise ValueError(f"unknown backend {backend!r}")
        self.backend = backend
        self.validity = validity if validity is not None else ValidityRule()
        self.tasks: Tuple[SpatialTask, ...] = tuple(tasks)
        self.workers: Tuple[MovingWorker, ...] = tuple(workers)
        self.tasks_by_id: Dict[int, SpatialTask] = {t.task_id: t for t in self.tasks}
        self.workers_by_id: Dict[int, MovingWorker] = {
            w.worker_id: w for w in self.workers
        }
        if len(self.tasks_by_id) != len(self.tasks):
            raise ValueError("duplicate task_id in tasks")
        if len(self.workers_by_id) != len(self.workers):
            raise ValueError("duplicate worker_id in workers")

        self._reset_graph()
        if precomputed_pairs is None:
            self.build_pairs(backend)
        else:
            self._ingest_pairs(precomputed_pairs)
            self._canonicalise_candidates()

    def _reset_graph(self) -> None:
        self._arrivals: Dict[Tuple[int, int], float] = {}
        self._profiles: Dict[Tuple[int, int], object] = {}
        self._worker_candidates: Dict[int, List[int]] = {
            w.worker_id: [] for w in self.workers
        }
        self._task_candidates: Dict[int, List[int]] = {
            t.task_id: [] for t in self.tasks
        }

    def _canonicalise_candidates(self) -> None:
        # Canonical candidate order: solver behaviour (especially seeded
        # sampling) must depend on the instance, not on whether its edges
        # arrived from a brute-force scan or a grid-index retrieval.
        for candidates in self._worker_candidates.values():
            candidates.sort()
        for candidates in self._task_candidates.values():
            candidates.sort()

    def build_pairs(self, backend: str = "python") -> None:
        """(Re)populate the valid-pair graph with the selected backend.

        Called by the constructor when no precomputed pairs are supplied;
        ``"python"`` is the scalar reference scan, ``"numpy"`` delegates
        to :func:`repro.fastpath.kernels.batch_valid_pairs` (identical
        edge set, batch-evaluated).  Any previously held edges and cached
        profiles are discarded first, so calling it again is idempotent.
        """
        if backend not in ("python", "numpy"):
            raise ValueError(f"unknown backend {backend!r}")
        self._reset_graph()
        if backend == "numpy":
            from repro.fastpath.kernels import batch_valid_pairs

            for pair in batch_valid_pairs(self.tasks, self.workers, self.validity):
                self._add_pair(pair.task_id, pair.worker_id, pair.arrival)
        else:
            for worker in self.workers:
                for task in self.tasks:
                    arrival = self.validity.effective_arrival(worker, task)
                    if arrival is not None:
                        self._add_pair(task.task_id, worker.worker_id, arrival)
        self._canonicalise_candidates()

    def _ingest_pairs(self, pairs: Iterable[ValidPair]) -> None:
        for pair in pairs:
            if pair.task_id not in self.tasks_by_id:
                raise ValueError(f"unknown task_id {pair.task_id} in precomputed pair")
            if pair.worker_id not in self.workers_by_id:
                raise ValueError(
                    f"unknown worker_id {pair.worker_id} in precomputed pair"
                )
            self._add_pair(pair.task_id, pair.worker_id, pair.arrival)

    def _add_pair(self, task_id: int, worker_id: int, arrival: float) -> None:
        self._arrivals[(task_id, worker_id)] = arrival
        self._worker_candidates[worker_id].append(task_id)
        self._task_candidates[task_id].append(worker_id)

    # ------------------------------------------------------------------ #
    # Graph accessors
    # ------------------------------------------------------------------ #

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def candidate_tasks(self, worker_id: int) -> List[int]:
        """Task ids the given worker can validly serve."""
        return list(self._worker_candidates[worker_id])

    def candidate_workers(self, task_id: int) -> List[int]:
        """Worker ids that can validly serve the given task."""
        return list(self._task_candidates[task_id])

    def degree(self, worker_id: int) -> int:
        """Number of valid tasks for a worker — ``deg(w_j)`` of Section 5."""
        return len(self._worker_candidates[worker_id])

    def is_valid_pair(self, task_id: int, worker_id: int) -> bool:
        """Whether the edge ``(task, worker)`` exists."""
        return (task_id, worker_id) in self._arrivals

    def arrival(self, task_id: int, worker_id: int) -> float:
        """Effective arrival time for a valid pair.

        Raises:
            KeyError: if the pair is not valid.
        """
        return self._arrivals[(task_id, worker_id)]

    def valid_pairs(self) -> List[ValidPair]:
        """All edges of the assignment graph."""
        return [
            ValidPair(task_id, worker_id, arrival)
            for (task_id, worker_id), arrival in self._arrivals.items()
        ]

    def pair_profile(self, task_id: int, worker_id: int):
        """The worker's diversity profile for a valid pair (memoised).

        Uses the *stored* pair arrival rather than re-deriving it from the
        validity rule, so instances built from precomputed pairs (grid
        index retrieval, the platform's pinned virtual workers) evaluate
        exactly as constructed.

        Raises:
            KeyError: if the pair is not a valid edge of this instance.
        """
        cached = self._profiles.get((task_id, worker_id))
        if cached is None:
            from repro.core.diversity import WorkerProfile, approach_angle

            arrival = self._arrivals[(task_id, worker_id)]
            worker = self.workers_by_id[worker_id]
            cached = WorkerProfile(
                worker_id,
                approach_angle(self.tasks_by_id[task_id], worker),
                arrival,
                worker.confidence,
            )
            self._profiles[(task_id, worker_id)] = cached
        return cached

    @property
    def num_pairs(self) -> int:
        return len(self._arrivals)

    # ------------------------------------------------------------------ #
    # Population statistics (Section 5.2)
    # ------------------------------------------------------------------ #

    def log_population_size(self) -> float:
        """``ln N`` where ``N = prod_j deg(w_j)`` over workers with edges.

        The sampling population is the set of all full assignments; its size
        overflows any float for realistic instances, so it is only ever
        handled in log space.  Workers with no valid task contribute no
        factor (they simply stay unassigned in every sample).
        """
        total = 0.0
        for worker in self.workers:
            deg = self.degree(worker.worker_id)
            if deg > 0:
                total += math.log(deg)
        return total

    def restricted_to(
        self,
        task_ids: Iterable[int],
        worker_ids: Iterable[int],
    ) -> "RdbscProblem":
        """Sub-instance induced by the given tasks and workers.

        Valid pairs are inherited (not recomputed), so restriction is cheap;
        the divide-and-conquer solver relies on this.
        """
        task_set = set(task_ids)
        worker_set = set(worker_ids)
        tasks = [t for t in self.tasks if t.task_id in task_set]
        workers = [w for w in self.workers if w.worker_id in worker_set]
        pairs = [
            ValidPair(task_id, worker_id, arrival)
            for (task_id, worker_id), arrival in self._arrivals.items()
            if task_id in task_set and worker_id in worker_set
        ]
        return RdbscProblem(
            tasks, workers, self.validity, precomputed_pairs=pairs, backend=self.backend
        )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"RdbscProblem(tasks={self.num_tasks}, workers={self.num_workers}, "
            f"pairs={self.num_pairs})"
        )
