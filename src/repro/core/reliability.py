"""Reliability of a task's worker set (Eq. 1) and its log reduction (Eq. 8).

``rel(t, W) = 1 - prod_{w in W} (1 - p_w)`` is the probability that at least
one assigned worker completes the task.  Maximising the minimum ``rel`` over
tasks is equivalent to maximising the minimum of
``R(t, W) = sum_{w in W} -ln(1 - p_w)`` — a number-partition-like objective
over the positive per-worker weights ``-ln(1 - p_w)`` (Section 3.1).
"""

from __future__ import annotations

import math
from typing import Iterable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.assignment import Assignment
    from repro.core.problem import RdbscProblem


def reliability(confidences: Iterable[float]) -> float:
    """``rel`` of a worker set given its members' confidences (Eq. 1).

    An empty set has reliability 0 — nobody is even trying.
    """
    failure = 1.0
    for p in confidences:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"confidence must be in [0, 1], got {p}")
        failure *= 1.0 - p
    return 1.0 - failure


def log_reliability(confidences: Iterable[float]) -> float:
    """The reduced objective ``R = sum -ln(1 - p)`` (Eq. 8).

    Monotone in ``rel``; additive in workers (Lemma 4.1), which is what the
    greedy solver exploits.  A worker with ``p == 1`` contributes ``inf``.
    """
    total = 0.0
    for p in confidences:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"confidence must be in [0, 1], got {p}")
        if p >= 1.0:
            return math.inf
        total += -math.log(1.0 - p)
    return total


def log_to_reliability(r_value: float) -> float:
    """Convert the log-domain value ``R`` back to ``rel = 1 - e^{-R}``."""
    if r_value < 0.0:
        raise ValueError(f"R must be non-negative, got {r_value}")
    if math.isinf(r_value):
        return 1.0
    return 1.0 - math.exp(-r_value)


def task_reliability(
    problem: "RdbscProblem", assignment: "Assignment", task_id: int
) -> float:
    """``rel`` of one task under an assignment."""
    workers = assignment.workers_for(task_id)
    return reliability(
        problem.workers_by_id[w].confidence for w in workers
    )


def min_reliability(
    problem: "RdbscProblem",
    assignment: "Assignment",
    include_empty: bool = False,
) -> float:
    """Minimum reliability across tasks — the paper's first objective.

    With ``m`` comparable to ``n`` some tasks necessarily receive no worker,
    so the paper's reported minima (≈ ``p_min``) are over *non-empty* tasks;
    that is the default here.  ``include_empty=True`` gives the strict
    reading (0 whenever any task is uncovered).

    An assignment touching no task at all yields 0 either way.
    """
    if include_empty:
        if not problem.tasks:
            return 0.0
        return min(
            task_reliability(problem, assignment, t.task_id) for t in problem.tasks
        )
    assigned = assignment.assigned_tasks()
    if not assigned:
        return 0.0
    return min(task_reliability(problem, assignment, t) for t in assigned)
