"""Time-constrained spatial tasks (Definition 1).

A task ``t_i`` is a location ``l_i`` plus a valid period ``[s_i, e_i]``:
"taking 2D photos of the Statue of Liberty together with fireworks" can only
be done at the statue and while the fireworks last.  Tasks arrive and expire
dynamically; the grid index (``repro.index``) handles that churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.points import Point


@dataclass(frozen=True)
class SpatialTask:
    """A spatial task pinned to a location and a valid time period.

    Attributes:
        task_id: unique identifier within a problem instance.
        location: where the task must be performed.
        start: beginning of the valid period (``s_i``).
        end: expiration of the valid period (``e_i``).
        beta: the requester's spatial/temporal balance weight for this task
            (Eq. 5); ``1.0`` cares only about spatial diversity, ``0.0``
            only about temporal diversity.
    """

    task_id: int
    location: Point
    start: float
    end: float
    beta: float = field(default=0.5)

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"task {self.task_id}: end ({self.end}) precedes start ({self.start})"
            )
        if not 0.0 <= self.beta <= 1.0:
            raise ValueError(f"task {self.task_id}: beta must be in [0, 1], got {self.beta}")

    @property
    def duration(self) -> float:
        """Length of the valid period ``e_i - s_i``."""
        return self.end - self.start

    def is_open_at(self, time: float) -> bool:
        """Whether ``time`` falls inside the valid period (inclusive)."""
        return self.start <= time <= self.end

    def contains_arrival(self, arrival: float) -> bool:
        """Whether an arrival at ``arrival`` satisfies the time constraint."""
        return self.is_open_at(arrival)

    def expired_at(self, now: float) -> bool:
        """Whether the valid period has closed strictly before ``now``.

        The deadline is inclusive, matching
        :meth:`repro.core.validity.ValidityRule.effective_arrival`: an
        arrival exactly at ``e_i`` is valid, so a task whose deadline equals
        ``now`` is *not* yet expired.  Every expiry decision — session
        pruning, engine epochs, the platform simulator's open-task filter —
        must route through this predicate so the boundary cannot drift.
        """
        return now > self.end

    def with_period(self, start: float, end: float) -> "SpatialTask":
        """A copy of this task with a different valid period."""
        return SpatialTask(self.task_id, self.location, start, end, self.beta)
