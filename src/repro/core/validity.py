"""Validity of a (task, worker) pair.

Definition 4's constraint (1): a worker may be assigned to a task only if
their arrival time at the task's location falls inside the task's valid
period — and, per Definition 2, only if travelling there does not deviate
from the worker's registered direction cone.

The paper's reading is strict: the *arrival* time must fall in ``[s, e]``.
``ValidityRule(allow_waiting=True)`` relaxes that for callers who want early
arrivals to wait at the location until the period opens (useful in the
platform simulator, where walking times are short compared to task windows).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.task import SpatialTask
from repro.core.worker import MovingWorker


@dataclass(frozen=True)
class ValidityRule:
    """Policy object deciding whether a worker may take a task.

    Attributes:
        allow_waiting: when true, a worker arriving before ``s`` is treated
            as starting the task at ``s`` instead of being rejected.
    """

    allow_waiting: bool = False

    def effective_arrival(
        self, worker: MovingWorker, task: SpatialTask
    ) -> Optional[float]:
        """The time the worker would begin the task, or ``None`` if invalid.

        Checks, in order: the direction cone admits the bearing to the task,
        and the (possibly waiting-adjusted) arrival time falls in the valid
        period.
        """
        if not worker.heads_towards(task.location):
            return None
        arrival = worker.arrival_time_at(task.location)
        if math.isinf(arrival):
            return None
        if self.allow_waiting and arrival < task.start:
            arrival = task.start
        if not task.contains_arrival(arrival):
            return None
        return arrival

    def is_valid(self, worker: MovingWorker, task: SpatialTask) -> bool:
        """Whether the pair ``(task, worker)`` is assignable."""
        return self.effective_arrival(worker, task) is not None
