"""Dynamically moving workers (Definition 2).

A worker ``w_j`` has a current position, a scalar velocity, a *direction
cone* ``[alpha-, alpha+]`` of moving directions they accept tasks in, and a
confidence ``p_j`` — the probability (inferred from history) that the worker
reliably completes an assigned task.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.geometry.angles import AngleInterval, bearing
from repro.geometry.motion import arrival_time
from repro.geometry.points import Point


@dataclass(frozen=True)
class MovingWorker:
    """A worker moving through the plane with a registered direction cone.

    Attributes:
        worker_id: unique identifier within a problem instance.
        location: the worker's current position ``l_j``.
        velocity: scalar speed ``v_j`` (distance units per time unit).
        cone: acceptable moving directions ``[alpha-_j, alpha+_j]``; use
            :meth:`repro.geometry.angles.AngleInterval.full_circle` for a
            worker with no destination ("free to move").
        confidence: probability ``p_j`` in ``[0, 1]`` of reliably finishing
            an assigned task.
        depart_time: clock time at which the worker starts moving; arrival
            times are measured from here.
    """

    worker_id: int
    location: Point
    velocity: float
    cone: AngleInterval = field(default_factory=AngleInterval.full_circle)
    confidence: float = 0.9
    depart_time: float = 0.0

    def __post_init__(self) -> None:
        if self.velocity < 0.0:
            raise ValueError(
                f"worker {self.worker_id}: velocity must be non-negative, got {self.velocity}"
            )
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(
                f"worker {self.worker_id}: confidence must be in [0, 1], "
                f"got {self.confidence}"
            )

    def heads_towards(self, target: Point) -> bool:
        """Whether the bearing to ``target`` lies inside the direction cone.

        A target at the worker's own location is always acceptable (no
        movement is needed, so no direction is violated).
        """
        if target == self.location:
            return True
        return self.cone.contains(bearing(self.location, target))

    def arrival_time_at(self, target: Point) -> float:
        """Clock time at which the worker reaches ``target``.

        Infinite for a stationary worker and a distinct target.
        """
        return arrival_time(self.location, target, self.velocity, self.depart_time)

    @property
    def log_confidence_weight(self) -> float:
        """The positive constant ``-ln(1 - p_j)`` of the Eq. 8 reduction.

        A fully reliable worker (``p_j == 1``) carries infinite weight.
        """
        if self.confidence >= 1.0:
            return math.inf
        return -math.log(1.0 - self.confidence)

    def moved_to(self, location: Point, depart_time: float) -> "MovingWorker":
        """A copy relocated to ``location`` at clock time ``depart_time``.

        The platform simulator uses this when a worker finishes a task and
        becomes available again somewhere else.
        """
        return MovingWorker(
            self.worker_id,
            location,
            self.velocity,
            self.cone,
            self.confidence,
            depart_time,
        )
