"""Workload generation: Table 2 synthetic data and real-data substitutes.

``config``
    :class:`ExperimentConfig` — the paper's Table 2 parameter space, with
    both the paper-scale defaults and laptop-scale presets.
``synthetic``
    UNIFORM / SKEWED task and worker generators (Section 8.1).
``beijing``
    A clustered synthetic stand-in for the POI-of-China Beijing extract.
``trajectories``
    Random-waypoint taxi traces standing in for T-Drive, and the paper's
    Section 8.2 recipe turning a trace into a moving worker.
"""

from repro.datagen.beijing import (
    BEIJING_BOX,
    generate_poi_field,
    generate_real_substitute_problem,
)
from repro.datagen.config import ExperimentConfig
from repro.datagen.synthetic import (
    average_degree,
    generate_arrays,
    generate_problem,
    generate_tasks,
    generate_workers,
)
from repro.datagen.trajectories import Trajectory, generate_trajectory, worker_from_trajectory

__all__ = [
    "BEIJING_BOX",
    "ExperimentConfig",
    "Trajectory",
    "average_degree",
    "generate_arrays",
    "generate_poi_field",
    "generate_problem",
    "generate_real_substitute_problem",
    "generate_tasks",
    "generate_trajectory",
    "generate_workers",
    "worker_from_trajectory",
]
