"""Synthetic substitute for the paper's real Beijing datasets.

The paper's "real data" experiments draw task locations from the POI-of-
China dataset restricted to Beijing (latitude 39.6–40.25, longitude
116.1–116.75; 74,013 POIs, uniformly sub-sampled to 10,000) and workers
from 9,748 T-Drive taxi trajectories.  Neither dataset ships here, so this
module builds the closest synthetic equivalents:

* a clustered POI field over the same box — a heavy city-centre cluster,
  several sub-centres and a uniform background, the canonical shape of an
  urban POI distribution — mapped onto the unit square, and
* random-waypoint taxi traces (:mod:`repro.datagen.trajectories`) converted
  to workers with the paper's own Section 8.2 recipe.

Everything downstream consumes only (location, period) tasks and (location,
speed, cone, confidence) workers, so the substitution preserves the code
paths the real data exercised: spatially skewed tasks, trajectory-derived
narrow cones, and heterogeneous speeds.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.algorithms.base import RngLike, make_rng
from repro.core.problem import RdbscProblem
from repro.core.task import SpatialTask
from repro.core.validity import ValidityRule
from repro.core.worker import MovingWorker
from repro.datagen.config import ExperimentConfig
from repro.datagen.synthetic import _sample_confidence
from repro.datagen.trajectories import generate_trajectory, worker_from_trajectory
from repro.geometry.points import Point

#: The paper's Beijing bounding box: (lat_min, lat_max, lon_min, lon_max).
BEIJING_BOX: Tuple[float, float, float, float] = (39.6, 40.25, 116.1, 116.75)

#: POI mixture: (centre_x, centre_y, sigma, weight) in unit-square coords.
#: One dominant downtown cluster, four sub-centres, ~15% uniform background.
_POI_CLUSTERS: Tuple[Tuple[float, float, float, float], ...] = (
    (0.50, 0.52, 0.10, 0.40),
    (0.35, 0.40, 0.06, 0.12),
    (0.65, 0.60, 0.06, 0.12),
    (0.42, 0.68, 0.05, 0.11),
    (0.62, 0.35, 0.05, 0.10),
)
_POI_BACKGROUND_WEIGHT = 0.15


def latlon_to_unit(lat: float, lon: float) -> Point:
    """Map a (lat, lon) inside ``BEIJING_BOX`` onto the unit square."""
    lat_min, lat_max, lon_min, lon_max = BEIJING_BOX
    return Point(
        (lon - lon_min) / (lon_max - lon_min),
        (lat - lat_min) / (lat_max - lat_min),
    )


def generate_poi_field(n_pois: int, rng: RngLike = None) -> List[Point]:
    """A clustered POI field in the unit square (Beijing substitute)."""
    generator = make_rng(rng)
    weights = np.array(
        [w for _, _, _, w in _POI_CLUSTERS] + [_POI_BACKGROUND_WEIGHT], dtype=float
    )
    weights = weights / weights.sum()
    component = generator.choice(len(weights), size=n_pois, p=weights)
    coords = np.empty((n_pois, 2), dtype=float)
    for k, (cx, cy, sigma, _) in enumerate(_POI_CLUSTERS):
        mask = component == k
        count = int(mask.sum())
        coords[mask] = generator.normal((cx, cy), sigma, size=(count, 2))
    background = component == len(_POI_CLUSTERS)
    coords[background] = generator.uniform(0.0, 1.0, size=(int(background.sum()), 2))
    coords = np.clip(coords, 0.0, 1.0)
    return [Point(float(x), float(y)) for x, y in coords]


def tasks_from_pois(
    pois: List[Point],
    num_tasks: int,
    config: ExperimentConfig,
    rng: RngLike = None,
) -> List[SpatialTask]:
    """Uniformly sub-sample POIs as task locations (Section 8.2).

    Periods and betas follow the synthetic Table 2 scheme, as the paper
    does for its real-data runs.
    """
    generator = make_rng(rng)
    if num_tasks > len(pois):
        raise ValueError(
            f"cannot sample {num_tasks} tasks from {len(pois)} POIs without replacement"
        )
    chosen = generator.choice(len(pois), size=num_tasks, replace=False)
    st_lo, st_hi = config.start_time_range
    rt_lo, rt_hi = config.expiration_range
    b_lo, b_hi = config.beta_range
    tasks: List[SpatialTask] = []
    for task_id, poi_index in enumerate(sorted(int(i) for i in chosen)):
        start = float(generator.uniform(st_lo, st_hi))
        duration = float(generator.uniform(rt_lo, rt_hi))
        tasks.append(
            SpatialTask(
                task_id=task_id,
                location=pois[poi_index],
                start=start,
                end=start + duration,
                beta=float(generator.uniform(b_lo, b_hi)),
            )
        )
    return tasks


def workers_from_trajectories(
    num_workers: int,
    config: ExperimentConfig,
    rng: RngLike = None,
) -> List[MovingWorker]:
    """Generate traces and convert each into a worker (Section 8.2)."""
    generator = make_rng(rng)
    p_lo, p_hi = config.reliability_range
    v_lo, v_hi = config.velocity_range
    workers: List[MovingWorker] = []
    for worker_id in range(num_workers):
        trace = generate_trajectory(generator, speed_range=(v_lo, v_hi))
        confidence = _sample_confidence(generator, p_lo, p_hi)
        workers.append(worker_from_trajectory(trace, worker_id, confidence))
    return workers


def generate_real_substitute_problem(
    config: ExperimentConfig,
    seed: RngLike = None,
    poi_pool_factor: int = 4,
    validity: Optional[ValidityRule] = None,
) -> RdbscProblem:
    """The "real data" instance: POI tasks + trajectory workers.

    ``poi_pool_factor`` controls how much larger the POI field is than the
    sampled task set, mirroring the paper's 74,013-POI pool behind its
    10,000 sampled tasks (factor ~7; default 4 keeps generation cheap).
    """
    generator = make_rng(seed)
    pois = generate_poi_field(config.num_tasks * max(poi_pool_factor, 1), generator)
    tasks = tasks_from_pois(pois, config.num_tasks, config, generator)
    workers = workers_from_trajectories(config.num_workers, config, generator)
    return RdbscProblem(tasks, workers, validity)
