"""Experiment configuration mirroring the paper's Table 2.

Table 2 (defaults in bold in the paper):

    range of expiration time rt     [0.25,0.5] [0.5,1] **[1,2]** [2,3]
    reliability [p_min, p_max]      (0.8,1) (0.85,1) **(0.9,1)** (0.95,1)
    number of tasks m               5K 8K **10K** 50K 100K
    number of workers n             5K 8K **10K** 15K 20K
    velocities [v-, v+]             [0.1,0.2] **[0.2,0.3]** [0.3,0.4] [0.4,0.5]
    range of moving angles          (0,pi/8] (0,pi/7] **(0,pi/6]** (0,pi/5] (0,pi/4]
    balancing weight beta           (0,0.2] (0.2,0.4] **(0.4,0.6]** (0.6,0.8] (0.8,1)

Time is measured in hours over a day (task start times ``st in [0, 24]``),
space is the unit square, and velocities are unit-square fractions per hour.

Benchmarks run laptop-scale instances (the paper used a 32-GB Xeon); the
:meth:`ExperimentConfig.scaled_defaults` preset keeps the paper's worker/task
ratio and tightens the start-time window so that the scaled-down bipartite
graph retains a paper-like average degree (a handful of valid tasks per
worker) instead of falling apart into isolated nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Tuple

#: Table 2 default ranges (paper bold entries).
PAPER_EXPIRATION_RANGE: Tuple[float, float] = (1.0, 2.0)
PAPER_RELIABILITY_RANGE: Tuple[float, float] = (0.9, 1.0)
PAPER_VELOCITY_RANGE: Tuple[float, float] = (0.2, 0.3)
PAPER_ANGLE_RANGE_MAX: float = math.pi / 6.0
PAPER_BETA_RANGE: Tuple[float, float] = (0.4, 0.6)


@dataclass(frozen=True)
class ExperimentConfig:
    """A full workload specification.

    Attributes:
        num_tasks / num_workers: ``m`` and ``n``.
        distribution: ``"uniform"`` or ``"skewed"`` placement of both tasks
            and workers (Section 8.1's UNIFORM / SKEWED).
        expiration_range: task expiry duration ``rt`` range (uniform).
        start_time_range: task start times ``st`` (uniform).
        reliability_range: ``[p_min, p_max]``; confidences are Gaussian with
            mean at the range midpoint and sigma 0.02, clipped to the range.
        velocity_range: worker speeds (uniform).
        angle_range_max: cone widths are uniform in ``(0, angle_range_max]``
            with a uniformly random orientation.
        beta_range: per-task requester weight range (uniform).
        checkin_range: worker departure times (uniform); the paper's
            "check-in times".  ``(0, 0)`` puts every worker at the same
            assignment instant, the snapshot a static instance models.
    """

    num_tasks: int = 10_000
    num_workers: int = 10_000
    distribution: str = "uniform"
    expiration_range: Tuple[float, float] = PAPER_EXPIRATION_RANGE
    start_time_range: Tuple[float, float] = (0.0, 24.0)
    reliability_range: Tuple[float, float] = PAPER_RELIABILITY_RANGE
    velocity_range: Tuple[float, float] = PAPER_VELOCITY_RANGE
    angle_range_max: float = PAPER_ANGLE_RANGE_MAX
    beta_range: Tuple[float, float] = PAPER_BETA_RANGE
    checkin_range: Tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        if self.num_tasks < 0 or self.num_workers < 0:
            raise ValueError("task and worker counts must be non-negative")
        if self.distribution not in ("uniform", "skewed"):
            raise ValueError(
                f"distribution must be 'uniform' or 'skewed', got {self.distribution!r}"
            )
        for name in (
            "expiration_range",
            "start_time_range",
            "reliability_range",
            "velocity_range",
            "beta_range",
            "checkin_range",
        ):
            lo, hi = getattr(self, name)
            if hi < lo:
                raise ValueError(f"{name}: upper bound {hi} below lower bound {lo}")
        p_lo, p_hi = self.reliability_range
        if not (0.0 <= p_lo <= p_hi <= 1.0):
            raise ValueError("reliability_range must lie within [0, 1]")
        b_lo, b_hi = self.beta_range
        if not (0.0 <= b_lo <= b_hi <= 1.0):
            raise ValueError("beta_range must lie within [0, 1]")
        if not 0.0 < self.angle_range_max <= 2.0 * math.pi:
            raise ValueError("angle_range_max must be in (0, 2*pi]")

    # ------------------------------------------------------------------ #
    # Presets
    # ------------------------------------------------------------------ #

    @classmethod
    def paper_defaults(cls) -> "ExperimentConfig":
        """The exact Table 2 default configuration (m = n = 10K)."""
        return cls()

    @classmethod
    def scaled_defaults(
        cls, num_tasks: int = 60, num_workers: int = 120
    ) -> "ExperimentConfig":
        """Laptop-scale preset preserving the paper's graph density.

        Shrinking ``m`` from 10K to tens would starve workers of valid
        tasks if start times stayed spread over 24 hours and cones stayed
        at pi/6; the preset narrows the start window and widens cones so
        the average worker again sees a handful of candidate tasks.
        """
        return cls(
            num_tasks=num_tasks,
            num_workers=num_workers,
            start_time_range=(0.0, 2.0),
            angle_range_max=math.pi,
            velocity_range=(0.3, 0.5),
        )

    def with_updates(self, **changes) -> "ExperimentConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)
