"""Timed workload streams for the dynamic RDB-SC scenario.

The paper's setting is explicitly dynamic: "the newly created tasks keep on
arriving", "workers can freely register or leave".  This module generates
that churn as an *event stream* — Poisson task arrivals, Poisson worker
arrivals, exponentially distributed worker dwell times — and replays it
against a :class:`repro.dynamic.CrowdsourcingSession` with periodic
re-assignment, the library-level analogue of the platform experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.algorithms.base import RngLike, make_rng
from repro.core.task import SpatialTask
from repro.core.worker import MovingWorker
from repro.datagen.config import ExperimentConfig
from repro.datagen.synthetic import generate_tasks, generate_workers

#: Event kinds.
TASK_ARRIVAL = "task_arrival"
WORKER_ARRIVAL = "worker_arrival"
WORKER_DEPARTURE = "worker_departure"


@dataclass(frozen=True)
class StreamEvent:
    """One timed change to the system's population.

    Exactly one of ``task`` / ``worker`` / ``worker_id`` is set, matching
    ``kind``.
    """

    time: float
    kind: str
    task: Optional[SpatialTask] = None
    worker: Optional[MovingWorker] = None
    worker_id: Optional[int] = None


@dataclass(frozen=True)
class StreamConfig:
    """Parameters of the churn process.

    Attributes:
        horizon: stream length in hours.
        task_rate: Poisson task arrivals per hour.
        worker_rate: Poisson worker arrivals per hour.
        initial_workers: workers present at time zero.
        mean_dwell: mean worker stay (exponential), in hours.
        base: attribute distributions (locations, speeds, cones, windows)
            for the arriving entities.
    """

    horizon: float = 8.0
    task_rate: float = 6.0
    worker_rate: float = 3.0
    initial_workers: int = 10
    mean_dwell: float = 3.0
    base: ExperimentConfig = field(
        default_factory=lambda: ExperimentConfig.scaled_defaults(
            num_tasks=1, num_workers=1
        )
    )

    def __post_init__(self) -> None:
        if self.horizon <= 0.0:
            raise ValueError("horizon must be positive")
        if self.task_rate < 0.0 or self.worker_rate < 0.0:
            raise ValueError("rates must be non-negative")
        if self.initial_workers < 0:
            raise ValueError("initial_workers must be non-negative")
        if self.mean_dwell <= 0.0:
            raise ValueError("mean_dwell must be positive")


def _poisson_times(rate: float, horizon: float, rng) -> List[float]:
    """Arrival instants of a homogeneous Poisson process on [0, horizon)."""
    if rate <= 0.0:
        return []
    times: List[float] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate))
        if t >= horizon:
            return times
        times.append(t)


def generate_event_stream(
    config: Optional[StreamConfig] = None, rng: RngLike = None
) -> List[StreamEvent]:
    """A full, time-sorted churn stream.

    Task windows open at their arrival instant (a requester posts a task
    that is live immediately); worker cones/speeds/confidences follow the
    base config; each worker departs after an exponential dwell unless the
    horizon ends first.  Ids are unique across the stream.
    """
    config = config if config is not None else StreamConfig()
    generator = make_rng(rng)
    events: List[StreamEvent] = []

    task_times = _poisson_times(config.task_rate, config.horizon, generator)
    if task_times:
        task_config = config.base.with_updates(num_tasks=len(task_times))
        tasks = generate_tasks(task_config, generator)
        for arrival, template in zip(task_times, tasks):
            duration = template.end - template.start
            events.append(
                StreamEvent(
                    time=arrival,
                    kind=TASK_ARRIVAL,
                    task=template.with_period(arrival, arrival + duration),
                )
            )

    worker_arrivals = [0.0] * config.initial_workers
    worker_arrivals += _poisson_times(config.worker_rate, config.horizon, generator)
    if worker_arrivals:
        worker_config = config.base.with_updates(num_workers=len(worker_arrivals))
        workers = generate_workers(worker_config, generator)
        for arrival, template in zip(worker_arrivals, workers):
            worker = template.moved_to(template.location, arrival)
            events.append(
                StreamEvent(time=arrival, kind=WORKER_ARRIVAL, worker=worker)
            )
            departure = arrival + float(generator.exponential(config.mean_dwell))
            if departure < config.horizon:
                events.append(
                    StreamEvent(
                        time=departure,
                        kind=WORKER_DEPARTURE,
                        worker_id=worker.worker_id,
                    )
                )

    events.sort(key=lambda e: (e.time, e.kind))
    return events


def replay_stream(
    session,
    events: Sequence[StreamEvent],
    reassign_every: float = 1.0,
    horizon: Optional[float] = None,
):
    """Drive a :class:`repro.dynamic.CrowdsourcingSession` with a stream.

    Processes events in time order and calls ``session.reassign`` at every
    ``reassign_every`` boundary; returns the list of reassignment outcomes.

    Raises:
        ValueError: for a non-positive period.
    """
    if reassign_every <= 0.0:
        raise ValueError("reassign_every must be positive")
    end = horizon if horizon is not None else (
        max((e.time for e in events), default=0.0) + reassign_every
    )
    outcomes = []
    index = 0
    now = 0.0
    while now <= end + 1e-9:
        while index < len(events) and events[index].time <= now:
            event = events[index]
            index += 1
            if event.kind == TASK_ARRIVAL:
                session.add_task(event.task)
            elif event.kind == WORKER_ARRIVAL:
                session.add_worker(event.worker)
            elif event.kind == WORKER_DEPARTURE:
                # The worker may have been removed already (defensive).
                try:
                    session.remove_worker(event.worker_id)
                except KeyError:
                    pass
            else:  # pragma: no cover - stream generator emits known kinds
                raise ValueError(f"unknown event kind {event.kind!r}")
        outcomes.append(session.reassign(now=now))
        now += reassign_every
    return outcomes
