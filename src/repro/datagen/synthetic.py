"""Synthetic UNIFORM / SKEWED workload generators (Section 8.1).

Locations follow either the uniform distribution over the unit square or
the paper's skewed recipe — 90% of points from a Gaussian cluster centred
at (0.5, 0.5) with sigma 0.2 (clipped to the square), the rest uniform.
Worker cones, speeds, confidences and task periods follow Table 2 (see
:mod:`repro.datagen.config`).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.algorithms.base import RngLike, make_rng
from repro.core.problem import RdbscProblem
from repro.core.task import SpatialTask
from repro.core.validity import ValidityRule
from repro.core.worker import MovingWorker
from repro.datagen.config import ExperimentConfig
from repro.geometry.angles import TWO_PI, AngleInterval
from repro.geometry.points import Point

#: The paper's skewed cluster: 90% of points, centred mid-square, sigma 0.2.
SKEW_CLUSTER_FRACTION = 0.9
SKEW_CLUSTER_CENTRE = (0.5, 0.5)
SKEW_CLUSTER_SIGMA = 0.2

#: Confidence noise: Gaussian around the range midpoint (Section 8.1).
CONFIDENCE_SIGMA = 0.02


def _sample_locations(
    count: int, distribution: str, rng: np.random.Generator
) -> List[Point]:
    """Draw ``count`` locations under the UNIFORM or SKEWED scheme."""
    if distribution == "uniform":
        coords = rng.uniform(0.0, 1.0, size=(count, 2))
    elif distribution == "skewed":
        in_cluster = rng.uniform(size=count) < SKEW_CLUSTER_FRACTION
        coords = rng.uniform(0.0, 1.0, size=(count, 2))
        n_cluster = int(in_cluster.sum())
        cluster = rng.normal(
            loc=SKEW_CLUSTER_CENTRE, scale=SKEW_CLUSTER_SIGMA, size=(n_cluster, 2)
        )
        coords[in_cluster] = np.clip(cluster, 0.0, 1.0)
    else:  # pragma: no cover - guarded by ExperimentConfig validation
        raise ValueError(f"unknown distribution {distribution!r}")
    return [Point(float(x), float(y)) for x, y in coords]


def _sample_confidence(
    rng: np.random.Generator, p_lo: float, p_hi: float
) -> float:
    """Gaussian confidence around the range midpoint, clipped to the range."""
    mean = (p_lo + p_hi) / 2.0
    return float(np.clip(rng.normal(mean, CONFIDENCE_SIGMA), p_lo, p_hi))


def generate_tasks(
    config: ExperimentConfig,
    rng: RngLike = None,
    first_id: int = 0,
) -> List[SpatialTask]:
    """Generate ``config.num_tasks`` tasks per the Table 2 scheme."""
    generator = make_rng(rng)
    locations = _sample_locations(config.num_tasks, config.distribution, generator)
    st_lo, st_hi = config.start_time_range
    rt_lo, rt_hi = config.expiration_range
    b_lo, b_hi = config.beta_range
    tasks: List[SpatialTask] = []
    for i, location in enumerate(locations):
        start = float(generator.uniform(st_lo, st_hi))
        duration = float(generator.uniform(rt_lo, rt_hi))
        beta = float(generator.uniform(b_lo, b_hi))
        tasks.append(
            SpatialTask(
                task_id=first_id + i,
                location=location,
                start=start,
                end=start + duration,
                beta=beta,
            )
        )
    return tasks


def generate_workers(
    config: ExperimentConfig,
    rng: RngLike = None,
    first_id: int = 0,
) -> List[MovingWorker]:
    """Generate ``config.num_workers`` moving workers per Table 2."""
    generator = make_rng(rng)
    locations = _sample_locations(config.num_workers, config.distribution, generator)
    v_lo, v_hi = config.velocity_range
    p_lo, p_hi = config.reliability_range
    c_lo, c_hi = config.checkin_range
    workers: List[MovingWorker] = []
    for j, location in enumerate(locations):
        cone_lo = float(generator.uniform(0.0, TWO_PI))
        cone_width = float(generator.uniform(0.0, config.angle_range_max))
        velocity = float(generator.uniform(v_lo, v_hi))
        depart = float(generator.uniform(c_lo, c_hi)) if c_hi > c_lo else c_lo
        workers.append(
            MovingWorker(
                worker_id=first_id + j,
                location=location,
                velocity=velocity,
                cone=AngleInterval(cone_lo, cone_width),
                confidence=_sample_confidence(generator, p_lo, p_hi),
                depart_time=depart,
            )
        )
    return workers


def generate_problem(
    config: ExperimentConfig,
    seed: RngLike = None,
    validity: Optional[ValidityRule] = None,
    backend: str = "python",
) -> RdbscProblem:
    """A full synthetic RDB-SC instance (tasks + workers + valid pairs).

    ``backend`` selects the valid-pair scan implementation — the scalar
    reference (``"python"``) or the :mod:`repro.fastpath` batch kernel
    (``"numpy"``); the generated entities and the resulting edge set are
    identical either way.
    """
    generator = make_rng(seed)
    tasks = generate_tasks(config, generator)
    workers = generate_workers(config, generator)
    return RdbscProblem(tasks, workers, validity, backend=backend)


def generate_arrays(
    config: ExperimentConfig,
    seed: RngLike = None,
):
    """Generate an instance directly in packed array form.

    Returns ``(tasks, workers, task_arrays, worker_arrays)``: the object
    lists plus their :class:`repro.fastpath.arrays.TaskArrays` /
    :class:`repro.fastpath.arrays.WorkerArrays` views, for callers that
    feed the batch kernels (or an accelerator) without building a full
    :class:`RdbscProblem`.  Entity generation consumes the RNG exactly as
    :func:`generate_problem` does, so the same seed yields the same
    instance in either representation.
    """
    from repro.fastpath.arrays import TaskArrays, WorkerArrays

    generator = make_rng(seed)
    tasks = generate_tasks(config, generator)
    workers = generate_workers(config, generator)
    return (
        tasks,
        workers,
        TaskArrays.from_tasks(tasks),
        WorkerArrays.from_workers(workers),
    )


def average_degree(problem: RdbscProblem) -> float:
    """Mean number of valid tasks per worker — the graph-density knob.

    Bench configurations are tuned so this lands in the low single digits,
    mirroring (in ratio) the density the paper's full-scale instances have.
    """
    if problem.num_workers == 0:
        return 0.0
    return problem.num_pairs / problem.num_workers
