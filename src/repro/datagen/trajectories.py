"""Synthetic taxi trajectories and the Section 8.2 worker-derivation recipe.

The paper initialises workers from T-Drive taxi traces:

    "we use the start point of the trajectory as the worker's location, use
     the average speed of the taxi as the worker's speed.  For the moving
     angle's range of the worker, we draw a sector at the start point and
     contain all the other points of the trajectory in the sector."

T-Drive itself is not redistributable here, so :func:`generate_trajectory`
produces random-waypoint traces with taxi-like statistics; the derivation
code (:func:`worker_from_trajectory`) is exactly the paper's recipe and is
what the real-data benchmarks exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.algorithms.base import RngLike, make_rng
from repro.core.worker import MovingWorker
from repro.geometry.angles import AngleInterval, bearing, enclosing_interval
from repro.geometry.points import Point, distance


@dataclass(frozen=True)
class Trajectory:
    """A timestamped polyline trace.

    Attributes:
        points: visited locations, in order.
        timestamps: matching clock times (hours), strictly increasing.
    """

    points: Tuple[Point, ...]
    timestamps: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.points) != len(self.timestamps):
            raise ValueError("points and timestamps must align")
        if len(self.points) < 2:
            raise ValueError("a trajectory needs at least two points")
        if any(b <= a for a, b in zip(self.timestamps, self.timestamps[1:])):
            raise ValueError("timestamps must be strictly increasing")

    @property
    def start(self) -> Point:
        return self.points[0]

    def total_length(self) -> float:
        """Sum of segment lengths."""
        return sum(distance(a, b) for a, b in zip(self.points, self.points[1:]))

    def average_speed(self) -> float:
        """Trace length over elapsed time — the paper's worker speed."""
        elapsed = self.timestamps[-1] - self.timestamps[0]
        return self.total_length() / elapsed

    def heading_sector(self) -> AngleInterval:
        """Smallest sector at the start containing every later point.

        Later points coincident with the start contribute no bearing.
        Falls back to the full circle when no later point is distinct
        (a parked taxi constrains nothing).
        """
        bearings: List[float] = [
            bearing(self.start, p) for p in self.points[1:] if p != self.start
        ]
        if not bearings:
            return AngleInterval.full_circle()
        return enclosing_interval(bearings)


def generate_trajectory(
    rng: RngLike = None,
    n_waypoints: Optional[int] = None,
    start: Optional[Point] = None,
    speed_range: Tuple[float, float] = (0.15, 0.45),
    start_time: float = 0.0,
    wander: float = 1.2,
) -> Trajectory:
    """A random-waypoint trace inside the unit square.

    The heading performs a bounded random walk (sigma ``wander`` radians per
    leg) so traces are locally directional — like a taxi run — rather than
    Brownian, giving realistically narrow heading sectors.
    """
    generator = make_rng(rng)
    if n_waypoints is None:
        n_waypoints = int(generator.integers(5, 16))
    if n_waypoints < 2:
        raise ValueError("need at least two waypoints")
    if start is None:
        start = Point(
            float(generator.uniform(0.05, 0.95)), float(generator.uniform(0.05, 0.95))
        )
    speed = float(generator.uniform(*speed_range))

    points: List[Point] = [start]
    times: List[float] = [start_time]
    heading = float(generator.uniform(0.0, 2.0 * np.pi))
    current = start
    now = start_time
    for _ in range(n_waypoints - 1):
        heading += float(generator.normal(0.0, wander / 3.0))
        step = float(generator.uniform(0.02, 0.12))
        nxt = Point(
            float(np.clip(current.x + step * np.cos(heading), 0.0, 1.0)),
            float(np.clip(current.y + step * np.sin(heading), 0.0, 1.0)),
        )
        if nxt == current:  # clipped into a corner; nudge inward
            nxt = Point(
                float(np.clip(current.x + 0.01, 0.0, 1.0)),
                float(np.clip(current.y + 0.01, 0.0, 1.0)),
            )
            if nxt == current:
                continue
        leg = distance(current, nxt)
        now += leg / speed
        points.append(nxt)
        times.append(now)
        current = nxt
    if len(points) < 2:
        # Degenerate walk (all steps clipped away); add a minimal leg.
        nxt = Point(min(start.x + 0.05, 1.0), start.y)
        points.append(nxt)
        times.append(start_time + distance(start, nxt) / speed)
    return Trajectory(tuple(points), tuple(times))


def worker_from_trajectory(
    trajectory: Trajectory,
    worker_id: int,
    confidence: float,
    depart_time: float = 0.0,
) -> MovingWorker:
    """Derive a moving worker from a trace — the paper's Section 8.2 recipe."""
    return MovingWorker(
        worker_id=worker_id,
        location=trajectory.start,
        velocity=trajectory.average_speed(),
        cone=trajectory.heading_sector(),
        confidence=confidence,
        depart_time=depart_time,
    )
