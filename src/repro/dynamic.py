"""An online RDB-SC session: dynamic churn + periodic re-assignment.

The paper's Section 7.2 maintains workers and tasks in the grid index as
they "freely register or leave the crowdsourcing system", and Figure 10
periodically re-assigns whoever is available.  :class:`CrowdsourcingSession`
packages that operating loop as a library API; since PR 2 it is a thin
façade over :class:`repro.engine.engine.AssignmentEngine`, which keeps the
grid index's persistent valid-pair cache and the slot-stable packed arrays
current *per churn event* — so a ``reassign`` after a small delta re-probes
only the dirty cell pairs instead of re-scanning all ``O(m * n)``
combinations:

* ``add_task`` / ``remove_task`` / ``add_worker`` / ``remove_worker`` /
  ``update_worker`` keep index + arrays current (O(1)-ish per Section 7.2;
  a same-cell ``update_worker`` is a genuine O(1) in-place swap),
* ``expire_tasks(now)`` retires tasks whose window closed (inclusive
  deadline — see :meth:`repro.core.task.SpatialTask.expired_at`),
* ``reassign(now)`` builds the current sub-instance *through the engine*
  and runs the configured solver, remembering the live assignment,
* ``stats`` counts maintenance and assignment work for capacity planning
  (``session.engine.metrics`` has the finer-grained epoch records).

Typical use::

    session = CrowdsourcingSession(solver=SamplingSolver(num_samples=40))
    session.add_worker(worker)
    session.add_task(task)
    outcome = session.reassign(now=0.0)
    print(outcome.objective, session.assignment_of(worker.worker_id))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.algorithms.base import RngLike, Solver
from repro.core.assignment import Assignment
from repro.core.objectives import ObjectiveValue
from repro.core.problem import RdbscProblem
from repro.core.task import SpatialTask
from repro.core.validity import ValidityRule
from repro.core.worker import MovingWorker
from repro.engine.engine import AssignmentEngine
from repro.index.grid import RdbscGrid


@dataclass
class SessionStats:
    """Operation counters for one session."""

    tasks_added: int = 0
    tasks_removed: int = 0
    tasks_expired: int = 0
    workers_added: int = 0
    workers_removed: int = 0
    workers_updated: int = 0
    reassignments: int = 0
    pairs_retrieved: int = 0


@dataclass(frozen=True)
class ReassignmentOutcome:
    """Result of one ``reassign`` call."""

    objective: ObjectiveValue
    assignment: Assignment
    num_tasks: int
    num_workers: int
    num_pairs: int


class CrowdsourcingSession:
    """A live RDB-SC system: engine-maintained state + periodic solving.

    Args:
        solver: the assignment algorithm run on each ``reassign``.
        eta: grid cell side; pick via :func:`repro.index.cost_model.optimal_eta`
            for your expected reach, or keep the default mid-grain cell.
        validity: pair-validity policy.
        rng: seed/generator forwarded to the solver for reproducibility.
        backend: ``"python"`` or ``"numpy"``; selects how the engine's grid
            index probes dirty candidate cell pairs during ``reassign``
            retrieval (and is forwarded when rebuilding the sub-instance).
            Both backends yield the same pairs and the same assignments.
        solve_mode: ``"full"`` re-solves each ``reassign`` from scratch;
            ``"warm"`` lets quiet intervals repair the previous plan
            through :mod:`repro.solvers.incremental` (GREEDY/SAMPLING
            only; other solvers always solve in full).
        warm_churn_threshold: churn fraction above which a warm-mode
            ``reassign`` falls back to a full solve.
        num_shards: with a value above 1 the session runs on a
            :class:`repro.engine.sharding.ShardedAssignmentEngine` — the
            grid is partitioned into ``num_shards`` cell blocks and each
            ``reassign`` fans the index work out per shard.  Assignments
            are bit-identical to the unsharded session.
        halo: task-replication radius for the sharded engine (``None``
            replicates everywhere — always safe; see
            :meth:`repro.engine.sharding.ShardMap.halo_bound`).
        shard_executor: ``"sequential"`` or ``"process"`` fan-out for the
            sharded engine (ignored with ``num_shards=1``).  With the
            process executor, call ``session.close()`` when done.
        solve_executor: parallelise each ``reassign``'s *solve* — ``None``
            (serial), a pinned-process count, or a
            :class:`repro.engine.parallel.ParallelSolveExecutor` instance;
            see :class:`repro.engine.engine.AssignmentEngine`.  Plans are
            bit-identical to the serial session.  With a process count,
            call ``session.close()`` when done.
        durable_path: crash safety — write every churn event, epoch
            marker and periodic full-state snapshot to this SQLite log
            (:mod:`repro.engine.durable`).  Requires a deterministic
            ``rng``.  Recover a dead session with
            :meth:`CrowdsourcingSession.restore`; re-assignments after
            recovery are bit-identical to the uninterrupted session.
        durable_snapshot_every: reassignments between full snapshots.
    """

    def __init__(
        self,
        solver: Optional[Solver] = None,
        eta: float = 0.125,
        validity: Optional[ValidityRule] = None,
        rng: RngLike = None,
        backend: str = "python",
        solve_mode: str = "full",
        warm_churn_threshold: float = 0.25,
        num_shards: int = 1,
        halo: Optional[float] = None,
        shard_executor: str = "sequential",
        solve_executor=None,
        durable_path=None,
        durable_snapshot_every: int = 16,
    ) -> None:
        if num_shards > 1:
            from repro.engine.sharding import ShardedAssignmentEngine

            self.engine: AssignmentEngine = ShardedAssignmentEngine(
                solver=solver,
                eta=eta,
                validity=validity,
                rng=rng,
                backend=backend,
                num_shards=num_shards,
                halo=halo,
                executor=shard_executor,
                solve_mode=solve_mode,
                warm_churn_threshold=warm_churn_threshold,
                solve_executor=solve_executor,
                durable_path=durable_path,
                durable_snapshot_every=durable_snapshot_every,
            )
        else:
            self.engine = AssignmentEngine(
                solver=solver,
                eta=eta,
                validity=validity,
                rng=rng,
                backend=backend,
                solve_mode=solve_mode,
                warm_churn_threshold=warm_churn_threshold,
                solve_executor=solve_executor,
                durable_path=durable_path,
                durable_snapshot_every=durable_snapshot_every,
            )
        self.stats = SessionStats()

    @classmethod
    def restore(
        cls,
        durable_path,
        solver: Optional[Solver] = None,
        solve_executor=None,
        shard_executor: Optional[str] = None,
    ) -> "CrowdsourcingSession":
        """Recover a session from its durable log (snapshot + replay).

        The engine class, configuration and shard layout come from the
        log's meta row; ``solver`` must be configured exactly as the
        original (the class name is checked).  The recovered session
        keeps appending to the same log, and its re-assignments are
        bit-identical to those the dead session would have produced.
        ``stats`` counters restart from zero — they are session-object
        bookkeeping; the engine's replay-deterministic
        ``engine.metrics`` counters survive recovery.
        """
        from repro.engine.durable import restore_engine

        session = cls.__new__(cls)
        session.engine = restore_engine(
            durable_path,
            solver=solver,
            solve_executor=solve_executor,
            shard_executor=shard_executor,
        )
        session.stats = SessionStats()
        return session

    def close(self) -> None:
        """Release engine resources (a sharded session's worker pool)."""
        close = getattr(self.engine, "close", None)
        if close is not None:
            close()

    # -- attribute pass-throughs (the engine owns the state) ------------ #

    @property
    def solver(self) -> Solver:
        return self.engine.solver

    @solver.setter
    def solver(self, solver: Solver) -> None:
        self.engine.solver = solver

    @property
    def validity(self) -> ValidityRule:
        return self.engine.validity

    @property
    def backend(self) -> str:
        return self.engine.backend

    @property
    def rng(self) -> RngLike:
        return self.engine.rng

    @rng.setter
    def rng(self, rng: RngLike) -> None:
        self.engine.rng = rng

    @property
    def grid(self) -> RdbscGrid:
        return self.engine.grid

    @property
    def _tasks(self) -> Dict[int, SpatialTask]:
        return self.engine.tasks

    @property
    def _workers(self) -> Dict[int, MovingWorker]:
        return self.engine.workers

    # ------------------------------------------------------------------ #
    # Churn (Section 7.2)
    # ------------------------------------------------------------------ #

    def add_task(self, task: SpatialTask) -> None:
        """Register a new task.

        Raises:
            ValueError: on duplicate task ids.
        """
        self.engine.add_task(task)
        self.stats.tasks_added += 1

    def remove_task(self, task_id: int) -> SpatialTask:
        """Withdraw a task (completed or cancelled); frees its workers."""
        task = self.engine.withdraw_task(task_id)
        self.stats.tasks_removed += 1
        return task

    def expire_tasks(self, now: float) -> List[int]:
        """Retire every task whose valid period has closed.

        The deadline is inclusive: a task expiring exactly at ``now`` is
        still live (an arrival at ``e_i`` is valid), so it is *not*
        retired — the same boundary the validity rule, the grid's pruning
        and the platform simulator apply.
        """
        expired = self.engine.expire_tasks(now)
        self.stats.tasks_expired += len(expired)
        return expired

    def add_worker(self, worker: MovingWorker) -> None:
        """Register a newly available worker.

        Raises:
            ValueError: on duplicate worker ids.
        """
        self.engine.add_worker(worker)
        self.stats.workers_added += 1

    def remove_worker(self, worker_id: int) -> MovingWorker:
        """Deregister a worker (left the system)."""
        worker = self.engine.remove_worker(worker_id)
        self.stats.workers_removed += 1
        return worker

    def update_worker(self, worker: MovingWorker) -> None:
        """Refresh a worker's position/heading/confidence in place.

        A worker that stays inside its current grid cell costs O(1) — the
        cell record, packed slot row and object dict are overwritten in
        place; only a cross-cell move pays remove + insert.

        Raises:
            KeyError: if the worker is not registered.
        """
        self.engine.update_worker(worker)
        self.stats.workers_updated += 1

    # ------------------------------------------------------------------ #
    # State access
    # ------------------------------------------------------------------ #

    @property
    def num_tasks(self) -> int:
        return self.engine.num_tasks

    @property
    def num_workers(self) -> int:
        return self.engine.num_workers

    def assignment_of(self, worker_id: int) -> Optional[int]:
        """The task a worker is currently assigned to, if any."""
        return self.engine.assignment_of(worker_id)

    def workers_on(self, task_id: int):
        """Ids of workers currently assigned to a task."""
        return self.engine.workers_on(task_id)

    def current_problem(self) -> RdbscProblem:
        """The current sub-instance, with pairs retrieved via the engine."""
        problem = self.engine.current_problem()
        self.stats.pairs_retrieved += problem.num_pairs
        return problem

    # ------------------------------------------------------------------ #
    # Assignment
    # ------------------------------------------------------------------ #

    def reassign(self, now: float = 0.0) -> ReassignmentOutcome:
        """Expire stale tasks, rebuild the instance, run the solver.

        The stored live assignment is replaced wholesale — the paper's
        incremental strategy of honouring in-flight work is the platform
        simulator's job (it pins committed contributions as virtual
        workers via the engine); a bare session re-plans everything still
        pending.
        """
        result = self.engine.epoch(now)
        self.stats.tasks_expired += len(result.expired)
        self.stats.reassignments += 1
        self.stats.pairs_retrieved += result.num_pairs
        return ReassignmentOutcome(
            objective=result.objective,
            assignment=result.assignment,
            num_tasks=result.num_tasks,
            num_workers=result.num_workers,
            num_pairs=result.num_pairs,
        )

    def evaluate_current(self) -> ObjectiveValue:
        """Objective value of the live assignment against current state."""
        return self.engine.evaluate_current()
