"""An online RDB-SC session: dynamic churn + periodic re-assignment.

The paper's Section 7.2 maintains workers and tasks in the grid index as
they "freely register or leave the crowdsourcing system", and Figure 10
periodically re-assigns whoever is available.  :class:`CrowdsourcingSession`
packages that operating loop as a library API (the platform simulator is a
*driver* of this pattern with travel/answer dynamics; the session is the
pattern itself):

* ``add_task`` / ``remove_task`` / ``add_worker`` / ``remove_worker`` keep
  the grid index current (O(1)-ish per Section 7.2),
* ``expire_tasks(now)`` retires tasks whose window closed,
* ``reassign(now)`` builds the current sub-instance *through the index*
  and runs the configured solver, remembering the live assignment,
* ``stats`` counts maintenance and assignment work for capacity planning.

Typical use::

    session = CrowdsourcingSession(solver=SamplingSolver(num_samples=40))
    session.add_worker(worker)
    session.add_task(task)
    outcome = session.reassign(now=0.0)
    print(outcome.objective, session.assignment_of(worker.worker_id))
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.algorithms.base import RngLike, Solver
from repro.algorithms.sampling import SamplingSolver
from repro.core.assignment import Assignment
from repro.core.objectives import ObjectiveValue, evaluate_assignment
from repro.core.problem import RdbscProblem
from repro.core.task import SpatialTask
from repro.core.validity import ValidityRule
from repro.core.worker import MovingWorker
from repro.index.grid import RdbscGrid


@dataclass
class SessionStats:
    """Operation counters for one session."""

    tasks_added: int = 0
    tasks_removed: int = 0
    tasks_expired: int = 0
    workers_added: int = 0
    workers_removed: int = 0
    reassignments: int = 0
    pairs_retrieved: int = 0


@dataclass(frozen=True)
class ReassignmentOutcome:
    """Result of one ``reassign`` call."""

    objective: ObjectiveValue
    assignment: Assignment
    num_tasks: int
    num_workers: int
    num_pairs: int


class CrowdsourcingSession:
    """A live RDB-SC system: index-maintained state + periodic solving.

    Args:
        solver: the assignment algorithm run on each ``reassign``.
        eta: grid cell side; pick via :func:`repro.index.cost_model.optimal_eta`
            for your expected reach, or keep the default mid-grain cell.
        validity: pair-validity policy.
        rng: seed/generator forwarded to the solver for reproducibility.
        backend: ``"python"`` or ``"numpy"``; selects how the grid index
            probes candidate cell pairs during ``reassign`` retrieval (and
            is forwarded when rebuilding the sub-instance).  Both backends
            yield the same pairs and the same assignments.
    """

    def __init__(
        self,
        solver: Optional[Solver] = None,
        eta: float = 0.125,
        validity: Optional[ValidityRule] = None,
        rng: RngLike = None,
        backend: str = "python",
    ) -> None:
        if backend not in ("python", "numpy"):
            raise ValueError(f"unknown backend {backend!r}")
        self.solver = solver if solver is not None else SamplingSolver(num_samples=40)
        self.validity = validity if validity is not None else ValidityRule()
        self.backend = backend
        self.grid = RdbscGrid(eta, self.validity, backend=backend)
        self.rng = rng
        self.stats = SessionStats()
        self._tasks: Dict[int, SpatialTask] = {}
        self._workers: Dict[int, MovingWorker] = {}
        self._assignment = Assignment()

    # ------------------------------------------------------------------ #
    # Churn (Section 7.2)
    # ------------------------------------------------------------------ #

    def add_task(self, task: SpatialTask) -> None:
        """Register a new task.

        Raises:
            ValueError: on duplicate task ids.
        """
        if task.task_id in self._tasks:
            raise ValueError(f"task {task.task_id} already in session")
        self._tasks[task.task_id] = task
        self.grid.insert_task(task)
        self.stats.tasks_added += 1

    def remove_task(self, task_id: int) -> SpatialTask:
        """Withdraw a task (completed or cancelled); frees its workers."""
        task = self._tasks.pop(task_id)
        self.grid.remove_task(task_id)
        for worker_id in list(self._assignment.workers_for(task_id)):
            self._assignment.unassign(worker_id)
        self.stats.tasks_removed += 1
        return task

    def expire_tasks(self, now: float) -> List[int]:
        """Retire every task whose valid period has closed."""
        expired = [t.task_id for t in self._tasks.values() if t.end < now]
        for task_id in expired:
            self.remove_task(task_id)
            self.stats.tasks_removed -= 1  # counted as expiry instead
            self.stats.tasks_expired += 1
        return expired

    def add_worker(self, worker: MovingWorker) -> None:
        """Register a newly available worker.

        Raises:
            ValueError: on duplicate worker ids.
        """
        if worker.worker_id in self._workers:
            raise ValueError(f"worker {worker.worker_id} already in session")
        self._workers[worker.worker_id] = worker
        self.grid.insert_worker(worker)
        self.stats.workers_added += 1

    def remove_worker(self, worker_id: int) -> MovingWorker:
        """Deregister a worker (left the system)."""
        worker = self._workers.pop(worker_id)
        self.grid.remove_worker(worker_id)
        if self._assignment.is_assigned(worker_id):
            self._assignment.unassign(worker_id)
        self.stats.workers_removed += 1
        return worker

    def update_worker(self, worker: MovingWorker) -> None:
        """Refresh a worker's position/heading/confidence in place."""
        self.remove_worker(worker.worker_id)
        self.add_worker(worker)
        self.stats.workers_added -= 1
        self.stats.workers_removed -= 1

    # ------------------------------------------------------------------ #
    # State access
    # ------------------------------------------------------------------ #

    @property
    def num_tasks(self) -> int:
        return len(self._tasks)

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    def assignment_of(self, worker_id: int) -> Optional[int]:
        """The task a worker is currently assigned to, if any."""
        return self._assignment.task_of(worker_id)

    def workers_on(self, task_id: int):
        """Ids of workers currently assigned to a task."""
        return self._assignment.workers_for(task_id)

    def current_problem(self) -> RdbscProblem:
        """The current sub-instance, with pairs retrieved via the index."""
        pairs = self.grid.valid_pairs()
        self.stats.pairs_retrieved += len(pairs)
        return RdbscProblem(
            list(self._tasks.values()),
            list(self._workers.values()),
            self.validity,
            precomputed_pairs=pairs,
            backend=self.backend,
        )

    # ------------------------------------------------------------------ #
    # Assignment
    # ------------------------------------------------------------------ #

    def reassign(self, now: float = 0.0) -> ReassignmentOutcome:
        """Expire stale tasks, rebuild the instance, run the solver.

        The stored live assignment is replaced wholesale — the paper's
        incremental strategy of honouring in-flight work is the platform
        simulator's job (it pins committed contributions as virtual
        workers); a bare session re-plans everything still pending.
        """
        self.expire_tasks(now)
        problem = self.current_problem()
        result = self.solver.solve(problem, rng=self.rng)
        self._assignment = result.assignment
        self.stats.reassignments += 1
        return ReassignmentOutcome(
            objective=result.objective,
            assignment=result.assignment.copy(),
            num_tasks=problem.num_tasks,
            num_workers=problem.num_workers,
            num_pairs=problem.num_pairs,
        )

    def evaluate_current(self) -> ObjectiveValue:
        """Objective value of the live assignment against current state."""
        problem = self.current_problem()
        live = Assignment()
        for task_id, worker_id in self._assignment.pairs():
            if problem.is_valid_pair(task_id, worker_id):
                live.assign(task_id, worker_id)
        return evaluate_assignment(problem, live)
