"""The event-driven incremental assignment engine (Section 7.2, scaled).

The paper's long-lived operating mode — churn absorbed continuously, a
solver re-run every ``t_interval`` — demands amortised-O(delta) epochs,
not O(m * n) rebuilds.  This package is that machinery:

``events``
    The typed churn/epoch event vocabulary.
``scheduler``
    Stable time-ordered event queue plus the periodic epoch clock.
``engine``
    :class:`AssignmentEngine` — keeps the grid index's persistent pair
    cache and the slot-stable packed slabs current per event, solves per
    epoch (cold, or by repairing the previous plan via
    :mod:`repro.solvers.incremental` when ``solve_mode="warm"`` and the
    inter-epoch churn is small), and pins committed contributions as
    virtual workers.
``metrics``
    Per-epoch records and lifetime counters (cache hit rate, epoch cost,
    warm/full solve split).
``durable``
    Crash safety: :class:`DurableLog` (a SQLite write-ahead event log +
    periodic full-state snapshots, attached via the engines'
    ``durable_path=`` knob) and :func:`restore_engine` (snapshot + tail
    replay, reproducing the live per-epoch plans bit-exactly).
``sharding``
    :class:`ShardedAssignmentEngine` — the same engine with its index
    partitioned into rectangular cell blocks (:class:`ShardMap` with a
    halo wide enough for the validity radius) and epochs fanned out
    across an in-process or process-pool executor; merged plans are
    bit-identical to the single-shard engine.
``elastic``
    :class:`ElasticShardedAssignmentEngine` — the sharded engine with
    *resident* shard states (persistent across epochs, pinned to their
    worker processes) fed versioned :class:`ShardDiff` packets with a
    fingerprint-keyed full-resync fallback, and :class:`ShardMap`
    split/merge/migrate reshapes driven by a :class:`RebalancePolicy`
    at epoch boundaries — WAL-logged, so recovery replays the topology
    trajectory bit-exactly; see ``docs/ELASTICITY.md``.
``parallel``
    The solve-parallelism subsystem behind the engines'
    ``solve_executor`` knob: :class:`ParallelSolveExecutor` owns pinned
    worker pools and binds SAMPLING's substream sample fan-out
    (:class:`ParallelSampleExecutor`) and GREEDY's shard-batched round
    scoring (:class:`ShardBatchedScorer`) to the configured solver —
    plans bit-identical to the serial solve at every pool size.
``profile``
    :class:`PhaseProfiler` — the per-epoch phase timer (routing,
    coalesce, index, prune, ``Δmin_R``, ``ΔE[STD]``, merge, WAL append)
    both engines thread into every
    :class:`~repro.engine.metrics.EpochRecord`; see
    ``docs/PROFILING.md``.

:class:`repro.dynamic.CrowdsourcingSession` (the library façade) and
:class:`repro.platform_sim.simulator.PlatformSimulator` (the Figure 18
driver) both run on this engine.
"""

from repro.engine.engine import (
    AssignmentEngine,
    EngineSnapshot,
    EpochResult,
    virtual_worker,
)
from repro.engine.durable import DurableLog, restore_engine
from repro.engine.elastic import (
    ElasticShardedAssignmentEngine,
    ProcessResidentExecutor,
    RebalancePolicy,
    ResidentShard,
    SequentialResidentExecutor,
    ShardDiff,
)
from repro.engine.events import (
    EpochTick,
    Event,
    ExpireTasks,
    TaskArrive,
    TaskWithdraw,
    WorkerArrive,
    WorkerHold,
    WorkerLeave,
    WorkerRelease,
    WorkerUpdate,
)
from repro.engine.metrics import EngineMetrics, EpochRecord
from repro.engine.profile import PhaseProfiler
from repro.engine.parallel import (
    ParallelSampleExecutor,
    ParallelSolveExecutor,
    PinnedWorkerPools,
    SampleChunkScorer,
    ShardBatchedScorer,
)
from repro.engine.scheduler import EventQueue, epoch_ticks
from repro.engine.sharding import (
    ProcessShardExecutor,
    SequentialShardExecutor,
    ShardMap,
    ShardState,
    ShardedAssignmentEngine,
)

__all__ = [
    "AssignmentEngine",
    "DurableLog",
    "ElasticShardedAssignmentEngine",
    "EngineMetrics",
    "EngineSnapshot",
    "EpochRecord",
    "EpochResult",
    "EpochTick",
    "Event",
    "EventQueue",
    "ExpireTasks",
    "ParallelSampleExecutor",
    "ParallelSolveExecutor",
    "PhaseProfiler",
    "PinnedWorkerPools",
    "ProcessResidentExecutor",
    "ProcessShardExecutor",
    "RebalancePolicy",
    "ResidentShard",
    "SampleChunkScorer",
    "SequentialResidentExecutor",
    "SequentialShardExecutor",
    "ShardBatchedScorer",
    "ShardDiff",
    "ShardMap",
    "ShardState",
    "ShardedAssignmentEngine",
    "TaskArrive",
    "TaskWithdraw",
    "WorkerArrive",
    "WorkerHold",
    "WorkerLeave",
    "WorkerRelease",
    "WorkerUpdate",
    "epoch_ticks",
    "restore_engine",
    "virtual_worker",
]
