"""Durable engine state: a write-ahead event log + snapshot/restore.

Everything the long-lived engine knows — grid residents, the live
assignment, the previous epoch's plan, the RNG contract position — lives
in RAM, so a crash loses the session and post-hoc analytics must re-run
the solver.  This module adds the missing persistence layer:

``DurableLog``
    An append-only SQLite log (WAL mode) holding one row per typed churn
    event (:mod:`repro.engine.events`), one *epoch marker* per
    :meth:`~repro.engine.engine.AssignmentEngine.epoch` (its clock time,
    pinned profiles, forbidden pairs, RNG position, and — for analytics —
    the solved objective and dispatch), and periodic full-state
    snapshots.  The engine appends to it live; analytics read it cold
    (:meth:`DurableLog.epoch_history` walks the assignment history
    without re-running any solver).

codecs
    JSON round-trips for every persisted object.  Floats survive
    bit-exactly (``json`` serialises via ``repr``, which round-trips
    IEEE-754 doubles), and the NumPy bit-generator state dict is plain
    arbitrary-precision integers — so a restored engine resumes the
    *exact* RNG stream, which is what keeps SAMPLING plans bit-identical
    (``substream_base_seed`` draws from that stream every solve).

``restore_engine``
    The recovery contract: build the engine the log's meta row describes,
    install the latest snapshot (:func:`apply_snapshot`), then replay the
    log tail (:func:`replay_records`).  The result reproduces the live
    engine's per-epoch plans bit-exactly on both backends, full and warm
    solve modes, single or sharded — pinned by the kill-and-recover
    differential tests in ``tests/test_durable.py``.

The SQLite pragmas follow the battle-tested WAL recipe (readers never
block the appender; ``synchronous=NORMAL`` is durable at WAL
checkpoints; a generous busy timeout instead of instant lock errors).

Replay semantics: an epoch marker restores the logged RNG position
*before* re-running the epoch, so replay stays bit-exact even when the
engine's generator is shared with an outside consumer between epochs
(the platform simulator draws answer outcomes from the same stream).
For an engine-exclusive generator, the restored engine's post-replay
stream position equals the live engine's, so *continued* epochs match
too; with a shared generator the interleaved outside draws are not in
the log, so continuation beyond the replayed history is deterministic
but not guaranteed to match a run that never crashed.
"""

from __future__ import annotations

import json
import sqlite3
import time as _time
from datetime import datetime, timezone
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.assignment import Assignment
from repro.core.diversity import WorkerProfile
from repro.core.task import SpatialTask
from repro.core.validity import ValidityRule
from repro.core.worker import MovingWorker
from repro.geometry.angles import AngleInterval
from repro.geometry.points import Point
from repro.solvers.incremental import EpochDelta, PreviousPlan

#: Bumped when the log/snapshot layout changes incompatibly.
SCHEMA_VERSION = 1

#: One decoded log row: ``(seq, kind, time, payload)``.
LogRecord = Tuple[int, str, float, Dict[str, Any]]

_SCHEMA = """
PRAGMA journal_mode = WAL;
PRAGMA foreign_keys = ON;
PRAGMA synchronous = NORMAL;
PRAGMA busy_timeout = 30000;

CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS events (
    seq     INTEGER PRIMARY KEY AUTOINCREMENT,
    kind    TEXT NOT NULL,
    time    REAL NOT NULL,
    payload TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS snapshots (
    snap_id    INTEGER PRIMARY KEY AUTOINCREMENT,
    event_seq  INTEGER NOT NULL,
    created_at TEXT NOT NULL,
    payload    TEXT NOT NULL
);
"""


def _json_default(value: Any) -> Any:
    """Coerce NumPy scalars (bit-generator state words) to plain ints."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    raise TypeError(f"cannot serialise {type(value).__name__} to JSON")


def _dumps(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, separators=(",", ":"), default=_json_default)


class DurableLog:
    """The append-only session log: meta + events + snapshots.

    One ``DurableLog`` belongs to one engine session.  The engine appends
    typed events as they are applied and an epoch marker per tick; every
    ``durable_snapshot_every`` epochs it also serialises a full
    :class:`~repro.engine.engine.EngineSnapshot`, so recovery replays a
    bounded tail instead of the whole history.

    Attributes:
        timings: cumulative engine-side costs — ``append_seconds`` (WAL
            appends, the per-event overhead ``bench_durability.py``
            records) and ``snapshot_seconds`` (periodic serialisation).
        stats: ``events_appended`` / ``append_batches`` /
            ``snapshots_written`` / ``compactions`` counters.
    """

    def __init__(self, path) -> None:
        self.path = str(path)
        # The service tier runs epochs on worker threads while holding the
        # engine lock; access is serialised there, so the connection may
        # legitimately move between threads (never used concurrently).
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        self._closed = False
        self.timings: Dict[str, float] = {
            "append_seconds": 0.0,
            "snapshot_seconds": 0.0,
        }
        self.stats: Dict[str, int] = {
            "events_appended": 0,
            "append_batches": 0,
            "snapshots_written": 0,
            "compactions": 0,
        }

    # ------------------------------------------------------------------ #
    # Meta
    # ------------------------------------------------------------------ #

    def set_meta(self, mapping: Dict[str, Any]) -> None:
        """Upsert JSON-encoded session metadata (engine configuration)."""
        with self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                [(key, _dumps({"v": value})) for key, value in mapping.items()],
            )

    def meta(self) -> Dict[str, Any]:
        """The decoded session metadata (empty for a virgin log)."""
        rows = self._conn.execute("SELECT key, value FROM meta").fetchall()
        return {key: json.loads(value)["v"] for key, value in rows}

    # ------------------------------------------------------------------ #
    # Events
    # ------------------------------------------------------------------ #

    def append_events(
        self, records: Sequence[Tuple[str, float, Dict[str, Any]]]
    ) -> None:
        """Append ``(kind, time, payload)`` records as one transaction."""
        if not records:
            return
        started = _time.perf_counter()
        with self._conn:
            self._conn.executemany(
                "INSERT INTO events (kind, time, payload) VALUES (?, ?, ?)",
                [
                    (kind, event_time, _dumps(payload))
                    for kind, event_time, payload in records
                ],
            )
        self.timings["append_seconds"] += _time.perf_counter() - started
        self.stats["events_appended"] += len(records)
        self.stats["append_batches"] += 1

    def last_seq(self) -> int:
        """Sequence number of the newest event (0 for an empty log)."""
        row = self._conn.execute("SELECT COALESCE(MAX(seq), 0) FROM events").fetchone()
        return int(row[0])

    def tail(self, after_seq: int = 0) -> Iterator[LogRecord]:
        """Decoded events with ``seq > after_seq``, in append order."""
        cursor = self._conn.execute(
            "SELECT seq, kind, time, payload FROM events WHERE seq > ? ORDER BY seq",
            (after_seq,),
        )
        for seq, kind, event_time, payload in cursor:
            yield int(seq), kind, float(event_time), json.loads(payload)

    def epoch_history(self) -> List[Dict[str, Any]]:
        """Every epoch marker, decoded — the assignment history.

        Each entry carries ``now``, ``mode``, ``objective`` (``[min
        reliability, total E[STD]]``) and ``dispatch`` (sorted ``[worker
        id, task id]`` pairs), so reporting over a finished session needs
        no solver re-run.
        """
        return [
            {
                "seq": seq,
                "now": payload["now"],
                "mode": payload["mode"],
                "objective": payload["objective"],
                "dispatch": payload["dispatch"],
            }
            for seq, kind, _, payload in self.tail(0)
            if kind == "epoch"
        ]

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #

    def write_snapshot(self, event_seq: int, payload: Dict[str, Any]) -> None:
        """Persist a full-state snapshot positioned after ``event_seq``."""
        started = _time.perf_counter()
        created_at = datetime.now(timezone.utc).isoformat(timespec="seconds")
        with self._conn:
            self._conn.execute(
                "INSERT INTO snapshots (event_seq, created_at, payload) "
                "VALUES (?, ?, ?)",
                (event_seq, created_at, _dumps(payload)),
            )
        self.timings["snapshot_seconds"] += _time.perf_counter() - started
        self.stats["snapshots_written"] += 1

    def latest_snapshot(self) -> Optional[Tuple[int, Dict[str, Any]]]:
        """The newest ``(event_seq, payload)`` snapshot, if any."""
        row = self._conn.execute(
            "SELECT event_seq, payload FROM snapshots ORDER BY snap_id DESC LIMIT 1"
        ).fetchone()
        if row is None:
            return None
        return int(row[0]), json.loads(row[1])

    def num_snapshots(self) -> int:
        """Snapshots persisted over the session's lifetime."""
        row = self._conn.execute("SELECT COUNT(*) FROM snapshots").fetchone()
        return int(row[0])

    def compact(
        self, retain_snapshots: int = 1, vacuum: bool = False
    ) -> Dict[str, Any]:
        """Truncate history made redundant by newer snapshots.

        A multi-day session's log grows without bound even though
        recovery only ever needs the latest snapshot plus its tail.
        Compaction keeps the newest ``retain_snapshots`` snapshots and
        deletes every event (epoch markers included) at or before the
        *oldest retained* snapshot's position — exactly the prefix no
        retained restore point replays.  Restores from the surviving
        snapshots are bit-exact: their payloads and tails are untouched,
        and event sequence numbers are ``AUTOINCREMENT`` so later appends
        never reuse a truncated seq.

        Args:
            retain_snapshots: how many of the newest snapshots (and
                therefore restore points) to keep; at least 1.
            vacuum: also ``VACUUM`` afterwards to return the freed pages
                to the filesystem (a full file rewrite — worth it after a
                large truncation, not per call).

        Returns:
            Stats: ``events_deleted`` / ``snapshots_deleted`` counts, the
            ``cutoff_seq`` events were truncated through, and whether the
            file was vacuumed.

        Raises:
            ValueError: for ``retain_snapshots < 1`` or a log that has no
                snapshot yet (nothing is provably redundant).
        """
        if retain_snapshots < 1:
            raise ValueError(
                f"retain_snapshots must be at least 1, got {retain_snapshots}"
            )
        rows = self._conn.execute(
            "SELECT snap_id, event_seq FROM snapshots "
            "ORDER BY snap_id DESC LIMIT ?",
            (retain_snapshots,),
        ).fetchall()
        if not rows:
            raise ValueError(
                "cannot compact a log without a snapshot; write one first"
            )
        oldest_kept_id, cutoff_seq = rows[-1]
        with self._conn:
            events_deleted = self._conn.execute(
                "DELETE FROM events WHERE seq <= ?", (cutoff_seq,)
            ).rowcount
            snapshots_deleted = self._conn.execute(
                "DELETE FROM snapshots WHERE snap_id < ?", (oldest_kept_id,)
            ).rowcount
        if vacuum:
            # VACUUM must run outside a transaction; the context manager
            # above committed the deletes already.
            self._conn.execute("VACUUM")
        self.stats["compactions"] += 1
        return {
            "events_deleted": int(events_deleted),
            "snapshots_deleted": int(snapshots_deleted),
            "snapshots_retained": len(rows),
            "cutoff_seq": int(cutoff_seq),
            "vacuumed": bool(vacuum),
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Flush and close the underlying connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._conn.close()

    def __enter__(self) -> "DurableLog":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# Solver configuration fingerprints
# ---------------------------------------------------------------------- #


def solver_config(solver) -> Dict[str, Any]:
    """A solver's constructor-parameter fingerprint, JSON-safe.

    Written into the durable meta row alongside the solver class name and
    compared by :func:`restore_engine`, so a restore with the right class
    but the wrong parameters (a different sampling budget, a different
    backend, pruning toggled) fails loudly instead of silently replaying
    a different decision sequence.  Warm-start wrappers fingerprint their
    base recursively; unknown solver types record an empty dict (the
    class-name check still applies, parameters go unvalidated — exactly
    the pre-fingerprint behaviour).
    """
    from repro.algorithms.greedy import GreedySolver
    from repro.algorithms.sampling import SamplingSolver
    from repro.solvers.incremental import WarmStartSamplingSolver, WarmStartSolver

    if isinstance(solver, WarmStartSolver):
        config: Dict[str, Any] = {"base": solver_config(solver.base)}
        if isinstance(solver, WarmStartSamplingSolver):
            config["fresh_fraction"] = solver.fresh_fraction
            config["min_fresh"] = solver.min_fresh
        return config
    if isinstance(solver, GreedySolver):
        return {"use_pruning": solver.use_pruning, "backend": solver.backend}
    if isinstance(solver, SamplingSolver):
        return {
            "num_samples": solver.num_samples,
            "backend": solver.backend,
            "rng_contract": solver.rng_contract,
        }
    return {}


# ---------------------------------------------------------------------- #
# Entity codecs (flat rows; floats round-trip bit-exactly through json)
# ---------------------------------------------------------------------- #


def task_row(task: SpatialTask) -> List[Any]:
    """``SpatialTask`` as a flat JSON row."""
    return [
        task.task_id,
        task.location.x,
        task.location.y,
        task.start,
        task.end,
        task.beta,
    ]


def task_from_row(row: Sequence[Any]) -> SpatialTask:
    """Inverse of :func:`task_row`."""
    return SpatialTask(
        task_id=int(row[0]),
        location=Point(row[1], row[2]),
        start=row[3],
        end=row[4],
        beta=row[5],
    )


def worker_row(worker: MovingWorker) -> List[Any]:
    """``MovingWorker`` as a flat JSON row.

    The stored cone ``lo`` is already normalised (``AngleInterval``
    normalises on construction and the mapping is idempotent), so the
    re-constructed interval is bit-identical.
    """
    return [
        worker.worker_id,
        worker.location.x,
        worker.location.y,
        worker.velocity,
        worker.cone.lo,
        worker.cone.width,
        worker.confidence,
        worker.depart_time,
    ]


def worker_from_row(row: Sequence[Any]) -> MovingWorker:
    """Inverse of :func:`worker_row`."""
    return MovingWorker(
        worker_id=int(row[0]),
        location=Point(row[1], row[2]),
        velocity=row[3],
        cone=AngleInterval(row[4], row[5]),
        confidence=row[6],
        depart_time=row[7],
    )


def encode_pinned(pinned) -> Optional[Dict[str, List[List[Any]]]]:
    """``{task id -> [WorkerProfile]}`` as JSON (None when empty)."""
    if not pinned:
        return None
    return {
        str(task_id): [
            [p.worker_id, p.angle, p.arrival, p.confidence] for p in profiles
        ]
        for task_id, profiles in pinned.items()
    }


def decode_pinned(obj) -> Optional[Dict[int, List[WorkerProfile]]]:
    """Inverse of :func:`encode_pinned`."""
    if not obj:
        return None
    return {
        int(task_id): [
            WorkerProfile(
                worker_id=int(row[0]),
                angle=row[1],
                arrival=row[2],
                confidence=row[3],
            )
            for row in rows
        ]
        for task_id, rows in obj.items()
    }


def encode_forbidden(forbidden) -> Optional[List[List[int]]]:
    """``{(worker id, task id)}`` as a sorted JSON list (None when empty)."""
    if not forbidden:
        return None
    return sorted([worker_id, task_id] for worker_id, task_id in forbidden)


def decode_forbidden(obj):
    """Inverse of :func:`encode_forbidden`."""
    if not obj:
        return None
    return {(int(worker_id), int(task_id)) for worker_id, task_id in obj}


# ---------------------------------------------------------------------- #
# RNG position
# ---------------------------------------------------------------------- #


def rng_spec(rng) -> Dict[str, Any]:
    """Serialise an engine's RNG so replay resumes the exact stream.

    An ``int`` seed is stateless across epochs (:func:`repro.algorithms.
    base.make_rng` builds a fresh generator from it each solve), so the
    value itself is the whole position.  A ``numpy.random.Generator``
    advances across epochs — ``substream_base_seed`` draws one integer
    from it per SAMPLING solve under both the ``substream-v1`` and the
    legacy ``shared-v0`` contract — so its *bit-generator state* is
    captured; a restore that re-seeded from scratch would silently
    diverge every subsequent plan.

    Raises:
        ValueError: for ``rng=None`` — a nondeterministic engine cannot
            honour the bit-identical replay contract.
        TypeError: for any other rng type.
    """
    if rng is None:
        raise ValueError(
            "durable logging requires a deterministic rng: pass an int seed "
            "or a numpy Generator to the engine, not rng=None"
        )
    if isinstance(rng, bool):
        raise TypeError(f"cannot serialise rng {rng!r}")
    if isinstance(rng, (int, np.integer)):
        return {"kind": "seed", "value": int(rng)}
    if isinstance(rng, np.random.Generator):
        return {"kind": "generator", "state": rng.bit_generator.state}
    raise TypeError(f"cannot serialise rng {type(rng).__name__!r}")


def rng_from_spec(spec: Dict[str, Any]):
    """Inverse of :func:`rng_spec`: the rng at its captured position."""
    if spec["kind"] == "seed":
        return int(spec["value"])
    state = spec["state"]
    bit_generator = getattr(np.random, state["bit_generator"])()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


# ---------------------------------------------------------------------- #
# Snapshot codec
# ---------------------------------------------------------------------- #


def _encode_plan(plan: Optional[PreviousPlan]) -> Optional[Dict[str, Any]]:
    if plan is None:
        return None
    return {
        "assignment": sorted(plan.assignment.pairs()),
        "signatures": {
            str(worker_id): [[task_id, arrival] for task_id, arrival in signature]
            for worker_id, signature in plan.signatures.items()
        },
        "population": plan.population,
    }


def _decode_plan(obj: Optional[Dict[str, Any]]) -> Optional[PreviousPlan]:
    if obj is None:
        return None
    return PreviousPlan(
        assignment=Assignment.from_pairs(
            [(int(t), int(w)) for t, w in obj["assignment"]]
        ),
        signatures={
            int(worker_id): tuple((int(t), arrival) for t, arrival in rows)
            for worker_id, rows in obj["signatures"].items()
        },
        population=int(obj["population"]),
    )


_DELTA_SETS = (
    "workers_arrived",
    "workers_left",
    "workers_updated",
    "workers_reanchored",
    "workers_held",
    "tasks_arrived",
    "tasks_removed",
)


def _encode_delta(delta: Optional[EpochDelta]) -> Optional[Dict[str, List[int]]]:
    if delta is None:
        return None
    return {name: sorted(getattr(delta, name)) for name in _DELTA_SETS}


def _decode_delta(obj: Optional[Dict[str, List[int]]]) -> EpochDelta:
    delta = EpochDelta()
    if obj is not None:
        for name in _DELTA_SETS:
            getattr(delta, name).update(int(i) for i in obj.get(name, ()))
    return delta


def encode_snapshot(snapshot) -> Dict[str, Any]:
    """An extended :class:`~repro.engine.engine.EngineSnapshot` as JSON."""
    return {
        "schema": SCHEMA_VERSION,
        "tasks": [task_row(task) for task in snapshot.tasks],
        "workers": [worker_row(worker) for worker in snapshot.workers],
        "held": sorted(snapshot.held),
        "assignment": sorted(snapshot.assignment.pairs()),
        "plan": _encode_plan(snapshot.plan),
        "delta": _encode_delta(snapshot.delta),
        "solve_mode": snapshot.solve_mode,
        "rng": snapshot.rng_state,
        "metrics": snapshot.metrics,
        "clock": snapshot.clock,
        "topology": snapshot.topology,
    }


def decode_snapshot(payload: Dict[str, Any]):
    """Inverse of :func:`encode_snapshot`."""
    from repro.engine.engine import EngineSnapshot

    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"snapshot schema {payload.get('schema')!r} is not the supported "
            f"version {SCHEMA_VERSION}"
        )
    return EngineSnapshot(
        tasks=tuple(task_from_row(row) for row in payload["tasks"]),
        workers=tuple(worker_from_row(row) for row in payload["workers"]),
        assignment=Assignment.from_pairs(
            [(int(t), int(w)) for t, w in payload["assignment"]]
        ),
        held=frozenset(int(i) for i in payload["held"]),
        plan=_decode_plan(payload["plan"]),
        delta=_decode_delta(payload["delta"]),
        solve_mode=payload["solve_mode"],
        rng_state=payload["rng"],
        metrics=payload["metrics"],
        clock=payload["clock"],
        topology=payload.get("topology"),
    )


def apply_snapshot(engine, snapshot) -> None:
    """Install a decoded snapshot into a freshly constructed engine.

    Tasks and workers re-register through the public churn methods in
    snapshot (insertion) order, so the grid index, the slot slabs and —
    on the sharded engine — the routing tables and halo aggregates are
    rebuilt by the same code paths the live engine used.  The registration
    side-effects on the delta and the metrics are then overwritten with
    the snapshot's own, and the solver-facing state (assignment, previous
    plan, RNG position) is installed directly.
    """
    if engine.num_tasks or engine.num_workers or engine.metrics.epochs:
        raise ValueError(
            "snapshots restore into a freshly constructed engine only; "
            "this one already holds state"
        )
    if snapshot.topology is not None:
        # The elastic shard-ownership table must be in force *before* any
        # entity re-registers, so every registration routes against the
        # recovered topology from the start.
        engine._install_topology(snapshot.topology)
    if list(snapshot.tasks):
        engine.add_tasks(list(snapshot.tasks))
    if list(snapshot.workers):
        engine.add_workers(list(snapshot.workers))
    for worker_id in sorted(snapshot.held):
        engine.hold_worker(worker_id)
    engine._assignment = snapshot.assignment.copy()
    engine._plan = snapshot.plan
    engine._delta = snapshot.delta if snapshot.delta is not None else EpochDelta()
    engine.metrics.restore_counters(snapshot.metrics)
    if snapshot.rng_state is not None:
        engine.rng = rng_from_spec(snapshot.rng_state)
    engine._clock = snapshot.clock


# ---------------------------------------------------------------------- #
# Replay
# ---------------------------------------------------------------------- #


def replay_records(engine, records: Sequence[LogRecord]) -> int:
    """Re-apply decoded log records through the engine's own methods.

    Epoch markers restore the logged RNG position first, then re-run
    :meth:`~repro.engine.engine.AssignmentEngine.epoch` with the logged
    ``now`` / pinned / forbidden arguments — the solver reruns, which is
    what makes the replayed plans bit-identical rather than merely
    recorded.  Returns the number of records applied.
    """
    applied = 0
    for _, kind, _, payload in records:
        if kind == "task_arrive":
            engine.add_tasks([task_from_row(payload["task"])])
        elif kind == "task_withdraw":
            engine.withdraw_task(int(payload["task_id"]))
        elif kind == "worker_arrive":
            engine.add_workers([worker_from_row(payload["worker"])])
        elif kind == "worker_leave":
            engine.remove_worker(int(payload["worker_id"]))
        elif kind == "worker_update":
            engine.update_workers([worker_from_row(payload["worker"])])
        elif kind == "worker_hold":
            engine.hold_worker(int(payload["worker_id"]))
        elif kind == "worker_release":
            engine.release_worker(int(payload["worker_id"]))
        elif kind == "expire":
            engine.expire_tasks(payload["now"])
        elif kind == "rebalance":
            # Logged before its epoch marker by the elastic engine; the
            # replayed epoch's policy stays quiet (suppression is held),
            # so the logged ops are the only reshapes applied.
            engine.apply_rebalance(payload["ops"])
        elif kind == "epoch":
            engine.rng = rng_from_spec(payload["rng"])
            engine.epoch(
                payload["now"],
                pinned=decode_pinned(payload["pinned"]),
                forbidden=decode_forbidden(payload["forbidden"]),
            )
        else:
            raise ValueError(f"unknown durable event kind {kind!r}")
        applied += 1
    return applied


# ---------------------------------------------------------------------- #
# Recovery
# ---------------------------------------------------------------------- #


def restore_engine(
    path,
    solver=None,
    solve_executor=None,
    shard_executor: Optional[str] = None,
):
    """Recover a live engine from a durable log: snapshot + tail replay.

    Builds the engine class recorded in the log's meta row with its
    recorded configuration, installs the latest snapshot, replays every
    event after it, and adopts the log so the recovered engine keeps
    appending where the dead one stopped.

    Args:
        path: the SQLite log written by an engine's ``durable_path=``.
        solver: the solver to plan with — it must be configured exactly
            as the original.  The log records the class name *and* the
            constructor-parameter fingerprint (:func:`solver_config`);
            both are checked, so a wrong sampling budget or backend fails
            here rather than replaying a different decision sequence.
            ``None`` keeps the engine's default solver.
        solve_executor: optional solve parallelism for the recovered
            engine (``None`` / process count / executor instance, as for
            the engine constructors).  Plans are bit-identical either
            way.
        shard_executor: override the sharded engine's fan-out executor
            (``"sequential"`` / ``"process"``); ``None`` keeps the
            recorded one.  State and plans are identical either way.

    Raises:
        ValueError: for a log without a session, a schema mismatch, or a
            solver class or configuration differing from the recorded
            ones.
    """
    from repro.engine.elastic import ElasticShardedAssignmentEngine
    from repro.engine.engine import AssignmentEngine
    from repro.engine.sharding import ShardedAssignmentEngine

    log = DurableLog(path)
    try:
        meta = log.meta()
        if not meta:
            raise ValueError(f"{path} holds no durable engine session")
        if meta.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"durable log schema {meta.get('schema')!r} is not the "
                f"supported version {SCHEMA_VERSION}"
            )
        located = log.latest_snapshot()
        if located is None:
            raise ValueError(f"{path} holds no snapshot to restore from")
        snap_seq, snap_payload = located
        common = dict(
            solver=solver,
            eta=meta["eta"],
            validity=ValidityRule(allow_waiting=meta["allow_waiting"]),
            rng=None,
            backend=meta["backend"],
            reanchor_on_epoch=meta["reanchor_on_epoch"],
            solve_mode=meta["solve_mode"],
            warm_churn_threshold=meta["warm_churn_threshold"],
            solve_executor=solve_executor,
        )
        if meta["engine"] == "ElasticShardedAssignmentEngine":
            engine = ElasticShardedAssignmentEngine(
                num_shards=meta["num_shards"],
                halo=meta["halo"],
                executor=shard_executor or meta["shard_executor"],
                rebalance=meta.get("rebalance"),
                diff_shipping=meta.get("diff_shipping", True),
                **common,
            )
        elif meta["engine"] == "ShardedAssignmentEngine":
            engine = ShardedAssignmentEngine(
                num_shards=meta["num_shards"],
                halo=meta["halo"],
                executor=shard_executor or meta["shard_executor"],
                **common,
            )
        else:
            engine = AssignmentEngine(use_index=meta["use_index"], **common)
        try:
            if type(engine.solver).__name__ != meta["solver"]:
                raise ValueError(
                    f"log was written with solver {meta['solver']!r} but the "
                    f"restore got {type(engine.solver).__name__!r}; pass the "
                    "original solver (configured identically) to restore_engine"
                )
            recorded_config = meta.get("solver_config")
            if recorded_config is not None:
                # Absent only in pre-fingerprint logs, which keep the old
                # class-name-only validation.  JSON round-trips the dict's
                # bools/ints/floats/strings losslessly, so plain equality
                # is the right comparison.
                actual_config = solver_config(engine.solver)
                if actual_config != recorded_config:
                    raise ValueError(
                        f"log was written with {meta['solver']} configured as "
                        f"{recorded_config!r} but the restore got "
                        f"{actual_config!r}; configure the solver exactly as "
                        "the original session did"
                    )
            engine._durable_suppress += 1
            try:
                apply_snapshot(engine, decode_snapshot(snap_payload))
                replay_records(engine, log.tail(snap_seq))
            finally:
                engine._durable_suppress -= 1
        except BaseException:
            engine.close()
            raise
        engine._adopt_durable(log, snapshot_every=meta.get("snapshot_every"))
    except BaseException:
        log.close()
        raise
    return engine
