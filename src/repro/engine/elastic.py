"""Elastic shards: resident sub-problems, diff shipping, rebalancing.

The sharded engine (:mod:`repro.engine.sharding`) fans index work out to
per-shard sub-grids, but its blocks are *static* and every epoch ships
typed event objects whose pickles are dominated by per-instance overhead.
Under the drifting populations of the source paper's spatial-
crowdsourcing regime that is the wrong shape twice over: a marching
worker fleet piles into one block while the other residents idle, and
the wire cost does not shrink with warm mode's tiny deltas.  This module
makes the shard workers **resident and elastic**:

**Residency + diff shipping.**  Each shard's sub-grid lives in a
:class:`ResidentShard` that persists across epochs (in-process under the
sequential executor; pinned to one worker process for its lifetime via
:class:`repro.engine.parallel.PinnedWorkerPools` under the process
executor) and receives only a versioned :class:`ShardDiff` per epoch —
the shard's coalesced churn runs packed into flat ``int64``/``float64``
columns (:func:`repro.fastpath.arrays.pack_diff`).  Every diff carries
the engine's expected post-apply state **fingerprint** (an XOR of
per-entity CRC32 digests, maintained O(delta) on both sides); a version
or fingerprint mismatch makes the resident report *stale* instead of
pairs, and the engine answers with a full resync diff that rebuilds it —
a restarted or drifted resident self-heals within one fan-out.

**Elasticity.**  :class:`ElasticShardedAssignmentEngine` applies
:class:`ShardMap <repro.engine.sharding.ShardMap>` split/merge/migrate
ops at epoch boundaries, driven by a :class:`RebalancePolicy` load
metric (owned residents per shard — the live stand-in for the Eq. 22
cost model in :mod:`repro.index.cost_model`, whose per-shard update cost
scales with exactly this count).  A reshape re-routes the affected
workers and halo replicas through the ordinary diff mechanism and is
WAL-logged as a ``rebalance`` event *before* its epoch marker, so
kill-and-recover (:func:`repro.engine.durable.restore_engine`) replays
the same topology trajectory bit-exactly.  Diff building and reshapes
surface as the ``diff_ship`` and ``rebalance`` phases in
:class:`~repro.engine.profile.PhaseProfiler` epoch records.

**The invariant is unchanged.**  Any shard count, any rebalance
schedule, any executor: the merged pair set equals the single grid's
(each worker is owned exactly once and its tasks are halo-replicated to
its owner, so the concatenate-and-sort merge sees every pair exactly
once), the solve stays global, and plans plus
:meth:`~repro.engine.metrics.EngineMetrics.counters` are bit-identical
to the single-shard engine — ``tests/test_elastic.py`` pins this across
drift scenarios, shard counts, backends and solve modes, and
``benchmarks/bench_elastic.py`` records the diff-vs-full-ship payoff
into ``BENCH_elastic.json``.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import RngLike, Solver
from repro.core.problem import ValidPair
from repro.core.task import SpatialTask
from repro.core.validity import ValidityRule
from repro.core.worker import MovingWorker
from repro.engine import events as ev
from repro.engine.sharding import ShardedAssignmentEngine
from repro.fastpath.arrays import (
    PackedRun,
    diff_nbytes,
    pack_diff,
    pack_pairs,
    unpack_diff,
    unpack_pairs,
)
from repro.index.grid import RdbscGrid, cell_coords

#: Fixed per-diff wire overhead (shard id, versions, flag, fingerprint)
#: counted by :attr:`ShardDiff.nbytes` on top of the column payloads.
DIFF_HEADER_BYTES = 40

#: Per-entity wire sizes of the packed full-resync rows (id column plus
#: the float field columns) — what one epoch of full re-ship costs per
#: resident entity, used for the hypothetical full-ship byte accounting.
WORKER_WIRE_BYTES = 8 + 7 * 8
TASK_WIRE_BYTES = 8 + 5 * 8

#: A resident's fan-out report: ``("ok", version, pairs, stat deltas)``
#: after a clean apply, or ``("stale", version, [], {})`` when the diff's
#: base version or post-apply fingerprint did not match and a full
#: resync is needed.
ResidentReport = Tuple[str, int, List[ValidPair], Dict[str, int]]


def worker_digest(worker: MovingWorker) -> int:
    """CRC32 digest of a worker's wire fields (fingerprint contribution).

    Computed from the same seven ``float64`` constructor fields the diff
    wire format ships (:data:`repro.fastpath.arrays.WORKER_WIRE_FIELDS`),
    so the engine digesting its live object and a resident digesting the
    unpacked copy always agree.  ``zlib.crc32`` is deterministic across
    processes and runs, unlike Python's salted ``hash``.
    """
    return zlib.crc32(
        struct.pack(
            "<cq7d",
            b"w",
            worker.worker_id,
            worker.location.x,
            worker.location.y,
            worker.velocity,
            worker.cone.lo,
            worker.cone.width,
            worker.confidence,
            worker.depart_time,
        )
    )


def task_digest(task: SpatialTask) -> int:
    """CRC32 digest of a task's wire fields (fingerprint contribution)."""
    return zlib.crc32(
        struct.pack(
            "<cq5d",
            b"t",
            task.task_id,
            task.location.x,
            task.location.y,
            task.start,
            task.end,
            task.beta,
        )
    )


@dataclass(frozen=True)
class ShardDiff:
    """One epoch's versioned state delta for one resident shard.

    Attributes:
        shard_id: the resident this diff is addressed to.
        base_version: resident state version this diff applies on top of
            (``-1`` for a full resync, which applies on any version).
        version: the resident's version after a successful apply.
        full: when true, ``runs`` carry the shard's *entire* routed state
            (sorted arrive runs) and the resident rebuilds from scratch.
        runs: the packed coalesced churn runs, in application order
            (:func:`repro.fastpath.arrays.pack_diff`).
        fingerprint: the engine's expected resident fingerprint *after*
            applying this diff — the self-healing key: a resident whose
            accumulated fingerprint disagrees reports stale and gets a
            full resync.
    """

    shard_id: int
    base_version: int
    version: int
    full: bool
    runs: Tuple[PackedRun, ...]
    fingerprint: int

    @property
    def nbytes(self) -> int:
        """Wire payload bytes: packed columns plus the fixed header."""
        return diff_nbytes(self.runs) + DIFF_HEADER_BYTES


class ResidentShard:
    """One shard's persistent sub-grid, fed by versioned diffs.

    The diff-shipping twin of :class:`repro.engine.sharding.ShardState`:
    it holds an :class:`~repro.index.grid.RdbscGrid` over the shard's
    routed residents across epochs and advances it by applying
    :class:`ShardDiff` runs — the same grouped grid calls, in the same
    order, as an in-process apply of the original event batch, which is
    the bit-identity argument for shipping diffs at all.  Alongside the
    grid it accumulates the per-entity digest fingerprint; a diff whose
    ``base_version`` or expected ``fingerprint`` does not match makes
    :meth:`apply` report stale, and the engine's full-resync diff then
    rebuilds grid, digests and version from scratch.
    """

    def __init__(
        self,
        shard_id: int,
        eta: float,
        validity: Optional[ValidityRule] = None,
        backend: str = "python",
    ) -> None:
        self.shard_id = shard_id
        self._eta = eta
        self._validity = validity
        self._backend = backend
        self.version = 0
        self.fingerprint = 0
        self._worker_digests: Dict[int, int] = {}
        self._task_digests: Dict[int, int] = {}
        self.grid = RdbscGrid(eta, validity, backend=backend)
        self._reported = dict(self.grid.stats)

    def _reset(self) -> None:
        self.fingerprint = 0
        self._worker_digests = {}
        self._task_digests = {}
        self.grid = RdbscGrid(self._eta, self._validity, backend=self._backend)
        self._reported = dict(self.grid.stats)

    def _apply_runs(self, runs: Sequence[Tuple[str, object]]) -> None:
        for kind, payload in runs:
            if kind == "worker_update":
                for worker in payload:  # type: ignore[union-attr]
                    digest = worker_digest(worker)
                    self.fingerprint ^= self._worker_digests[worker.worker_id]
                    self.fingerprint ^= digest
                    self._worker_digests[worker.worker_id] = digest
                self.grid.update_workers(payload)
            elif kind == "worker_arrive":
                for worker in payload:  # type: ignore[union-attr]
                    digest = worker_digest(worker)
                    self.fingerprint ^= digest
                    self._worker_digests[worker.worker_id] = digest
                self.grid.insert_workers(payload)
            elif kind == "worker_leave":
                for worker_id in payload:  # type: ignore[union-attr]
                    self.fingerprint ^= self._worker_digests.pop(worker_id)
                    self.grid.remove_worker(worker_id)
            elif kind == "task_arrive":
                for task in payload:  # type: ignore[union-attr]
                    digest = task_digest(task)
                    self.fingerprint ^= digest
                    self._task_digests[task.task_id] = digest
                self.grid.insert_tasks(payload)
            elif kind == "task_withdraw":
                for task_id in payload:  # type: ignore[union-attr]
                    self.fingerprint ^= self._task_digests.pop(task_id)
                    self.grid.remove_task(task_id)
            else:
                raise TypeError(
                    f"resident {self.shard_id}: unroutable run kind {kind!r}"
                )

    def apply(self, diff: ShardDiff) -> ResidentReport:
        """Apply one diff and report pairs, or report stale for a resync.

        A full diff rebuilds the resident unconditionally and *must*
        land on the engine's expected fingerprint — the full state
        defines it, so a mismatch is a protocol bug, not drift, and
        raises.  An incremental diff first checks ``base_version``
        (catches restarted or skipped residents), applies, then checks
        the accumulated fingerprint (catches silent divergence); either
        failure reports ``("stale", version, [], {})`` and leaves the
        engine to ship a full resync.
        """
        if diff.full:
            self._reset()
            self._apply_runs(unpack_diff(diff.runs))
            if self.fingerprint != diff.fingerprint:
                raise RuntimeError(
                    f"resident {self.shard_id}: full resync landed on "
                    f"fingerprint {self.fingerprint:#x}, engine expected "
                    f"{diff.fingerprint:#x} — diff protocol bug"
                )
            self.version = diff.version
        else:
            if diff.base_version != self.version:
                return ("stale", self.version, [], {})
            self._apply_runs(unpack_diff(diff.runs))
            self.version = diff.version
            if self.fingerprint != diff.fingerprint:
                return ("stale", self.version, [], {})
        pairs = self.grid.valid_pairs()
        delta = {
            key: value - self._reported[key]
            for key, value in self.grid.stats.items()
        }
        self._reported = dict(self.grid.stats)
        return ("ok", self.version, pairs, delta)


class SequentialResidentExecutor:
    """In-process residents: zero serialisation, deterministic order.

    The reference executor — diffs are still built, versioned and
    fingerprint-checked exactly as for the process executor, so the
    differential and property suites exercise the whole protocol without
    process-pool nondeterminism or start-up cost.
    """

    def __init__(self, residents: Sequence[ResidentShard]) -> None:
        self.residents = list(residents)

    def apply(self, diffs: Sequence[ShardDiff]) -> List[ResidentReport]:
        """Apply one diff per resident, positionally, in shard order."""
        return [
            resident.apply(diff)
            for resident, diff in zip(self.residents, diffs)
        ]

    def apply_at(
        self, indexed: Sequence[Tuple[int, ShardDiff]]
    ) -> List[ResidentReport]:
        """Apply resync diffs to specific residents (the stale slots)."""
        return [self.residents[slot].apply(diff) for slot, diff in indexed]

    def close(self) -> None:
        """Nothing to release."""


_RESIDENT: Optional[ResidentShard] = None


def _resident_init(
    shard_id: int, eta: float, validity: Optional[ValidityRule], backend: str
) -> None:
    """Worker-process initialiser: build this slot's empty resident."""
    global _RESIDENT
    _RESIDENT = ResidentShard(shard_id, eta, validity, backend=backend)


def _resident_apply(diff: ShardDiff):
    """Apply one diff in the worker process; pairs travel packed."""
    assert _RESIDENT is not None
    kind, version, pairs, stats = _RESIDENT.apply(diff)
    return kind, version, pack_pairs(pairs), stats


class ProcessResidentExecutor:
    """Pinned worker processes, one resident per slot, fed diffs only.

    Each resident is *born empty in its process* (the initialiser builds
    it there — nothing is shipped at start-up) and then lives in that
    process for the engine's lifetime thanks to the single-worker-pool
    affinity of :class:`repro.engine.parallel.PinnedWorkerPools`.  Every
    epoch ships one packed :class:`ShardDiff` out per shard and one
    packed pair report back; a resident lost to a worker restart simply
    reports stale (its rebuilt twin is at version 0) and is healed by the
    engine's full resync on the same fan-out.
    """

    def __init__(
        self,
        num_shards: int,
        eta: float,
        validity: Optional[ValidityRule],
        backend: str,
    ) -> None:
        from repro.engine.parallel import PinnedWorkerPools

        self.pools = PinnedWorkerPools(
            num_shards,
            initializer=_resident_init,
            initargs_per_slot=[
                (shard_id, eta, validity, backend)
                for shard_id in range(num_shards)
            ],
        )

    @staticmethod
    def _unpack(report) -> ResidentReport:
        kind, version, packed, stats = report
        return (kind, version, unpack_pairs(packed), stats)

    def apply(self, diffs: Sequence[ShardDiff]) -> List[ResidentReport]:
        """Fan one diff per resident out; block until every slot reports."""
        futures = [
            self.pools.submit(slot, _resident_apply, diff)
            for slot, diff in enumerate(diffs)
        ]
        return [self._unpack(future.result()) for future in futures]

    def apply_at(
        self, indexed: Sequence[Tuple[int, ShardDiff]]
    ) -> List[ResidentReport]:
        """Ship resync diffs to specific residents (the stale slots)."""
        futures = [
            self.pools.submit(slot, _resident_apply, diff)
            for slot, diff in indexed
        ]
        return [self._unpack(future.result()) for future in futures]

    def close(self) -> None:
        """Shut down every resident's worker process."""
        self.pools.close()


class RebalancePolicy:
    """Deterministic epoch-boundary reshape decisions from shard loads.

    The load metric is owned workers per shard — the count the Eq. 22
    cost model (:func:`repro.index.cost_model.update_cost`) says drives a
    shard's per-epoch update cost.  Checked every ``every`` epochs, the
    policy emits at most one op:

    1. **merge** — an active shard whose load has drained to zero donates
       its cells to the least-loaded other active shard, going dormant
       (freeing resident capacity for a later split);
    2. **split** — when the busiest shard exceeds ``imbalance`` times the
       least-loaded active shard and a dormant slot is free, it gives
       the dormant shard a cell subset carrying about half its load;
    3. **migrate** — with no dormant slot, up to ``max_cells`` cells move
       from the busiest shard toward the least-loaded one, aiming at the
       midpoint of their loads.

    Decisions are pure functions of the engine's current topology, load
    counts and epoch index, so a recovered engine (same WAL-replayed
    state, same policy configuration) makes the same future decisions —
    the determinism the kill-and-recover suite pins.

    Args:
        every: epochs between checks (the op itself always lands at an
            epoch boundary).
        imbalance: busiest-to-idlest load ratio that triggers a reshape.
        min_workers: global population floor below which the policy stays
            quiet (rebalancing a handful of workers is all overhead).
        max_cells: migrate's per-op cell cap (splits move up to half the
            donor's load regardless, since they fill an idle resident).
    """

    def __init__(
        self,
        every: int = 4,
        imbalance: float = 2.0,
        min_workers: int = 8,
        max_cells: int = 2,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be positive, got {every}")
        if imbalance < 1.0:
            raise ValueError(f"imbalance must be >= 1, got {imbalance}")
        if max_cells < 1:
            raise ValueError(f"max_cells must be positive, got {max_cells}")
        self.every = int(every)
        self.imbalance = float(imbalance)
        self.min_workers = int(min_workers)
        self.max_cells = int(max_cells)

    def config(self) -> Dict[str, object]:
        """The constructor arguments, for the durable log's meta row."""
        return {
            "every": self.every,
            "imbalance": self.imbalance,
            "min_workers": self.min_workers,
            "max_cells": self.max_cells,
        }

    @staticmethod
    def _cell_loads(
        engine: "ElasticShardedAssignmentEngine", shard_id: int
    ) -> Dict[Tuple[int, int], int]:
        shard_map = engine.shard_map
        loads: Dict[Tuple[int, int], int] = {}
        for worker_id, owner in engine._worker_shard.items():
            if owner != shard_id:
                continue
            cell = cell_coords(
                engine._workers[worker_id].location,
                shard_map.eta,
                shard_map.n_cols,
            )
            loads[cell] = loads.get(cell, 0) + 1
        return loads

    @staticmethod
    def _choose_cells(
        donor_cells: Sequence[Tuple[int, int]],
        cell_loads: Dict[Tuple[int, int], int],
        target_load: int,
        max_cells: Optional[int],
    ) -> List[Tuple[int, int]]:
        """Greedy heaviest-first cell subset carrying about target_load.

        Only loaded cells are candidates (moving empty cells reshapes
        nothing), a cell heavier than the remaining budget is skipped
        (cell granularity is the floor of what a reshape can fix), and
        at least one donor cell always stays behind by construction
        (``target_load`` is below the donor's total).
        """
        ranked = sorted(
            (cell for cell in donor_cells if cell_loads.get(cell, 0) > 0),
            key=lambda cell: (-cell_loads[cell], cell),
        )
        chosen: List[Tuple[int, int]] = []
        remaining = target_load
        for cell in ranked:
            if max_cells is not None and len(chosen) >= max_cells:
                break
            load = cell_loads[cell]
            if load <= remaining:
                chosen.append(cell)
                remaining -= load
        return sorted(chosen)

    def plan(
        self, engine: "ElasticShardedAssignmentEngine"
    ) -> List[Dict[str, object]]:
        """At most one reshape op for the coming epoch (often none)."""
        shard_map = engine.shard_map
        num_shards = shard_map.num_shards
        if num_shards < 2 or engine.metrics.epochs % self.every != 0:
            return []
        loads = list(engine._shard_worker_count)
        if sum(loads) < self.min_workers:
            return []
        active = [
            shard_id
            for shard_id in range(num_shards)
            if not shard_map.is_dormant(shard_id)
        ]
        drained = [shard_id for shard_id in active if loads[shard_id] == 0]
        if drained and len(active) > 1:
            donor = drained[0]
            target = min(
                (shard_id for shard_id in active if shard_id != donor),
                key=lambda shard_id: (loads[shard_id], shard_id),
            )
            return [
                {
                    "kind": "merge",
                    "from": donor,
                    "to": target,
                    "cells": [
                        [row, col]
                        for row, col in shard_map.owned_cells(donor)
                    ],
                }
            ]
        busiest = max(range(num_shards), key=lambda s: (loads[s], -s))
        idle_load = min(loads[shard_id] for shard_id in active)
        if loads[busiest] <= self.imbalance * max(1.0, idle_load):
            return []
        donor_cells = shard_map.owned_cells(busiest)
        if len(donor_cells) < 2:
            return []
        cell_loads = self._cell_loads(engine, busiest)
        dormant = [
            shard_id
            for shard_id in range(num_shards)
            if shard_map.is_dormant(shard_id)
        ]
        if dormant:
            cells = self._choose_cells(
                donor_cells, cell_loads, loads[busiest] // 2, max_cells=None
            )
            if not cells or len(cells) >= len(donor_cells):
                return []
            return [
                {
                    "kind": "split",
                    "from": busiest,
                    "to": dormant[0],
                    "cells": [[row, col] for row, col in cells],
                }
            ]
        target = min(
            (shard_id for shard_id in active if shard_id != busiest),
            key=lambda shard_id: (loads[shard_id], shard_id),
        )
        cells = self._choose_cells(
            donor_cells,
            cell_loads,
            (loads[busiest] - loads[target]) // 2,
            max_cells=self.max_cells,
        )
        if not cells or len(cells) >= len(donor_cells):
            return []
        return [
            {
                "kind": "migrate",
                "from": busiest,
                "to": target,
                "cells": [[row, col] for row, col in cells],
            }
        ]


class ElasticShardedAssignmentEngine(ShardedAssignmentEngine):
    """The sharded engine with resident diff-fed shards and rebalancing.

    A drop-in :class:`~repro.engine.sharding.ShardedAssignmentEngine`
    (same churn methods, same ``epoch()``, bit-identical plans and
    counters) whose fan-out ships versioned :class:`ShardDiff` packets to
    persistent :class:`ResidentShard` states instead of event batches to
    throwaway ones, and whose :class:`~repro.engine.sharding.ShardMap`
    reshapes at epoch boundaries under a :class:`RebalancePolicy` (or
    explicit :meth:`apply_rebalance` calls).  Byte-level shipping and
    reshape accounting accumulates in :attr:`elastic_stats`.

    Args:
        solver / eta / validity / rng / backend / num_shards / halo /
            reanchor_on_epoch / solve_mode / warm_churn_threshold /
            solve_executor / durable_snapshot_every: as for
            :class:`~repro.engine.sharding.ShardedAssignmentEngine`.
        executor: ``"sequential"`` (in-process residents, default) or
            ``"process"`` (one pinned worker process per resident).
        rebalance: the reshape driver — a :class:`RebalancePolicy`, a
            config dict for one (how the durable log records it), or
            ``None`` for manual-only elasticity via
            :meth:`apply_rebalance`.
        diff_shipping: when false, every epoch ships a full resync
            instead of a diff — the "re-ship the whole packed
            sub-instance" baseline ``benchmarks/bench_elastic.py``
            measures against; plans are identical either way.
        durable_path: write-ahead log as for the base engines; rebalance
            ops are logged as ``rebalance`` events before their epoch
            marker and snapshots carry the ownership table, so recovery
            reproduces the topology trajectory bit-exactly.
    """

    def __init__(
        self,
        solver: Optional[Solver] = None,
        eta: float = 0.125,
        validity: Optional[ValidityRule] = None,
        rng: RngLike = None,
        backend: str = "python",
        num_shards: int = 4,
        halo: Optional[float] = None,
        executor: str = "sequential",
        rebalance=None,
        diff_shipping: bool = True,
        reanchor_on_epoch: bool = False,
        solve_mode: str = "full",
        warm_churn_threshold: float = 0.25,
        solve_executor=None,
        durable_path=None,
        durable_snapshot_every: int = 16,
    ) -> None:
        if executor not in ("sequential", "process"):
            raise ValueError(f"unknown executor {executor!r}")
        super().__init__(
            solver=solver,
            eta=eta,
            validity=validity,
            rng=rng,
            backend=backend,
            num_shards=num_shards,
            halo=halo,
            executor="sequential",
            reanchor_on_epoch=reanchor_on_epoch,
            solve_mode=solve_mode,
            warm_churn_threshold=warm_churn_threshold,
            solve_executor=solve_executor,
            durable_path=None,
            durable_snapshot_every=durable_snapshot_every,
        )
        # Replace the base class's batch-shipping executor (built empty a
        # moment ago; closing it is free) with a resident one.
        self.executor.close()
        self._executor_kind = executor
        if executor == "sequential":
            self.executor = SequentialResidentExecutor(
                [
                    ResidentShard(shard_id, eta, self.validity, backend=backend)
                    for shard_id in range(num_shards)
                ]
            )
        else:
            self.executor = ProcessResidentExecutor(
                num_shards, eta, self.validity, backend
            )
        if isinstance(rebalance, dict):
            rebalance = RebalancePolicy(**rebalance)
        #: The reshape driver (``None`` = manual-only elasticity).
        self.policy: Optional[RebalancePolicy] = rebalance
        self.diff_shipping = bool(diff_shipping)
        # Per-shard diff protocol state: the version each resident should
        # be at and the fingerprint its state should accumulate to, plus
        # the entity digests and per-shard resident counts backing them —
        # all maintained O(delta) at the routing hooks.
        self._shard_version = [0] * num_shards
        self._shard_fp = [0] * num_shards
        self._worker_digest: Dict[int, int] = {}
        self._task_digest: Dict[int, int] = {}
        self._shard_worker_count = [0] * num_shards
        self._shard_task_count = [0] * num_shards
        #: Cumulative shipping + reshape accounting: ``diff_bytes`` (what
        #: the fan-outs actually shipped, resyncs included),
        #: ``full_bytes`` (what full re-ship would have cost the same
        #: fan-outs), ``resyncs`` (stale residents healed), and the
        #: reshape op counts.
        self.elastic_stats: Dict[str, int] = {
            "diff_bytes": 0,
            "full_bytes": 0,
            "resyncs": 0,
            "rebalance_ops": 0,
            "splits": 0,
            "merges": 0,
            "migrates": 0,
        }
        if durable_path is not None:
            self._start_durable(durable_path)

    def _durable_config(self) -> dict:
        """Sharded meta plus the elastic knobs a recovery must reproduce."""
        config = super()._durable_config()
        config["shard_executor"] = self._executor_kind
        config["rebalance"] = None if self.policy is None else self.policy.config()
        config["diff_shipping"] = self.diff_shipping
        return config

    def _topology_snapshot(self) -> Optional[dict]:
        """The shard ownership table, stored in durable snapshots."""
        return self.shard_map.topology()

    def _install_topology(self, topology: dict) -> None:
        """Adopt a snapshot's ownership table (fresh engines only).

        Runs before :func:`repro.engine.durable.apply_snapshot`
        re-registers any entity, so every registration routes against the
        recovered topology from the start.
        """
        self.shard_map.install(topology)

    # ------------------------------------------------------------------ #
    # Routing hooks: base routing plus digest/fingerprint bookkeeping
    # ------------------------------------------------------------------ #

    def _index_insert_tasks(self, tasks: Sequence[SpatialTask]) -> None:
        super()._index_insert_tasks(tasks)
        for task in tasks:
            digest = task_digest(task)
            self._task_digest[task.task_id] = digest
            for shard_id in self._task_shards[task.task_id]:
                self._shard_fp[shard_id] ^= digest
                self._shard_task_count[shard_id] += 1

    def _index_remove_task(self, task_id: int) -> None:
        shards = self._task_shards[task_id]
        digest = self._task_digest.pop(task_id)
        super()._index_remove_task(task_id)
        for shard_id in shards:
            self._shard_fp[shard_id] ^= digest
            self._shard_task_count[shard_id] -= 1

    def _index_add_workers(self, workers: Sequence[MovingWorker]) -> None:
        super()._index_add_workers(workers)
        for worker in workers:
            digest = worker_digest(worker)
            self._worker_digest[worker.worker_id] = digest
            shard_id = self._worker_shard[worker.worker_id]
            self._shard_fp[shard_id] ^= digest
            self._shard_worker_count[shard_id] += 1

    def _index_remove_worker(self, worker_id: int) -> None:
        shard_id = self._worker_shard[worker_id]
        digest = self._worker_digest.pop(worker_id)
        super()._index_remove_worker(worker_id)
        self._shard_fp[shard_id] ^= digest
        self._shard_worker_count[shard_id] -= 1

    def _index_update_workers(self, workers: Sequence[MovingWorker]) -> None:
        previous = [
            (
                worker.worker_id,
                self._worker_shard[worker.worker_id],
                self._worker_digest[worker.worker_id],
            )
            for worker in workers
        ]
        super()._index_update_workers(workers)
        for (worker_id, old_shard, old_digest), worker in zip(previous, workers):
            new_shard = self._worker_shard[worker_id]
            new_digest = worker_digest(worker)
            self._shard_fp[old_shard] ^= old_digest
            self._shard_fp[new_shard] ^= new_digest
            self._worker_digest[worker_id] = new_digest
            if new_shard != old_shard:
                self._shard_worker_count[old_shard] -= 1
                self._shard_worker_count[new_shard] += 1

    # ------------------------------------------------------------------ #
    # Rebalancing
    # ------------------------------------------------------------------ #

    def apply_rebalance(self, ops: Sequence[Dict[str, object]]) -> None:
        """Apply reshape ops and re-route the entities they move.

        Each op reshapes the :class:`~repro.engine.sharding.ShardMap`;
        workers whose cells changed owner then migrate between residents
        as leave/arrive diff runs, and tasks whose halo replica sets
        changed are re-replicated — all through the ordinary pending
        buffers, so the next fan-out ships the reshape as part of the
        per-shard diffs and the merged pair set (hence the plan) is
        untouched.  Live calls append one ``rebalance`` WAL event;
        during recovery the replayed event re-applies the same ops in
        the same pre-epoch position.

        Raises:
            ValueError: from :meth:`~repro.engine.sharding.ShardMap.
                apply_op` when an op does not validate against the
                current ownership.
        """
        if not ops:
            return
        with self.profiler.phase("rebalance"):
            for op in ops:
                self.shard_map.apply_op(op)
                self.elastic_stats[f"{op['kind']}s"] += 1
                self.elastic_stats["rebalance_ops"] += 1
            for worker_id, old_shard in list(self._worker_shard.items()):
                worker = self._workers[worker_id]
                new_shard = self.shard_map.shard_of_point(worker.location)
                if new_shard == old_shard:
                    continue
                self._worker_shard[worker_id] = new_shard
                self._buffer(
                    old_shard, ev.WorkerLeave(time=0.0, worker_id=worker_id)
                )
                self._buffer(new_shard, ev.WorkerArrive(time=0.0, worker=worker))
                digest = self._worker_digest[worker_id]
                self._shard_fp[old_shard] ^= digest
                self._shard_fp[new_shard] ^= digest
                self._shard_worker_count[old_shard] -= 1
                self._shard_worker_count[new_shard] += 1
            for task_id, old_shards in list(self._task_shards.items()):
                task = self._tasks[task_id]
                new_shards = self.shard_map.shards_for_task(task.location)
                if new_shards == old_shards:
                    continue
                digest = self._task_digest[task_id]
                old_set, new_set = set(old_shards), set(new_shards)
                for shard_id in sorted(old_set - new_set):
                    self._buffer(
                        shard_id, ev.TaskWithdraw(time=0.0, task_id=task_id)
                    )
                    self._shard_fp[shard_id] ^= digest
                    self._shard_task_count[shard_id] -= 1
                for shard_id in sorted(new_set - old_set):
                    self._buffer(shard_id, ev.TaskArrive(time=0.0, task=task))
                    self._shard_fp[shard_id] ^= digest
                    self._shard_task_count[shard_id] += 1
                self._task_shards[task_id] = new_shards
        self._durable_append(
            [("rebalance", {"ops": [dict(op) for op in ops]})]
        )

    def epoch(self, now=0.0, pinned=None, forbidden=None):
        """One re-planning instant, preceded by a policy rebalance check.

        The policy runs only on *live* epochs: during WAL replay
        (``_durable_suppress`` held by the recovery) the logged
        ``rebalance`` events re-apply the original decisions instead, so
        a recovered trajectory cannot double-rebalance.
        """
        if (
            self.policy is not None
            and not self._durable_suppress
            and not self._epoch_active
            and not self._closed
        ):
            ops = self.policy.plan(self)
            if ops:
                self.apply_rebalance(ops)
        return super().epoch(now, pinned=pinned, forbidden=forbidden)

    # ------------------------------------------------------------------ #
    # Diff-shipping fan-out
    # ------------------------------------------------------------------ #

    def _build_diff(
        self, shard_id: int, events: Sequence[ev.Event]
    ) -> ShardDiff:
        from repro.engine.scheduler import coalesce_churn

        if not self.diff_shipping:
            return self._build_full_diff(shard_id, bump=True)
        base = self._shard_version[shard_id]
        self._shard_version[shard_id] = base + 1
        return ShardDiff(
            shard_id=shard_id,
            base_version=base,
            version=base + 1,
            full=False,
            runs=pack_diff(list(coalesce_churn(events))),
            fingerprint=self._shard_fp[shard_id],
        )

    def _build_full_diff(self, shard_id: int, bump: bool = False) -> ShardDiff:
        if bump:
            self._shard_version[shard_id] += 1
        workers = sorted(
            (
                self._workers[worker_id]
                for worker_id, owner in self._worker_shard.items()
                if owner == shard_id
            ),
            key=lambda worker: worker.worker_id,
        )
        tasks = sorted(
            (
                self._tasks[task_id]
                for task_id, shards in self._task_shards.items()
                if shard_id in shards
            ),
            key=lambda task: task.task_id,
        )
        runs: List[Tuple[str, object]] = []
        if workers:
            runs.append(("worker_arrive", workers))
        if tasks:
            runs.append(("task_arrive", tasks))
        return ShardDiff(
            shard_id=shard_id,
            base_version=-1,
            version=self._shard_version[shard_id],
            full=True,
            runs=pack_diff(runs),
            fingerprint=self._shard_fp[shard_id],
        )

    def _full_ship_bytes(self) -> int:
        """What full re-ship would cost this fan-out, from resident counts."""
        return sum(
            count * WORKER_WIRE_BYTES for count in self._shard_worker_count
        ) + sum(
            count * TASK_WIRE_BYTES for count in self._shard_task_count
        ) + DIFF_HEADER_BYTES * self.shard_map.num_shards

    def current_pairs(self) -> List[ValidPair]:
        """The live valid-pair set, merged across resident shards.

        Routed churn since the previous fan-out ships as one versioned
        diff per resident (``diff_ship`` phase); residents apply and
        report pairs plus stat deltas (``index`` phase), any stale
        resident is healed with a full resync on the same fan-out, and
        the merge stays the deterministic ``(task_id, worker_id)``
        concatenate-and-sort of the static engine — the canonical order
        containing exactly the single grid's pair set.
        """
        if self._merged is None:
            batches, self._pending = self._pending, {}
            num_shards = self.shard_map.num_shards
            with self.profiler.phase("diff_ship"):
                diffs = [
                    self._build_diff(shard_id, batches.get(shard_id, []))
                    for shard_id in range(num_shards)
                ]
                self.elastic_stats["diff_bytes"] += sum(
                    diff.nbytes for diff in diffs
                )
                self.elastic_stats["full_bytes"] += self._full_ship_bytes()
            merged: List[ValidPair] = []
            with self.profiler.phase("index"):
                reports = self.executor.apply(diffs)
                stale = [
                    slot
                    for slot, report in enumerate(reports)
                    if report[0] == "stale"
                ]
                if stale:
                    with self.profiler.phase("diff_ship"):
                        resyncs = [
                            (slot, self._build_full_diff(slot))
                            for slot in stale
                        ]
                        self.elastic_stats["diff_bytes"] += sum(
                            diff.nbytes for _, diff in resyncs
                        )
                    self.elastic_stats["resyncs"] += len(stale)
                    for slot, report in zip(
                        stale, self.executor.apply_at(resyncs)
                    ):
                        reports[slot] = report
                for kind, _, pairs, stats in reports:
                    if kind != "ok":
                        raise RuntimeError(
                            "resident still stale after a full resync — "
                            "diff protocol bug"
                        )
                    merged.extend(pairs)
                    for key, delta in stats.items():
                        self.grid.stats[key] += delta
            with self.profiler.phase("merge"):
                merged.sort(key=lambda pair: (pair.task_id, pair.worker_id))
            self._merged = merged
            self.fanouts += 1
        return list(self._merged)
