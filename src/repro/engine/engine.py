"""The event-driven incremental assignment engine.

:class:`AssignmentEngine` is the delta-aware heart of the long-lived
operating mode (Section 7.2 / Figure 10): it consumes typed churn events
(:mod:`repro.engine.events`), keeps three representations of the live
state current *per event* instead of per epoch —

* the scalar object dicts (source of truth, insertion-ordered),
* the grid index with its persistent valid-pair cache
  (:class:`repro.index.grid.RdbscGrid`), and
* the slot-stable packed slabs
  (:class:`repro.fastpath.arrays.WorkerSlots` / ``TaskSlots``)

— and, at each epoch tick, retrieves the valid pairs incrementally
(re-probing only cache entries dirtied since the previous epoch), builds
the :class:`repro.core.problem.RdbscProblem` sub-instance and runs the
configured solver.  A retrieval after a small delta therefore costs
O(delta), not O(m * n); the results are bit-identical to a from-scratch
rebuild (``tests/test_engine_churn.py`` pins this on both backends).

Solving itself is delta-aware too: with ``solve_mode="warm"`` the engine
tracks the churn between consecutive epochs in an
:class:`repro.solvers.incremental.EpochDelta` and, when the churn
fraction stays at or under ``warm_churn_threshold``, repairs the previous
epoch's plan through the warm-start solvers
(:mod:`repro.solvers.incremental`) instead of re-solving from scratch —
dropping entries on dead or invalidated pairs and re-scoring only workers
whose candidate sets changed.  Epochs past the threshold (and the first
epoch, and any solver without a warm variant) fall back to a full solve;
each :class:`~repro.engine.metrics.EpochRecord` notes which path ran.

Platform concerns plug in through ``epoch`` keywords: committed
contributions are pinned as degree-one *virtual workers* (Figure 10's
``A`` / ``S_c``), and ``forbidden`` pairs (a user is never pushed the
same question twice) are filtered from the edge set.
:class:`repro.dynamic.CrowdsourcingSession` and
:class:`repro.platform_sim.simulator.PlatformSimulator` are both thin
drivers of this class.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.algorithms.base import RngLike, Solver
from repro.algorithms.sampling import SamplingSolver
from repro.core.assignment import Assignment
from repro.core.diversity import WorkerProfile
from repro.core.objectives import ObjectiveValue, evaluate_assignment
from repro.core.problem import RdbscProblem, ValidPair
from repro.core.task import SpatialTask
from repro.core.validity import ValidityRule
from repro.core.worker import MovingWorker
from repro.engine import events as ev
from repro.engine import durable as dur
from repro.engine.metrics import EngineMetrics, EpochRecord
from repro.engine.profile import PhaseProfiler, activated
from repro.fastpath.arrays import TaskSlots, WorkerSlots
from repro.solvers.incremental import (
    EpochDelta,
    PreviousPlan,
    WarmStartGreedySolver,
    candidate_signatures,
    warm_variant,
)
from repro.geometry.angles import AngleInterval
from repro.geometry.points import Point
from repro.index.grid import RdbscGrid

#: Offset (unit-square units) used to place a virtual worker along its
#: committed approach angle so that its profile reproduces that angle.
VIRTUAL_OFFSET = 1e-6


def virtual_worker(
    task: SpatialTask, profile: WorkerProfile, virtual_id: int
) -> Tuple[MovingWorker, ValidPair]:
    """A pinned degree-one worker representing one committed contribution.

    The worker sits a hair's breadth from the task along the committed
    approach angle, is stationary, and carries the committed confidence
    and arrival — so solvers account for the contribution's reliability
    and diversity exactly, without any solver-side special casing.
    """
    location = Point(
        task.location.x + VIRTUAL_OFFSET * math.cos(profile.angle),
        task.location.y + VIRTUAL_OFFSET * math.sin(profile.angle),
    )
    worker = MovingWorker(
        worker_id=virtual_id,
        location=location,
        velocity=0.0,
        cone=AngleInterval.full_circle(),
        confidence=profile.confidence,
        depart_time=profile.arrival,
    )
    arrival = min(max(profile.arrival, task.start), task.end)
    return worker, ValidPair(task.task_id, virtual_id, arrival)


@dataclass(frozen=True)
class EpochResult:
    """Outcome of one engine epoch.

    Attributes:
        now: the epoch's clock time.
        objective: the solver's (min reliability, total E[STD]) value.
        assignment: the full solved assignment (virtual workers included,
            when contributions were pinned).
        dispatch: ``{real worker id -> task id}`` — the assignment with
            any pinned virtual workers filtered out.
        num_tasks / num_workers / num_pairs: size of the solved
            sub-instance.
        expired: task ids retired by this epoch's expiry sweep.
        mode: ``"full"`` when the solver ran cold, ``"warm"`` when the
            previous epoch's plan was repaired instead.
    """

    now: float
    objective: ObjectiveValue
    assignment: Assignment
    dispatch: Dict[int, int]
    num_tasks: int
    num_workers: int
    num_pairs: int
    expired: Tuple[int, ...]
    mode: str = "full"


class AssignmentEngine:
    """Event-driven incremental RDB-SC assignment.

    Args:
        solver: the algorithm run at each epoch tick.
        eta: grid cell side (see :func:`repro.index.cost_model.optimal_eta`).
        validity: pair-validity policy shared by index and problem builds.
        rng: seed/generator forwarded to the solver for reproducibility.
        backend: ``"python"`` or ``"numpy"`` — how dirty cell pairs are
            probed (and, without the index, how retrieval runs).
        use_index: with the grid index (default) retrieval goes through
            the persistent per-cell-pair cache; without it, the numpy
            backend broadcasts over the slot slabs (dead slots masked) and
            the python backend is the brute-force reference scan.
        reanchor_on_epoch: when true, every epoch first re-anchors each
            live worker to depart *now* from its current location (the
            platform's semantics — an idle worker starts moving when
            dispatched, not when it registered).  Re-anchoring flows
            through the same in-place update path as external updates.
            With a waiting-enabled validity rule the sweep is delta-cheap:
            a stale worker with no valid pairs is skipped, because pushing
            its departure later can only shrink its (already empty) reach
            — so only workers whose pairs could actually change pay the
            update (and dirty their cell's pair-cache entries).
        solve_mode: ``"full"`` re-solves every epoch from scratch (the
            paper-faithful default); ``"warm"`` repairs the previous
            epoch's plan via :mod:`repro.solvers.incremental` whenever the
            inter-epoch churn fraction is at most ``warm_churn_threshold``
            and the solver has a warm variant, falling back to a full
            solve otherwise.
        warm_churn_threshold: largest churn fraction (distinct churned
            entities over the previous epoch's live population) still
            repaired in warm mode; epochs strictly above it solve in full.
        solve_executor: parallelise the epoch *solve* (the per-epoch index
            work is the sharded engine's job).  ``None`` solves serially;
            an ``int`` builds a :class:`repro.engine.parallel.
            ParallelSolveExecutor` with that many pinned worker processes
            (owned — closed by :meth:`close`); an executor instance is
            used as-is (shared — the caller closes it).  The executor is
            bound to the solver's parallel face per epoch: SAMPLING fans
            independent substream sample evaluations across the pool,
            GREEDY scores each round's candidates in shard batches merged
            before the argmax — plans are bit-identical to the serial
            solve either way.  Warm-start wrappers inherit the binding
            (dirty-worker scoring batches, warm fresh draws); solvers
            without a parallel face simply solve serially.
        durable_path: when set, the engine writes a write-ahead event log
            plus periodic full-state snapshots to this SQLite file
            (:mod:`repro.engine.durable`); a crashed session is recovered
            with :func:`repro.engine.durable.restore_engine`, which
            reproduces the live per-epoch plans bit-exactly.  Requires a
            deterministic ``rng`` (an int seed or a numpy ``Generator``);
            the path must not already hold a session.
        durable_snapshot_every: epochs between full-state snapshots (the
            recovery replay tail is at most this many epochs long).
    """

    def __init__(
        self,
        solver: Optional[Solver] = None,
        eta: float = 0.125,
        validity: Optional[ValidityRule] = None,
        rng: RngLike = None,
        backend: str = "python",
        use_index: bool = True,
        reanchor_on_epoch: bool = False,
        solve_mode: str = "full",
        warm_churn_threshold: float = 0.25,
        solve_executor=None,
        durable_path=None,
        durable_snapshot_every: int = 16,
    ) -> None:
        if backend not in ("python", "numpy"):
            raise ValueError(f"unknown backend {backend!r}")
        if solve_mode not in ("full", "warm"):
            raise ValueError(f"unknown solve_mode {solve_mode!r}")
        if warm_churn_threshold < 0.0:
            raise ValueError("warm_churn_threshold must be non-negative")
        self.solver = solver if solver is not None else SamplingSolver(num_samples=40)
        self.validity = validity if validity is not None else ValidityRule()
        self.backend = backend
        self.use_index = use_index
        self.reanchor_on_epoch = reanchor_on_epoch
        self.solve_mode = solve_mode
        self.warm_churn_threshold = warm_churn_threshold
        self.rng = rng
        self.grid = RdbscGrid(eta, self.validity, backend=backend)
        self.worker_slots = WorkerSlots()
        self.task_slots = TaskSlots()
        self.metrics = EngineMetrics()
        #: Per-epoch phase timer (see :mod:`repro.engine.profile`): the
        #: engine's own call sites time into it directly, solver scoring
        #: phases join via :func:`repro.engine.profile.activated` around
        #: the solve, and each epoch snapshots it into its record.
        self.profiler = PhaseProfiler()
        self._tasks: Dict[int, SpatialTask] = {}
        self._workers: Dict[int, MovingWorker] = {}
        self._held: Set[int] = set()
        self._assignment = Assignment()
        self._delta = EpochDelta()
        self._plan: Optional[PreviousPlan] = None
        # Cache of warm_variant(self.solver), keyed by solver identity so a
        # swapped-in solver re-resolves and a stateful warm wrapper
        # persists across epochs.
        self._warm_cache: Tuple[Optional[Solver], Optional[object]] = (None, None)
        if isinstance(solve_executor, int):
            from repro.engine.parallel import ParallelSolveExecutor

            self.solve_executor = (
                ParallelSolveExecutor(processes=solve_executor)
                if solve_executor > 0
                else None
            )
            self._owns_solve_executor = self.solve_executor is not None
        else:
            self.solve_executor = solve_executor
            self._owns_solve_executor = False
        # Bind cache, keyed by solver identity like the warm cache: a
        # swapped-in solver re-binds, a stable one binds once.
        self._bound_solver: Optional[Solver] = None
        self._closed = False
        #: Re-entry guard: the engine is single-threaded, so a second
        #: ``epoch()`` while one runs raises instead of corrupting state.
        self._epoch_active = False
        #: Session-clock watermark: the latest ``now`` seen by an epoch or
        #: expiry sweep, stamped onto logged churn rows for analytics.
        self._clock = 0.0
        self.durable: Optional[dur.DurableLog] = None
        self._durable_suppress = 0
        self._durable_snapshot_every = max(1, int(durable_snapshot_every))
        self._epochs_since_snapshot = 0
        if durable_path is not None:
            self._start_durable(durable_path)

    # ------------------------------------------------------------------ #
    # Durability (the write-ahead log; see :mod:`repro.engine.durable`)
    # ------------------------------------------------------------------ #

    def _durable_config(self) -> dict:
        """The constructor arguments a recovery must reproduce (log meta)."""
        return {
            "schema": dur.SCHEMA_VERSION,
            "engine": type(self).__name__,
            "solver": type(self.solver).__name__,
            "eta": self.grid.eta,
            "backend": self.backend,
            "use_index": self.use_index,
            "allow_waiting": self.validity.allow_waiting,
            "reanchor_on_epoch": self.reanchor_on_epoch,
            "solve_mode": self.solve_mode,
            "warm_churn_threshold": self.warm_churn_threshold,
            "snapshot_every": self._durable_snapshot_every,
            "solver_config": dur.solver_config(self.solver),
        }

    def _start_durable(self, path) -> None:
        """Open a fresh write-ahead log and seed it with snapshot zero."""
        if self.rng is None:
            raise ValueError(
                "durable_path requires a deterministic rng: pass an int seed "
                "or a numpy Generator, not rng=None"
            )
        log = dur.DurableLog(path)
        try:
            if log.last_seq() > 0 or log.latest_snapshot() is not None:
                raise ValueError(
                    f"durable log {path} already holds a session; recover it "
                    "with repro.engine.durable.restore_engine (or point the "
                    "engine at a fresh path)"
                )
            log.set_meta(self._durable_config())
        except BaseException:
            log.close()
            raise
        self._adopt_durable(log)
        self._write_durable_snapshot()

    def _adopt_durable(self, log, snapshot_every: Optional[int] = None) -> None:
        """Attach an open log (fresh or recovered) for live appending."""
        self.durable = log
        if snapshot_every is not None:
            self._durable_snapshot_every = max(1, int(snapshot_every))
        self._epochs_since_snapshot = 0

    def _durable_append(self, records) -> None:
        """Append ``(kind, payload)`` rows unless logging is suppressed.

        Suppressed while an epoch runs (the epoch marker subsumes its
        internal expiry/re-anchor churn) and while a recovery replays the
        tail (replayed events are already in the log).
        """
        if self.durable is not None and not self._durable_suppress:
            with self.profiler.phase("wal_append"):
                self.durable.append_events(
                    [(kind, self._clock, payload) for kind, payload in records]
                )

    def _write_durable_snapshot(self) -> None:
        """Serialise the full live state, positioned after the last event."""
        assert self.durable is not None
        with self.profiler.phase("wal_append"):
            self.durable.write_snapshot(
                self.durable.last_seq(), dur.encode_snapshot(self.snapshot())
            )
        self._epochs_since_snapshot = 0

    # ------------------------------------------------------------------ #
    # State access
    # ------------------------------------------------------------------ #

    @property
    def num_tasks(self) -> int:
        """Number of live (registered, unexpired) tasks."""
        return len(self._tasks)

    @property
    def num_workers(self) -> int:
        """Number of live registered workers."""
        return len(self._workers)

    @property
    def tasks(self) -> Dict[int, SpatialTask]:
        """Live tasks by id (insertion-ordered; treat as read-only)."""
        return self._tasks

    @property
    def workers(self) -> Dict[int, MovingWorker]:
        """Live workers by id (insertion-ordered; treat as read-only)."""
        return self._workers

    @property
    def assignment(self) -> Assignment:
        """The live assignment from the most recent epoch."""
        return self._assignment

    def assignment_of(self, worker_id: int) -> Optional[int]:
        """The task the worker holds in the live assignment, if any."""
        return self._assignment.task_of(worker_id)

    def workers_on(self, task_id: int):
        """Ids of the workers the live assignment gives a task."""
        return self._assignment.workers_for(task_id)

    # ------------------------------------------------------------------ #
    # Index maintenance hooks
    # ------------------------------------------------------------------ #
    # The churn methods keep the object dicts, the slot slabs and the
    # spatial index in lock-step; all index traffic funnels through these
    # five hooks so :class:`repro.engine.sharding.ShardedAssignmentEngine`
    # can reroute it to per-shard sub-grids without re-implementing any
    # bookkeeping.  The batched hooks receive whole same-kind runs (see
    # :meth:`apply_batch`) so the grid can group per-cell work.

    def _index_insert_tasks(self, tasks: Sequence[SpatialTask]) -> None:
        with self.profiler.phase("index"):
            self.grid.insert_tasks(tasks)

    def _index_remove_task(self, task_id: int) -> None:
        with self.profiler.phase("index"):
            self.grid.remove_task(task_id)

    def _index_add_workers(self, workers: Sequence[MovingWorker]) -> None:
        with self.profiler.phase("index"):
            self.grid.insert_workers(workers)

    def _index_remove_worker(self, worker_id: int) -> None:
        with self.profiler.phase("index"):
            self.grid.remove_worker(worker_id)

    def _index_update_workers(self, workers: Sequence[MovingWorker]) -> None:
        with self.profiler.phase("index"):
            self.grid.update_workers(workers)

    # ------------------------------------------------------------------ #
    # Churn (each method keeps dicts + grid + slabs in lock-step)
    # ------------------------------------------------------------------ #

    def add_task(self, task: SpatialTask) -> None:
        """Register a task (ValueError on duplicate id)."""
        self.add_tasks((task,))

    def add_tasks(self, tasks: Sequence[SpatialTask]) -> None:
        """Register a batch of tasks; the index links each cell once.

        Ids must be distinct within the batch and unused (ValueError
        otherwise; earlier entries of a partially invalid batch stay
        registered, exactly as sequential ``add_task`` calls would).
        """
        fresh: List[SpatialTask] = []
        try:
            for task in tasks:
                if task.task_id in self._tasks:
                    raise ValueError(f"task {task.task_id} already registered")
                self._tasks[task.task_id] = task
                self.task_slots.add(task)
                self._delta.tasks_arrived.add(task.task_id)
                self.metrics.count_event("task_arrive")
                fresh.append(task)
        finally:
            # The entries registered before a mid-batch duplicate stay, so
            # index and log must absorb them even on the error path.
            self._index_insert_tasks(fresh)
            self._durable_append(
                [("task_arrive", {"task": dur.task_row(task)}) for task in fresh]
            )

    def withdraw_task(self, task_id: int) -> SpatialTask:
        """Remove a task (completed/cancelled); frees its workers."""
        task = self._tasks.pop(task_id)
        self._index_remove_task(task_id)
        self.task_slots.remove(task_id)
        for worker_id in list(self._assignment.workers_for(task_id)):
            self._assignment.unassign(worker_id)
        self._delta.tasks_removed.add(task_id)
        self.metrics.count_event("task_withdraw")
        self._durable_append([("task_withdraw", {"task_id": task_id})])
        return task

    def expire_tasks(self, now: float) -> List[int]:
        """Retire every task whose valid period closed strictly before now.

        The boundary is inclusive (a task with ``end == now`` is still
        live), matching :meth:`repro.core.task.SpatialTask.expired_at` and
        therefore the validity rule's arrival check.
        """
        self._clock = now
        expired = [t.task_id for t in self._tasks.values() if t.expired_at(now)]
        # The sweep logs as one "expire" record (replay re-derives the same
        # withdrawals from the same clock), not as per-task withdrawals.
        self._durable_suppress += 1
        try:
            for task_id in expired:
                self.withdraw_task(task_id)
                self.metrics.events["task_withdraw"] -= 1
                self.metrics.count_event("task_expire")
        finally:
            self._durable_suppress -= 1
        self._durable_append([("expire", {"now": now})])
        return expired

    def add_worker(self, worker: MovingWorker) -> None:
        """Register a worker (ValueError on duplicate id)."""
        self.add_workers((worker,))

    def add_workers(self, workers: Sequence[MovingWorker]) -> None:
        """Register a batch of workers; the index widens each cell once.

        Ids must be distinct within the batch and unused (ValueError
        otherwise; earlier entries of a partially invalid batch stay
        registered, exactly as sequential ``add_worker`` calls would).
        """
        fresh: List[MovingWorker] = []
        try:
            for worker in workers:
                if worker.worker_id in self._workers:
                    raise ValueError(
                        f"worker {worker.worker_id} already registered"
                    )
                self._workers[worker.worker_id] = worker
                self.worker_slots.add(worker)
                self._delta.workers_arrived.add(worker.worker_id)
                self.metrics.count_event("worker_arrive")
                fresh.append(worker)
        finally:
            self._index_add_workers(fresh)
            self._durable_append(
                [
                    ("worker_arrive", {"worker": dur.worker_row(worker)})
                    for worker in fresh
                ]
            )

    def remove_worker(self, worker_id: int) -> MovingWorker:
        """Deregister a worker (left the system)."""
        worker = self._workers.pop(worker_id)
        self._held.discard(worker_id)
        self._index_remove_worker(worker_id)
        self.worker_slots.remove(worker_id)
        if self._assignment.is_assigned(worker_id):
            self._assignment.unassign(worker_id)
        self._delta.workers_left.add(worker_id)
        self.metrics.count_event("worker_leave")
        self._durable_append([("worker_leave", {"worker_id": worker_id})])
        return worker

    def update_worker(self, worker: MovingWorker) -> None:
        """Refresh a registered worker in place (KeyError if unknown).

        A worker that stays in its grid cell costs O(1): the object dict,
        the cell record and the packed slot row are each overwritten in
        place; only a cross-cell move pays the remove + insert path.
        """
        self.update_workers((worker,))

    def update_workers(self, workers: Sequence[MovingWorker]) -> None:
        """Batched :meth:`update_worker`; the index groups same-cell work.

        Ids must be registered (KeyError otherwise) and distinct within
        the batch (ValueError — a repeated id would desynchronise the
        grid's remove + insert path on a cross-cell move), both checked
        before any state is touched; same-cell refreshes grouped into one
        batch pay one cell invalidation + widening sweep per touched cell
        instead of one per worker.
        """
        seen: Set[int] = set()
        for worker in workers:
            if worker.worker_id not in self._workers:
                raise KeyError(f"worker {worker.worker_id} not registered")
            if worker.worker_id in seen:
                raise ValueError(
                    f"worker {worker.worker_id} appears twice in one update batch"
                )
            seen.add(worker.worker_id)
        for worker in workers:
            self._workers[worker.worker_id] = worker
            self.worker_slots.update(worker)
            self._delta.workers_updated.add(worker.worker_id)
            self.metrics.count_event("worker_update")
        self._index_update_workers(workers)
        self._durable_append(
            [
                ("worker_update", {"worker": dur.worker_row(worker)})
                for worker in workers
            ]
        )

    # ------------------------------------------------------------------ #
    # In-flight holds (dispatched workers stay registered)
    # ------------------------------------------------------------------ #

    def hold_worker(self, worker_id: int) -> None:
        """Hide a registered worker from the solver without removing it.

        A held worker keeps its dict entry, slot row and grid residency —
        no cache entries are invalidated — but its valid pairs are
        filtered out of every epoch sub-instance and the re-anchor sweep
        leaves it alone (its departure is owned by whoever holds it).
        This is how the platform simulator models a dispatched worker
        travelling to its task: in flight, not gone.  For warm-mode
        purposes a hold is forced-dirty (the worker's candidates vanish)
        but is *fulfilment* of the previous plan rather than external
        churn, so it does not count toward the fallback fraction (see
        :class:`repro.solvers.incremental.EpochDelta`).

        Raises:
            KeyError: if the worker is not registered.
        """
        if worker_id not in self._workers:
            raise KeyError(f"worker {worker_id} not registered")
        self._held.add(worker_id)
        self._delta.workers_held.add(worker_id)
        self.metrics.count_event("worker_hold")
        self._durable_append([("worker_hold", {"worker_id": worker_id})])

    def release_worker(self, worker_id: int) -> None:
        """Make a held worker solver-visible again (KeyError if unknown).

        Callers normally pair this with an :meth:`update_worker` carrying
        the worker's post-trip position and departure time.  Releasing an
        unheld worker is a no-op apart from the churn accounting.
        """
        if worker_id not in self._workers:
            raise KeyError(f"worker {worker_id} not registered")
        self._held.discard(worker_id)
        self._delta.workers_updated.add(worker_id)
        self.metrics.count_event("worker_release")
        self._durable_append([("worker_release", {"worker_id": worker_id})])

    @property
    def held_workers(self) -> Set[int]:
        """Ids currently hidden from the solver (treat as read-only)."""
        return self._held

    # ------------------------------------------------------------------ #
    # Event consumption
    # ------------------------------------------------------------------ #

    def apply(self, event: ev.Event) -> Optional[EpochResult]:
        """Apply one typed event; epoch ticks return their result."""
        if isinstance(event, ev.TaskArrive):
            self.add_task(event.task)
        elif isinstance(event, ev.TaskWithdraw):
            self.withdraw_task(event.task_id)
        elif isinstance(event, ev.WorkerArrive):
            self.add_worker(event.worker)
        elif isinstance(event, ev.WorkerLeave):
            self.remove_worker(event.worker_id)
        elif isinstance(event, ev.WorkerUpdate):
            self.update_worker(event.worker)
        elif isinstance(event, ev.WorkerHold):
            self.hold_worker(event.worker_id)
        elif isinstance(event, ev.WorkerRelease):
            self.release_worker(event.worker_id)
        elif isinstance(event, ev.ExpireTasks):
            self.expire_tasks(event.time)
        elif isinstance(event, ev.EpochTick):
            return self.epoch(event.time)
        else:
            raise TypeError(f"unknown event type {type(event).__name__}")
        return None

    def apply_batch(self, events: Sequence[ev.Event]) -> List[EpochResult]:
        """Apply an ordered event batch, grouping commuting churn runs.

        The batch is coalesced by :func:`repro.engine.scheduler.
        coalesce_churn`: churn on distinct entities commutes, so leaves,
        arrivals, updates and task churn each apply as one batched call —
        a burst of same-instant deltas pays per-cell invalidation once
        per cell instead of once per event.  A repeated entity id (which
        must keep its per-entity order) and any non-churn event flush the
        pending runs first, so the outcome is exactly that of applying
        the batch one event at a time.  Epoch ticks return their results
        in order.
        """
        from repro.engine.scheduler import coalesce_churn

        results: List[EpochResult] = []
        with self.profiler.phase("coalesce"):
            grouped = list(coalesce_churn(events))
        for kind, payload in grouped:
            if kind == "worker_update":
                self.update_workers(payload)
            elif kind == "worker_arrive":
                self.add_workers(payload)
            elif kind == "worker_leave":
                for worker_id in payload:
                    self.remove_worker(worker_id)
            elif kind == "task_arrive":
                self.add_tasks(payload)
            elif kind == "task_withdraw":
                for task_id in payload:
                    self.withdraw_task(task_id)
            else:
                outcome = self.apply(payload)
                if outcome is not None:
                    results.append(outcome)
        return results

    def process(self, queue_or_events) -> List[EpochResult]:
        """Drain an :class:`~repro.engine.scheduler.EventQueue` (or any
        pre-ordered event iterable); returns the epoch results in order.

        A queue exposing ``drain_instants`` is consumed as per-instant
        batches through :meth:`apply_batch` (identical outcomes, grouped
        index maintenance); anything else is applied event by event.
        """
        instants = getattr(queue_or_events, "drain_instants", None)
        if instants is not None:
            results: List[EpochResult] = []
            for batch in instants():
                results.extend(self.apply_batch(batch))
            return results
        events: Iterable[ev.Event]
        drain = getattr(queue_or_events, "drain", None)
        events = drain() if drain is not None else queue_or_events
        results = []
        for event in events:
            outcome = self.apply(event)
            if outcome is not None:
                results.append(outcome)
        return results

    # ------------------------------------------------------------------ #
    # Retrieval + epochs
    # ------------------------------------------------------------------ #

    def current_pairs(self) -> List[ValidPair]:
        """The live valid-pair set, retrieved incrementally.

        Index mode serves unchanged (worker cell, task cell) entries from
        the grid's persistent cache and re-probes only dirty ones; the
        no-index numpy mode broadcasts over the slot slabs with dead slots
        masked; the no-index python mode is the reference scan.
        """
        with self.profiler.phase("index"):
            if self.use_index:
                return self.grid.valid_pairs()
            if self.backend == "numpy":
                from repro.fastpath.kernels import slots_valid_pairs

                return slots_valid_pairs(
                    self.task_slots, self.worker_slots, self.validity
                )
            from repro.index.grid import retrieve_pairs_without_index

            return retrieve_pairs_without_index(
                list(self._tasks.values()), list(self._workers.values()), self.validity
            )

    def current_problem(self) -> RdbscProblem:
        """The current sub-instance (no pinning, no filtering)."""
        return RdbscProblem(
            list(self._tasks.values()),
            list(self._workers.values()),
            self.validity,
            precomputed_pairs=self.current_pairs(),
            backend=self.backend,
        )

    def build_problem(
        self,
        pinned: Optional[Dict[int, List[WorkerProfile]]] = None,
        forbidden: Optional[Set[Tuple[int, int]]] = None,
    ) -> Tuple[RdbscProblem, Set[int]]:
        """The epoch sub-instance, with platform concerns folded in.

        Returns the problem plus the set of generated virtual worker ids
        (empty without pinning) so callers can separate real dispatch from
        solver bookkeeping.  Held (in-flight) workers' pairs are filtered
        out first, so the solver never sees them as available.
        """
        pairs = self.current_pairs()
        if self._held:
            pairs = [p for p in pairs if p.worker_id not in self._held]
        if forbidden:
            pairs = [
                p for p in pairs if (p.worker_id, p.task_id) not in forbidden
            ]
        tasks = list(self._tasks.values())
        workers = list(self._workers.values())
        virtual_ids: Set[int] = set()
        if pinned:
            next_virtual = -1
            for task_id in sorted(pinned.keys()):
                task = self._tasks.get(task_id)
                if task is None:
                    continue  # contribution to an already-expired task
                for profile in pinned[task_id]:
                    while next_virtual in self._workers:  # avoid id clashes
                        next_virtual -= 1
                    worker, pair = virtual_worker(task, profile, next_virtual)
                    workers.append(worker)
                    pairs.append(pair)
                    virtual_ids.add(next_virtual)
                    next_virtual -= 1
        problem = RdbscProblem(
            tasks,
            workers,
            self.validity,
            precomputed_pairs=pairs,
            backend=self.backend,
        )
        return problem, virtual_ids

    def _reanchor_workers(self, now: float) -> None:
        """Re-anchor live workers to depart *now*, skipping provable no-ops.

        A worker whose departure already equals ``now`` is untouched.  With
        a waiting-enabled validity rule (the platform's), a worker with an
        *earlier* stale departure and **no valid pairs** is also skipped:
        a later departure only pushes arrivals later, so its empty reach
        stays empty and no solver-visible state can differ — while the
        skip saves an update that would dirty its whole cell's pair-cache
        entries.  Strict-arrival validity gets no skip (a later departure
        can turn a too-early arrival valid), and a worker anchored in the
        *future* is always pulled back to ``now``.  Held workers are never
        re-anchored: their departure (the post-trip availability time) is
        owned by whoever holds them.
        """
        stale = [
            w
            for w in self._workers.values()
            if w.depart_time != now and w.worker_id not in self._held
        ]
        if not stale:
            return
        can_skip = self.validity.allow_waiting
        with_pairs: Set[int] = (
            {pair.worker_id for pair in self.current_pairs()} if can_skip else set()
        )
        moved: List[MovingWorker] = []
        for worker in stale:
            if (
                can_skip
                and worker.depart_time < now
                and worker.worker_id not in with_pairs
            ):
                self.metrics.reanchors_skipped += 1
                continue
            moved.append(worker.moved_to(worker.location, now))
        if not moved:
            return
        externally_churned = {
            worker.worker_id for worker in moved
        } & self._delta.workers_updated
        # One batched update: the whole sweep pays one cell invalidation
        # and one widening sweep per touched cell, like any other batch.
        self.update_workers(moved)
        for worker in moved:
            if worker.worker_id not in externally_churned:
                # The sweep's own update is clock bookkeeping, not churn:
                # it stays forced-dirty for the warm repair but must not
                # push every clocked epoch over the fallback threshold.
                self._delta.workers_updated.discard(worker.worker_id)
                self._delta.workers_reanchored.add(worker.worker_id)

    def _bind_solve_executor(self) -> None:
        """Attach the solve executor to the current solver's parallel face.

        Cached by solver identity (a swapped-in solver re-binds); binding
        targets the *base* solver, so the warm-start wrappers — which
        re-enter the base's scoring loops — run their dirty-worker batches
        and fresh draws through the same executor.  The sharded engine's
        shard map, when present, drives the greedy batch partition.
        """
        if self.solve_executor is None or self._bound_solver is self.solver:
            return
        # A swapped-out solver must not keep pointing at this executor
        # (its pools may be closed later without it being re-visited).
        self.solve_executor.unbind(self._bound_solver)
        self.solve_executor.bind(
            self.solver, shard_map=getattr(self, "shard_map", None)
        )
        self._bound_solver = self.solver

    def close(self) -> None:
        """Release owned resources; idempotent, and final for this engine.

        Closes an engine-built solve executor's pool (a shared executor
        instance passed in by the caller is left running — whoever
        constructed it closes it; closing an owned executor also detaches
        it from the bound solver, so the solver stays usable serially
        elsewhere) and flushes/closes an attached durable log.  A closed
        engine refuses further :meth:`epoch` calls with a clear error
        instead of submitting work to dead pools; a second ``close()`` is
        a no-op.
        """
        if self._closed:
            return
        self._closed = True
        if self._owns_solve_executor and self.solve_executor is not None:
            self.solve_executor.unbind(self._bound_solver)
            self._bound_solver = None
            self.solve_executor.close()
        if self.durable is not None:
            self.durable.close()

    def __enter__(self) -> "AssignmentEngine":
        """Context-manager entry: the engine itself."""
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        """Context-manager exit: release owned resources."""
        self.close()

    def _warm_solver(self):
        """The cached warm variant of the current solver (None if none).

        Cached by solver identity: swapping ``self.solver`` re-resolves,
        while a stable solver keeps one wrapper across epochs (so a
        stateful warm wrapper is not silently re-created per epoch).
        """
        cached_solver, cached_variant = self._warm_cache
        if cached_solver is not self.solver:
            cached_variant = warm_variant(self.solver)
            self._warm_cache = (self.solver, cached_variant)
        return cached_variant

    def _choose_mode(self) -> str:
        """Warm repair or full solve for the upcoming epoch.

        Warm requires: warm mode enabled, a solver with a warm variant, a
        previous plan to repair, and the inter-epoch churn fraction at or
        below ``warm_churn_threshold`` (`tests/test_warmstart.py` pins the
        boundary: a delta exactly at the cutoff repairs, one entity above
        it solves in full).
        """
        if self.solve_mode != "warm" or self._plan is None:
            return "full"
        if self._warm_solver() is None:
            return "full"
        fraction = self._delta.churn_fraction(self._plan.population)
        return "warm" if fraction <= self.warm_churn_threshold else "full"

    def _warm_log_weights(
        self, problem: RdbscProblem, virtual_ids: Set[int]
    ) -> Optional[Dict[int, float]]:
        """Eq. 8 weight map for a warm greedy solve (numpy backend only).

        Real workers are gathered straight off the slot slab in one
        vectorised read (:func:`repro.fastpath.kernels.slots_log_weights`);
        per-epoch virtual workers are not slab-resident and fall back to
        their scalar property.
        """
        if self.backend != "numpy":
            return None
        from repro.fastpath.kernels import slots_log_weights

        weights = slots_log_weights(
            self.worker_slots, [w.worker_id for w in problem.workers]
        )
        for virtual_id in virtual_ids:
            weights[virtual_id] = problem.workers_by_id[
                virtual_id
            ].log_confidence_weight
        return weights

    def epoch(
        self,
        now: float = 0.0,
        pinned: Optional[Dict[int, List[WorkerProfile]]] = None,
        forbidden: Optional[Set[Tuple[int, int]]] = None,
    ) -> EpochResult:
        """One re-planning instant: expire, retrieve, solve, remember.

        The stored live assignment is replaced wholesale; committed work
        that must be honoured across epochs is expressed via ``pinned``
        (the platform simulator does), not by partial re-solves.  In
        ``solve_mode="warm"``, sufficiently quiet intervals are solved by
        repairing the previous epoch's plan instead (see
        :mod:`repro.solvers.incremental`); ``EpochResult.mode`` and the
        recorded :class:`~repro.engine.metrics.EpochRecord` say which path
        ran.

        The engine is single-threaded: a concurrent second ``epoch()``
        while one is mid-solve would interleave grid, slab and RNG
        mutations, so re-entry raises ``RuntimeError`` instead of
        corrupting state.  Concurrent callers (the service tier's
        :class:`repro.serve.scheduler.EngineDriver` does) must serialise
        epochs behind a lock.
        """
        if self._closed:
            raise RuntimeError(
                "engine is closed (its executor pools are shut down); build a "
                "new engine, or recover a durable session with "
                "repro.engine.durable.restore_engine"
            )
        if self._epoch_active:
            raise RuntimeError(
                "epoch() re-entered while an epoch is still running: the "
                "engine is single-threaded — serialise epochs behind a lock "
                "(repro.serve.scheduler.EngineDriver shows how)"
            )
        self._epoch_active = True
        try:
            return self._run_epoch(now, pinned, forbidden)
        finally:
            self._epoch_active = False

    def _run_epoch(
        self,
        now: float,
        pinned: Optional[Dict[int, List[WorkerProfile]]],
        forbidden: Optional[Set[Tuple[int, int]]],
    ) -> EpochResult:
        """The epoch body; see :meth:`epoch` (which guards re-entry)."""
        started = time.perf_counter()
        self._clock = now
        # The whole epoch logs as one marker (replay re-runs it, re-deriving
        # the internal expiry and re-anchor churn), so the RNG position is
        # captured *before* the solve consumes draws and inner logging is
        # suppressed.  ``None`` when no log is attached or when this epoch is
        # itself a replay of an already-logged marker.
        rng_position = (
            dur.rng_spec(self.rng)
            if self.durable is not None and not self._durable_suppress
            else None
        )
        self._durable_suppress += 1
        try:
            hits_before = self.grid.stats["pair_cache_hits"]
            misses_before = self.grid.stats["pair_cache_misses"]
            expired = self.expire_tasks(now)
            if self.reanchor_on_epoch:
                self._reanchor_workers(now)
            self._bind_solve_executor()
            mode = self._choose_mode()
            problem, virtual_ids = self.build_problem(pinned, forbidden)
            warm = self._warm_solver() if self.solve_mode == "warm" else None
            solve_started = time.perf_counter()
            # One signature pass per warm-capable epoch, inside the solve
            # timer (it is genuine warm-mode work): shared between the warm
            # solver's dirty diff and the plan stored for the next epoch.
            signatures = (
                candidate_signatures(problem, frozenset(virtual_ids))
                if warm is not None
                else None
            )
            # Solver-side scoring phases (prune / Δmin_R / ΔE[STD]) time
            # into this engine's profiler while the solve runs.
            with activated(self.profiler):
                if mode == "warm":
                    assert warm is not None and self._plan is not None
                    log_weights = (
                        self._warm_log_weights(problem, virtual_ids)
                        if isinstance(warm, WarmStartGreedySolver)
                        else None
                    )
                    result = warm.warm_solve(
                        problem,
                        self._plan,
                        forced_dirty=frozenset(self._delta.touched_workers()),
                        rng=self.rng,
                        log_weights=log_weights,
                        signatures=signatures,
                    )
                else:
                    result = self.solver.solve(problem, rng=self.rng)
            solve_seconds = time.perf_counter() - solve_started
            dispatch: Dict[int, int] = {}
            live = Assignment()
            for task_id, worker_id in result.assignment.pairs():
                if worker_id not in virtual_ids:
                    dispatch[worker_id] = task_id
                    live.assign(task_id, worker_id)
            self._assignment = live
            if warm is not None:
                assert signatures is not None
                self._plan = PreviousPlan(
                    assignment=live.copy(),
                    signatures=signatures,
                    population=problem.num_tasks
                    + problem.num_workers
                    - len(virtual_ids),
                )
            self._delta.clear()
            record = EpochRecord(
                now=now,
                num_tasks=problem.num_tasks,
                num_workers=problem.num_workers,
                num_pairs=problem.num_pairs,
                expired=len(expired),
                cache_hits=self.grid.stats["pair_cache_hits"] - hits_before,
                cache_misses=self.grid.stats["pair_cache_misses"] - misses_before,
                objective=result.objective,
                seconds=time.perf_counter() - started,
                mode=mode,
                phases=self.profiler.take(),
            )
            self.metrics.record_epoch(record, solve_seconds)
        finally:
            self._durable_suppress -= 1
        if rng_position is not None:
            assert self.durable is not None
            # Accrues to the *next* epoch's phase snapshot (this epoch's
            # record is already frozen), like all inter-epoch WAL work.
            with self.profiler.phase("wal_append"):
                self.durable.append_events(
                    [
                        (
                            "epoch",
                            now,
                            {
                                "now": now,
                                "pinned": dur.encode_pinned(pinned),
                                "forbidden": dur.encode_forbidden(forbidden),
                                "rng": rng_position,
                                # Analytics extras (replay ignores them):
                                # what this epoch decided.
                                "mode": mode,
                                "objective": [
                                    result.objective.min_reliability,
                                    result.objective.total_std,
                                ],
                                "dispatch": sorted(
                                    [w, t] for w, t in dispatch.items()
                                ),
                            },
                        )
                    ]
                )
            self._epochs_since_snapshot += 1
            if self._epochs_since_snapshot >= self._durable_snapshot_every:
                self._write_durable_snapshot()
        return EpochResult(
            now=now,
            objective=result.objective,
            assignment=result.assignment.copy(),
            dispatch=dispatch,
            num_tasks=problem.num_tasks,
            num_workers=problem.num_workers,
            num_pairs=problem.num_pairs,
            expired=tuple(expired),
            mode=mode,
        )

    def evaluate_current(self) -> ObjectiveValue:
        """Objective of the live assignment against the current state."""
        problem = self.current_problem()
        live = Assignment()
        for task_id, worker_id in self._assignment.pairs():
            if problem.is_valid_pair(task_id, worker_id):
                live.assign(task_id, worker_id)
        return evaluate_assignment(problem, live)

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #

    def snapshot(self) -> "EngineSnapshot":
        """An immutable copy of the full solver-relevant live state.

        Beyond the reporting triple (tasks, workers, assignment) the
        snapshot captures everything a restore needs for bit-identical
        replay: the hold set, the previous epoch's
        :class:`~repro.solvers.incremental.PreviousPlan`, the pending
        inter-epoch delta, the solve mode, the replay-deterministic
        metrics counters, and the RNG position (``None`` only for a
        nondeterministic ``rng=None`` engine, which cannot be durably
        replayed).  ``repro.engine.durable`` serialises exactly this.
        """
        plan = self._plan
        if plan is not None:
            plan = PreviousPlan(
                assignment=plan.assignment.copy(),
                signatures=dict(plan.signatures),
                population=plan.population,
            )
        delta = EpochDelta()
        for name in dur._DELTA_SETS:
            getattr(delta, name).update(getattr(self._delta, name))
        return EngineSnapshot(
            tasks=tuple(self._tasks.values()),
            workers=tuple(self._workers.values()),
            assignment=self._assignment.copy(),
            held=frozenset(self._held),
            plan=plan,
            delta=delta,
            solve_mode=self.solve_mode,
            rng_state=None if self.rng is None else dur.rng_spec(self.rng),
            metrics=self.metrics.counters(),
            clock=self._clock,
            topology=self._topology_snapshot(),
        )

    def _topology_snapshot(self) -> Optional[dict]:
        """Shard-ownership payload for snapshots; elastic engines override."""
        return None


@dataclass(frozen=True)
class EngineSnapshot:
    """Point-in-time view of an engine's live state.

    The first three fields are the PR-3-era reporting view; the rest
    (defaulted, so handmade snapshots keep working) carry the durable
    subsystem's full solver-relevant state — see
    :meth:`AssignmentEngine.snapshot` and :mod:`repro.engine.durable`.
    """

    tasks: Tuple[SpatialTask, ...]
    workers: Tuple[MovingWorker, ...]
    assignment: Assignment
    held: frozenset = frozenset()
    plan: Optional[PreviousPlan] = None
    delta: Optional[EpochDelta] = None
    solve_mode: str = "full"
    rng_state: Optional[dict] = None
    metrics: Optional[dict] = None
    clock: float = 0.0
    #: Elastic shard-ownership table (:meth:`repro.engine.sharding.
    #: ShardMap.topology`); ``None`` for non-elastic engines.
    topology: Optional[dict] = None

    @property
    def num_tasks(self) -> int:
        """Number of tasks captured in the snapshot."""
        return len(self.tasks)

    @property
    def num_workers(self) -> int:
        """Number of workers captured in the snapshot."""
        return len(self.workers)
