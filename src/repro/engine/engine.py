"""The event-driven incremental assignment engine.

:class:`AssignmentEngine` is the delta-aware heart of the long-lived
operating mode (Section 7.2 / Figure 10): it consumes typed churn events
(:mod:`repro.engine.events`), keeps three representations of the live
state current *per event* instead of per epoch —

* the scalar object dicts (source of truth, insertion-ordered),
* the grid index with its persistent valid-pair cache
  (:class:`repro.index.grid.RdbscGrid`), and
* the slot-stable packed slabs
  (:class:`repro.fastpath.arrays.WorkerSlots` / ``TaskSlots``)

— and, at each epoch tick, retrieves the valid pairs incrementally
(re-probing only cache entries dirtied since the previous epoch), builds
the :class:`repro.core.problem.RdbscProblem` sub-instance and runs the
configured solver.  A retrieval after a small delta therefore costs
O(delta), not O(m * n); the results are bit-identical to a from-scratch
rebuild (``tests/test_engine_churn.py`` pins this on both backends).

Platform concerns plug in through ``epoch`` keywords: committed
contributions are pinned as degree-one *virtual workers* (Figure 10's
``A`` / ``S_c``), and ``forbidden`` pairs (a user is never pushed the
same question twice) are filtered from the edge set.
:class:`repro.dynamic.CrowdsourcingSession` and
:class:`repro.platform_sim.simulator.PlatformSimulator` are both thin
drivers of this class.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.algorithms.base import RngLike, Solver
from repro.algorithms.sampling import SamplingSolver
from repro.core.assignment import Assignment
from repro.core.diversity import WorkerProfile
from repro.core.objectives import ObjectiveValue, evaluate_assignment
from repro.core.problem import RdbscProblem, ValidPair
from repro.core.task import SpatialTask
from repro.core.validity import ValidityRule
from repro.core.worker import MovingWorker
from repro.engine import events as ev
from repro.engine.metrics import EngineMetrics, EpochRecord
from repro.fastpath.arrays import TaskSlots, WorkerSlots
from repro.geometry.angles import AngleInterval
from repro.geometry.points import Point
from repro.index.grid import RdbscGrid

#: Offset (unit-square units) used to place a virtual worker along its
#: committed approach angle so that its profile reproduces that angle.
VIRTUAL_OFFSET = 1e-6


def virtual_worker(
    task: SpatialTask, profile: WorkerProfile, virtual_id: int
) -> Tuple[MovingWorker, ValidPair]:
    """A pinned degree-one worker representing one committed contribution.

    The worker sits a hair's breadth from the task along the committed
    approach angle, is stationary, and carries the committed confidence
    and arrival — so solvers account for the contribution's reliability
    and diversity exactly, without any solver-side special casing.
    """
    location = Point(
        task.location.x + VIRTUAL_OFFSET * math.cos(profile.angle),
        task.location.y + VIRTUAL_OFFSET * math.sin(profile.angle),
    )
    worker = MovingWorker(
        worker_id=virtual_id,
        location=location,
        velocity=0.0,
        cone=AngleInterval.full_circle(),
        confidence=profile.confidence,
        depart_time=profile.arrival,
    )
    arrival = min(max(profile.arrival, task.start), task.end)
    return worker, ValidPair(task.task_id, virtual_id, arrival)


@dataclass(frozen=True)
class EpochResult:
    """Outcome of one engine epoch.

    Attributes:
        now: the epoch's clock time.
        objective: the solver's (min reliability, total E[STD]) value.
        assignment: the full solved assignment (virtual workers included,
            when contributions were pinned).
        dispatch: ``{real worker id -> task id}`` — the assignment with
            any pinned virtual workers filtered out.
        num_tasks / num_workers / num_pairs: size of the solved
            sub-instance.
        expired: task ids retired by this epoch's expiry sweep.
    """

    now: float
    objective: ObjectiveValue
    assignment: Assignment
    dispatch: Dict[int, int]
    num_tasks: int
    num_workers: int
    num_pairs: int
    expired: Tuple[int, ...]


class AssignmentEngine:
    """Event-driven incremental RDB-SC assignment.

    Args:
        solver: the algorithm run at each epoch tick.
        eta: grid cell side (see :func:`repro.index.cost_model.optimal_eta`).
        validity: pair-validity policy shared by index and problem builds.
        rng: seed/generator forwarded to the solver for reproducibility.
        backend: ``"python"`` or ``"numpy"`` — how dirty cell pairs are
            probed (and, without the index, how retrieval runs).
        use_index: with the grid index (default) retrieval goes through
            the persistent per-cell-pair cache; without it, the numpy
            backend broadcasts over the slot slabs (dead slots masked) and
            the python backend is the brute-force reference scan.
        reanchor_on_epoch: when true, every epoch first re-anchors each
            live worker to depart *now* from its current location (the
            platform's semantics — an idle worker starts moving when
            dispatched, not when it registered).  Re-anchoring flows
            through the same in-place update path as external updates.
    """

    def __init__(
        self,
        solver: Optional[Solver] = None,
        eta: float = 0.125,
        validity: Optional[ValidityRule] = None,
        rng: RngLike = None,
        backend: str = "python",
        use_index: bool = True,
        reanchor_on_epoch: bool = False,
    ) -> None:
        if backend not in ("python", "numpy"):
            raise ValueError(f"unknown backend {backend!r}")
        self.solver = solver if solver is not None else SamplingSolver(num_samples=40)
        self.validity = validity if validity is not None else ValidityRule()
        self.backend = backend
        self.use_index = use_index
        self.reanchor_on_epoch = reanchor_on_epoch
        self.rng = rng
        self.grid = RdbscGrid(eta, self.validity, backend=backend)
        self.worker_slots = WorkerSlots()
        self.task_slots = TaskSlots()
        self.metrics = EngineMetrics()
        self._tasks: Dict[int, SpatialTask] = {}
        self._workers: Dict[int, MovingWorker] = {}
        self._assignment = Assignment()

    # ------------------------------------------------------------------ #
    # State access
    # ------------------------------------------------------------------ #

    @property
    def num_tasks(self) -> int:
        return len(self._tasks)

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    @property
    def tasks(self) -> Dict[int, SpatialTask]:
        """Live tasks by id (insertion-ordered; treat as read-only)."""
        return self._tasks

    @property
    def workers(self) -> Dict[int, MovingWorker]:
        """Live workers by id (insertion-ordered; treat as read-only)."""
        return self._workers

    @property
    def assignment(self) -> Assignment:
        """The live assignment from the most recent epoch."""
        return self._assignment

    def assignment_of(self, worker_id: int) -> Optional[int]:
        return self._assignment.task_of(worker_id)

    def workers_on(self, task_id: int):
        return self._assignment.workers_for(task_id)

    # ------------------------------------------------------------------ #
    # Churn (each method keeps dicts + grid + slabs in lock-step)
    # ------------------------------------------------------------------ #

    def add_task(self, task: SpatialTask) -> None:
        """Register a task (ValueError on duplicate id)."""
        if task.task_id in self._tasks:
            raise ValueError(f"task {task.task_id} already registered")
        self._tasks[task.task_id] = task
        self.grid.insert_task(task)
        self.task_slots.add(task)
        self.metrics.count_event("task_arrive")

    def withdraw_task(self, task_id: int) -> SpatialTask:
        """Remove a task (completed/cancelled); frees its workers."""
        task = self._tasks.pop(task_id)
        self.grid.remove_task(task_id)
        self.task_slots.remove(task_id)
        for worker_id in list(self._assignment.workers_for(task_id)):
            self._assignment.unassign(worker_id)
        self.metrics.count_event("task_withdraw")
        return task

    def expire_tasks(self, now: float) -> List[int]:
        """Retire every task whose valid period closed strictly before now.

        The boundary is inclusive (a task with ``end == now`` is still
        live), matching :meth:`repro.core.task.SpatialTask.expired_at` and
        therefore the validity rule's arrival check.
        """
        expired = [t.task_id for t in self._tasks.values() if t.expired_at(now)]
        for task_id in expired:
            self.withdraw_task(task_id)
            self.metrics.events["task_withdraw"] -= 1
            self.metrics.count_event("task_expire")
        return expired

    def add_worker(self, worker: MovingWorker) -> None:
        """Register a worker (ValueError on duplicate id)."""
        if worker.worker_id in self._workers:
            raise ValueError(f"worker {worker.worker_id} already registered")
        self._workers[worker.worker_id] = worker
        self.grid.insert_worker(worker)
        self.worker_slots.add(worker)
        self.metrics.count_event("worker_arrive")

    def remove_worker(self, worker_id: int) -> MovingWorker:
        """Deregister a worker (left the system)."""
        worker = self._workers.pop(worker_id)
        self.grid.remove_worker(worker_id)
        self.worker_slots.remove(worker_id)
        if self._assignment.is_assigned(worker_id):
            self._assignment.unassign(worker_id)
        self.metrics.count_event("worker_leave")
        return worker

    def update_worker(self, worker: MovingWorker) -> None:
        """Refresh a registered worker in place (KeyError if unknown).

        A worker that stays in its grid cell costs O(1): the object dict,
        the cell record and the packed slot row are each overwritten in
        place; only a cross-cell move pays the remove + insert path.
        """
        if worker.worker_id not in self._workers:
            raise KeyError(f"worker {worker.worker_id} not registered")
        self._workers[worker.worker_id] = worker
        self.grid.update_worker(worker)
        self.worker_slots.update(worker)
        self.metrics.count_event("worker_update")

    # ------------------------------------------------------------------ #
    # Event consumption
    # ------------------------------------------------------------------ #

    def apply(self, event: ev.Event) -> Optional[EpochResult]:
        """Apply one typed event; epoch ticks return their result."""
        if isinstance(event, ev.TaskArrive):
            self.add_task(event.task)
        elif isinstance(event, ev.TaskWithdraw):
            self.withdraw_task(event.task_id)
        elif isinstance(event, ev.WorkerArrive):
            self.add_worker(event.worker)
        elif isinstance(event, ev.WorkerLeave):
            self.remove_worker(event.worker_id)
        elif isinstance(event, ev.WorkerUpdate):
            self.update_worker(event.worker)
        elif isinstance(event, ev.ExpireTasks):
            self.expire_tasks(event.time)
        elif isinstance(event, ev.EpochTick):
            return self.epoch(event.time)
        else:
            raise TypeError(f"unknown event type {type(event).__name__}")
        return None

    def process(self, queue_or_events) -> List[EpochResult]:
        """Drain an :class:`~repro.engine.scheduler.EventQueue` (or any
        pre-ordered event iterable); returns the epoch results in order."""
        events: Iterable[ev.Event]
        drain = getattr(queue_or_events, "drain", None)
        events = drain() if drain is not None else queue_or_events
        results: List[EpochResult] = []
        for event in events:
            outcome = self.apply(event)
            if outcome is not None:
                results.append(outcome)
        return results

    # ------------------------------------------------------------------ #
    # Retrieval + epochs
    # ------------------------------------------------------------------ #

    def current_pairs(self) -> List[ValidPair]:
        """The live valid-pair set, retrieved incrementally.

        Index mode serves unchanged (worker cell, task cell) entries from
        the grid's persistent cache and re-probes only dirty ones; the
        no-index numpy mode broadcasts over the slot slabs with dead slots
        masked; the no-index python mode is the reference scan.
        """
        if self.use_index:
            return self.grid.valid_pairs()
        if self.backend == "numpy":
            from repro.fastpath.kernels import slots_valid_pairs

            return slots_valid_pairs(self.task_slots, self.worker_slots, self.validity)
        from repro.index.grid import retrieve_pairs_without_index

        return retrieve_pairs_without_index(
            list(self._tasks.values()), list(self._workers.values()), self.validity
        )

    def current_problem(self) -> RdbscProblem:
        """The current sub-instance (no pinning, no filtering)."""
        return RdbscProblem(
            list(self._tasks.values()),
            list(self._workers.values()),
            self.validity,
            precomputed_pairs=self.current_pairs(),
            backend=self.backend,
        )

    def build_problem(
        self,
        pinned: Optional[Dict[int, List[WorkerProfile]]] = None,
        forbidden: Optional[Set[Tuple[int, int]]] = None,
    ) -> Tuple[RdbscProblem, Set[int]]:
        """The epoch sub-instance, with platform concerns folded in.

        Returns the problem plus the set of generated virtual worker ids
        (empty without pinning) so callers can separate real dispatch from
        solver bookkeeping.
        """
        pairs = self.current_pairs()
        if forbidden:
            pairs = [
                p for p in pairs if (p.worker_id, p.task_id) not in forbidden
            ]
        tasks = list(self._tasks.values())
        workers = list(self._workers.values())
        virtual_ids: Set[int] = set()
        if pinned:
            next_virtual = -1
            for task_id in sorted(pinned.keys()):
                task = self._tasks.get(task_id)
                if task is None:
                    continue  # contribution to an already-expired task
                for profile in pinned[task_id]:
                    while next_virtual in self._workers:  # avoid id clashes
                        next_virtual -= 1
                    worker, pair = virtual_worker(task, profile, next_virtual)
                    workers.append(worker)
                    pairs.append(pair)
                    virtual_ids.add(next_virtual)
                    next_virtual -= 1
        problem = RdbscProblem(
            tasks,
            workers,
            self.validity,
            precomputed_pairs=pairs,
            backend=self.backend,
        )
        return problem, virtual_ids

    def epoch(
        self,
        now: float = 0.0,
        pinned: Optional[Dict[int, List[WorkerProfile]]] = None,
        forbidden: Optional[Set[Tuple[int, int]]] = None,
    ) -> EpochResult:
        """One re-planning instant: expire, retrieve, solve, remember.

        The stored live assignment is replaced wholesale; committed work
        that must be honoured across epochs is expressed via ``pinned``
        (the platform simulator does), not by partial re-solves.
        """
        started = time.perf_counter()
        if self.reanchor_on_epoch:
            for worker in list(self._workers.values()):
                if worker.depart_time != now:
                    self.update_worker(worker.moved_to(worker.location, now))
        expired = self.expire_tasks(now)
        hits_before = self.grid.stats["pair_cache_hits"]
        misses_before = self.grid.stats["pair_cache_misses"]
        problem, virtual_ids = self.build_problem(pinned, forbidden)
        solve_started = time.perf_counter()
        result = self.solver.solve(problem, rng=self.rng)
        solve_seconds = time.perf_counter() - solve_started
        dispatch: Dict[int, int] = {}
        live = Assignment()
        for task_id, worker_id in result.assignment.pairs():
            if worker_id not in virtual_ids:
                dispatch[worker_id] = task_id
                live.assign(task_id, worker_id)
        self._assignment = live
        record = EpochRecord(
            now=now,
            num_tasks=problem.num_tasks,
            num_workers=problem.num_workers,
            num_pairs=problem.num_pairs,
            expired=len(expired),
            cache_hits=self.grid.stats["pair_cache_hits"] - hits_before,
            cache_misses=self.grid.stats["pair_cache_misses"] - misses_before,
            objective=result.objective,
            seconds=time.perf_counter() - started,
        )
        self.metrics.record_epoch(record, solve_seconds)
        return EpochResult(
            now=now,
            objective=result.objective,
            assignment=result.assignment.copy(),
            dispatch=dispatch,
            num_tasks=problem.num_tasks,
            num_workers=problem.num_workers,
            num_pairs=problem.num_pairs,
            expired=tuple(expired),
        )

    def evaluate_current(self) -> ObjectiveValue:
        """Objective of the live assignment against the current state."""
        problem = self.current_problem()
        live = Assignment()
        for task_id, worker_id in self._assignment.pairs():
            if problem.is_valid_pair(task_id, worker_id):
                live.assign(task_id, worker_id)
        return evaluate_assignment(problem, live)

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #

    def snapshot(self) -> "EngineSnapshot":
        """An immutable copy of the live state (for reporting / debugging)."""
        return EngineSnapshot(
            tasks=tuple(self._tasks.values()),
            workers=tuple(self._workers.values()),
            assignment=self._assignment.copy(),
        )


@dataclass(frozen=True)
class EngineSnapshot:
    """Point-in-time view of an engine's live state."""

    tasks: Tuple[SpatialTask, ...]
    workers: Tuple[MovingWorker, ...]
    assignment: Assignment

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def num_workers(self) -> int:
        return len(self.workers)
