"""Typed events consumed by the incremental assignment engine.

The long-lived RDB-SC system of Section 7.2 is a stream of small state
changes — workers and tasks "freely register or leave" — punctuated by
periodic re-planning instants (Figure 10's ``t_interval``).  This module
gives each kind of change a first-class event type so producers (workload
replays, the platform simulator, live services) and the consumer
(:class:`repro.engine.engine.AssignmentEngine`) agree on one vocabulary:

* :class:`TaskArrive` / :class:`TaskWithdraw` — task churn,
* :class:`WorkerArrive` / :class:`WorkerLeave` / :class:`WorkerUpdate` —
  worker churn (update covers position/heading/confidence refreshes),
* :class:`WorkerHold` / :class:`WorkerRelease` — in-flight dispatch state
  (a held worker stays registered but solver-invisible),
* :class:`ExpireTasks` — retire every task whose valid period has closed,
* :class:`EpochTick` — run the configured solver over the current state.

Events carry their clock time; the scheduler orders them by time with
churn-before-epoch tie-breaking (state changes at an instant are visible
to a re-plan at the same instant), FIFO within a kind.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.task import SpatialTask
from repro.core.worker import MovingWorker


@dataclass(frozen=True)
class Event:
    """Base event: something happening at clock time ``time``."""

    time: float

    #: Tie-break rank at equal times: churn (0) before epoch ticks (1), so a
    #: re-plan sees every state change timestamped at its own instant.
    priority = 0


@dataclass(frozen=True)
class TaskArrive(Event):
    """A requester posts a task."""

    task: SpatialTask


@dataclass(frozen=True)
class TaskWithdraw(Event):
    """A task is cancelled or completed before its deadline."""

    task_id: int


@dataclass(frozen=True)
class WorkerArrive(Event):
    """A worker registers with the system."""

    worker: MovingWorker


@dataclass(frozen=True)
class WorkerLeave(Event):
    """A worker leaves the system."""

    worker_id: int


@dataclass(frozen=True)
class WorkerUpdate(Event):
    """A registered worker refreshes position / heading / confidence."""

    worker: MovingWorker


@dataclass(frozen=True)
class WorkerHold(Event):
    """A dispatched worker goes in-flight: registered but solver-invisible."""

    worker_id: int


@dataclass(frozen=True)
class WorkerRelease(Event):
    """A held worker becomes solver-visible again (trip completed)."""

    worker_id: int


@dataclass(frozen=True)
class ExpireTasks(Event):
    """Retire every task whose valid period closed strictly before ``time``."""


@dataclass(frozen=True)
class EpochTick(Event):
    """Re-plan: run the engine's solver over the current live state."""

    priority = 1
