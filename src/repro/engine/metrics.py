"""Observability for the incremental assignment engine.

The engine's value proposition is amortised-O(delta) epochs, so the
metrics focus on exactly that: how much churn arrived between epochs, how
much of each retrieval was served from the persistent pair cache versus
re-probed, and what each epoch cost.  ``EngineMetrics`` aggregates over
the engine's lifetime; one :class:`EpochRecord` is appended per epoch for
capacity-planning views (the incremental benchmark consumes these).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.objectives import ObjectiveValue


@dataclass(frozen=True)
class EpochRecord:
    """One epoch's shape and cost.

    Attributes:
        now: the epoch's clock time.
        num_tasks / num_workers / num_pairs: size of the solved
            sub-instance (live entities and valid pairs).
        expired: tasks retired by this epoch's expiry sweep.
        cache_hits / cache_misses: pair-cache entries served / re-probed
            during this epoch's retrieval (index mode; zero otherwise).
        objective: the solver's (min reliability, total E[STD]) outcome.
        seconds: wall-clock cost of the whole epoch (expiry + retrieval +
            problem build + solve).
        mode: ``"full"`` for a cold solve, ``"warm"`` when the epoch
            repaired the previous plan (see
            :mod:`repro.solvers.incremental`).
        phases: wall-clock seconds per pipeline phase, as taken from the
            engine's :class:`repro.engine.profile.PhaseProfiler` at the
            end of the epoch (inter-epoch routing/coalescing time lands
            on the next epoch's record).
    """

    now: float
    num_tasks: int
    num_workers: int
    num_pairs: int
    expired: int
    cache_hits: int
    cache_misses: int
    objective: ObjectiveValue
    seconds: float
    mode: str = "full"
    phases: Dict[str, float] = field(default_factory=dict)


@dataclass
class EngineMetrics:
    """Lifetime counters plus the per-epoch history."""

    events: Dict[str, int] = field(default_factory=dict)
    epochs: int = 0
    #: Epochs solved cold / by warm repair (see ``EpochRecord.mode``).
    full_solves: int = 0
    warm_solves: int = 0
    #: Re-anchor sweeps skipped because the worker's empty reach could not
    #: change (the delta-cheap ``reanchor_on_epoch`` path).
    reanchors_skipped: int = 0
    tasks_expired: int = 0
    pairs_retrieved: int = 0
    solve_seconds: float = 0.0
    epoch_seconds: float = 0.0
    #: Lifetime wall-clock seconds per pipeline phase (folded from each
    #: ``EpochRecord.phases``).  Wall clock, so deliberately *not* part of
    #: :meth:`counters` — a restored engine re-earns its own profile.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    history: List[EpochRecord] = field(default_factory=list)

    def count_event(self, kind: str) -> None:
        """Increment the lifetime counter for one event kind."""
        self.events[kind] = self.events.get(kind, 0) + 1

    def record_epoch(self, record: EpochRecord, solve_seconds: float) -> None:
        """Append one epoch's record and fold it into the lifetime totals."""
        self.epochs += 1
        if record.mode == "warm":
            self.warm_solves += 1
        else:
            self.full_solves += 1
        self.tasks_expired += record.expired
        self.pairs_retrieved += record.num_pairs
        self.solve_seconds += solve_seconds
        self.epoch_seconds += record.seconds
        for name, seconds in record.phases.items():
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds
        self.history.append(record)

    def counters(self) -> Dict[str, object]:
        """The lifetime counters as one plain JSON-safe dict.

        Covers everything except the per-epoch ``history`` and the
        wall-clock second totals — exactly the portion of the metrics
        that is *replay-deterministic* (a restored engine re-earns its
        own wall clock), which is what durable snapshots serialize.
        """
        return {
            "events": dict(self.events),
            "epochs": self.epochs,
            "full_solves": self.full_solves,
            "warm_solves": self.warm_solves,
            "reanchors_skipped": self.reanchors_skipped,
            "tasks_expired": self.tasks_expired,
            "pairs_retrieved": self.pairs_retrieved,
        }

    def restore_counters(self, counters: Dict[str, object]) -> None:
        """Overwrite the lifetime counters from a :meth:`counters` dict."""
        self.events = dict(counters["events"])
        self.epochs = int(counters["epochs"])
        self.full_solves = int(counters["full_solves"])
        self.warm_solves = int(counters["warm_solves"])
        self.reanchors_skipped = int(counters["reanchors_skipped"])
        self.tasks_expired = int(counters["tasks_expired"])
        self.pairs_retrieved = int(counters["pairs_retrieved"])

    @property
    def events_processed(self) -> int:
        """Total churn events applied over the engine's lifetime."""
        return sum(self.events.values())

    def cache_hit_rate(self) -> float:
        """Fraction of pair-cache lookups served without re-probing."""
        hits = sum(r.cache_hits for r in self.history)
        misses = sum(r.cache_misses for r in self.history)
        total = hits + misses
        return hits / total if total else 0.0
