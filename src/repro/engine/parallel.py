"""The parallel solve subsystem: sample fan-out and shard-batched scoring.

PR 4 scaled the *index* side out — per-shard sub-grids, fanned-out epoch
maintenance — but the per-epoch **solve** stayed one serial global pass:
SAMPLING drew every sample from one RNG stream and GREEDY scored every
candidate in one loop.  This module parallelises the solve where it
decomposes honestly:

* **Sample fan-out.**  Under the substream determinism contract
  (:data:`repro.algorithms.sampling.SUBSTREAM_V1`) sample ``i`` depends
  only on ``(base seed, i)``, so independent sample evaluations partition
  freely.  :class:`ParallelSampleExecutor` ships the epoch sub-instance
  once per process — packed into flat arrays via :mod:`repro.fastpath.
  arrays`, not pickled object graphs — fans contiguous sample-index
  chunks across pinned worker processes, and merges the returned score
  blocks in sample-index order.  Each chunk is scored by
  :class:`SampleChunkScorer`, a bit-identical twin of
  :func:`repro.core.objectives.evaluate_assignment` that additionally
  memoises per-(task, chosen worker set) evaluations — repeated
  coincidences across a chunk's samples are scored once.  Plans are
  bit-identical at every pool size, and to the serial substream path.
* **Shard-batched greedy scoring.**  GREEDY stays globally coupled (every
  round scores against the global minimum reliability), but within one
  round the ``Δmin_R`` candidate scoring is embarrassingly parallel.
  :class:`ShardBatchedScorer` partitions a round's candidates per shard
  (via the engine's :class:`~repro.engine.sharding.ShardMap`, or into
  contiguous chunks without one), evaluates each batch through the
  element-wise :func:`repro.fastpath.kernels.batch_delta_min_r` kernel —
  inline, or across the process pool for large rounds — and scatters the
  results back into candidate order *before* the global argmax, so the
  committed plan is bit-identical to the serial greedy.

Both faces share one set of pinned single-worker process pools
(:class:`PinnedWorkerPools`, generalised from the per-shard pools of
:mod:`repro.engine.sharding`), owned by the umbrella
:class:`ParallelSolveExecutor` — the object the engines accept through
their ``solve_executor=`` knob and bind to GREEDY / SAMPLING solvers
(including their warm-start wrappers, whose dirty-worker re-scoring and
fresh draws run through the same attached executor).

Throughput is recorded by ``benchmarks/bench_parallel_solve.py`` into
``BENCH_parallel_solve.json``; the determinism contract is pinned by
``tests/test_parallel.py`` and the golden fixture.
"""

from __future__ import annotations

import math
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.greedy import GreedySolver
from repro.algorithms.random_assign import CandidateTable
from repro.algorithms.sampling import (
    SHARED_STREAM_V0,
    SamplingSolver,
    substream_rng,
)
from repro.core.problem import RdbscProblem
from repro.core.reliability import log_to_reliability
from repro.core.task import SpatialTask
from repro.core.validity import ValidityRule
from repro.core.worker import MovingWorker
from repro.fastpath.arrays import (
    TaskArrays,
    WorkerArrays,
    pack_pairs,
    unpack_pairs,
)
from repro.geometry.angles import AngleInterval
from repro.geometry.points import Point
from repro.solvers.incremental import WarmStartSolver


# --------------------------------------------------------------------- #
# Pinned process pools (generalised from the per-shard pools)
# --------------------------------------------------------------------- #


class PinnedWorkerPools:
    """``count`` single-worker process pools with stable task affinity.

    One ``ProcessPoolExecutor(max_workers=1)`` per slot: work submitted to
    slot ``i`` always lands in the same OS process, so per-process state —
    a shard's sub-grid, a chunk scorer's unpacked problem — has process
    affinity for the pools' lifetime.  This is the per-shard pool pattern
    of :class:`repro.engine.sharding.ProcessShardExecutor`, factored out
    so the solve fan-out can reuse it.

    Args:
        count: number of pinned slots (and processes).
        initializer: optional per-process initializer.
        initargs_per_slot: optional per-slot initializer arguments (one
            tuple per slot); omitted slots initialise with no arguments.
    """

    def __init__(
        self,
        count: int,
        initializer=None,
        initargs_per_slot: Optional[Sequence[tuple]] = None,
    ) -> None:
        if count < 1:
            raise ValueError(f"count must be positive, got {count}")
        self._pools = [
            ProcessPoolExecutor(
                max_workers=1,
                initializer=initializer,
                initargs=(
                    initargs_per_slot[slot]
                    if initargs_per_slot is not None
                    else ()
                ),
            )
            for slot in range(count)
        ]

    def __len__(self) -> int:
        return len(self._pools)

    def submit(self, slot: int, fn, *args):
        """Submit work to the pinned process at ``slot`` (mod the count)."""
        return self._pools[slot % len(self._pools)].submit(fn, *args)

    def close(self) -> None:
        """Shut every pinned worker process down."""
        for pool in self._pools:
            pool.shutdown()


# --------------------------------------------------------------------- #
# Problem wire format
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ProblemWire:
    """A sub-instance packed for cheap transport to a worker process.

    Tasks, workers and valid pairs travel as flat ``float64``/``int64``
    columns (the :mod:`repro.fastpath.arrays` packing) instead of pickled
    object graphs — per-object pickle overhead dominates otherwise.
    Column values are copied bit-exactly, so the rebuilt problem's
    arrivals, profiles and weights equal the original's.
    """

    task_columns: Tuple[np.ndarray, ...]
    worker_columns: Tuple[np.ndarray, ...]
    pairs: Tuple[np.ndarray, np.ndarray, np.ndarray]
    validity: ValidityRule


def pack_problem(problem: RdbscProblem) -> ProblemWire:
    """Pack a problem's entities and valid-pair graph into flat arrays."""
    tasks = TaskArrays.from_tasks(problem.tasks)
    workers = WorkerArrays.from_workers(problem.workers)
    return ProblemWire(
        task_columns=(
            tasks.ids,
            tasks.xs,
            tasks.ys,
            tasks.starts,
            tasks.ends,
            tasks.betas,
        ),
        worker_columns=(
            workers.ids,
            workers.xs,
            workers.ys,
            workers.velocities,
            workers.cone_los,
            workers.cone_widths,
            workers.confidences,
            workers.depart_times,
        ),
        pairs=pack_pairs(problem.valid_pairs()),
        validity=problem.validity,
    )


def unpack_problem(wire: ProblemWire) -> RdbscProblem:
    """Rebuild the packed sub-instance, bit-identically.

    Entity attributes and pair arrivals are reconstructed from the exact
    float columns :func:`pack_problem` copied, and the problem
    canonicalises candidate order itself, so solvers observe exactly the
    original instance.
    """
    ids, xs, ys, starts, ends, betas = wire.task_columns
    tasks = [
        SpatialTask(int(i), Point(x, y), start, end, beta)
        for i, x, y, start, end, beta in zip(
            ids.tolist(),
            xs.tolist(),
            ys.tolist(),
            starts.tolist(),
            ends.tolist(),
            betas.tolist(),
        )
    ]
    wids, wxs, wys, vels, los, widths, confs, departs = wire.worker_columns
    workers = [
        MovingWorker(
            int(i), Point(x, y), velocity, AngleInterval(lo, width), conf, depart
        )
        for i, x, y, velocity, lo, width, conf, depart in zip(
            wids.tolist(),
            wxs.tolist(),
            wys.tolist(),
            vels.tolist(),
            los.tolist(),
            widths.tolist(),
            confs.tolist(),
            departs.tolist(),
        )
    ]
    return RdbscProblem(
        tasks,
        workers,
        wire.validity,
        precomputed_pairs=unpack_pairs(wire.pairs),
    )


# --------------------------------------------------------------------- #
# Chunked sample scoring
# --------------------------------------------------------------------- #


class SampleChunkScorer:
    """Scores population draws bit-identically to ``evaluate_assignment``.

    Built once per (problem, chunk): pre-sorts the candidate table by
    worker id, and groups each sample's choices per task with one stable
    argsort instead of a per-worker Python loop.  Per-task evaluations —
    the Eq. 8 reliability sum and the ``O(r^2)`` ``E[STD]`` reduction,
    both over the task's chosen workers in ascending worker-id order,
    exactly as :func:`repro.core.objectives.evaluate_assignment` gathers
    them — are memoised per (task, chosen worker set): across a chunk of
    samples the same coincidence is scored once.  The memo only skips
    recomputation of identical inputs, and the per-task terms are
    accumulated in the problem's task order, so every score is
    bit-identical to the serial evaluation.
    """

    def __init__(self, problem: RdbscProblem) -> None:
        self.problem = problem
        self.table = CandidateTable.from_problem(problem)
        # Candidate-table rows re-ordered by ascending worker id: group
        # members then come out already in evaluate_assignment's order.
        order = np.argsort(self.table.worker_ids, kind="stable")
        self._degrees = self.table.degrees
        self._offsets_sorted = self.table.offsets[order]
        self._choice_order = order
        self._worker_ids_sorted = self.table.worker_ids[order]
        self._flat_tasks = self.table.flat_tasks
        self._task_rank = {
            task.task_id: rank for rank, task in enumerate(problem.tasks)
        }
        self._memo: Dict[Tuple[int, bytes], Tuple[float, float]] = {}
        self.evaluations = 0
        self.memo_hits = 0

    def _task_value(self, task_id: int, worker_ids: np.ndarray) -> Tuple[float, float]:
        """Memoised ``(R, E[STD])`` of one task's chosen worker set."""
        key = (task_id, worker_ids.tobytes())
        cached = self._memo.get(key)
        self.evaluations += 1
        if cached is not None:
            self.memo_hits += 1
            return cached
        problem = self.problem
        ids = worker_ids.tolist()
        r_value = sum(
            problem.workers_by_id[worker_id].log_confidence_weight
            for worker_id in ids
        )
        from repro.core.expected import expected_std

        estd = expected_std(
            problem.tasks_by_id[task_id],
            [problem.pair_profile(task_id, worker_id) for worker_id in ids],
        )
        self._memo[key] = (r_value, estd)
        return r_value, estd

    def score_choices(self, choices: np.ndarray) -> Tuple[float, float]:
        """Score one sample given its per-table-row candidate choices.

        ``choices`` is the bounded-integers vector drawn against the
        candidate table's degree bounds — exactly what
        :func:`repro.algorithms.random_assign.draw_random_assignment_batch`
        consumes — so drawing and scoring agree on the sample's edges.
        """
        if self._worker_ids_sorted.shape[0] == 0:
            return (0.0, 0.0)
        picked = self._flat_tasks[
            self._offsets_sorted + choices[self._choice_order]
        ]
        group = np.argsort(picked, kind="stable")
        picked_sorted = picked[group]
        boundaries = np.flatnonzero(np.diff(picked_sorted)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [picked_sorted.shape[0]]))
        per_task: List[Tuple[int, float, float]] = []
        for lo, hi in zip(starts.tolist(), ends.tolist()):
            task_id = int(picked_sorted[lo])
            r_value, estd = self._task_value(
                task_id, self._worker_ids_sorted[group[lo:hi]]
            )
            per_task.append((self._task_rank[task_id], r_value, estd))
        # Accumulate in the problem's task order: the same left-to-right
        # float additions evaluate_assignment performs.
        per_task.sort()
        total_std = 0.0
        min_r = math.inf
        for _, r_value, estd in per_task:
            total_std += estd
            min_r = min(min_r, r_value)
        if math.isinf(min_r) and min_r > 0:
            min_rel = 1.0
        else:
            min_rel = log_to_reliability(max(min_r, 0.0))
        return (min_rel, total_std)

    def score_range(self, base_seed: int, lo: int, hi: int) -> np.ndarray:
        """Score substream samples ``lo..hi-1``; returns a ``(hi-lo, 2)`` block."""
        out = np.empty((hi - lo, 2))
        degrees = self._degrees
        for index in range(lo, hi):
            generator = substream_rng(base_seed, index)
            if degrees.shape[0]:
                choices = generator.integers(0, degrees)
            else:
                choices = np.empty(0, dtype=np.int64)
            out[index - lo] = self.score_choices(choices)
        return out


def _score_chunk_remote(
    wire: ProblemWire, base_seed: int, lo: int, hi: int
) -> np.ndarray:
    """Worker-process entry: rebuild the instance, score one index range."""
    return SampleChunkScorer(unpack_problem(wire)).score_range(base_seed, lo, hi)


def chunk_ranges(count: int, chunks: int) -> List[Tuple[int, int]]:
    """Split ``count`` sample indices into ``chunks`` contiguous ranges.

    Near-even, deterministic, order-preserving — the merge is a plain
    concatenation in range order.  Empty ranges are dropped.
    """
    if chunks < 1:
        raise ValueError(f"chunks must be positive, got {chunks}")
    bounds = [count * chunk // chunks for chunk in range(chunks + 1)]
    return [
        (lo, hi) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
    ]


class ParallelSampleExecutor:
    """Fans independent substream sample evaluations across processes.

    Each solve ships the packed sub-instance (:func:`pack_problem`) to
    every participating process once, fans the sample indices out as
    contiguous chunks, and concatenates the returned score blocks in
    chunk order — sample ``i``'s score lands at position ``i`` regardless
    of the pool size, and equals the serial substream evaluation bitwise
    (each sample is keyed by ``(base seed, i)`` alone).  With
    ``processes=0`` the same chunked scoring runs inline — the
    deterministic reference executor, and the configuration that still
    buys the chunk scorer's memoisation without any IPC.

    Args:
        pools: pinned worker pools shared with the owning
            :class:`ParallelSolveExecutor` (``None`` for inline scoring).
        min_samples_per_process: fan out only when every participating
            process would receive at least this many samples; smaller
            batches score inline (shipping a problem per process costs
            more than it saves).
    """

    def __init__(
        self,
        pools: Optional[PinnedWorkerPools] = None,
        min_samples_per_process: int = 8,
    ) -> None:
        self.pools = pools
        self.min_samples_per_process = min_samples_per_process
        #: Lifetime counters: solves routed, chunks fanned out, samples
        #: scored inline vs remotely.
        self.stats: Dict[str, int] = {
            "solves": 0,
            "chunks_fanned": 0,
            "samples_remote": 0,
            "samples_inline": 0,
        }

    def _processes_for(self, count: int) -> int:
        if self.pools is None:
            return 0
        usable = min(len(self.pools), count // max(1, self.min_samples_per_process))
        return usable if usable >= 2 else 0

    def scored_sample_chunks(
        self, problem: RdbscProblem, base_seed: int, count: int
    ) -> List[Tuple[float, float]]:
        """Scores for samples ``0..count-1``, in sample-index order."""
        self.stats["solves"] += 1
        processes = self._processes_for(count)
        if processes == 0:
            self.stats["samples_inline"] += count
            scorer = SampleChunkScorer(problem)
            block = scorer.score_range(base_seed, 0, count)
            return [tuple(row) for row in block.tolist()]
        wire = pack_problem(problem)
        ranges = chunk_ranges(count, processes)
        futures = [
            self.pools.submit(slot, _score_chunk_remote, wire, base_seed, lo, hi)
            for slot, (lo, hi) in enumerate(ranges)
        ]
        self.stats["chunks_fanned"] += len(futures)
        self.stats["samples_remote"] += count
        scores: List[Tuple[float, float]] = []
        for future in futures:
            scores.extend(tuple(row) for row in future.result().tolist())
        return scores


# --------------------------------------------------------------------- #
# Shard-batched greedy round scoring
# --------------------------------------------------------------------- #


def _round_chunk_remote(
    task_r: np.ndarray,
    task_has: np.ndarray,
    weights: np.ndarray,
    best: float,
    second: float,
) -> np.ndarray:
    """Worker-process entry: one batch through the ``Δmin_R`` kernel."""
    from repro.fastpath.kernels import batch_delta_min_r

    return batch_delta_min_r(task_r, task_has, weights, best, second)


def _dstd_chunk_remote(
    betas: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    counts: np.ndarray,
    angles: np.ndarray,
    arrivals: np.ndarray,
    confidences: np.ndarray,
    old_estd: np.ndarray,
) -> np.ndarray:
    """Worker-process entry: one slab batch through the ``ΔE[STD]`` kernel.

    The kernel is row-independent, so shipping sliced slab rows and
    subtracting the sliced ``old_estd`` remotely produces exactly the
    bits the inline path would.
    """
    from repro.fastpath.diversity import DiversitySlab, batch_expected_std

    slab = DiversitySlab(
        betas=betas,
        starts=starts,
        ends=ends,
        counts=counts,
        angles=angles,
        arrivals=arrivals,
        confidences=confidences,
    )
    return batch_expected_std(slab) - old_estd


class ShardBatchedScorer:
    """Per-round greedy scoring in shard batches, merged before argmax.

    The greedy round loop stays globally coupled — each round's winner is
    the dominance argmax over *all* candidates — but the candidate scoring
    itself partitions freely.  Candidates are batched by the worker's
    owning shard (the same cell-block partition the sharded engine routes
    churn by) or, without a shard map, into contiguous chunks; each batch
    runs through :func:`repro.fastpath.kernels.batch_delta_min_r` (and,
    for the post-pruning exact evaluations,
    :func:`repro.fastpath.diversity.batch_expected_std` over sliced slab
    rows), and results are scattered back into the candidate order before
    the argmax.
    The kernel is element-wise, so the merged scores — and therefore the
    committed plan — are bit-identical to the serial greedy at every batch
    count and pool size.

    Args:
        pools: pinned worker pools shared with the owning
            :class:`ParallelSolveExecutor`; ``None`` scores every batch
            inline (the partition-and-merge architecture without IPC).
        shard_map: optional :class:`repro.engine.sharding.ShardMap`-like
            router (``shard_of_point``/``num_shards``) that assigns each
            candidate's worker to a batch.
        min_pairs_per_process: a batch goes to the pool only when it
            individually holds at least this many candidates (and at
            least one other batch does too — a lone remote batch has
            nothing to overlap with); smaller batches, and typical whole
            rounds, score inline.
        min_dstd_per_process: the same gate for exact ``ΔE[STD]`` slab
            batches (:meth:`round_delta_estd`), lower because each row
            costs an O(r^2) reduction rather than one ``Δmin_R`` formula.
    """

    def __init__(
        self,
        pools: Optional[PinnedWorkerPools] = None,
        shard_map=None,
        min_pairs_per_process: int = 4096,
        min_dstd_per_process: int = 512,
    ) -> None:
        self.pools = pools
        self.shard_map = shard_map
        self.min_pairs_per_process = min_pairs_per_process
        self.min_dstd_per_process = min_dstd_per_process
        # Worker->shard routing for the problem currently being solved;
        # held through a weakref so a finished epoch's sub-instance is not
        # kept alive between solves (the cache only ever hits within one).
        self._shard_cache: Tuple[Optional[weakref.ref], Dict[int, int]] = (
            None,
            {},
        )
        #: Lifetime counters: rounds scored, batches evaluated, batches
        #: that went through the process pools.
        self.stats: Dict[str, int] = {
            "rounds": 0,
            "batches": 0,
            "batches_remote": 0,
            "dstd_rounds": 0,
            "dstd_batches": 0,
            "dstd_batches_remote": 0,
        }

    def _worker_shards(self, problem: RdbscProblem) -> Dict[int, int]:
        reference, cache = self._shard_cache
        if reference is None or reference() is not problem:
            cache = {
                worker.worker_id: self.shard_map.shard_of_point(worker.location)
                for worker in problem.workers
            }
            self._shard_cache = (weakref.ref(problem), cache)
        return cache

    def _batches(
        self, problem: RdbscProblem, pairs: Sequence[Tuple[int, int]]
    ) -> List[np.ndarray]:
        """Candidate index batches, in deterministic batch order."""
        n = len(pairs)
        if self.shard_map is not None and self.shard_map.num_shards > 1:
            shards = self._worker_shards(problem)
            by_shard: Dict[int, List[int]] = {}
            for index, (_, worker_id) in enumerate(pairs):
                by_shard.setdefault(shards[worker_id], []).append(index)
            return [
                np.asarray(by_shard[shard_id], dtype=np.intp)
                for shard_id in sorted(by_shard)
            ]
        chunks = len(self.pools) if self.pools is not None else 1
        return [
            np.arange(lo, hi, dtype=np.intp)
            for lo, hi in chunk_ranges(n, max(1, chunks))
        ]

    def round_delta_min_r(
        self,
        problem: RdbscProblem,
        pairs: Sequence[Tuple[int, int]],
        task_r: np.ndarray,
        task_has: np.ndarray,
        weights: np.ndarray,
        best: float,
        second: float,
    ) -> np.ndarray:
        """``Δmin_R`` for every candidate, batch-evaluated then merged."""
        from repro.fastpath.kernels import batch_delta_min_r

        self.stats["rounds"] += 1
        batches = self._batches(problem, pairs)
        self.stats["batches"] += len(batches)
        out = np.empty(task_r.shape[0])
        # Fan out per batch: only a batch that individually carries enough
        # candidates to amortise its IPC round-trip goes to the pool (a
        # skewed shard partition ships its one big batch and scores the
        # small ones inline); with no second remote-worthy batch there is
        # nothing to overlap, so everything stays inline.
        remote = (
            [
                indices
                for indices in batches
                if indices.shape[0] >= self.min_pairs_per_process
            ]
            if self.pools is not None and len(batches) > 1
            else []
        )
        if len(remote) < 2:
            remote = []
        remote_ids = {id(indices) for indices in remote}
        futures = [
            (
                indices,
                self.pools.submit(
                    slot,
                    _round_chunk_remote,
                    task_r[indices],
                    task_has[indices],
                    weights[indices],
                    best,
                    second,
                ),
            )
            for slot, indices in enumerate(remote)
        ]
        self.stats["batches_remote"] += len(futures)
        for indices in batches:
            if id(indices) not in remote_ids:
                out[indices] = batch_delta_min_r(
                    task_r[indices], task_has[indices], weights[indices], best, second
                )
        for indices, future in futures:
            out[indices] = future.result()
        return out

    def round_delta_estd(
        self,
        problem: RdbscProblem,
        pairs: Sequence[Tuple[int, int]],
        slab,
        old_estd: np.ndarray,
    ) -> np.ndarray:
        """Exact ``ΔE[STD]`` for a candidate block, batched then merged.

        The greedy solver packs the block's padded profile slab
        (:func:`repro.fastpath.diversity.pack_delta_slab`) and hands it
        here; batches follow the same shard/chunk partition as
        :meth:`round_delta_min_r` and the same two-remote-batches gate,
        with :attr:`min_dstd_per_process` as the threshold.  The kernel
        is row-independent, so every partition — inline, remote, or any
        mix — returns bits identical to one whole-slab evaluation.
        """
        from repro.fastpath.diversity import batch_expected_std

        self.stats["dstd_rounds"] += 1
        batches = self._batches(problem, pairs)
        self.stats["dstd_batches"] += len(batches)
        out = np.empty(len(pairs))
        remote = (
            [
                indices
                for indices in batches
                if indices.shape[0] >= self.min_dstd_per_process
            ]
            if self.pools is not None and len(batches) > 1
            else []
        )
        if len(remote) < 2:
            remote = []
        remote_ids = {id(indices) for indices in remote}
        futures = [
            (
                indices,
                self.pools.submit(
                    slot,
                    _dstd_chunk_remote,
                    slab.betas[indices],
                    slab.starts[indices],
                    slab.ends[indices],
                    slab.counts[indices],
                    slab.angles[indices],
                    slab.arrivals[indices],
                    slab.confidences[indices],
                    old_estd[indices],
                ),
            )
            for slot, indices in enumerate(remote)
        ]
        self.stats["dstd_batches_remote"] += len(futures)
        for indices in batches:
            if id(indices) not in remote_ids:
                out[indices] = batch_expected_std(slab.take(indices)) - old_estd[indices]
        for indices, future in futures:
            out[indices] = future.result()
        return out


# --------------------------------------------------------------------- #
# The engine-facing umbrella
# --------------------------------------------------------------------- #


class ParallelSolveExecutor:
    """Owns the solve fan-out: pools, sampling face, greedy face.

    The value an engine's ``solve_executor=`` knob accepts (engines also
    accept a plain process count and construct one of these).  Pools are
    created lazily on first bind — a ``processes=0`` executor never forks
    and runs the same chunked/batched scoring inline, which is the
    deterministic reference configuration the differential tests compare
    every pool size against.

    Args:
        processes: pinned worker processes to fan across (0 = inline).
        min_samples_per_process: see :class:`ParallelSampleExecutor`.
        min_pairs_per_process: see :class:`ShardBatchedScorer`.
        min_dstd_per_process: see :class:`ShardBatchedScorer`.
    """

    def __init__(
        self,
        processes: int = 4,
        min_samples_per_process: int = 8,
        min_pairs_per_process: int = 4096,
        min_dstd_per_process: int = 512,
    ) -> None:
        if processes < 0:
            raise ValueError(f"processes must be non-negative, got {processes}")
        self.processes = processes
        self.min_samples_per_process = min_samples_per_process
        self.min_pairs_per_process = min_pairs_per_process
        self.min_dstd_per_process = min_dstd_per_process
        self._pools: Optional[PinnedWorkerPools] = None
        self._sample_executor: Optional[ParallelSampleExecutor] = None
        self._greedy_scorers: Dict[int, ShardBatchedScorer] = {}
        self._closed = False

    # -- pools ----------------------------------------------------------- #

    def pools(self) -> Optional[PinnedWorkerPools]:
        """The shared pinned pools (created on first use; None inline)."""
        if self.processes == 0:
            return None
        if self._closed:
            raise RuntimeError("executor already closed")
        if self._pools is None:
            self._pools = PinnedWorkerPools(self.processes)
        return self._pools

    # -- faces ----------------------------------------------------------- #

    @property
    def samples(self) -> ParallelSampleExecutor:
        """The sampling face (shared pools, lifetime stats)."""
        if self._sample_executor is None:
            self._sample_executor = ParallelSampleExecutor(
                self.pools(), self.min_samples_per_process
            )
        return self._sample_executor

    def greedy_scorer(self, shard_map=None) -> ShardBatchedScorer:
        """The greedy face for a partition (one scorer per shard map)."""
        key = id(shard_map)
        scorer = self._greedy_scorers.get(key)
        if scorer is None:
            scorer = ShardBatchedScorer(
                self.pools(),
                shard_map,
                self.min_pairs_per_process,
                self.min_dstd_per_process,
            )
            self._greedy_scorers[key] = scorer
        return scorer

    # -- binding --------------------------------------------------------- #

    def bind(self, solver, shard_map=None) -> bool:
        """Attach this executor to a solver's parallel hooks.

        Warm-start wrappers are unwrapped to their base (the warm paths
        re-enter the base solver's scoring loops, so the attachment covers
        dirty-worker re-scoring batches and warm fresh draws too).
        Returns whether the solver had a parallel face to bind; solvers
        without one (RANDOM, D&C, exhaustive, ...) are left untouched and
        simply solve serially.

        Raises:
            ValueError: for a legacy shared-stream sampling solver — its
                samples cannot be fanned out (sample ``i`` depends on
                every draw before it).
        """
        base = solver.base if isinstance(solver, WarmStartSolver) else solver
        if isinstance(base, SamplingSolver):
            if base.rng_contract == SHARED_STREAM_V0:
                raise ValueError(
                    "solve_executor requires the substream sampling contract "
                    "(rng_contract='substream-v1'); the legacy shared-stream "
                    "solver must run serially"
                )
            base.executor = self.samples
            return True
        if isinstance(base, GreedySolver):
            base.scorer = self.greedy_scorer(shard_map)
            return True
        return False

    def unbind(self, solver) -> None:
        """Detach this executor's faces from a solver (if it holds them).

        The inverse of :meth:`bind`, used by an engine closing an executor
        it owns — a solver reused elsewhere afterwards must not point at
        shut-down pools.
        """
        if solver is None:
            return
        base = solver.base if isinstance(solver, WarmStartSolver) else solver
        if (
            isinstance(base, SamplingSolver)
            and base.executor is self._sample_executor
        ):
            base.executor = None
        if isinstance(base, GreedySolver) and any(
            base.scorer is scorer for scorer in self._greedy_scorers.values()
        ):
            base.scorer = None

    # -- lifecycle ------------------------------------------------------- #

    def close(self) -> None:
        """Shut the shared pools down (idempotent)."""
        self._closed = True
        if self._pools is not None:
            self._pools.close()
            self._pools = None

    def __enter__(self) -> "ParallelSolveExecutor":
        """Context-manager entry: the executor itself."""
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        """Context-manager exit: close the pools."""
        self.close()
