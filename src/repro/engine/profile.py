"""Per-epoch phase timing for the assignment engines.

An epoch is a pipeline — event routing, churn coalescing, index
maintenance, candidate retrieval, Lemma 4.3 pruning, ``Δmin_R`` scoring,
exact ``ΔE[STD]`` scoring, shard merge, WAL appends — and knowing which
stage is hottest is what decides the next optimisation.  This module is
the engine's lightweight answer: a :class:`PhaseProfiler` accumulates
wall-clock seconds per named phase, the engine snapshots it into each
:class:`~repro.engine.metrics.EpochRecord` (``record.phases``), and
:class:`~repro.engine.metrics.EngineMetrics` folds the per-epoch
snapshots into lifetime ``phase_seconds``.

Engine-side call sites hold the profiler directly
(``with self.profiler.phase("index"): ...``).  Solver-side call sites
(the greedy scoring loop) cannot — solvers have no engine reference and
must stay usable standalone — so the engine *activates* its profiler
around the solve (:func:`activated`) and solver code times against the
innermost active profiler via the module-level :func:`phase`, which
degrades to a shared no-op context manager when no engine is driving.

Phase timings are measurement, not state: they are deliberately **not**
part of :meth:`EngineMetrics.counters`, which pins exactly the
replay-deterministic counters the durability contract restores.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List

from contextlib import contextmanager

#: The phase names the engines report (solvers add none beyond these).
#: Purely documentation — the profiler accepts any name.  ``diff_ship``
#: (building + packing resident shard diffs) and ``rebalance`` (topology
#: reshapes and the entity re-routing they trigger) are reported by the
#: elastic engine only (:mod:`repro.engine.elastic`).
PHASES = (
    "route",
    "coalesce",
    "index",
    "prune",
    "delta_min_r",
    "delta_estd",
    "merge",
    "wal_append",
    "diff_ship",
    "rebalance",
)


class _NullPhase:
    """No-op context manager returned when no profiler is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL = _NullPhase()


class _TimedPhase:
    """Context manager adding its elapsed wall time to one phase bucket."""

    __slots__ = ("_profiler", "_name", "_started")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_TimedPhase":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._profiler.add(self._name, time.perf_counter() - self._started)
        return False


class PhaseProfiler:
    """Accumulates wall-clock seconds per named phase until taken.

    Phases may nest and repeat; each ``with profiler.phase(name)`` block
    adds its elapsed time to the name's bucket.  :meth:`take` returns the
    accumulated dict and resets — the engine calls it once per epoch, so
    inter-epoch work (event routing between epochs) lands on the *next*
    epoch's record rather than disappearing.
    """

    __slots__ = ("_pending",)

    def __init__(self) -> None:
        self._pending: Dict[str, float] = {}

    def add(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to the ``name`` bucket."""
        self._pending[name] = self._pending.get(name, 0.0) + seconds

    def phase(self, name: str) -> _TimedPhase:
        """A context manager timing one block into the ``name`` bucket."""
        return _TimedPhase(self, name)

    def pending(self) -> Dict[str, float]:
        """The buckets accumulated since the last :meth:`take` (a copy)."""
        return dict(self._pending)

    def take(self) -> Dict[str, float]:
        """Return the accumulated buckets and reset the profiler."""
        taken, self._pending = self._pending, {}
        return taken


#: Stack of profilers activated by engines around their solve calls.
_ACTIVE: List[PhaseProfiler] = []


@contextmanager
def activated(profiler: PhaseProfiler) -> Iterator[PhaseProfiler]:
    """Make ``profiler`` the target of module-level :func:`phase` calls."""
    _ACTIVE.append(profiler)
    try:
        yield profiler
    finally:
        _ACTIVE.pop()


def phase(name: str):
    """Time against the innermost :func:`activated` profiler, else no-op.

    This is the solver-side entry point: cheap enough to leave in the
    scoring hot loop (a list check and, inactive, a shared singleton).
    """
    if _ACTIVE:
        return _ACTIVE[-1].phase(name)
    return _NULL
