"""Deterministic event ordering and epoch generation.

:class:`EventQueue` is a stable priority queue over
:mod:`repro.engine.events`: events pop in ``(time, priority, arrival
order)`` order, so state changes at an instant always precede an epoch
tick at the same instant, and equal-time churn keeps its submission order
(determinism matters — seeded solver runs must not depend on heap
internals).

:func:`epoch_ticks` materialises the Figure 10 re-planning clock as plain
:class:`~repro.engine.events.EpochTick` events so drivers can merge it
with their churn stream and feed everything through one queue.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.engine import events as ev
from repro.engine.events import EpochTick, Event

#: Tolerance for including an epoch tick that lands exactly on the horizon
#: (floating-point accumulation of ``k * interval`` must not drop it).
_HORIZON_EPS = 1e-9


class EventQueue:
    """A stable min-heap of engine events.

    ``push`` may be interleaved with ``pop`` — producers can schedule
    follow-up events (a worker's departure, a task's expiry) while the
    stream drains.
    """

    def __init__(self, events: Optional[Iterable[Event]] = None) -> None:
        self._heap: List = []
        self._seq = 0
        if events is not None:
            for event in events:
                self.push(event)

    def push(self, event: Event) -> None:
        """Schedule an event; equal-time events keep submission order."""
        heapq.heappush(self._heap, (event.time, event.priority, self._seq, event))
        self._seq += 1

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def next_time(self) -> Optional[float]:
        """Clock time of the earliest pending event (None when empty)."""
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Event:
        """Remove and return the earliest pending event.

        Raises:
            IndexError: when the queue is empty.
        """
        return heapq.heappop(self._heap)[3]

    def pop_until(self, now: float) -> Iterator[Event]:
        """Drain every event with ``time <= now``, in order."""
        while self._heap and self._heap[0][0] <= now:
            yield self.pop()

    def drain(self) -> Iterator[Event]:
        """Drain the whole queue in order."""
        while self._heap:
            yield self.pop()

    def pop_instant(self) -> List[Event]:
        """Remove and return every event sharing the earliest pending time.

        The batch keeps the queue's order (churn before epoch ticks, FIFO
        within a kind), so applying it event by event is indistinguishable
        from popping — but handing the whole instant to a consumer at once
        lets it group the deltas (per cell, per shard) before touching the
        index, which is how batched epochs amortise invalidation.

        Raises:
            IndexError: when the queue is empty.
        """
        instant = self._heap[0][0]
        batch: List[Event] = [self.pop()]
        while self._heap and self._heap[0][0] == instant:
            batch.append(self.pop())
        return batch

    def drain_instants(self) -> Iterator[List[Event]]:
        """Drain the queue as per-instant batches, in time order.

        Each yielded list is one :meth:`pop_instant` batch; events pushed
        while draining join their instant if it has not been reached yet
        (the same interleaving contract ``drain`` has).
        """
        while self._heap:
            yield self.pop_instant()


def epoch_ticks(
    interval: float, horizon: float, start: float = 0.0
) -> List[EpochTick]:
    """The periodic re-planning clock: ticks at ``start + k * interval``.

    Ticks are generated while ``time <= horizon`` (inclusive, with an
    epsilon so ``k * interval`` rounding cannot drop the final tick — the
    platform simulator's loop condition behaves the same way).

    Raises:
        ValueError: for a non-positive interval.
    """
    if interval <= 0.0:
        raise ValueError("interval must be positive")
    ticks: List[EpochTick] = []
    k = 0
    while True:
        time = start + k * interval
        if time > horizon + _HORIZON_EPS:
            return ticks
        ticks.append(EpochTick(time=time))
        k += 1


#: Flush order of the coalesced churn runs.  Within one conflict-free
#: window every entity id appears in exactly one run, and churn on
#: distinct entities commutes, so any fixed order is sound; leaves go
#: first so a window's net population change frees slots before filling.
CHURN_RUNS = (
    "worker_leave",
    "worker_arrive",
    "worker_update",
    "task_withdraw",
    "task_arrive",
)


def coalesce_churn(events: Iterable[Event]) -> Iterator[Tuple[str, object]]:
    """Group an ordered event batch into maximal commuting same-kind runs.

    Yields ``(kind, payload)`` items where ``kind`` is one of
    :data:`CHURN_RUNS` with a list payload (worker records, worker ids,
    tasks or task ids), or ``("event", event)`` for anything else (epoch
    ticks, expiry sweeps).  Churn touching *distinct* entities commutes —
    the final per-entity state is the last event's either way — so runs
    only flush when an entity id re-appears (its per-entity order must
    hold) or a non-churn event interposes.  Consumers apply each run as
    one batched index call, which is what lets a burst of same-instant
    deltas amortise per-cell invalidation: a boundary-crossing worker
    migration (leave + arrive) no longer chops a 1000-update run into
    fragments.
    """
    pending: dict = {kind: [] for kind in CHURN_RUNS}
    seen_workers: set = set()
    seen_tasks: set = set()

    def drain() -> Iterator[Tuple[str, object]]:
        for kind in CHURN_RUNS:
            run = pending[kind]
            if run:
                pending[kind] = []
                yield (kind, run)
        seen_workers.clear()
        seen_tasks.clear()

    for event in events:
        if isinstance(event, ev.WorkerLeave):
            kind, key, payload, seen = (
                "worker_leave", event.worker_id, event.worker_id, seen_workers
            )
        elif isinstance(event, ev.WorkerArrive):
            kind, key, payload, seen = (
                "worker_arrive", event.worker.worker_id, event.worker, seen_workers
            )
        elif isinstance(event, ev.WorkerUpdate):
            kind, key, payload, seen = (
                "worker_update", event.worker.worker_id, event.worker, seen_workers
            )
        elif isinstance(event, ev.TaskWithdraw):
            kind, key, payload, seen = (
                "task_withdraw", event.task_id, event.task_id, seen_tasks
            )
        elif isinstance(event, ev.TaskArrive):
            kind, key, payload, seen = (
                "task_arrive", event.task.task_id, event.task, seen_tasks
            )
        else:
            yield from drain()
            yield ("event", event)
            continue
        if key in seen:
            yield from drain()
        seen.add(key)
        pending[kind].append(payload)
    yield from drain()
