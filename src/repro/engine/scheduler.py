"""Deterministic event ordering and epoch generation.

:class:`EventQueue` is a stable priority queue over
:mod:`repro.engine.events`: events pop in ``(time, priority, arrival
order)`` order, so state changes at an instant always precede an epoch
tick at the same instant, and equal-time churn keeps its submission order
(determinism matters — seeded solver runs must not depend on heap
internals).

:func:`epoch_ticks` materialises the Figure 10 re-planning clock as plain
:class:`~repro.engine.events.EpochTick` events so drivers can merge it
with their churn stream and feed everything through one queue.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, List, Optional

from repro.engine.events import EpochTick, Event

#: Tolerance for including an epoch tick that lands exactly on the horizon
#: (floating-point accumulation of ``k * interval`` must not drop it).
_HORIZON_EPS = 1e-9


class EventQueue:
    """A stable min-heap of engine events.

    ``push`` may be interleaved with ``pop`` — producers can schedule
    follow-up events (a worker's departure, a task's expiry) while the
    stream drains.
    """

    def __init__(self, events: Optional[Iterable[Event]] = None) -> None:
        self._heap: List = []
        self._seq = 0
        if events is not None:
            for event in events:
                self.push(event)

    def push(self, event: Event) -> None:
        """Schedule an event; equal-time events keep submission order."""
        heapq.heappush(self._heap, (event.time, event.priority, self._seq, event))
        self._seq += 1

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def next_time(self) -> Optional[float]:
        """Clock time of the earliest pending event (None when empty)."""
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Event:
        """Remove and return the earliest pending event.

        Raises:
            IndexError: when the queue is empty.
        """
        return heapq.heappop(self._heap)[3]

    def pop_until(self, now: float) -> Iterator[Event]:
        """Drain every event with ``time <= now``, in order."""
        while self._heap and self._heap[0][0] <= now:
            yield self.pop()

    def drain(self) -> Iterator[Event]:
        """Drain the whole queue in order."""
        while self._heap:
            yield self.pop()


def epoch_ticks(
    interval: float, horizon: float, start: float = 0.0
) -> List[EpochTick]:
    """The periodic re-planning clock: ticks at ``start + k * interval``.

    Ticks are generated while ``time <= horizon`` (inclusive, with an
    epsilon so ``k * interval`` rounding cannot drop the final tick — the
    platform simulator's loop condition behaves the same way).

    Raises:
        ValueError: for a non-positive interval.
    """
    if interval <= 0.0:
        raise ValueError("interval must be positive")
    ticks: List[EpochTick] = []
    k = 0
    while True:
        time = start + k * interval
        if time > horizon + _HORIZON_EPS:
            return ticks
        ticks.append(EpochTick(time=time))
        k += 1
