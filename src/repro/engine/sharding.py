"""Sharded assignment: cell-block partitioning with fanned-out epochs.

The single :class:`~repro.engine.engine.AssignmentEngine` keeps one grid
index current per event; at the "millions of users" scale the ROADMAP
targets, that one grid becomes the bottleneck — every update sweeps every
materialised cell, and every epoch probes every dirty cell pair in one
process.  This module splits the grid into rectangular **cell blocks**
(:class:`ShardMap`), gives each block its own persistent sub-grid
(:class:`ShardState`), and fans the per-epoch index work out across an
executor (:class:`SequentialShardExecutor` in-process for determinism and
debugging, :class:`ProcessShardExecutor` across a ``concurrent.futures``
worker pool for real deployments).

**Routing.**  A worker lives in exactly one shard — the owner of its
grid cell.  A task is *replicated* into every shard whose owned block
lies within ``halo`` of the task's cell, so each shard can compute every
valid pair of its own workers locally.  A pair whose task lives in a
different block than its worker (a *halo-crossing* pair) is therefore
produced exactly once — by the worker's owner shard — and the merge step
is a deterministic concatenate-and-sort, no conflict resolution needed.

**The halo invariant.**  Replication is sound iff ``halo`` is at least
the farthest any worker can travel within any task's valid period:
``max over (t, w) of v_j * max(0, e_i - dp_j)``.  :meth:`ShardMap.
halo_bound` computes that bound for a population; ``halo=None`` (the
default) replicates tasks to every shard, which is always safe.  The
sharded engine tracks the running population aggregates and raises as
soon as a configured halo provably stops covering them — a silently
missing pair would break the bit-identity contract.

**Why the solve stays global.**  GREEDY scores every candidate against
the *global* minimum task reliability and SAMPLING consumes one global
RNG stream, so independent per-shard solves cannot reproduce the
single-engine plan (two shards' rounds interleave through the shared
minimum).  The fan-out therefore parallelises what does partition
cleanly — per-shard index maintenance (applied as per-cell-grouped
batches) and dirty-pair probing — and the merged pair set feeds one
global warm/full solve.  Epoch plans are bit-identical to the
single-shard engine on the same event stream (``tests/test_sharding.py``
pins this for 1, 2 and 4 shards on both executors); throughput is
recorded by ``benchmarks/bench_sharding.py`` into
``BENCH_sharding.json``.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import RngLike, Solver
from repro.core.problem import ValidPair
from repro.core.task import SpatialTask
from repro.core.validity import ValidityRule
from repro.core.worker import MovingWorker
from repro.engine import events as ev
from repro.engine.engine import AssignmentEngine
from repro.geometry.points import Point
from repro.index.grid import RdbscGrid, cell_coords

#: Slack added to the halo guard so float accumulation in the population
#: bound cannot trip it on a halo chosen exactly at ``halo_bound``.
_HALO_EPS = 1e-9

#: A shard's epoch report: its merged-in valid pairs plus the index-stat
#: deltas (pair-cache hits/misses, pruning counters) since the last report.
ShardReport = Tuple[List[ValidPair], Dict[str, int]]


def _rect_distance(
    a: Tuple[float, float, float, float], b: Tuple[float, float, float, float]
) -> float:
    """Minimum distance between two axis-aligned ``(x0, y0, x1, y1)`` rects."""
    dx = max(a[0] - b[2], b[0] - a[2], 0.0)
    dy = max(a[1] - b[3], b[1] - a[3], 0.0)
    return math.hypot(dx, dy)


class ShardMap:
    """Cell-block partition of the unit-square grid, statically tiled or
    elastically re-owned.

    Freshly built, the ``num_shards`` shards tile the grid in
    ``shard_rows x shard_cols`` blocks of near-equal cell counts (the
    factorisation closest to square).  The tiling can then be *reshaped*
    at runtime: :meth:`split`, :meth:`merge` and :meth:`migrate` move
    explicit cell sets between shards through a per-cell ownership table,
    so a drifting workload can be rebalanced without changing the shard
    (and resident-process) count — a shard that owns zero cells is
    *dormant*, holding capacity for a later split.  Every reshape bumps
    :attr:`topology_version` and is expressible as a JSON-serialisable op
    dict that :meth:`apply_op` re-applies verbatim, which is how the
    durable log replays a topology trajectory bit-exactly.  Cell
    membership uses the same clamped coordinate mapping as
    :class:`repro.index.grid.RdbscGrid`
    (:func:`repro.index.grid.cell_coords`), so routing and indexing can
    never disagree.

    Args:
        num_shards: number of blocks; 1 degenerates to no partitioning.
        eta: grid cell side, shared with the shard grids.
        halo: task-replication radius in unit-square units.  A task is
            routed to every shard owning a cell within ``halo`` of the
            task's *cell* (cell-granular, so replicated cells hold
            exactly the same residents as the single grid's).  ``None``
            replicates every task to every shard — always safe; an
            explicit value must satisfy the halo invariant (see
            :meth:`halo_bound`).

    Raises:
        ValueError: for a non-positive shard count, an ``eta`` outside
            ``(0, 1]``, a negative halo, or more blocks per axis than
            grid cells.
    """

    def __init__(
        self, num_shards: int, eta: float, halo: Optional[float] = None
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        if not 0.0 < eta <= 1.0:
            raise ValueError(f"eta must be in (0, 1], got {eta}")
        if halo is not None and halo < 0.0:
            raise ValueError(f"halo must be non-negative or None, got {halo}")
        self.num_shards = num_shards
        self.eta = eta
        self.halo = halo
        self.n_cols = max(1, math.ceil(1.0 / eta))
        rows = 1
        for divisor in range(int(math.isqrt(num_shards)), 0, -1):
            if num_shards % divisor == 0:
                rows = divisor
                break
        self.shard_rows = rows
        self.shard_cols = num_shards // rows
        if self.shard_rows > self.n_cols or self.shard_cols > self.n_cols:
            raise ValueError(
                f"{num_shards} shards need a {self.shard_rows}x{self.shard_cols} "
                f"block tiling but the grid has only {self.n_cols} cells per axis"
            )
        self._bounds = tuple(
            self._block_bounds(shard_id) for shard_id in range(num_shards)
        )
        #: Bumped by every ownership reshape; 0 means the static tiling.
        self.topology_version = 0
        # Explicit cell -> shard ownership (row-major flat list), or None
        # while the static tiling is still in force.  Derived per-shard
        # cell-rect lists and the per-cell task-routing cache rebuild on
        # every reshape.
        self._ownership: Optional[List[int]] = None
        self._owned_rects: Optional[
            List[List[Tuple[float, float, float, float]]]
        ] = None
        self._route_cache: Dict[int, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------ #

    def _block_rows(self, block: int, blocks: int) -> Tuple[int, int]:
        """Inclusive cell-row range of one block axis (near-even split)."""
        first = -(-block * self.n_cols // blocks)  # ceil
        last = -(-(block + 1) * self.n_cols // blocks) - 1
        return first, last

    def _block_bounds(self, shard_id: int) -> Tuple[float, float, float, float]:
        block_row, block_col = divmod(shard_id, self.shard_cols)
        row0, row1 = self._block_rows(block_row, self.shard_rows)
        col0, col1 = self._block_rows(block_col, self.shard_cols)
        return (
            col0 * self.eta,
            row0 * self.eta,
            (col1 + 1) * self.eta,
            (row1 + 1) * self.eta,
        )

    def block_bounds(self, shard_id: int) -> Tuple[float, float, float, float]:
        """The ``(x0, y0, x1, y1)`` rectangle of a shard's *static* block.

        The last row/column may extend past 1.0 when ``1 / eta`` is not
        integral — exactly like the grid's edge cells.  Reshapes do not
        change this value; elastic ownership is per cell, not per rect
        (see :meth:`owned_cells`).
        """
        return self._bounds[shard_id]

    def _static_shard_of_cell(self, row: int, col: int) -> int:
        block_row = row * self.shard_rows // self.n_cols
        block_col = col * self.shard_cols // self.n_cols
        return block_row * self.shard_cols + block_col

    def _cell_rect(
        self, row: int, col: int
    ) -> Tuple[float, float, float, float]:
        return (
            col * self.eta,
            row * self.eta,
            (col + 1) * self.eta,
            (row + 1) * self.eta,
        )

    def shard_of_cell(self, row: int, col: int) -> int:
        """Owner shard of the grid cell at ``(row, col)``."""
        if self._ownership is not None:
            return self._ownership[row * self.n_cols + col]
        return self._static_shard_of_cell(row, col)

    def shard_of_point(self, point: Point) -> int:
        """Owner shard of the cell containing ``point`` (worker routing)."""
        return self.shard_of_cell(*cell_coords(point, self.eta, self.n_cols))

    def shards_for_task(self, location: Point) -> Tuple[int, ...]:
        """Every shard a task at ``location`` must be replicated into.

        The owner shard (cell distance zero) plus every shard owning a
        cell within ``halo`` of the task's cell rectangle, in shard id
        order.  With ``halo=None`` this is all shards.  Under the static
        tiling the per-shard distance uses the block rectangle; under
        elastic ownership it is the minimum over the shard's owned cell
        rects (identical for a block, since the block is their union),
        cached per cell until the next reshape.
        """
        if self.halo is None or self.num_shards == 1:
            return tuple(range(self.num_shards))
        row, col = cell_coords(location, self.eta, self.n_cols)
        cell_rect = self._cell_rect(row, col)
        if self._ownership is None:
            return tuple(
                shard_id
                for shard_id in range(self.num_shards)
                if _rect_distance(self._bounds[shard_id], cell_rect) <= self.halo
            )
        index = row * self.n_cols + col
        cached = self._route_cache.get(index)
        if cached is None:
            assert self._owned_rects is not None
            cached = tuple(
                shard_id
                for shard_id in range(self.num_shards)
                if any(
                    _rect_distance(rect, cell_rect) <= self.halo
                    for rect in self._owned_rects[shard_id]
                )
            )
            self._route_cache[index] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Elastic ownership (split / merge / migrate)
    # ------------------------------------------------------------------ #

    def _materialise(self) -> List[int]:
        """The explicit ownership table, built lazily from the tiling."""
        if self._ownership is None:
            self._ownership = [
                self._static_shard_of_cell(row, col)
                for row in range(self.n_cols)
                for col in range(self.n_cols)
            ]
            self._refresh_derived()
        return self._ownership

    def _refresh_derived(self) -> None:
        assert self._ownership is not None
        rects: List[List[Tuple[float, float, float, float]]] = [
            [] for _ in range(self.num_shards)
        ]
        for index, shard_id in enumerate(self._ownership):
            row, col = divmod(index, self.n_cols)
            rects[shard_id].append(self._cell_rect(row, col))
        self._owned_rects = rects
        self._route_cache = {}

    def owned_cells(self, shard_id: int) -> List[Tuple[int, int]]:
        """The ``(row, col)`` cells a shard currently owns, sorted."""
        if not 0 <= shard_id < self.num_shards:
            raise ValueError(f"no shard {shard_id} in {self.num_shards}")
        if self._ownership is None:
            return [
                (row, col)
                for row in range(self.n_cols)
                for col in range(self.n_cols)
                if self._static_shard_of_cell(row, col) == shard_id
            ]
        return sorted(
            divmod(index, self.n_cols)
            for index, owner in enumerate(self._ownership)
            if owner == shard_id
        )

    def is_dormant(self, shard_id: int) -> bool:
        """True when a shard owns no cells (capacity for a later split)."""
        return not self.owned_cells(shard_id)

    def split(
        self, donor: int, target: int, cells: Sequence[Tuple[int, int]]
    ) -> Dict[str, object]:
        """Activate a dormant shard with part of a donor's cells.

        Returns the applied op dict (``kind``/``from``/``to``/``cells``)
        for WAL logging; :meth:`apply_op` re-applies it on replay.
        """
        op = {
            "kind": "split",
            "from": int(donor),
            "to": int(target),
            "cells": sorted([int(r), int(c)] for r, c in cells),
        }
        self.apply_op(op)
        return op

    def merge(self, donor: int, target: int) -> Dict[str, object]:
        """Move *all* of a donor's cells into a target shard.

        The donor goes dormant; its resident becomes spare capacity.
        Returns the applied op dict for WAL logging.
        """
        op = {
            "kind": "merge",
            "from": int(donor),
            "to": int(target),
            "cells": sorted([int(r), int(c)] for r, c in self.owned_cells(donor)),
        }
        self.apply_op(op)
        return op

    def migrate(
        self, donor: int, target: int, cells: Sequence[Tuple[int, int]]
    ) -> Dict[str, object]:
        """Move a cell subset between two *active* shards.

        Returns the applied op dict for WAL logging.
        """
        op = {
            "kind": "migrate",
            "from": int(donor),
            "to": int(target),
            "cells": sorted([int(r), int(c)] for r, c in cells),
        }
        self.apply_op(op)
        return op

    def apply_op(self, op: Dict[str, object]) -> None:
        """Apply one serialized reshape op (live call or WAL replay).

        Validates the op against the current ownership — every moved cell
        must belong to ``from``, a split's target must be dormant and its
        donor must keep at least one cell, a migrate's target must be
        active, and a merge must name the donor's full cell set — so a
        corrupt or out-of-order log fails loudly instead of silently
        diverging from the live trajectory.

        Raises:
            ValueError: for an unknown kind, out-of-range shard ids, an
                empty or non-donor-owned cell set, or a kind whose
                dormancy precondition does not hold.
        """
        kind = op["kind"]
        donor = int(op["from"])  # type: ignore[arg-type]
        target = int(op["to"])  # type: ignore[arg-type]
        cells = [(int(r), int(c)) for r, c in op["cells"]]  # type: ignore[union-attr]
        if kind not in ("split", "merge", "migrate"):
            raise ValueError(f"unknown rebalance op kind {kind!r}")
        for shard_id in (donor, target):
            if not 0 <= shard_id < self.num_shards:
                raise ValueError(f"no shard {shard_id} in {self.num_shards}")
        if donor == target:
            raise ValueError(f"{kind} from shard {donor} to itself")
        if not cells:
            raise ValueError(f"{kind} with an empty cell set")
        ownership = self._materialise()
        donor_cells = {
            divmod(index, self.n_cols)
            for index, owner in enumerate(ownership)
            if owner == donor
        }
        missing = [cell for cell in cells if cell not in donor_cells]
        if missing:
            raise ValueError(
                f"{kind}: cells {missing} are not owned by shard {donor}"
            )
        target_dormant = not any(owner == target for owner in ownership)
        if kind == "split":
            if not target_dormant:
                raise ValueError(
                    f"split target shard {target} is not dormant; use migrate"
                )
            if len(cells) >= len(donor_cells):
                raise ValueError(
                    f"split would leave donor shard {donor} with no cells; "
                    "use merge"
                )
        elif kind == "migrate":
            if target_dormant:
                raise ValueError(
                    f"migrate target shard {target} is dormant; use split"
                )
            if len(cells) >= len(donor_cells):
                raise ValueError(
                    f"migrate would leave donor shard {donor} with no cells; "
                    "use merge"
                )
        else:  # merge
            if set(cells) != donor_cells:
                raise ValueError(
                    "merge must move the donor's full cell set "
                    f"({sorted(donor_cells)}), got {sorted(cells)}"
                )
        for row, col in cells:
            ownership[row * self.n_cols + col] = target
        self.topology_version += 1
        self._refresh_derived()

    def topology(self) -> Dict[str, object]:
        """The ownership state as a JSON-serialisable snapshot payload."""
        return {
            "version": self.topology_version,
            "ownership": (
                None if self._ownership is None else list(self._ownership)
            ),
        }

    def install(self, topology: Dict[str, object]) -> None:
        """Adopt a :meth:`topology` payload (snapshot restore).

        Raises:
            ValueError: when the ownership table's length or shard ids do
                not match this map's grid and shard count.
        """
        ownership = topology["ownership"]
        if ownership is None:
            self._ownership = None
            self._owned_rects = None
            self._route_cache = {}
        else:
            table = [int(owner) for owner in ownership]  # type: ignore[union-attr]
            if len(table) != self.n_cols * self.n_cols:
                raise ValueError(
                    f"ownership table has {len(table)} cells; this grid has "
                    f"{self.n_cols * self.n_cols}"
                )
            bad = [owner for owner in table if not 0 <= owner < self.num_shards]
            if bad:
                raise ValueError(
                    f"ownership table names shards {sorted(set(bad))} outside "
                    f"0..{self.num_shards - 1}"
                )
            self._ownership = table
            self._refresh_derived()
        self.topology_version = int(topology["version"])  # type: ignore[arg-type]

    @staticmethod
    def halo_bound(
        tasks: Sequence[SpatialTask], workers: Sequence[MovingWorker]
    ) -> float:
        """The smallest halo provably safe for these populations.

        A pair ``(t, w)`` can only be valid when the worker covers the
        distance within the task's window: ``|l_i - l_j| <= v_j * (e_i -
        dp_j)``.  The bound returned is ``max(0, max e_i - min dp_j) *
        max v_j`` — conservative (it pairs the extremes), monotone under
        growth, and cheap.  Pass the *full pools* a stream will draw
        from, not just the initial population.
        """
        max_end = max((task.end for task in tasks), default=0.0)
        min_depart = min((worker.depart_time for worker in workers), default=0.0)
        v_max = max((worker.velocity for worker in workers), default=0.0)
        return max(0.0, max_end - min_depart) * v_max


class ShardState:
    """One shard's persistent sub-grid, living wherever its executor runs.

    Holds an ordinary :class:`~repro.index.grid.RdbscGrid` over the
    shard's routed residents (owned workers, halo-replicated tasks) and
    applies the typed churn events the engine routes to it.  The state is
    picklable while fresh, which is how the process executor ships it
    into its worker process once at start-up; afterwards it only ever
    exchanges event batches and pair reports.
    """

    def __init__(
        self,
        shard_id: int,
        eta: float,
        validity: Optional[ValidityRule] = None,
        backend: str = "python",
    ) -> None:
        self.shard_id = shard_id
        self.grid = RdbscGrid(eta, validity, backend=backend)
        self._reported = dict(self.grid.stats)

    def apply_batch(self, events: Sequence[ev.Event]) -> None:
        """Apply routed churn events, grouping same-kind runs per cell.

        The batch is coalesced exactly like the engine's own batched
        application (:func:`repro.engine.scheduler.coalesce_churn`):
        leaves, arrivals, updates and task churn each hit the shard grid
        as one batched call, paying one invalidation + widening sweep
        per touched cell — the "per-cell invalidations grouped before
        fan-out" amortisation.  Non-churn events are unroutable here and
        raise.
        """
        from repro.engine.scheduler import coalesce_churn

        for kind, payload in coalesce_churn(events):
            if kind == "worker_update":
                self.grid.update_workers(payload)
            elif kind == "worker_arrive":
                self.grid.insert_workers(payload)
            elif kind == "worker_leave":
                for worker_id in payload:
                    self.grid.remove_worker(worker_id)
            elif kind == "task_arrive":
                self.grid.insert_tasks(payload)
            elif kind == "task_withdraw":
                for task_id in payload:
                    self.grid.remove_task(task_id)
            else:
                raise TypeError(
                    f"shard {self.shard_id}: unroutable event "
                    f"{type(payload).__name__}"
                )

    def collect(self, events: Sequence[ev.Event]) -> ShardReport:
        """Apply a batch, then report this shard's pairs and stat deltas.

        The pair list is the shard grid's incremental retrieval (cached
        entries stream, dirty entries re-probe); the stats dict holds the
        change in each grid counter since the previous report, so the
        engine can aggregate exact per-epoch cache hit/miss numbers
        across shards.
        """
        self.apply_batch(events)
        pairs = self.grid.valid_pairs()
        delta = {
            key: value - self._reported[key] for key, value in self.grid.stats.items()
        }
        self._reported = dict(self.grid.stats)
        return pairs, delta


class SequentialShardExecutor:
    """In-process fan-out: shards applied one after another.

    Zero serialisation, single address space, deterministic — the
    executor for tests, debugging, and for deployments where the
    partitioning itself (smaller per-shard sweeps, grouped batches) is
    the win rather than parallelism.
    """

    def __init__(self, states: Sequence[ShardState]) -> None:
        self.states = list(states)

    def collect(
        self, batches: Dict[int, List[ev.Event]]
    ) -> List[ShardReport]:
        """Run every shard's ``collect`` in shard order; missing = empty."""
        return [
            state.collect(batches.get(state.shard_id, []))
            for state in self.states
        ]

    def close(self) -> None:
        """Nothing to release."""


_PROCESS_STATE: Optional[ShardState] = None


def _process_init(state: ShardState) -> None:
    """Worker-process initialiser: adopt the shipped shard state."""
    global _PROCESS_STATE
    _PROCESS_STATE = state


def _process_collect(events: List[ev.Event]):
    """Run one collect in the worker process; pairs travel packed."""
    from repro.fastpath.arrays import pack_pairs

    assert _PROCESS_STATE is not None
    pairs, stats = _PROCESS_STATE.collect(events)
    return pack_pairs(pairs), stats


class ProcessShardExecutor:
    """Process-pool fan-out: one single-worker pool per shard.

    Pinning each shard to its own single-worker pool (one
    :class:`repro.engine.parallel.PinnedWorkerPools` slot per shard)
    gives the shard state process affinity — the sub-grid and its
    persistent pair cache live in that worker for the engine's lifetime,
    and each epoch only ships the shard's event batch out and its packed
    pair report back (:func:`repro.fastpath.arrays.pack_pairs`).  All
    shards' collects run concurrently; results are gathered in shard
    order, so the merge stays deterministic.  Call :meth:`close` (or use
    the engine as a context manager) to shut the pools down.

    Each collect's engine-side cost is decomposed into cumulative
    ``timings``: ``route_seconds`` (batch routing + submission — the
    serialisation hand-off), ``wait_seconds`` (blocking on shard compute
    plus IPC, which all shards overlap) and ``unpack_seconds``
    (deserialising the packed pair reports) — the measurement behind the
    ``bench_sharding.py`` decomposition of process-executor overhead.
    """

    def __init__(self, states: Sequence[ShardState]) -> None:
        from repro.engine.parallel import PinnedWorkerPools

        self._shard_ids = [state.shard_id for state in states]
        self.pools = PinnedWorkerPools(
            len(states),
            initializer=_process_init,
            initargs_per_slot=[(state,) for state in states],
        )
        #: Cumulative engine-side collect decomposition (see class docs).
        self.timings: Dict[str, float] = {
            "route_seconds": 0.0,
            "wait_seconds": 0.0,
            "unpack_seconds": 0.0,
        }

    def collect(
        self, batches: Dict[int, List[ev.Event]]
    ) -> List[ShardReport]:
        """Fan one epoch's batches out; block until every shard reports."""
        from repro.fastpath.arrays import unpack_pairs

        started = time.perf_counter()
        futures = [
            self.pools.submit(slot, _process_collect, batches.get(shard_id, []))
            for slot, shard_id in enumerate(self._shard_ids)
        ]
        submitted = time.perf_counter()
        self.timings["route_seconds"] += submitted - started
        packed_reports = [future.result() for future in futures]
        gathered = time.perf_counter()
        self.timings["wait_seconds"] += gathered - submitted
        reports: List[ShardReport] = [
            (unpack_pairs(packed), stats) for packed, stats in packed_reports
        ]
        self.timings["unpack_seconds"] += time.perf_counter() - gathered
        return reports

    def close(self) -> None:
        """Shut down every shard's worker process."""
        self.pools.close()


class ShardedAssignmentEngine(AssignmentEngine):
    """The incremental engine with its index fanned out across shards.

    A drop-in :class:`~repro.engine.engine.AssignmentEngine`: the same
    churn methods, the same ``epoch(now, pinned, forbidden)``, the same
    warm/full solve modes — producing bit-identical plans — but all
    spatial-index traffic is routed to per-shard sub-grids and deferred
    until retrieval, when one fan-out applies each shard's accumulated
    delta as per-cell-grouped batches and merges the shards' pair
    reports deterministically.  The object dicts and slot slabs stay in
    the engine (they are O(1) per event); ``self.grid`` stays empty and
    serves as the aggregate stats ledger, so epoch records report
    cache hits/misses summed across shards.

    Args:
        solver / eta / validity / rng / backend / reanchor_on_epoch /
            solve_mode / warm_churn_threshold: as for
            :class:`AssignmentEngine` (``backend`` selects how each shard
            grid probes its dirty cell pairs).
        num_shards: cell-block count (see :class:`ShardMap`).
        halo: task-replication radius; ``None`` replicates everywhere
            (safe default).  With an explicit halo the engine tracks the
            population's reach bound and raises the moment the invariant
            would be violated.
        executor: ``"sequential"`` (in-process, default) or ``"process"``
            (one pinned worker process per shard).
        solve_executor: parallelise the epoch *solve* as for
            :class:`AssignmentEngine` (``None`` / process count /
            :class:`repro.engine.parallel.ParallelSolveExecutor`); the
            shard map additionally drives the greedy scorer's batch
            partition, so solve batches follow the same cell-block
            partition as the index fan-out.
        durable_path / durable_snapshot_every: write-ahead event log +
            periodic snapshots, as for :class:`AssignmentEngine`; the log
            additionally records the shard layout (count, halo, executor
            kind), so :func:`repro.engine.durable.restore_engine` rebuilds
            a sharded engine with identical routing.
    """

    def __init__(
        self,
        solver: Optional[Solver] = None,
        eta: float = 0.125,
        validity: Optional[ValidityRule] = None,
        rng: RngLike = None,
        backend: str = "python",
        num_shards: int = 4,
        halo: Optional[float] = None,
        executor: str = "sequential",
        reanchor_on_epoch: bool = False,
        solve_mode: str = "full",
        warm_churn_threshold: float = 0.25,
        solve_executor=None,
        durable_path=None,
        durable_snapshot_every: int = 16,
    ) -> None:
        super().__init__(
            solver=solver,
            eta=eta,
            validity=validity,
            rng=rng,
            backend=backend,
            use_index=True,
            reanchor_on_epoch=reanchor_on_epoch,
            solve_mode=solve_mode,
            warm_churn_threshold=warm_churn_threshold,
            solve_executor=solve_executor,
            durable_snapshot_every=durable_snapshot_every,
        )
        self.shard_map = ShardMap(num_shards, eta, halo=halo)
        states = [
            ShardState(shard_id, eta, self.validity, backend=backend)
            for shard_id in range(num_shards)
        ]
        if executor == "sequential":
            self.executor = SequentialShardExecutor(states)
        elif executor == "process":
            self.executor = ProcessShardExecutor(states)
        else:
            raise ValueError(f"unknown executor {executor!r}")
        #: Completed fan-outs (one per retrieval that found routed churn).
        self.fanouts = 0
        self._pending: Dict[int, List[ev.Event]] = {}
        self._merged: Optional[List[ValidPair]] = None
        self._task_shards: Dict[int, Tuple[int, ...]] = {}
        self._worker_shard: Dict[int, int] = {}
        # Running population aggregates backing the halo guard; they only
        # ever grow (removals cannot shrink a bound already honoured).
        self._max_end = 0.0
        self._min_depart = math.inf
        self._v_max = 0.0
        # Durability attaches here, after the shard layout exists — the log
        # meta must record it (the base __init__ runs too early for that).
        if durable_path is not None:
            self._start_durable(durable_path)

    def _durable_config(self) -> dict:
        """Base meta plus the shard layout a recovery must reproduce."""
        config = super()._durable_config()
        config.update(
            {
                "num_shards": self.shard_map.num_shards,
                "halo": self.shard_map.halo,
                "shard_executor": (
                    "process"
                    if isinstance(self.executor, ProcessShardExecutor)
                    else "sequential"
                ),
            }
        )
        return config

    # ------------------------------------------------------------------ #
    # Routing (the index hooks)
    # ------------------------------------------------------------------ #

    def _buffer(self, shard_id: int, event: ev.Event) -> None:
        self._pending.setdefault(shard_id, []).append(event)
        self._merged = None

    def _guard_halo(self) -> None:
        """Fail loudly the moment a configured halo stops being safe."""
        halo = self.shard_map.halo
        if halo is None:
            return
        min_depart = self._min_depart if self._min_depart != math.inf else 0.0
        bound = max(0.0, self._max_end - min_depart) * self._v_max
        if bound > halo + _HALO_EPS:
            raise ValueError(
                f"halo {halo} no longer covers the population's reach bound "
                f"{bound:.6g}; size it with ShardMap.halo_bound over the full "
                f"pools (or use halo=None to replicate tasks everywhere)"
            )

    def _guard_tasks(self, tasks: Sequence[SpatialTask]) -> None:
        """Fold tasks into the reach aggregates and re-check the halo.

        Runs *before* the base registration touches any state, so a
        too-small halo raises with the engine unmodified (a guard firing
        after registration would strand entities in the dicts but not in
        the routing tables).
        """
        for task in tasks:
            self._max_end = max(self._max_end, task.end)
        self._guard_halo()

    def _guard_workers(self, workers: Sequence[MovingWorker]) -> None:
        """Fold workers into the reach aggregates and re-check the halo."""
        for worker in workers:
            self._min_depart = min(self._min_depart, worker.depart_time)
            self._v_max = max(self._v_max, worker.velocity)
        self._guard_halo()

    def add_tasks(self, tasks: Sequence[SpatialTask]) -> None:
        """Register tasks, halo-guarded before any state changes."""
        self._guard_tasks(tasks)
        super().add_tasks(tasks)

    def add_workers(self, workers: Sequence[MovingWorker]) -> None:
        """Register workers, halo-guarded before any state changes."""
        self._guard_workers(workers)
        super().add_workers(workers)

    def update_workers(self, workers: Sequence[MovingWorker]) -> None:
        """Refresh workers in place, halo-guarded before any state changes."""
        self._guard_workers(workers)
        super().update_workers(workers)

    def _index_insert_tasks(self, tasks: Sequence[SpatialTask]) -> None:
        with self.profiler.phase("route"):
            for task in tasks:
                shards = self.shard_map.shards_for_task(task.location)
                self._task_shards[task.task_id] = shards
                for shard_id in shards:
                    self._buffer(shard_id, ev.TaskArrive(time=0.0, task=task))

    def _index_remove_task(self, task_id: int) -> None:
        with self.profiler.phase("route"):
            for shard_id in self._task_shards.pop(task_id):
                self._buffer(shard_id, ev.TaskWithdraw(time=0.0, task_id=task_id))

    def _index_add_workers(self, workers: Sequence[MovingWorker]) -> None:
        with self.profiler.phase("route"):
            for worker in workers:
                shard_id = self.shard_map.shard_of_point(worker.location)
                self._worker_shard[worker.worker_id] = shard_id
                self._buffer(shard_id, ev.WorkerArrive(time=0.0, worker=worker))

    def _index_remove_worker(self, worker_id: int) -> None:
        with self.profiler.phase("route"):
            shard_id = self._worker_shard.pop(worker_id)
            self._buffer(shard_id, ev.WorkerLeave(time=0.0, worker_id=worker_id))

    def _index_update_workers(self, workers: Sequence[MovingWorker]) -> None:
        with self.profiler.phase("route"):
            for worker in workers:
                new_shard = self.shard_map.shard_of_point(worker.location)
                old_shard = self._worker_shard[worker.worker_id]
                if new_shard == old_shard:
                    self._buffer(
                        new_shard, ev.WorkerUpdate(time=0.0, worker=worker)
                    )
                else:
                    # A block-crossing move migrates the worker between
                    # shard grids; its pairs move with it, so the merge
                    # needs no cross-shard reconciliation.
                    self._worker_shard[worker.worker_id] = new_shard
                    self._buffer(
                        old_shard,
                        ev.WorkerLeave(time=0.0, worker_id=worker.worker_id),
                    )
                    self._buffer(
                        new_shard, ev.WorkerArrive(time=0.0, worker=worker)
                    )

    # ------------------------------------------------------------------ #
    # Fan-out retrieval
    # ------------------------------------------------------------------ #

    def current_pairs(self) -> List[ValidPair]:
        """The live valid-pair set, merged across shards.

        Routed churn since the previous fan-out is flushed first (each
        shard applies its batch grouped per cell, then reports its pairs
        incrementally); with nothing pending, the previous merge is
        served again without touching the executor.  The merged list is
        sorted by ``(task_id, worker_id)`` — a canonical order containing
        exactly the single grid's pair set, which is all the (candidate-
        canonicalising) problem build observes.
        """
        if self._merged is None:
            batches, self._pending = self._pending, {}
            merged: List[ValidPair] = []
            with self.profiler.phase("index"):
                for pairs, stats in self.executor.collect(batches):
                    merged.extend(pairs)
                    for key, delta in stats.items():
                        self.grid.stats[key] += delta
            with self.profiler.phase("merge"):
                merged.sort(key=lambda pair: (pair.task_id, pair.worker_id))
            self._merged = merged
            self.fanouts += 1
        return list(self._merged)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release the shard executor and any owned solve executor.

        Idempotent like the base close: the first call shuts the shard
        pools *and* an engine-owned solve executor down (the base close
        handles the latter — an engine-owned
        :class:`~repro.engine.parallel.ParallelSolveExecutor` must not
        outlive the sharded engine any more than the single one); repeats
        are no-ops, and a later :meth:`epoch` fails with a clear error
        instead of submitting to dead pools.
        """
        if self._closed:
            return
        self.executor.close()
        super().close()
