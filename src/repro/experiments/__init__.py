"""The experiment harness regenerating the paper's tables and figures.

``spec``
    Declarative experiment descriptions: a parameter sweep, a workload
    factory per sweep point, and the solver line-up.
``runner``
    Executes a spec across seeds, timing each solve, and collects
    (parameter, solver) -> (min reliability, total STD, seconds) rows.
``reporting``
    ASCII tables and per-solver series shaped like the paper's plots.
``figures``
    One builder per paper figure (11-18, 22-27) plus the index and
    platform harnesses for Figures 17-20.
"""

from repro.experiments.reporting import format_series, format_table
from repro.experiments.runner import ExperimentResult, ResultRow, run_experiment
from repro.experiments.spec import Experiment, ParameterPoint, default_solvers

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ParameterPoint",
    "ResultRow",
    "default_solvers",
    "format_series",
    "format_table",
    "run_experiment",
]
