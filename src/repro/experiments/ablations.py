"""Ablation experiments for the design choices DESIGN.md calls out.

Four studies, each answering one "did that mechanism matter?" question:

* :func:`pruning_ablation` — the Section 4.3 bound pruning: how many exact
  expected-diversity evaluations it saves, at what quality cost.
* :func:`gamma_ablation` — D&C's threshold γ: leaf size vs quality vs time.
* :func:`sampling_budget_ablation` — SAMPLING's K: quality as a function of
  the sample budget (the knob behind the paper's G-TRUTH = 10x rule).
* :func:`baseline_comparison` — the RDB-SC solvers against the
  coverage-maximising MAX-TASK baseline and a uniform RANDOM draw: the
  paper's motivating claim that count-oriented assignment sacrifices
  reliability and diversity.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.algorithms import (
    DivideConquerSolver,
    GreedySolver,
    RandomSolver,
    SamplingSolver,
)
from repro.algorithms.max_task import MaxTaskSolver
from repro.core.problem import RdbscProblem
from repro.datagen import ExperimentConfig, generate_problem


@dataclass(frozen=True)
class AblationRow:
    """One configuration's outcome in an ablation study."""

    label: str
    min_reliability: float
    total_std: float
    seconds: float
    extra: float = 0.0


def _default_instance(seed: int) -> RdbscProblem:
    return generate_problem(
        ExperimentConfig.scaled_defaults(num_tasks=48, num_workers=96), seed
    )


def _mean_rows(rows_per_seed: List[List[AblationRow]]) -> List[AblationRow]:
    """Average aligned rows across seeds."""
    count = len(rows_per_seed)
    out: List[AblationRow] = []
    for i in range(len(rows_per_seed[0])):
        cells = [rows[i] for rows in rows_per_seed]
        out.append(
            AblationRow(
                label=cells[0].label,
                min_reliability=sum(c.min_reliability for c in cells) / count,
                total_std=sum(c.total_std for c in cells) / count,
                seconds=sum(c.seconds for c in cells) / count,
                extra=sum(c.extra for c in cells) / count,
            )
        )
    return out


def _run_solvers(
    labelled_solvers: Sequence,
    seeds: Sequence[int],
    make_problem: Callable[[int], RdbscProblem] = _default_instance,
    extra_stat: str = "",
) -> List[AblationRow]:
    rows_per_seed: List[List[AblationRow]] = []
    for seed in seeds:
        problem = make_problem(seed)
        rows: List[AblationRow] = []
        for label, solver in labelled_solvers:
            start = time.perf_counter()
            result = solver.solve(problem, rng=seed)
            elapsed = time.perf_counter() - start
            rows.append(
                AblationRow(
                    label=label,
                    min_reliability=result.objective.min_reliability,
                    total_std=result.objective.total_std,
                    seconds=elapsed,
                    extra=result.stats.get(extra_stat, 0.0),
                )
            )
        rows_per_seed.append(rows)
    return _mean_rows(rows_per_seed)


def pruning_ablation(seeds: Sequence[int] = (1, 2, 3)) -> List[AblationRow]:
    """GREEDY with vs without the Lemma 4.3 pruning.

    ``extra`` reports the number of exact delta-E[STD] evaluations — the
    cost the pruning exists to avoid.
    """
    return _run_solvers(
        [
            ("pruning ON", GreedySolver(use_pruning=True)),
            ("pruning OFF", GreedySolver(use_pruning=False)),
        ],
        seeds,
        extra_stat="exact_delta_evaluations",
    )


def gamma_ablation(
    gammas: Sequence[int] = (2, 4, 8, 16, 32),
    seeds: Sequence[int] = (1, 2),
) -> List[AblationRow]:
    """D&C leaf threshold γ: smaller leaves mean more merging, larger
    leaves push more weight onto the base sampler.  ``extra`` counts leaf
    solves."""
    return _run_solvers(
        [
            (
                f"gamma={gamma}",
                DivideConquerSolver(
                    gamma=gamma, base_solver=SamplingSolver(num_samples=30)
                ),
            )
            for gamma in gammas
        ],
        seeds,
        extra_stat="leaf_solves",
    )


def sampling_budget_ablation(
    budgets: Sequence[int] = (5, 20, 80, 320),
    seeds: Sequence[int] = (1, 2, 3),
) -> List[AblationRow]:
    """SAMPLING quality as a function of the sample count K."""
    return _run_solvers(
        [(f"K={k}", SamplingSolver(num_samples=k)) for k in budgets],
        seeds,
        extra_stat="samples",
    )


def baseline_comparison(seeds: Sequence[int] = (1, 2, 3)) -> List[AblationRow]:
    """RDB-SC solvers vs count-maximising and random baselines.

    ``extra`` is MAX-TASK's covered-task count where applicable.
    """
    return _run_solvers(
        [
            ("GREEDY", GreedySolver()),
            ("SAMPLING", SamplingSolver(num_samples=40)),
            ("D&C", DivideConquerSolver(gamma=8, base_solver=SamplingSolver(num_samples=40))),
            ("MAX-TASK", MaxTaskSolver()),
            ("RANDOM", RandomSolver()),
        ],
        seeds,
        extra_stat="tasks_covered",
    )


def format_ablation(title: str, rows: Sequence[AblationRow], extra_name: str = "extra") -> str:
    """Fixed-width table for an ablation study."""
    lines = [
        title,
        "=" * len(title),
        f"{'configuration':>14} | {'min rel':>8} | {'total_STD':>10} | "
        f"{'time (s)':>9} | {extra_name:>12}",
    ]
    for row in rows:
        lines.append(
            f"{row.label:>14} | {row.min_reliability:8.4f} | {row.total_std:10.4f} | "
            f"{row.seconds:9.4f} | {row.extra:12.1f}"
        )
    return "\n".join(lines)
