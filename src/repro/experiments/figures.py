"""One builder per paper figure.

Scales are laptop-sized (the paper used m up to 100K on a 32-GB Xeon) but
preserve the paper's *ratios*: the default instance has twice as many
workers as tasks where the paper used 10K/10K only because our unit-square
graph density is tuned through the scaled config instead (see
``ExperimentConfig.scaled_defaults``).  Each sweep multiplies the default
exactly as the paper's Table 2 rows do — e.g. the task sweep runs
{0.5x, 0.8x, 1x, 5x, 10x} of the default m, mirroring {5K, 8K, 10K, 50K,
100K}.

Figures 11/12/22 run on the Beijing-substitute "real" workload; 13-16 and
23-27 on UNIFORM/SKEWED synthetic data; 17 on the grid index; 18 on the
platform simulator; 19-20 on the angular-coverage showcase.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.algorithms import GreedySolver, Solver
from repro.analysis.coverage import CoverageReport, coverage_report
from repro.core.problem import RdbscProblem
from repro.datagen import (
    ExperimentConfig,
    generate_problem,
    generate_real_substitute_problem,
)
from repro.experiments.spec import Experiment, ParameterPoint, default_solvers
from repro.index.cost_model import optimal_eta
from repro.index.fractal import correlation_dimension
from repro.index.grid import RdbscGrid, retrieve_pairs_without_index
from repro.platform_sim import PlatformConfig, PlatformSimulator

# --------------------------------------------------------------------- #
# Shared scaled baselines
# --------------------------------------------------------------------- #

#: Default synthetic instance: 48 tasks, 96 workers (paper: 10K / 10K).
BASE_TASKS = 48
BASE_WORKERS = 96

#: "Real data" substitute instance: near-balanced like the paper's
#: 10,000 POIs / 9,748 taxis.
REAL_TASKS = 56
REAL_WORKERS = 60


def _synthetic_config(**overrides) -> ExperimentConfig:
    config = ExperimentConfig.scaled_defaults(
        num_tasks=BASE_TASKS, num_workers=BASE_WORKERS
    )
    return config.with_updates(**overrides) if overrides else config


def _real_config(**overrides) -> ExperimentConfig:
    config = ExperimentConfig.scaled_defaults(
        num_tasks=REAL_TASKS, num_workers=REAL_WORKERS
    ).with_updates(velocity_range=(0.25, 0.45))
    return config.with_updates(**overrides) if overrides else config


def _synthetic_point(label: str, config: ExperimentConfig) -> ParameterPoint:
    return ParameterPoint(label, lambda seed, c=config: generate_problem(c, seed))


def _real_point(label: str, config: ExperimentConfig) -> ParameterPoint:
    return ParameterPoint(
        label,
        lambda seed, c=config: generate_real_substitute_problem(c, seed),
    )


# --------------------------------------------------------------------- #
# Figures 11, 12, 22 — real-data (substitute) sweeps
# --------------------------------------------------------------------- #

EXPIRATION_SWEEP: Tuple[Tuple[float, float], ...] = (
    (0.25, 0.5),
    (0.5, 1.0),
    (1.0, 2.0),
    (2.0, 3.0),
)

RELIABILITY_SWEEP: Tuple[Tuple[float, float], ...] = (
    (0.8, 1.0),
    (0.85, 1.0),
    (0.9, 1.0),
    (0.95, 1.0),
)

BETA_SWEEP: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.2),
    (0.2, 0.4),
    (0.4, 0.6),
    (0.6, 0.8),
    (0.8, 1.0),
)


def fig11_expiration_real() -> Experiment:
    """Figure 11: effect of the tasks' expiration-time range ``rt``."""
    points = [
        _real_point(f"[{lo}, {hi}]", _real_config(expiration_range=(lo, hi)))
        for lo, hi in EXPIRATION_SWEEP
    ]
    return Experiment(
        name="fig11_expiration_real",
        figure="Figure 11",
        parameter_name="range of rt",
        points=points,
    )


def fig12_reliability_real() -> Experiment:
    """Figure 12: effect of the workers' reliability range [p_min, p_max]."""
    points = [
        _real_point(f"({lo}, {hi})", _real_config(reliability_range=(lo, hi)))
        for lo, hi in RELIABILITY_SWEEP
    ]
    return Experiment(
        name="fig12_reliability_real",
        figure="Figure 12",
        parameter_name="[p_min, p_max]",
        points=points,
    )


def fig22_beta_real() -> Experiment:
    """Figure 22 (appendix): effect of the requester weight range beta."""
    points = [
        _real_point(f"({lo}, {hi}]", _real_config(beta_range=(lo, hi)))
        for lo, hi in BETA_SWEEP
    ]
    return Experiment(
        name="fig22_beta_real",
        figure="Figure 22",
        parameter_name="range of beta",
        points=points,
    )


# --------------------------------------------------------------------- #
# Figures 13/23 (m), 14/24 (n) — synthetic scale sweeps
# --------------------------------------------------------------------- #

#: The paper's m sweep {5K, 8K, 10K, 50K, 100K} as multiples of the default.
TASK_SWEEP_FACTORS = (0.5, 0.8, 1.0, 5.0, 10.0)
#: The paper's n sweep {5K, 8K, 10K, 15K, 20K} as multiples of the default.
WORKER_SWEEP_FACTORS = (0.5, 0.8, 1.0, 1.5, 2.0)


def _tasks_experiment(distribution: str, name: str, figure: str) -> Experiment:
    points = []
    for factor in TASK_SWEEP_FACTORS:
        m = max(2, round(BASE_TASKS * factor))
        config = _synthetic_config(num_tasks=m, distribution=distribution)
        points.append(_synthetic_point(str(m), config))
    return Experiment(
        name=name, figure=figure, parameter_name="number of tasks m", points=points
    )


def _workers_experiment(distribution: str, name: str, figure: str) -> Experiment:
    points = []
    for factor in WORKER_SWEEP_FACTORS:
        n = max(1, round(BASE_WORKERS * factor))
        config = _synthetic_config(num_workers=n, distribution=distribution)
        points.append(_synthetic_point(str(n), config))
    return Experiment(
        name=name, figure=figure, parameter_name="number of workers n", points=points
    )


def fig13_tasks_uniform() -> Experiment:
    """Figure 13: effect of m on UNIFORM data."""
    return _tasks_experiment("uniform", "fig13_tasks_uniform", "Figure 13")


def fig14_workers_uniform() -> Experiment:
    """Figure 14: effect of n on UNIFORM data."""
    return _workers_experiment("uniform", "fig14_workers_uniform", "Figure 14")


def fig23_tasks_skewed() -> Experiment:
    """Figure 23: effect of m on SKEWED data."""
    return _tasks_experiment("skewed", "fig23_tasks_skewed", "Figure 23")


def fig24_workers_skewed() -> Experiment:
    """Figure 24: effect of n on SKEWED data."""
    return _workers_experiment("skewed", "fig24_workers_skewed", "Figure 24")


# --------------------------------------------------------------------- #
# Figures 15/27 (angle range), 25/26 (velocity) — constraint sweeps
# --------------------------------------------------------------------- #

ANGLE_SWEEP: Tuple[Tuple[str, float], ...] = (
    ("(0, pi/8]", math.pi / 8.0),
    ("(0, pi/7]", math.pi / 7.0),
    ("(0, pi/6]", math.pi / 6.0),
    ("(0, pi/5]", math.pi / 5.0),
    ("(0, pi/4]", math.pi / 4.0),
)

VELOCITY_SWEEP: Tuple[Tuple[float, float], ...] = (
    (0.1, 0.2),
    (0.2, 0.3),
    (0.3, 0.4),
    (0.4, 0.5),
)


def _angles_experiment(distribution: str, name: str, figure: str) -> Experiment:
    # Tight paper-scale cones starve the graph at laptop scale; compensate
    # with a narrower start window and faster workers while *preserving the
    # paper's task:worker ratio* — changing the ratio changes which solver
    # wins (GREEDY escapes its bad start-up when tasks heavily outnumber
    # workers), which is the figure's whole point.
    base = _synthetic_config(
        num_tasks=BASE_TASKS * 2,
        num_workers=BASE_WORKERS * 2,
        distribution=distribution,
        start_time_range=(0.0, 0.5),
        velocity_range=(0.4, 0.5),
    )
    points = [
        _synthetic_point(label, base.with_updates(angle_range_max=width))
        for label, width in ANGLE_SWEEP
    ]
    return Experiment(
        name=name,
        figure=figure,
        parameter_name="range of (alpha+ - alpha-)",
        points=points,
    )


def _velocity_experiment(distribution: str, name: str, figure: str) -> Experiment:
    base = _synthetic_config(distribution=distribution)
    points = [
        _synthetic_point(f"[{lo}, {hi}]", base.with_updates(velocity_range=(lo, hi)))
        for lo, hi in VELOCITY_SWEEP
    ]
    return Experiment(
        name=name, figure=figure, parameter_name="[v-, v+]", points=points
    )


def fig15_angles_uniform() -> Experiment:
    """Figure 15: effect of the moving-angle range on UNIFORM data."""
    return _angles_experiment("uniform", "fig15_angles_uniform", "Figure 15")


def fig27_angles_skewed() -> Experiment:
    """Figure 27: effect of the moving-angle range on SKEWED data."""
    return _angles_experiment("skewed", "fig27_angles_skewed", "Figure 27")


def fig25_velocity_uniform() -> Experiment:
    """Figure 25: effect of the velocity range on UNIFORM data."""
    return _velocity_experiment("uniform", "fig25_velocity_uniform", "Figure 25")


def fig26_velocity_skewed() -> Experiment:
    """Figure 26: effect of the velocity range on SKEWED data."""
    return _velocity_experiment("skewed", "fig26_velocity_skewed", "Figure 26")


# --------------------------------------------------------------------- #
# Figure 16 — CPU time (reuses the m and n sweeps; metric = seconds)
# --------------------------------------------------------------------- #


def fig16_cpu_time() -> Tuple[Experiment, Experiment]:
    """Figure 16: running time vs m (panel a) and vs n (panel b)."""
    vs_m = _tasks_experiment("uniform", "fig16a_cpu_vs_m", "Figure 16(a)")
    vs_n = _workers_experiment("uniform", "fig16b_cpu_vs_n", "Figure 16(b)")
    return vs_m, vs_n


# --------------------------------------------------------------------- #
# Figure 17 — grid-index construction and retrieval
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class IndexExperimentRow:
    """One x-axis tick of Figure 17.

    Attributes:
        n_workers: the sweep value.
        eta: the cost-model cell side used.
        construction_seconds: bulk load + tcell_list build (Figure 17a).
        retrieval_with_index_seconds: W-T pair retrieval via the index.
        retrieval_without_index_seconds: brute-force retrieval baseline.
        pairs: number of valid pairs found (identical for both methods).
    """

    n_workers: int
    eta: float
    construction_seconds: float
    retrieval_with_index_seconds: float
    retrieval_without_index_seconds: float
    pairs: int


def run_index_experiment(
    n_values: Sequence[int] = (100, 200, 400, 800, 1200),
    num_tasks: int = 240,
    seed: int = 7,
) -> List[IndexExperimentRow]:
    """Figure 17: index construction time and W-T retrieval time vs n.

    The index pays off in the paper's regime — workers reach only a local
    neighbourhood before deadlines, so cell-level pruning discards most
    (worker cell, task cell) combinations.  The scaled-defaults preset
    deliberately makes everything reachable (to keep tiny quality sweeps
    dense), which would neutralise any spatial index; this experiment uses
    locally-reaching workers instead: slow speeds, short windows, paper
    cones.
    """
    rows: List[IndexExperimentRow] = []
    for n in n_values:
        config = ExperimentConfig(
            num_tasks=num_tasks,
            num_workers=n,
            start_time_range=(0.0, 1.0),
            expiration_range=(0.5, 1.0),
            velocity_range=(0.05, 0.15),
            angle_range_max=math.pi / 2.0,
        )
        problem = generate_problem(config, seed)
        tasks, workers = problem.tasks, problem.workers
        horizon = max((t.end for t in tasks), default=1.0)
        l_max = min(max(w.velocity for w in workers) * horizon, math.sqrt(2.0))
        d2 = correlation_dimension([t.location for t in tasks])
        eta = optimal_eta(l_max=l_max, n_tasks=len(tasks), d2=d2)
        eta = min(max(eta, 0.02), 0.5)

        start = time.perf_counter()
        grid = RdbscGrid.bulk_load(tasks, workers, eta, problem.validity)
        grid.build_all_tcell_lists()
        construction = time.perf_counter() - start

        start = time.perf_counter()
        with_index = grid.valid_pairs()
        retrieval_with = time.perf_counter() - start

        start = time.perf_counter()
        without_index = retrieve_pairs_without_index(tasks, workers, problem.validity)
        retrieval_without = time.perf_counter() - start

        if len(with_index) != len(without_index):
            raise AssertionError(
                "index retrieval disagrees with brute force: "
                f"{len(with_index)} vs {len(without_index)}"
            )
        rows.append(
            IndexExperimentRow(
                n_workers=n,
                eta=eta,
                construction_seconds=construction,
                retrieval_with_index_seconds=retrieval_with,
                retrieval_without_index_seconds=retrieval_without,
                pairs=len(with_index),
            )
        )
    return rows


# --------------------------------------------------------------------- #
# Figure 18 — platform incremental updates
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class PlatformExperimentRow:
    """One (t_interval, solver) cell of Figure 18."""

    t_interval: float
    solver: str
    min_reliability: float
    total_std: float
    seconds: float


def run_platform_experiment(
    t_intervals: Sequence[float] = (1.0, 2.0, 3.0, 4.0),
    make_solvers: Callable[[], List[Solver]] = default_solvers,
    sim_minutes: float = 30.0,
    seed: int = 5,
) -> List[PlatformExperimentRow]:
    """Figure 18: effect of the incremental-update interval ``t_interval``."""
    rows: List[PlatformExperimentRow] = []
    for t_interval in t_intervals:
        simulator = PlatformSimulator(
            PlatformConfig(t_interval=t_interval, sim_minutes=sim_minutes)
        )
        for solver in make_solvers():
            start = time.perf_counter()
            outcome = simulator.run(solver, rng=seed)
            elapsed = time.perf_counter() - start
            rows.append(
                PlatformExperimentRow(
                    t_interval=t_interval,
                    solver=solver.name,
                    min_reliability=outcome.min_reliability,
                    total_std=outcome.total_std,
                    seconds=elapsed,
                )
            )
    return rows


# --------------------------------------------------------------------- #
# Figures 19-20 — the 3-D reconstruction showcase, as angular coverage
# --------------------------------------------------------------------- #


def run_coverage_showcase(
    make_solvers: Callable[[], List[Solver]] = default_solvers,
    n_workers: int = 48,
    tolerance: float = math.pi / 12.0,
    seed: int = 23,
) -> Dict[str, CoverageReport]:
    """Figures 19-20 substitute: viewing-angle coverage of one landmark.

    One task (the landmark) sits at the centre; workers approach from all
    around.  For each solver we compare the coverage of the workers it
    assigns against the coverage of the full worker pool (the paper's
    "ground truth model" built from all available photos).
    """
    from repro.core.task import SpatialTask
    from repro.core.worker import MovingWorker
    from repro.geometry.angles import AngleInterval, bearing
    from repro.geometry.points import Point

    import numpy as np

    rng = np.random.default_rng(seed)
    landmark = SpatialTask(0, Point(0.5, 0.5), start=0.0, end=6.0, beta=1.0)
    # A few decoy tasks so solvers face a real assignment choice.
    decoys = [
        SpatialTask(k, Point(0.2 + 0.6 * float(rng.uniform()), 0.2 + 0.6 * float(rng.uniform())),
                    start=0.0, end=6.0, beta=1.0)
        for k in range(1, 4)
    ]
    workers = []
    for j in range(n_workers):
        angle = float(rng.uniform(0.0, 2.0 * math.pi))
        radius = float(rng.uniform(0.15, 0.45))
        location = Point(
            0.5 + radius * math.cos(angle), 0.5 + radius * math.sin(angle)
        )
        workers.append(
            MovingWorker(
                worker_id=j,
                location=location,
                velocity=float(rng.uniform(0.2, 0.5)),
                cone=AngleInterval.full_circle(),
                confidence=float(rng.uniform(0.75, 0.98)),
            )
        )
    problem = RdbscProblem([landmark, *decoys], workers)
    truth_angles = [
        bearing(landmark.location, w.location)
        for w in workers
        if w.location != landmark.location
    ]

    reports: Dict[str, CoverageReport] = {}
    for solver in make_solvers():
        result = solver.solve(problem, rng=seed)
        assigned = result.assignment.workers_for(landmark.task_id)
        angles = [
            bearing(landmark.location, problem.workers_by_id[w].location)
            for w in assigned
            if problem.workers_by_id[w].location != landmark.location
        ]
        reports[solver.name] = coverage_report(angles, truth_angles, tolerance)
    return reports
