"""ASCII reporting shaped like the paper's figures.

Each paper figure is two panels — minimum reliability and total STD across
a parameter sweep, one line per algorithm.  :func:`format_table` prints the
full grid; :func:`format_series` prints a single panel as labelled series,
the textual equivalent of the plotted lines.
"""

from __future__ import annotations

from typing import List

from repro.experiments.runner import ExperimentResult

_METRIC_TITLES = {
    "min_reliability": "Minimum Reliability",
    "total_std": "Summation of Diversity (total_STD)",
    "seconds": "Running Time (s)",
}


def format_table(result: ExperimentResult) -> str:
    """The full result grid as a fixed-width ASCII table."""
    experiment = result.experiment
    header = (
        f"{experiment.figure} — {experiment.name} "
        f"(sweep over {experiment.parameter_name})"
    )
    lines: List[str] = [header, "=" * len(header)]
    columns = f"{'parameter':>14} | {'solver':>9} | {'min rel':>8} | {'total_STD':>10} | {'time (s)':>9} | runs"
    lines.append(columns)
    lines.append("-" * len(columns))
    for row in result.rows:
        lines.append(
            f"{row.parameter:>14} | {row.solver:>9} | "
            f"{row.min_reliability:8.4f} | {row.total_std:10.4f} | "
            f"{row.seconds:9.4f} | {row.runs:4d}"
        )
    return "\n".join(lines)


def format_series(result: ExperimentResult, metric: str) -> str:
    """One panel: per-solver series across the sweep, like a plotted line.

    Raises:
        ValueError: for an unknown metric name.
    """
    if metric not in _METRIC_TITLES:
        raise ValueError(
            f"unknown metric {metric!r}; expected one of {sorted(_METRIC_TITLES)}"
        )
    experiment = result.experiment
    lines = [
        f"{experiment.figure} — {_METRIC_TITLES[metric]} vs {experiment.parameter_name}"
    ]
    labels = [point.label for point in experiment.points]
    lines.append("  x: " + "  ".join(f"{label:>12}" for label in labels))
    for solver in result.solvers():
        values = dict(result.series(solver, metric))
        rendered = "  ".join(f"{values[label]:12.4f}" for label in labels)
        lines.append(f"  {solver:>9}: {rendered}")
    return "\n".join(lines)


def format_figure(result: ExperimentResult) -> str:
    """Both panels of a standard figure (reliability + diversity)."""
    return (
        format_series(result, "min_reliability")
        + "\n"
        + format_series(result, "total_std")
    )
