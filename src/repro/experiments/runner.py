"""Experiment execution: sweep x solvers x seeds, with per-solve timing."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.experiments.spec import Experiment


@dataclass(frozen=True)
class ResultRow:
    """Aggregated outcome of one (parameter point, solver) cell.

    Metrics are means over the run seeds.
    """

    parameter: str
    solver: str
    min_reliability: float
    total_std: float
    seconds: float
    runs: int


@dataclass
class ExperimentResult:
    """All rows of one experiment, in sweep-then-solver order."""

    experiment: Experiment
    rows: List[ResultRow] = field(default_factory=list)

    def row(self, parameter: str, solver: str) -> ResultRow:
        """Look up one cell.

        Raises:
            KeyError: if the cell does not exist.
        """
        for row in self.rows:
            if row.parameter == parameter and row.solver == solver:
                return row
        raise KeyError((parameter, solver))

    def series(self, solver: str, metric: str) -> List[Tuple[str, float]]:
        """One solver's line across the sweep for a metric.

        ``metric`` is one of ``min_reliability``, ``total_std``, ``seconds``.
        """
        return [
            (row.parameter, getattr(row, metric))
            for row in self.rows
            if row.solver == solver
        ]

    def solvers(self) -> List[str]:
        """Solver names in first-appearance order."""
        seen: List[str] = []
        for row in self.rows:
            if row.solver not in seen:
                seen.append(row.solver)
        return seen


def run_experiment(
    experiment: Experiment,
    seeds: Sequence[int] = (1, 2),
) -> ExperimentResult:
    """Run every sweep point with every solver, averaging over seeds.

    Instances are generated once per (point, seed) and shared by all
    solvers at that point — the paper compares algorithms on identical
    inputs, and so do we.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    result = ExperimentResult(experiment)
    for point in experiment.points:
        problems = [point.make_problem(seed) for seed in seeds]
        accumulators: Dict[str, List[Tuple[float, float, float]]] = {}
        order: List[str] = []
        for seed, problem in zip(seeds, problems):
            for solver in experiment.make_solvers():
                start = time.perf_counter()
                solved = solver.solve(problem, rng=seed)
                elapsed = time.perf_counter() - start
                accumulators.setdefault(solver.name, []).append(
                    (
                        solved.objective.min_reliability,
                        solved.objective.total_std,
                        elapsed,
                    )
                )
                if solver.name not in order:
                    order.append(solver.name)
        for name in order:
            samples = accumulators[name]
            count = len(samples)
            result.rows.append(
                ResultRow(
                    parameter=point.label,
                    solver=name,
                    min_reliability=sum(s[0] for s in samples) / count,
                    total_std=sum(s[1] for s in samples) / count,
                    seconds=sum(s[2] for s in samples) / count,
                    runs=count,
                )
            )
    return result
