"""Declarative experiment specifications.

An :class:`Experiment` is a named parameter sweep: each
:class:`ParameterPoint` carries a label (the x-axis tick of the paper's
figure) and a factory producing the RDB-SC instance for that point and a
seed.  The solver line-up defaults to the paper's four: GREEDY, SAMPLING,
D&C and G-TRUTH.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

from repro.algorithms import (
    DivideConquerSolver,
    GreedySolver,
    GroundTruthSolver,
    SamplePlan,
    SamplingSolver,
    Solver,
)
from repro.core.problem import RdbscProblem

ProblemFactory = Callable[[int], RdbscProblem]

#: Laptop-scale solver budgets used across all figure experiments; chosen so
#: each sweep point solves in well under a second while preserving the
#: paper's relative budgets (G-TRUTH = 10x the D&C leaf sampling).
DEFAULT_SAMPLE_PLAN = SamplePlan(min_samples=30, max_samples=4000)
DEFAULT_GAMMA = 8


def default_solvers() -> List[Solver]:
    """Fresh instances of the paper's four solvers (Section 8.1)."""
    return [
        GreedySolver(),
        SamplingSolver(DEFAULT_SAMPLE_PLAN),
        DivideConquerSolver(
            gamma=DEFAULT_GAMMA, base_solver=SamplingSolver(DEFAULT_SAMPLE_PLAN)
        ),
        GroundTruthSolver(gamma=DEFAULT_GAMMA, plan=DEFAULT_SAMPLE_PLAN, multiplier=10),
    ]


@dataclass(frozen=True)
class ParameterPoint:
    """One x-axis tick of a figure.

    Attributes:
        label: the tick label, matching the paper's axis (e.g. "[1, 2]").
        make_problem: instance factory for this point; must be
            deterministic in the seed.
    """

    label: str
    make_problem: ProblemFactory


@dataclass(frozen=True)
class Experiment:
    """A full figure-shaped experiment.

    Attributes:
        name: short identifier ("fig13_tasks_uniform").
        figure: the paper artefact this regenerates ("Figure 13").
        parameter_name: the swept parameter, for table headers.
        points: the sweep.
        make_solvers: factory returning fresh solver instances (state such
            as internal caches must not leak across points).
    """

    name: str
    figure: str
    parameter_name: str
    points: Sequence[ParameterPoint]
    make_solvers: Callable[[], List[Solver]] = field(default=default_solvers)

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError(f"experiment {self.name} has no sweep points")
