"""Array-backed batch kernels — the NumPy fast path.

Every hot loop of the reproduction has a scalar reference implementation
in :mod:`repro.core` / :mod:`repro.algorithms`; this package provides
broadcast equivalents over packed arrays:

``arrays``
    :class:`WorkerArrays` / :class:`TaskArrays` — structure-of-arrays
    views of the object model.
``kernels``
    :func:`batch_effective_arrival` (the full validity matrix),
    :func:`batch_valid_pairs` (bit-identical ``ValidPair`` retrieval),
    :func:`batch_delta_min_r` and :func:`lemma43_prune_order` (greedy
    scoring and Section 4.3 pruning).
``diversity``
    :func:`batch_expected_std` / :func:`batch_delta_estd` — whole blocks
    of exact ``E[STD]`` evaluations over padded profile slabs
    (:class:`DiversitySlab`), bitwise-equal to the scalar Lemma 3.1
    reductions in :mod:`repro.core.expected`.

Consumers select the fast path through ``backend="numpy"`` flags on
:class:`repro.core.problem.RdbscProblem`,
:class:`repro.index.grid.RdbscGrid`,
:class:`repro.algorithms.greedy.GreedySolver`,
:class:`repro.algorithms.sampling.SamplingSolver` and
:class:`repro.dynamic.CrowdsourcingSession`; the differential suite in
``tests/test_fastpath_equivalence.py`` pins both backends to identical
results.
"""

from repro.fastpath.arrays import TaskArrays, TaskSlots, WorkerArrays, WorkerSlots
from repro.fastpath.diversity import (
    DiversitySlab,
    batch_delta_estd,
    batch_expected_spatial_diversity,
    batch_expected_std,
    batch_expected_temporal_diversity,
    pack_delta_slab,
)
from repro.fastpath.kernels import (
    batch_any_valid,
    batch_delta_min_r,
    batch_effective_arrival,
    batch_valid_pairs,
    lemma43_prune_order,
    slots_log_weights,
    slots_valid_pairs,
)

__all__ = [
    "DiversitySlab",
    "TaskArrays",
    "TaskSlots",
    "WorkerArrays",
    "WorkerSlots",
    "batch_any_valid",
    "batch_delta_estd",
    "batch_delta_min_r",
    "batch_expected_spatial_diversity",
    "batch_expected_std",
    "batch_expected_temporal_diversity",
    "pack_delta_slab",
    "batch_effective_arrival",
    "batch_valid_pairs",
    "lemma43_prune_order",
    "slots_log_weights",
    "slots_valid_pairs",
]
