"""Structure-of-arrays packing of workers and tasks.

The scalar object model (:class:`repro.core.worker.MovingWorker`,
:class:`repro.core.task.SpatialTask`) is the source of truth; these
containers are flat ``float64``/``int64`` views of the same data, laid out
so the batch kernels in :mod:`repro.fastpath.kernels` can evaluate every
(task, worker) combination with NumPy broadcasting instead of a Python
double loop.

Derived per-worker quantities that involve transcendental functions — the
Eq. 8 log-confidence weights — are copied from the objects' own scalar
properties rather than recomputed with NumPy ufuncs, so array-backed code
sees bit-identical values to the scalar path (``np.log`` and ``math.log``
may differ in the last ulp).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from repro.core.task import SpatialTask
from repro.core.worker import MovingWorker


@dataclass(frozen=True)
class WorkerArrays:
    """Column-wise view of a worker set.

    Attributes:
        ids: worker identifiers, aligned with every other column.
        xs / ys: current positions.
        velocities: scalar speeds ``v_j``.
        cone_los / cone_widths: direction cones as (start, CCW width).
        confidences: success probabilities ``p_j``.
        depart_times: clock times the workers start moving.
        log_weights: the Eq. 8 weights ``-ln(1 - p_j)`` (``inf`` at
            ``p_j == 1``), copied from
            :attr:`repro.core.worker.MovingWorker.log_confidence_weight`.
        index_of: worker id -> column position.
    """

    ids: np.ndarray
    xs: np.ndarray
    ys: np.ndarray
    velocities: np.ndarray
    cone_los: np.ndarray
    cone_widths: np.ndarray
    confidences: np.ndarray
    depart_times: np.ndarray
    log_weights: np.ndarray
    index_of: Dict[int, int] = field(repr=False)

    def __len__(self) -> int:
        return int(self.ids.shape[0])

    @classmethod
    def from_workers(cls, workers: Sequence[MovingWorker]) -> "WorkerArrays":
        """Pack a worker sequence, preserving order."""
        n = len(workers)
        ids = np.empty(n, dtype=np.int64)
        xs = np.empty(n)
        ys = np.empty(n)
        velocities = np.empty(n)
        cone_los = np.empty(n)
        cone_widths = np.empty(n)
        confidences = np.empty(n)
        depart_times = np.empty(n)
        log_weights = np.empty(n)
        for j, worker in enumerate(workers):
            ids[j] = worker.worker_id
            xs[j] = worker.location.x
            ys[j] = worker.location.y
            velocities[j] = worker.velocity
            cone_los[j] = worker.cone.lo
            cone_widths[j] = worker.cone.width
            confidences[j] = worker.confidence
            depart_times[j] = worker.depart_time
            log_weights[j] = worker.log_confidence_weight
        return cls(
            ids=ids,
            xs=xs,
            ys=ys,
            velocities=velocities,
            cone_los=cone_los,
            cone_widths=cone_widths,
            confidences=confidences,
            depart_times=depart_times,
            log_weights=log_weights,
            index_of={int(w): j for j, w in enumerate(ids)},
        )


@dataclass(frozen=True)
class TaskArrays:
    """Column-wise view of a task set.

    Attributes:
        ids: task identifiers, aligned with every other column.
        xs / ys: task locations.
        starts / ends: valid periods ``[s_i, e_i]``.
        betas: requester spatial/temporal weights.
        index_of: task id -> row position.
    """

    ids: np.ndarray
    xs: np.ndarray
    ys: np.ndarray
    starts: np.ndarray
    ends: np.ndarray
    betas: np.ndarray
    index_of: Dict[int, int] = field(repr=False)

    def __len__(self) -> int:
        return int(self.ids.shape[0])

    @classmethod
    def from_tasks(cls, tasks: Sequence[SpatialTask]) -> "TaskArrays":
        """Pack a task sequence, preserving order."""
        m = len(tasks)
        ids = np.empty(m, dtype=np.int64)
        xs = np.empty(m)
        ys = np.empty(m)
        starts = np.empty(m)
        ends = np.empty(m)
        betas = np.empty(m)
        for i, task in enumerate(tasks):
            ids[i] = task.task_id
            xs[i] = task.location.x
            ys[i] = task.location.y
            starts[i] = task.start
            ends[i] = task.end
            betas[i] = task.beta
        return cls(
            ids=ids,
            xs=xs,
            ys=ys,
            starts=starts,
            ends=ends,
            betas=betas,
            index_of={int(t): i for i, t in enumerate(ids)},
        )
