"""Structure-of-arrays packing of workers and tasks.

The scalar object model (:class:`repro.core.worker.MovingWorker`,
:class:`repro.core.task.SpatialTask`) is the source of truth; these
containers are flat ``float64``/``int64`` views of the same data, laid out
so the batch kernels in :mod:`repro.fastpath.kernels` can evaluate every
(task, worker) combination with NumPy broadcasting instead of a Python
double loop.

Two packing disciplines coexist:

* :class:`WorkerArrays` / :class:`TaskArrays` — immutable snapshots packed
  from a sequence in one pass (the per-epoch re-pack an offline solver
  uses).
* :class:`WorkerSlots` / :class:`TaskSlots` — mutable slabs with *stable
  slot allocation*: each entity occupies one row for its whole lifetime,
  churn events write single rows in place (free-list reuse, per-slot
  generation counters), and kernels mask out dead slots.  The incremental
  engine (:mod:`repro.engine`) keeps these current per event instead of
  re-packing per epoch.

Derived per-worker quantities that involve transcendental functions — the
Eq. 8 log-confidence weights — are copied from the objects' own scalar
properties rather than recomputed with NumPy ufuncs, so array-backed code
sees bit-identical values to the scalar path (``np.log`` and ``math.log``
may differ in the last ulp).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.task import SpatialTask
from repro.core.worker import MovingWorker


@dataclass(frozen=True)
class WorkerArrays:
    """Column-wise view of a worker set.

    Attributes:
        ids: worker identifiers, aligned with every other column.
        xs / ys: current positions.
        velocities: scalar speeds ``v_j``.
        cone_los / cone_widths: direction cones as (start, CCW width).
        confidences: success probabilities ``p_j``.
        depart_times: clock times the workers start moving.
        log_weights: the Eq. 8 weights ``-ln(1 - p_j)`` (``inf`` at
            ``p_j == 1``), copied from
            :attr:`repro.core.worker.MovingWorker.log_confidence_weight`.
        index_of: worker id -> column position.
    """

    ids: np.ndarray
    xs: np.ndarray
    ys: np.ndarray
    velocities: np.ndarray
    cone_los: np.ndarray
    cone_widths: np.ndarray
    confidences: np.ndarray
    depart_times: np.ndarray
    log_weights: np.ndarray
    index_of: Dict[int, int] = field(repr=False)

    def __len__(self) -> int:
        return int(self.ids.shape[0])

    @classmethod
    def from_workers(cls, workers: Sequence[MovingWorker]) -> "WorkerArrays":
        """Pack a worker sequence, preserving order."""
        n = len(workers)
        ids = np.empty(n, dtype=np.int64)
        xs = np.empty(n)
        ys = np.empty(n)
        velocities = np.empty(n)
        cone_los = np.empty(n)
        cone_widths = np.empty(n)
        confidences = np.empty(n)
        depart_times = np.empty(n)
        log_weights = np.empty(n)
        for j, worker in enumerate(workers):
            ids[j] = worker.worker_id
            xs[j] = worker.location.x
            ys[j] = worker.location.y
            velocities[j] = worker.velocity
            cone_los[j] = worker.cone.lo
            cone_widths[j] = worker.cone.width
            confidences[j] = worker.confidence
            depart_times[j] = worker.depart_time
            log_weights[j] = worker.log_confidence_weight
        return cls(
            ids=ids,
            xs=xs,
            ys=ys,
            velocities=velocities,
            cone_los=cone_los,
            cone_widths=cone_widths,
            confidences=confidences,
            depart_times=depart_times,
            log_weights=log_weights,
            index_of={int(w): j for j, w in enumerate(ids)},
        )


@dataclass(frozen=True)
class TaskArrays:
    """Column-wise view of a task set.

    Attributes:
        ids: task identifiers, aligned with every other column.
        xs / ys: task locations.
        starts / ends: valid periods ``[s_i, e_i]``.
        betas: requester spatial/temporal weights.
        index_of: task id -> row position.
    """

    ids: np.ndarray
    xs: np.ndarray
    ys: np.ndarray
    starts: np.ndarray
    ends: np.ndarray
    betas: np.ndarray
    index_of: Dict[int, int] = field(repr=False)

    def __len__(self) -> int:
        return int(self.ids.shape[0])

    @classmethod
    def from_tasks(cls, tasks: Sequence[SpatialTask]) -> "TaskArrays":
        """Pack a task sequence, preserving order."""
        m = len(tasks)
        ids = np.empty(m, dtype=np.int64)
        xs = np.empty(m)
        ys = np.empty(m)
        starts = np.empty(m)
        ends = np.empty(m)
        betas = np.empty(m)
        for i, task in enumerate(tasks):
            ids[i] = task.task_id
            xs[i] = task.location.x
            ys[i] = task.location.y
            starts[i] = task.start
            ends[i] = task.end
            betas[i] = task.beta
        return cls(
            ids=ids,
            xs=xs,
            ys=ys,
            starts=starts,
            ends=ends,
            betas=betas,
            index_of={int(t): i for i, t in enumerate(ids)},
        )


# --------------------------------------------------------------------- #
# Stable slot slabs (incremental engine)
# --------------------------------------------------------------------- #


class _SlotStore:
    """Mutable structure-of-arrays slab with stable slot allocation.

    Rows are allocated from a LIFO free list and stay put for an entity's
    whole lifetime, so a churn event touches exactly one row.  ``alive``
    masks dead rows out of kernel results; ``generations[slot]`` increments
    on every write to that slot (add, update, remove), and ``version``
    counts mutations globally so callers can cache derived snapshots and
    invalidate them in O(1).
    """

    #: float64 column names beyond ``ids``; subclasses fill these.
    _float_columns: Tuple[str, ...] = ()

    def __init__(self, capacity: int = 8) -> None:
        capacity = max(int(capacity), 1)
        self.ids = np.zeros(capacity, dtype=np.int64)
        for name in self._float_columns:
            setattr(self, name, np.zeros(capacity))
        self.alive = np.zeros(capacity, dtype=bool)
        self.generations = np.zeros(capacity, dtype=np.int64)
        self.version = 0
        self.slot_of: Dict[int, int] = {}
        self._objects: Dict[int, object] = {}
        self._free: List[int] = list(range(capacity - 1, -1, -1))

    # -- storage management -------------------------------------------- #

    @property
    def capacity(self) -> int:
        return int(self.ids.shape[0])

    def __len__(self) -> int:
        return len(self.slot_of)

    def __contains__(self, entity_id: int) -> bool:
        return entity_id in self.slot_of

    def _grow(self) -> None:
        old = self.capacity
        new = old * 2
        for name in ("ids", "generations") + self._float_columns:
            column = getattr(self, name)
            grown = np.zeros(new, dtype=column.dtype)
            grown[:old] = column
            setattr(self, name, grown)
        alive = np.zeros(new, dtype=bool)
        alive[:old] = self.alive
        self.alive = alive
        self._free.extend(range(new - 1, old - 1, -1))

    def _alloc(self) -> int:
        if not self._free:
            self._grow()
        return self._free.pop()

    # -- churn ---------------------------------------------------------- #

    def add(self, obj) -> int:
        """Place a new entity; returns its slot.

        Raises:
            ValueError: if the id is already stored.
        """
        key = self._key(obj)
        if key in self.slot_of:
            raise ValueError(f"id {key} already stored")
        slot = self._alloc()
        self._write_row(slot, obj)
        self.ids[slot] = key
        self.alive[slot] = True
        self.generations[slot] += 1
        self.version += 1
        self.slot_of[key] = slot
        self._objects[key] = obj
        return slot

    def update(self, obj) -> int:
        """Overwrite an entity's row in place; returns its slot.

        Raises:
            KeyError: if the id is not stored.
        """
        key = self._key(obj)
        slot = self.slot_of[key]
        self._write_row(slot, obj)
        self.generations[slot] += 1
        self.version += 1
        self._objects[key] = obj
        return slot

    def remove(self, entity_id: int):
        """Free an entity's slot; returns the stored object.

        The row's payload is left in place (kernels mask it out via
        ``alive``); the slot goes back on the free list for reuse.
        """
        slot = self.slot_of.pop(entity_id)
        obj = self._objects.pop(entity_id)
        self.alive[slot] = False
        self.generations[slot] += 1
        self.version += 1
        self._free.append(slot)
        return obj

    def get(self, entity_id: int):
        """The stored object for an id (KeyError if absent)."""
        return self._objects[entity_id]

    def object_at(self, slot: int):
        """The live object occupying ``slot`` (KeyError if dead)."""
        return self._objects[int(self.ids[slot])]

    def live_slots(self) -> np.ndarray:
        """Slots currently alive, in ascending slot order."""
        return np.flatnonzero(self.alive)

    # -- subclass hooks ------------------------------------------------- #

    def _key(self, obj) -> int:  # pragma: no cover - overridden
        raise NotImplementedError

    def _write_row(self, slot: int, obj) -> None:  # pragma: no cover
        raise NotImplementedError


class WorkerSlots(_SlotStore):
    """Slot-stable worker slab; columns mirror :class:`WorkerArrays`."""

    _float_columns = (
        "xs",
        "ys",
        "velocities",
        "cone_los",
        "cone_widths",
        "confidences",
        "depart_times",
        "log_weights",
    )

    def _key(self, worker: MovingWorker) -> int:
        return worker.worker_id

    def _write_row(self, slot: int, worker: MovingWorker) -> None:
        self.xs[slot] = worker.location.x
        self.ys[slot] = worker.location.y
        self.velocities[slot] = worker.velocity
        self.cone_los[slot] = worker.cone.lo
        self.cone_widths[slot] = worker.cone.width
        self.confidences[slot] = worker.confidence
        self.depart_times[slot] = worker.depart_time
        self.log_weights[slot] = worker.log_confidence_weight

    def full_view(self) -> WorkerArrays:
        """A zero-copy :class:`WorkerArrays` over the whole slab.

        Length equals the slab capacity; dead rows carry stale payloads and
        must be masked with :attr:`alive` (the slot-aware kernels do).
        """
        return WorkerArrays(
            ids=self.ids,
            xs=self.xs,
            ys=self.ys,
            velocities=self.velocities,
            cone_los=self.cone_los,
            cone_widths=self.cone_widths,
            confidences=self.confidences,
            depart_times=self.depart_times,
            log_weights=self.log_weights,
            index_of=self.slot_of,
        )

    def compact(self) -> Tuple[List[MovingWorker], WorkerArrays]:
        """Live workers (slot order) plus an exact-size packed snapshot.

        Column values are sliced from the slab, so they are bit-identical
        to ``WorkerArrays.from_workers(live_objects)`` — every row was
        written from the same scalar attributes a fresh pack would read.
        """
        rows = self.live_slots()
        ids = self.ids[rows].copy()
        arrays = WorkerArrays(
            ids=ids,
            xs=self.xs[rows].copy(),
            ys=self.ys[rows].copy(),
            velocities=self.velocities[rows].copy(),
            cone_los=self.cone_los[rows].copy(),
            cone_widths=self.cone_widths[rows].copy(),
            confidences=self.confidences[rows].copy(),
            depart_times=self.depart_times[rows].copy(),
            log_weights=self.log_weights[rows].copy(),
            index_of={int(w): j for j, w in enumerate(ids)},
        )
        workers = [self._objects[int(w)] for w in ids]
        return workers, arrays


class TaskSlots(_SlotStore):
    """Slot-stable task slab; columns mirror :class:`TaskArrays`."""

    _float_columns = ("xs", "ys", "starts", "ends", "betas")

    def _key(self, task: SpatialTask) -> int:
        return task.task_id

    def _write_row(self, slot: int, task: SpatialTask) -> None:
        self.xs[slot] = task.location.x
        self.ys[slot] = task.location.y
        self.starts[slot] = task.start
        self.ends[slot] = task.end
        self.betas[slot] = task.beta

    def full_view(self) -> TaskArrays:
        """A zero-copy :class:`TaskArrays` over the whole slab (see
        :meth:`WorkerSlots.full_view` for the masking contract)."""
        return TaskArrays(
            ids=self.ids,
            xs=self.xs,
            ys=self.ys,
            starts=self.starts,
            ends=self.ends,
            betas=self.betas,
            index_of=self.slot_of,
        )

    def compact(self) -> Tuple[List[SpatialTask], TaskArrays]:
        """Live tasks (slot order) plus an exact-size packed snapshot."""
        rows = self.live_slots()
        ids = self.ids[rows].copy()
        arrays = TaskArrays(
            ids=ids,
            xs=self.xs[rows].copy(),
            ys=self.ys[rows].copy(),
            starts=self.starts[rows].copy(),
            ends=self.ends[rows].copy(),
            betas=self.betas[rows].copy(),
            index_of={int(t): i for i, t in enumerate(ids)},
        )
        tasks = [self._objects[int(t)] for t in ids]
        return tasks, arrays


# --------------------------------------------------------------------- #
# Valid-pair wire packing
# --------------------------------------------------------------------- #

def pack_pairs(pairs: Sequence["ValidPair"]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pack a valid-pair list into three flat arrays for cheap transport.

    One :class:`repro.core.problem.ValidPair` is a ~200-byte Python object
    whose pickle is dominated by per-instance overhead; a sharded engine's
    process-pool fan-out ships thousands of them back per epoch, so the
    wire format is ``(task_ids int64, worker_ids int64, arrivals
    float64)`` instead — one contiguous buffer per column.  Arrivals are
    copied bit-exactly (no rounding), so :func:`unpack_pairs` reproduces
    the original list exactly.
    """
    n = len(pairs)
    task_ids = np.empty(n, dtype=np.int64)
    worker_ids = np.empty(n, dtype=np.int64)
    arrivals = np.empty(n, dtype=np.float64)
    for k, pair in enumerate(pairs):
        task_ids[k] = pair.task_id
        worker_ids[k] = pair.worker_id
        arrivals[k] = pair.arrival
    return task_ids, worker_ids, arrivals


def unpack_pairs(
    packed: Tuple[np.ndarray, np.ndarray, np.ndarray]
) -> List["ValidPair"]:
    """Rebuild the :func:`pack_pairs` pair list, bit-identically."""
    from repro.core.problem import ValidPair

    task_ids, worker_ids, arrivals = packed
    return [
        ValidPair(int(task_id), int(worker_id), float(arrival))
        for task_id, worker_id, arrival in zip(task_ids, worker_ids, arrivals)
    ]


# --------------------------------------------------------------------- #
# Churn-diff wire packing (resident shard shipping)
# --------------------------------------------------------------------- #

#: Float columns of one packed worker row, in wire order.  ``log_weights``
#: is deliberately absent: :class:`repro.core.worker.MovingWorker`
#: recomputes it from ``confidence`` with the same scalar ``math.log``, so
#: shipping the seven constructor fields reproduces the object bit-exactly
#: (the same argument :mod:`repro.engine.durable` relies on).
WORKER_WIRE_FIELDS = (
    "x",
    "y",
    "velocity",
    "cone_lo",
    "cone_width",
    "confidence",
    "depart_time",
)

#: Float columns of one packed task row, in wire order.
TASK_WIRE_FIELDS = ("x", "y", "start", "end", "beta")

#: One packed churn run: ``(kind, payload)`` where worker/task arrivals
#: and updates carry ``(ids int64, fields float64[n, k])`` column blocks
#: and removals carry a bare ``int64`` id array.
PackedRun = Tuple[str, object]


def _pack_worker_rows(
    workers: Sequence[MovingWorker],
) -> Tuple[np.ndarray, np.ndarray]:
    ids = np.empty(len(workers), dtype=np.int64)
    fields = np.empty((len(workers), len(WORKER_WIRE_FIELDS)))
    for j, worker in enumerate(workers):
        ids[j] = worker.worker_id
        fields[j, 0] = worker.location.x
        fields[j, 1] = worker.location.y
        fields[j, 2] = worker.velocity
        fields[j, 3] = worker.cone.lo
        fields[j, 4] = worker.cone.width
        fields[j, 5] = worker.confidence
        fields[j, 6] = worker.depart_time
    return ids, fields


def _unpack_worker_rows(
    packed: Tuple[np.ndarray, np.ndarray]
) -> List[MovingWorker]:
    from repro.geometry.angles import AngleInterval
    from repro.geometry.points import Point

    ids, fields = packed
    return [
        MovingWorker(
            worker_id=int(ids[j]),
            location=Point(float(fields[j, 0]), float(fields[j, 1])),
            velocity=float(fields[j, 2]),
            cone=AngleInterval(float(fields[j, 3]), float(fields[j, 4])),
            confidence=float(fields[j, 5]),
            depart_time=float(fields[j, 6]),
        )
        for j in range(len(ids))
    ]


def _pack_task_rows(
    tasks: Sequence[SpatialTask],
) -> Tuple[np.ndarray, np.ndarray]:
    ids = np.empty(len(tasks), dtype=np.int64)
    fields = np.empty((len(tasks), len(TASK_WIRE_FIELDS)))
    for i, task in enumerate(tasks):
        ids[i] = task.task_id
        fields[i, 0] = task.location.x
        fields[i, 1] = task.location.y
        fields[i, 2] = task.start
        fields[i, 3] = task.end
        fields[i, 4] = task.beta
    return ids, fields


def _unpack_task_rows(packed: Tuple[np.ndarray, np.ndarray]) -> List[SpatialTask]:
    from repro.geometry.points import Point

    ids, fields = packed
    return [
        SpatialTask(
            task_id=int(ids[i]),
            location=Point(float(fields[i, 0]), float(fields[i, 1])),
            start=float(fields[i, 2]),
            end=float(fields[i, 3]),
            beta=float(fields[i, 4]),
        )
        for i in range(len(ids))
    ]


def pack_diff(runs: Sequence[Tuple[str, object]]) -> Tuple[PackedRun, ...]:
    """Pack a coalesced churn-run list into flat column blocks.

    Input is what :func:`repro.engine.scheduler.coalesce_churn` yields —
    ``(kind, payload)`` runs in application order.  Each run becomes one
    ``(kind, columns)`` entry: arrivals and updates as ``(ids int64,
    fields float64)`` blocks (:data:`WORKER_WIRE_FIELDS` /
    :data:`TASK_WIRE_FIELDS` columns), removals as bare ``int64`` id
    arrays.  Run order is preserved, so :func:`unpack_diff` feeds a shard
    grid the *same* grouped calls in the same order as an in-process
    apply — the bit-identity argument for resident diff shipping.  A
    typed-object event batch pickles at hundreds of bytes per entity;
    this is tens, which is what makes per-epoch shipping to resident
    processes cheap (see :mod:`repro.engine.elastic`).

    Raises:
        ValueError: for a run kind that is not plain churn (an epoch tick
            or expiry sweep cannot be routed to a shard).
    """
    packed: List[PackedRun] = []
    for kind, payload in runs:
        if kind in ("worker_arrive", "worker_update"):
            packed.append((kind, _pack_worker_rows(payload)))
        elif kind == "task_arrive":
            packed.append((kind, _pack_task_rows(payload)))
        elif kind in ("worker_leave", "task_withdraw"):
            packed.append((kind, np.asarray(list(payload), dtype=np.int64)))
        else:
            raise ValueError(f"unroutable churn run kind {kind!r}")
    return tuple(packed)


def unpack_diff(packed: Sequence[PackedRun]) -> List[Tuple[str, object]]:
    """Rebuild the :func:`pack_diff` churn-run list, bit-identically."""
    runs: List[Tuple[str, object]] = []
    for kind, columns in packed:
        if kind in ("worker_arrive", "worker_update"):
            runs.append((kind, _unpack_worker_rows(columns)))
        elif kind == "task_arrive":
            runs.append((kind, _unpack_task_rows(columns)))
        elif kind in ("worker_leave", "task_withdraw"):
            runs.append((kind, [int(entity_id) for entity_id in columns]))
        else:
            raise ValueError(f"unroutable churn run kind {kind!r}")
    return runs


def diff_nbytes(packed: Sequence[PackedRun]) -> int:
    """Wire payload bytes of a packed diff (column buffers only)."""
    total = 0
    for _, columns in packed:
        if isinstance(columns, tuple):
            total += sum(int(column.nbytes) for column in columns)
        else:
            total += int(columns.nbytes)
    return total
