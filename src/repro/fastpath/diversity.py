"""Batched exact E[STD]: vectorised twins of the Lemma 3.1 reductions.

:func:`repro.core.expected.expected_spatial_diversity` and
:func:`~repro.core.expected.expected_temporal_diversity` evaluate one
(task, profile set) at a time in scalar python — an O(r^2) reduction per
call, and after Lemma 4.3 pruning these exact ΔE[STD] evaluations are what
dominates a GREEDY round.  This module evaluates a whole *block* of
candidate (task, worker) pairs at once over padded per-task profile slabs:

* **SD** — per-row stable argsort by normalised angle, adjacent-difference
  gaps with the wrap-around gap scattered per row, then the full
  (j, step) term matrix: arcs as a ``cumsum`` along the step axis and the
  survivor chain ``p_j * Π (1 - p_k)`` as a ``multiply.accumulate``.
* **TD** — per-row stable argsort by raw arrival, window clamping, the
  ``[start, τ..., end]`` boundary arrays with the terminal boundary
  scattered at column ``r + 1``, then the (j, k) boundary-pair matrix with
  masked prefix-products of ``(1 - present)`` along the sorted axis.

The contract is the same as every other fastpath kernel: **bitwise**
equality with the scalar reduction, not approximate equality.  That drives
three non-obvious choices, called out inline where they bite:

* ``np.cumsum`` / ``np.multiply.accumulate`` are strictly sequential and
  reproduce scalar ``total +=`` chains exactly; ``np.sum`` is pairwise and
  does **not**.  Row totals are therefore the last column of a ``cumsum``
  over the C-order-flattened term matrix (j-major, step-minor — the scalar
  loop nesting).
* ``np.log`` is a different code path from ``math.log`` (SIMD polynomials
  that round a fraction of doubles differently), so the entropy logs go
  through ``math.log`` itself via ``np.frompyfunc`` — deduplicated with
  ``np.unique`` first on large blocks, because candidates of the same task
  share their base-profile boundaries and repeat fractions heavily.
* Python's ``min``/``max`` return the *first* argument on ties (and
  preserve its signed zero); every clamp is an ``np.where`` spelled so the
  first argument wins unless the comparison is strict.

Masked (padded) cells contribute exact ``+0.0`` terms; every live term is
``>= +0.0`` (confidences and entropies are non-negative), so adding the
padding zeros through the sequential cumsum is a bitwise no-op.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.fastpath.kernels import _normalize_angles
from repro.geometry.angles import TWO_PI

#: :data:`repro.geometry.entropy._ZERO` — fractions at or below this are
#: zero mass.
_ZERO = 1e-15

#: ``math.log`` applied element-wise (object loop).  Slower per element
#: than ``np.log`` but bit-identical to the scalar ``entropy_term``.
_MATH_LOG = np.frompyfunc(math.log, 1, 1)

#: Above this many mid-branch fractions, dedupe through ``np.unique``
#: before taking logs: greedy candidate blocks repeat each base-profile
#: fraction once per candidate of the same task, and the object-loop log
#: is ~2x the cost of the sort.  Both paths produce identical bits, so
#: the data-dependent switch cannot break any equality contract.
_UNIQUE_LOG_THRESHOLD = 2048

#: Rough per-chunk cell budget for the O(maxR^2) term matrices, keeping
#: peak temporary memory in the tens of megabytes regardless of block
#: size.  Purely an internal blocking factor — results are per-row
#: independent, so chunking is invisible to the bitwise contract.
_CHUNK_CELLS = 1 << 20


def _entropy_terms(fractions: np.ndarray) -> np.ndarray:
    """Element-wise twin of :func:`repro.geometry.entropy.entropy_term`.

    Replicates the scalar branches exactly: the ±1e-9 range guard, zero
    below ``_ZERO`` and at-or-above one, else ``-f * math.log(f)``.
    """
    bad = (fractions < -1e-9) | (fractions > 1.0 + 1e-9)
    if np.any(bad):
        value = float(fractions[bad].flat[0])
        raise ValueError(f"fraction must be within [0, 1], got {value}")
    out = np.zeros_like(fractions)
    mid = (fractions > _ZERO) & (fractions < 1.0)
    if np.any(mid):
        values = fractions[mid]
        if values.size >= _UNIQUE_LOG_THRESHOLD:
            uniques, inverse = np.unique(values, return_inverse=True)
            logs = _MATH_LOG(uniques).astype(np.float64)[inverse]
        else:
            logs = _MATH_LOG(values).astype(np.float64)
        out[mid] = -values * logs
    return out


def batch_expected_spatial_diversity(
    angles: np.ndarray, confidences: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Row-wise SD over a padded ``(B, maxR)`` slab.

    Row ``b`` holds ``counts[b]`` live profiles in its leading columns;
    padding beyond the count is ignored.  Bitwise-equal to calling
    :func:`repro.core.expected.expected_spatial_diversity` per row.
    """
    angles = np.ascontiguousarray(angles, dtype=np.float64)
    confidences = np.ascontiguousarray(confidences, dtype=np.float64)
    counts = np.asarray(counts, dtype=np.int64)
    num_rows, max_r = angles.shape
    out = np.zeros(num_rows)
    if max_r < 2:
        return out
    col = np.arange(max_r)[None, :]
    valid_col = col < counts[:, None]
    theta = _normalize_angles(np.where(valid_col, angles, 0.0))
    # Stable sort puts padded (+inf-keyed) columns last and keeps the
    # scalar ``sorted``'s input-order tie-breaking among equal angles.
    order = np.argsort(np.where(valid_col, theta, np.inf), kind="stable", axis=1)
    thetas = np.take_along_axis(theta, order, axis=1)
    ps = np.take_along_axis(np.where(valid_col, confidences, 0.0), order, axis=1)

    # Gaps: adjacent differences over the sorted angles, wrap-around gap
    # scattered at column r-1.  No phantom boundaries — inserting padded
    # angles would split arcs and change the float gap sums.
    gaps = np.zeros((num_rows, max_r))
    gaps[:, :-1] = thetas[:, 1:] - thetas[:, :-1]
    gaps = np.where(col < counts[:, None] - 1, gaps, 0.0)
    rows = np.arange(num_rows)
    last = np.maximum(counts - 1, 0)
    wrap = (TWO_PI - thetas[rows, last]) + thetas[:, 0]
    gaps[rows, last] = np.where(counts >= 2, wrap, 0.0)

    # (b, j, d) term matrices, d = step - 1.  When every row holds
    # exactly ``max_r`` profiles (how :func:`batch_expected_std` calls
    # after grouping by count) the circular index ``(j + d) % r`` is the
    # same for all rows, and gathering through explicit index matrices
    # is beaten ~6x by sliding windows over period-doubled arrays — the
    # windows read the identical elements in the identical order, so the
    # two gathers are bitwise-interchangeable.
    j_idx = np.arange(max_r)[None, :, None]
    d_idx = np.arange(max_r - 1)[None, None, :]
    if np.all(counts == max_r):
        from numpy.lib.stride_tricks import sliding_window_view

        doubled_gaps = np.concatenate([gaps, gaps[:, : max_r - 1]], axis=1)
        doubled_ps = np.concatenate([ps, ps[:, :max_r]], axis=1)
        gap_run = sliding_window_view(doubled_gaps, max_r - 1, axis=1)[:, :max_r]
        ps_k = sliding_window_view(doubled_ps[:, 1:], max_r - 1, axis=1)[:, :max_r]
    else:
        r_mod = np.maximum(counts, 1)[:, None, None]
        b_idx = rows[:, None, None]
        gap_run = gaps[b_idx, (j_idx + d_idx) % r_mod]
        ps_k = ps[b_idx, (j_idx + d_idx + 1) % r_mod]

    # arcs[b, j, d] = gaps[j] + ... + gaps[j + d]  (sequential, as scalar
    # ``arc +=``); survivors[b, j, d] = p_j * (1-p_{k_1}) ... (1-p_{k_d}).
    arcs = np.cumsum(gap_run, axis=2)
    factors = np.empty((num_rows, max_r, max_r - 1))
    factors[:, :, 0] = ps
    factors[:, :, 1:] = 1.0 - ps_k[:, :, :-1]
    survivors = np.multiply.accumulate(factors, axis=2)

    live = (j_idx < counts[:, None, None]) & (d_idx < counts[:, None, None] - 1)
    # Python ``min(arc, TWO_PI)`` keeps ``arc`` unless strictly above.
    capped = np.where(TWO_PI < arcs, TWO_PI, arcs)
    fractions = np.where(live, capped / TWO_PI, 0.0)
    terms = np.where(live, (_entropy_terms(fractions) * survivors) * ps_k, 0.0)
    # C-order flatten = j-major, step-minor: the scalar loop nesting.
    totals = np.cumsum(terms.reshape(num_rows, -1), axis=1)[:, -1]
    return np.where(counts >= 2, totals, 0.0)


def batch_expected_temporal_diversity(
    arrivals: np.ndarray,
    confidences: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    counts: np.ndarray,
) -> np.ndarray:
    """Row-wise TD over a padded ``(B, maxR)`` slab.

    Bitwise-equal to calling
    :func:`repro.core.expected.expected_temporal_diversity` per row with
    ``(arrivals[b, :r], confidences[b, :r], starts[b], ends[b])``.
    """
    arrivals = np.ascontiguousarray(arrivals, dtype=np.float64)
    confidences = np.ascontiguousarray(confidences, dtype=np.float64)
    starts = np.asarray(starts, dtype=np.float64)
    ends = np.asarray(ends, dtype=np.float64)
    counts = np.asarray(counts, dtype=np.int64)
    num_rows, max_r = arrivals.shape
    duration = ends - starts
    alive = (counts > 0) & (duration > 0.0)
    out = np.zeros(num_rows)
    if not np.any(alive):
        return out
    col = np.arange(max_r)[None, :]
    valid_col = col < counts[:, None]
    # Sort by *raw* arrival (the scalar orders before clamping; the clamp
    # is monotone so sorting first then clamping matches).
    order = np.argsort(np.where(valid_col, arrivals, np.inf), kind="stable", axis=1)
    arr = np.take_along_axis(np.where(valid_col, arrivals, 0.0), order, axis=1)
    confs = np.take_along_axis(np.where(valid_col, confidences, 0.0), order, axis=1)
    # Python ``max(a, start)`` / ``min(tau, end)``: first argument wins on
    # ties, so the scattered window bound only replaces on strict compare.
    taus = np.where(starts[:, None] > arr, starts[:, None], arr)
    taus = np.where(ends[:, None] < taus, ends[:, None], taus)

    # bounds = [start, τ_1..τ_r, end]; present = [1, p_1..p_r, 1] — the
    # terminal column scattered at r + 1, padding inert beyond it.
    width = max_r + 2
    bounds = np.zeros((num_rows, width))
    bounds[:, 0] = starts
    bounds[:, 1 : max_r + 1] = np.where(valid_col, taus, 0.0)
    present = np.zeros((num_rows, width))
    present[:, 0] = 1.0
    present[:, 1 : max_r + 1] = confs
    rows = np.arange(num_rows)
    end_col = counts + 1
    bounds[rows, end_col] = ends
    present[rows, end_col] = 1.0

    # (b, j, k) boundary-pair matrices, j in [0, r], k in [j+1, r+1].
    num_j = width - 1
    j_idx = np.arange(num_j)[None, :, None]
    k_idx = np.arange(width)[None, None, :]
    cnt = counts[:, None, None]
    live = (k_idx > j_idx) & (j_idx <= cnt) & (k_idx <= cnt + 1)
    lengths = bounds[:, None, :] - bounds[:, :num_j, None]
    dur = duration[:, None, None]
    capped = np.where(dur < lengths, dur, lengths)
    denom = np.where(duration > 0.0, duration, 1.0)[:, None, None]
    fractions = np.where(live & alive[:, None, None], capped / denom, 0.0)

    # survivors[b, j, k] = present[j] * Π_{m=j+1..k-1} (1 - present[m]),
    # via a prefix product whose leading factors are exact 1.0 (a bitwise
    # no-op) below the diagonal and present[j] on it.
    chain = np.broadcast_to((1.0 - present)[:, None, :], (num_rows, num_j, width)).copy()
    chain = np.where(k_idx < j_idx, 1.0, chain)
    chain = np.where(k_idx == j_idx, present[:, :num_j, None], chain)
    prefix = np.multiply.accumulate(chain, axis=2)
    survivors = np.empty((num_rows, num_j, width))
    survivors[:, :, 0] = 0.0
    survivors[:, :, 1:] = prefix[:, :, :-1]

    p_k = np.broadcast_to(present[:, None, :], (num_rows, num_j, width))
    terms = np.where(live, (_entropy_terms(fractions) * survivors) * p_k, 0.0)
    totals = np.cumsum(terms.reshape(num_rows, -1), axis=1)[:, -1]
    return np.where(alive, totals, 0.0)


@dataclass
class DiversitySlab:
    """A padded block of per-row diversity-evaluation inputs.

    Row ``b`` describes one (task, profile multiset) pair: the task's
    ``beta`` / valid period and ``counts[b]`` profiles in the leading
    columns of the ``(B, maxR)`` arrays.  Slabs slice cleanly by row
    (:meth:`take`), which is how the shard-batched scorer ships per-shard
    sub-blocks to remote processes.
    """

    betas: np.ndarray
    starts: np.ndarray
    ends: np.ndarray
    counts: np.ndarray
    angles: np.ndarray
    arrivals: np.ndarray
    confidences: np.ndarray

    def __len__(self) -> int:
        return int(self.betas.shape[0])

    def take(self, indices: np.ndarray) -> "DiversitySlab":
        """The sub-slab at ``indices`` (rows copied, order preserved)."""
        idx = np.asarray(indices, dtype=np.intp)
        return DiversitySlab(
            betas=self.betas[idx],
            starts=self.starts[idx],
            ends=self.ends[idx],
            counts=self.counts[idx],
            angles=self.angles[idx],
            arrivals=self.arrivals[idx],
            confidences=self.confidences[idx],
        )


def batch_expected_std(slab: DiversitySlab) -> np.ndarray:
    """Row-wise E[STD] = β·SD + (1-β)·TD over a slab.

    Bitwise-equal to :func:`repro.core.expected.expected_std` per row.
    Internally rows are bucketed by profile count (each chunk padded to
    its own maximum, bounding both the padding waste and the O(width^2)
    temporaries); regrouping cannot change bits because rows are
    independent.
    """
    betas = np.asarray(slab.betas, dtype=np.float64)
    bad = (betas < 0.0) | (betas > 1.0)
    if np.any(bad):
        value = float(betas[bad].flat[0])
        raise ValueError(f"beta must be within [0, 1], got {value}")
    num_rows = len(slab)
    out = np.empty(num_rows)
    if not num_rows:
        return out
    counts = np.asarray(slab.counts, dtype=np.int64)
    # Group rows by *exact* profile count.  The term matrices are
    # O(width^2) per row, so padding every row to the global maximum
    # would charge a depth-3 row a depth-20 row's work (the scalar loop
    # pays r^2); with uniform counts every kernel call runs unpadded and
    # the SD kernel additionally takes its sliding-window path.  Rows
    # are independent and padded columns contribute exact no-op terms,
    # so regrouping and column-slicing cannot change a single bit.
    order = np.argsort(counts, kind="stable")
    sorted_counts = counts[order]
    boundaries = np.flatnonzero(np.diff(sorted_counts)) + 1
    for group in np.split(order, boundaries):
        local_r = max(1, int(counts[group[0]]))
        step = max(1, _CHUNK_CELLS // ((local_r + 2) * (local_r + 2)))
        for lo in range(0, group.size, step):
            idx = group[lo : lo + step]
            chunk_betas = betas[idx]
            chunk_counts = counts[idx]
            if np.any(chunk_betas > 0.0):
                sd = batch_expected_spatial_diversity(
                    slab.angles[:, :local_r][idx],
                    slab.confidences[:, :local_r][idx],
                    chunk_counts,
                )
            else:
                sd = np.zeros(idx.size)
            if np.any(chunk_betas < 1.0):
                td = batch_expected_temporal_diversity(
                    slab.arrivals[:, :local_r][idx],
                    slab.confidences[:, :local_r][idx],
                    slab.starts[idx],
                    slab.ends[idx],
                    chunk_counts,
                )
            else:
                td = np.zeros(idx.size)
            # The scalar skips SD at β == 0 and TD at β == 1 (leaving
            # 0.0); masking reproduces that without branching per row.
            sd = np.where(chunk_betas > 0.0, sd, 0.0)
            td = np.where(chunk_betas < 1.0, td, 0.0)
            out[idx] = chunk_betas * sd + (1.0 - chunk_betas) * td
    return out


def pack_delta_slab(
    problem, evaluator, pairs: Sequence[Tuple[int, int]]
) -> Tuple[DiversitySlab, np.ndarray]:
    """Slab + per-row current E[STD] for a block of candidate pairs.

    Row ``i`` holds ``pairs[i]``'s task profiles in assignment order with
    the candidate's :meth:`~repro.core.problem.RdbscProblem.pair_profile`
    appended last — exactly the profile list
    :meth:`repro.core.objectives.IncrementalEvaluator.delta_estd` builds.
    """
    num_rows = len(pairs)
    by_task: Dict[int, List[int]] = {}
    for index, (task_id, _) in enumerate(pairs):
        by_task.setdefault(task_id, []).append(index)
    max_r = 1
    for task_id in by_task:
        max_r = max(max_r, len(evaluator.state_of(task_id).profiles) + 1)
    angles = np.zeros((num_rows, max_r))
    arrivals = np.zeros((num_rows, max_r))
    confidences = np.zeros((num_rows, max_r))
    counts = np.empty(num_rows, dtype=np.int64)
    betas = np.empty(num_rows)
    starts = np.empty(num_rows)
    ends = np.empty(num_rows)
    old_estd = np.empty(num_rows)
    for task_id, indices in by_task.items():
        task = problem.tasks_by_id[task_id]
        state = evaluator.state_of(task_id)
        base = state.profiles
        r = len(base)
        idx = np.asarray(indices, dtype=np.intp)
        if r:
            angles[idx[:, None], np.arange(r)[None, :]] = [p.angle for p in base]
            arrivals[idx[:, None], np.arange(r)[None, :]] = [p.arrival for p in base]
            confidences[idx[:, None], np.arange(r)[None, :]] = [
                p.confidence for p in base
            ]
        added = [problem.pair_profile(task_id, pairs[i][1]) for i in indices]
        angles[idx, r] = [p.angle for p in added]
        arrivals[idx, r] = [p.arrival for p in added]
        confidences[idx, r] = [p.confidence for p in added]
        counts[idx] = r + 1
        betas[idx] = task.beta
        starts[idx] = task.start
        ends[idx] = task.end
        old_estd[idx] = state.estd
    slab = DiversitySlab(
        betas=betas,
        starts=starts,
        ends=ends,
        counts=counts,
        angles=angles,
        arrivals=arrivals,
        confidences=confidences,
    )
    return slab, old_estd


def batch_delta_estd(
    problem, evaluator, pairs: Sequence[Tuple[int, int]]
) -> np.ndarray:
    """ΔE[STD] for every candidate pair, batch-evaluated.

    Bitwise-equal, element by element, to calling
    :meth:`~repro.core.objectives.IncrementalEvaluator.delta_estd` on each
    pair in turn.
    """
    slab, old_estd = pack_delta_slab(problem, evaluator, pairs)
    return batch_expected_std(slab) - old_estd
