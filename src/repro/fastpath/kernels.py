"""Broadcast kernels over packed worker/task arrays.

Three hot paths of the reproduction are scalar Python loops at heart:

* valid-pair retrieval — the ``O(m * n)`` Definition 2/4 scan of
  :class:`repro.core.validity.ValidityRule`,
* the greedy solver's per-round ``Δmin_R`` scoring,
* the Lemma 4.3 bound-based candidate pruning sweep.

This module re-expresses each as NumPy array arithmetic.  The validity
kernel mirrors the scalar rule check for check (same ``fmod``-based angle
normalisation, same ``ANGLE_EPS`` slack, same waiting clamp); the only
latitude it takes is floating-point rounding — ``sqrt(dx² + dy²)`` versus
``math.hypot`` for the distance, ``np.arctan2`` versus ``math.atan2`` for
the bearing — which can move a pair's decision only when its arrival or
bearing sits within an ulp of a boundary.  Retrieval therefore runs in
two stages: a *candidate filter* whose boundary comparisons are widened
by :data:`FILTER_SLACK` (orders of magnitude beyond any rounding
divergence, so it can only over-accept, never drop a scalar-valid pair),
then scalar confirmation of the surviving minority.  The result of
:func:`batch_valid_pairs` is thereby *bit-identical* to brute force —
boundary cases included — while the Python loop over the (typically much
larger) invalid majority is skipped.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.problem import ValidPair
from repro.core.task import SpatialTask
from repro.core.validity import ValidityRule
from repro.core.worker import MovingWorker
from repro.fastpath.arrays import TaskArrays, WorkerArrays
from repro.geometry.angles import ANGLE_EPS, TWO_PI


#: Boundary slack of the retrieval *candidate filter*.  The vectorised
#: distance/bearing can drift from their ``math.*`` twins by a few ulps
#: (relative error ~1e-16); widening the filter's comparisons by this much
#: turns any such drift into a false positive — removed by the scalar
#: confirmation pass — and never a silently dropped scalar-valid pair.
#: The strict validity matrix (:func:`batch_effective_arrival`) does not
#: apply it.
FILTER_SLACK = 1e-9


def _normalize_angles(theta: np.ndarray) -> np.ndarray:
    """Vectorised :func:`repro.geometry.angles.normalize_angle`.

    Replicates the scalar three-step form (``fmod``, negative shift,
    top-edge fold) so results match ``math.fmod``-based code bitwise.
    """
    out = np.fmod(theta, TWO_PI)
    out = np.where(out < 0.0, out + TWO_PI, out)
    return np.where(out >= TWO_PI, out - TWO_PI, out)


def _validity_mask(
    tasks: TaskArrays,
    workers: WorkerArrays,
    allow_waiting: bool,
    slack: float,
    alive: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(valid, arrival)`` matrices of the Definition 2/4 checks.

    With ``slack == 0`` the mask is the kernel's best strict answer; a
    positive ``slack`` widens every boundary comparison (valid-period
    edges absolutely and relatively, cone edges by ``slack`` radians) so
    the mask becomes a guaranteed superset of the scalar rule's verdicts.

    ``alive`` — an optional ``(task_mask, worker_mask)`` boolean pair —
    supports slot-slab inputs (:class:`repro.fastpath.arrays.TaskSlots` /
    ``WorkerSlots``): dead rows/columns are forced invalid before the
    expensive cone check runs, so their stale payloads never surface.
    """
    dx = tasks.xs[:, None] - workers.xs[None, :]
    dy = tasks.ys[:, None] - workers.ys[None, :]

    dist = np.sqrt(dx * dx + dy * dy)
    with np.errstate(divide="ignore", invalid="ignore"):
        travel = dist / workers.velocities[None, :]
    # Zero distance is free regardless of speed (fixes the 0/0 NaN too);
    # a stationary worker facing a positive distance is already +inf.
    travel[dist == 0.0] = 0.0
    arrival = workers.depart_times[None, :] + travel

    valid = np.isfinite(arrival)
    if alive is not None:
        task_alive, worker_alive = alive
        valid &= task_alive[:, None]
        valid &= worker_alive[None, :]
    if allow_waiting:
        arrival = np.maximum(arrival, tasks.starts[:, None])
    starts = tasks.starts[:, None]
    ends = tasks.ends[:, None]
    if slack > 0.0:
        pad_lo = slack * np.maximum(1.0, np.abs(starts))
        pad_hi = slack * np.maximum(1.0, np.abs(ends))
        valid &= arrival >= starts - pad_lo
        valid &= arrival <= ends + pad_hi
    else:
        valid &= arrival >= starts
        valid &= arrival <= ends

    # Direction-cone membership (Definition 2) is the expensive check
    # (bearing = arctan2 + two angle normalisations), so it only runs on
    # pairs that survived the deadline filter and involve a worker with a
    # real cone; full circles and coincident locations always pass.
    constrained = workers.cone_widths < TWO_PI - ANGLE_EPS
    if np.any(constrained):
        rows, cols = np.nonzero(valid & constrained[None, :])
        if rows.size:
            sdx = dx[rows, cols]
            sdy = dy[rows, cols]
            bearings = _normalize_angles(np.arctan2(sdy, sdx))
            offsets = _normalize_angles(bearings - workers.cone_los[cols])
            cone_ok = (
                (offsets <= workers.cone_widths[cols] + ANGLE_EPS + slack)
                | (offsets >= TWO_PI - ANGLE_EPS - slack)
                | ((sdx == 0.0) & (sdy == 0.0))
            )
            valid[rows, cols] = cone_ok
    return valid, arrival


def batch_effective_arrival(
    tasks: TaskArrays,
    workers: WorkerArrays,
    allow_waiting: bool = False,
) -> np.ndarray:
    """The full validity matrix of a (task set, worker set) product.

    Returns an ``(m, n)`` float matrix: entry ``[i, j]`` is worker ``j``'s
    effective arrival time at task ``i`` when the pair is valid under the
    Definition 2/4 checks (direction cone, reachability, valid period) and
    ``NaN`` otherwise.  Semantics match
    :meth:`repro.core.validity.ValidityRule.effective_arrival` up to
    floating-point rounding of the distance/bearing ufuncs.
    """
    valid, arrival = _validity_mask(tasks, workers, allow_waiting, slack=0.0)
    return np.where(valid, arrival, np.nan)


def batch_any_valid(
    tasks: Sequence[SpatialTask],
    workers: Sequence[MovingWorker],
    validity: Optional[ValidityRule] = None,
) -> bool:
    """Whether any (task, worker) pair of the product is valid.

    Filter-then-confirm existence check with the scalar rule as the final
    word, so the verdict matches a scalar double loop exactly; used by the
    grid index's cell confirmation.
    """
    rule = validity if validity is not None else ValidityRule()
    valid, _ = _validity_mask(
        TaskArrays.from_tasks(tasks),
        WorkerArrays.from_workers(workers),
        rule.allow_waiting,
        slack=FILTER_SLACK,
    )
    rows, cols = np.nonzero(valid)
    for i, j in zip(rows.tolist(), cols.tolist()):
        if rule.is_valid(workers[j], tasks[i]):
            return True
    return False


def batch_valid_pairs(
    tasks: Sequence[SpatialTask],
    workers: Sequence[MovingWorker],
    validity: Optional[ValidityRule] = None,
    refine: bool = True,
    task_arrays: Optional[TaskArrays] = None,
    worker_arrays: Optional[WorkerArrays] = None,
) -> List[ValidPair]:
    """Array-backed replacement for the brute-force valid-pair scan.

    Produces the same edge set as
    :func:`repro.index.grid.retrieve_pairs_without_index` (task-major
    order rather than worker-major; callers that care about order sort or
    canonicalise, as :class:`repro.core.problem.RdbscProblem` does).

    Args:
        tasks / workers: the instance, as objects.
        validity: pair-validity policy (strict arrival by default).
        refine: when true (default), candidates pass through a
            slack-widened filter (a guaranteed superset of the scalar
            verdicts) and are then confirmed through the scalar rule,
            making the result bit-identical to the Python backend —
            boundary pairs and arrivals included.  When false the strict
            vectorised mask and arrivals are returned directly (at most
            one ulp apart from scalar, and pairs sitting exactly on a
            boundary may differ).
        task_arrays / worker_arrays: optional prepacked columns aligned
            with ``tasks`` / ``workers``, to amortise packing across calls.
    """
    rule = validity if validity is not None else ValidityRule()
    if task_arrays is None:
        task_arrays = TaskArrays.from_tasks(tasks)
    if worker_arrays is None:
        worker_arrays = WorkerArrays.from_workers(workers)
    valid, arrival = _validity_mask(
        task_arrays,
        worker_arrays,
        rule.allow_waiting,
        slack=FILTER_SLACK if refine else 0.0,
    )
    rows, cols = np.nonzero(valid)
    pairs: List[ValidPair] = []
    if refine:
        for i, j in zip(rows.tolist(), cols.tolist()):
            exact = rule.effective_arrival(workers[j], tasks[i])
            if exact is not None:
                pairs.append(ValidPair(tasks[i].task_id, workers[j].worker_id, exact))
    else:
        arrivals = arrival[rows, cols]
        task_ids = task_arrays.ids[rows]
        worker_ids = worker_arrays.ids[cols]
        for t, w, a in zip(task_ids.tolist(), worker_ids.tolist(), arrivals.tolist()):
            pairs.append(ValidPair(t, w, a))
    return pairs


def slots_valid_pairs(
    task_slots,
    worker_slots,
    validity: Optional[ValidityRule] = None,
) -> List[ValidPair]:
    """Valid-pair retrieval straight off slot slabs, masking dead slots.

    The incremental engine's no-index fast path: the slabs are already
    packed (updated in place per churn event by
    :class:`repro.fastpath.arrays.TaskSlots` / ``WorkerSlots``), so no
    per-epoch re-pack happens — the kernel broadcasts over the full slabs
    with dead rows/columns forced invalid, then confirms the surviving
    candidates through the scalar rule.  The pair set is bit-identical to
    a brute-force scan over the live entities.
    """
    rule = validity if validity is not None else ValidityRule()
    if not len(task_slots) or not len(worker_slots):
        return []
    valid, _ = _validity_mask(
        task_slots.full_view(),
        worker_slots.full_view(),
        rule.allow_waiting,
        slack=FILTER_SLACK,
        alive=(task_slots.alive, worker_slots.alive),
    )
    rows, cols = np.nonzero(valid)
    pairs: List[ValidPair] = []
    for i, j in zip(rows.tolist(), cols.tolist()):
        task = task_slots.object_at(i)
        worker = worker_slots.object_at(j)
        exact = rule.effective_arrival(worker, task)
        if exact is not None:
            pairs.append(ValidPair(task.task_id, worker.worker_id, exact))
    return pairs


# --------------------------------------------------------------------- #
# Solver-side kernels
# --------------------------------------------------------------------- #


def batch_delta_min_r(
    task_r_values: np.ndarray,
    task_has_state: np.ndarray,
    log_weights: np.ndarray,
    best: float,
    second: float,
) -> np.ndarray:
    """Vectorised :meth:`IncrementalEvaluator.delta_min_r` over candidates.

    Args:
        task_r_values: per-candidate ``R`` of the target task (0 where the
            task has no workers yet).
        task_has_state: per-candidate flag — does the target task already
            have assigned workers?
        log_weights: per-candidate worker weight ``-ln(1 - p_j)``.
        best / second: the evaluator's current two smallest task ``R``
            values (``inf``-padded), from ``min_two_r()``.

    Returns:
        The change of the minimum log-reliability per candidate, matching
        the scalar method bit-for-bit (same additions, same comparisons).
    """
    new_r = task_r_values + log_weights
    # A task at the current minimum may be lifted past the runner-up; any
    # other touched task leaves the minimum alone; a fresh task competes
    # with the minimum directly.
    new_min = np.where(
        task_has_state,
        np.where(
            task_r_values == best,
            np.minimum(new_r, second),
            best,
        ),
        np.minimum(best, new_r),
    )
    if np.isinf(best):
        return new_min
    return new_min - best


def lemma43_prune_order(
    delta_min_r: np.ndarray,
    lb_delta_std: np.ndarray,
    ub_delta_std: np.ndarray,
) -> np.ndarray:
    """Vectorised Lemma 4.3 pruning sweep.

    Candidate ``c'`` is dropped when some other candidate ``c`` has
    ``Δmin_R(c) >= Δmin_R(c')`` and ``lb(c) > ub(c')`` — the same rule as
    :func:`repro.algorithms.pruning.prune_candidates`, including the
    tie-group handling (candidates tied on ``Δmin_R`` threaten each other,
    each tested against the group's best lower bound *excluding itself*).

    Returns:
        Indices of the surviving candidates, ordered by descending
        ``Δmin_R`` with ties in input order — exactly the scalar sweep's
        survivor order, which dominance tie-breaking downstream relies on.
    """
    n = int(delta_min_r.shape[0])
    if n == 0:
        return np.empty(0, dtype=np.intp)
    order = np.argsort(-delta_min_r, kind="stable")
    dr = delta_min_r[order]
    lb = lb_delta_std[order]
    ub = ub_delta_std[order]

    group_start = np.empty(n, dtype=bool)
    group_start[0] = True
    group_start[1:] = dr[1:] != dr[:-1]
    group_id = np.cumsum(group_start) - 1
    starts = np.nonzero(group_start)[0]

    group_max = np.maximum.reduceat(lb, starts)
    max_per_elem = group_max[group_id]
    is_max = lb == max_per_elem
    max_count = np.add.reduceat(is_max.astype(np.int64), starts)
    demoted = np.where(is_max, -np.inf, lb)
    group_second = np.maximum.reduceat(demoted, starts)

    # Best lower bound among strictly better Δmin_R groups (exclusive
    # running maximum over the group maxima).
    prev_max = np.empty(group_max.shape[0])
    prev_max[0] = -np.inf
    np.maximum.accumulate(group_max[:-1], out=prev_max[1:])

    others_best = np.where(
        is_max & (max_count[group_id] == 1),
        group_second[group_id],
        max_per_elem,
    )
    threat = np.maximum(prev_max[group_id], others_best)
    return order[threat <= ub]


def slots_log_weights(worker_slots, worker_ids: Sequence[int]) -> Dict[int, float]:
    """Gather Eq. 8 log-confidence weights for live workers from the slab.

    The warm-start greedy path re-scores only the dirty workers, so the
    engine hands the round loop a weight map covering exactly those ids —
    gathered here as one fancy-indexed read of the slot slab's
    ``log_weights`` column (written in place per churn event, so the
    values are bit-identical to the workers' own scalar properties)
    instead of touching the worker objects.  Ids without a live slot
    (e.g. per-epoch virtual workers, which are never slab-resident) are
    skipped; the caller fills them from the scalar path.
    """
    slot_of = worker_slots.slot_of
    ids = [worker_id for worker_id in worker_ids if worker_id in slot_of]
    if not ids:
        return {}
    slots = np.fromiter(
        (slot_of[worker_id] for worker_id in ids), dtype=np.intp, count=len(ids)
    )
    weights = worker_slots.log_weights[slots]
    return dict(zip(ids, weights.tolist()))
