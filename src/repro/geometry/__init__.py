"""Geometric primitives shared by the RDB-SC model and algorithms.

The paper's world is a 2-D plane: tasks sit at fixed points, workers move
along straight rays inside a *direction cone*, and diversity is measured with
angular and temporal entropies.  This package supplies those primitives:

``points``
    Immutable 2-D points and Euclidean distances.
``angles``
    Angle normalisation, bearings, circular intervals (direction cones) and
    the circular-gap computation behind spatial diversity.
``motion``
    Straight-line kinematics: arrival times and reachability radii.
``entropy``
    The Shannon-entropy helpers used by both diversity measures.
"""

from repro.geometry.angles import (
    TWO_PI,
    AngleInterval,
    bearing,
    circular_gaps,
    normalize_angle,
)
from repro.geometry.entropy import entropy, entropy_term
from repro.geometry.motion import arrival_time, reachable_radius
from repro.geometry.points import Point, distance, midpoint

__all__ = [
    "TWO_PI",
    "AngleInterval",
    "Point",
    "arrival_time",
    "bearing",
    "circular_gaps",
    "distance",
    "entropy",
    "entropy_term",
    "midpoint",
    "normalize_angle",
    "reachable_radius",
]
