"""Angles, bearings and circular intervals.

Two places in the paper lean on circular geometry:

* each worker registers a *direction cone* ``[alpha-, alpha+]`` of moving
  directions they will accept tasks in (Definition 2), and
* spatial diversity is the entropy of the *gaps* between the rays drawn from
  a task's location towards its assigned workers (Eq. 3).

``AngleInterval`` models the cone (including wrap-around past ``2*pi``) and
``circular_gaps`` produces the atomic angles ``A_1..A_r`` of Figure 2(a).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.geometry.points import Point

TWO_PI = 2.0 * math.pi

#: Angular slack used when comparing angles for containment; keeps borderline
#: bearings (e.g. a worker exactly on a cone edge) numerically stable, and
#: absorbs the rounding of ``fmod`` on large angle magnitudes.
ANGLE_EPS = 1e-9


def normalize_angle(theta: float) -> float:
    """Map ``theta`` into ``[0, 2*pi)``."""
    theta = math.fmod(theta, TWO_PI)
    if theta < 0.0:
        theta += TWO_PI
    # fmod of a value just below a multiple of 2*pi can round to 2*pi itself.
    if theta >= TWO_PI:
        theta -= TWO_PI
    return theta


def bearing(origin: Point, target: Point) -> float:
    """Direction of the vector from ``origin`` to ``target`` in ``[0, 2*pi)``.

    Raises:
        ValueError: if the two points coincide (the bearing is undefined).
    """
    dx = target.x - origin.x
    dy = target.y - origin.y
    if dx == 0.0 and dy == 0.0:
        raise ValueError("bearing undefined for coincident points")
    return normalize_angle(math.atan2(dy, dx))


def angular_difference(a: float, b: float) -> float:
    """Smallest non-negative angle between directions ``a`` and ``b``.

    The result lies in ``[0, pi]``.
    """
    diff = abs(normalize_angle(a) - normalize_angle(b))
    return min(diff, TWO_PI - diff)


@dataclass(frozen=True)
class AngleInterval:
    """A counter-clockwise interval of directions ``[lo, lo + width]``.

    The interval starts at ``lo`` (normalised into ``[0, 2*pi)``) and spans
    ``width`` radians counter-clockwise, so it naturally represents cones
    that wrap past the positive x-axis.  A width of ``2*pi`` (or more) is the
    full circle — the paper's "free to move" worker.
    """

    lo: float
    width: float

    def __post_init__(self) -> None:
        if self.width < 0.0:
            raise ValueError(f"width must be non-negative, got {self.width}")
        object.__setattr__(self, "lo", normalize_angle(self.lo))
        object.__setattr__(self, "width", min(self.width, TWO_PI))

    @classmethod
    def from_bounds(cls, lo: float, hi: float) -> "AngleInterval":
        """Build the CCW interval from ``lo`` to ``hi``.

        ``hi`` may exceed ``2*pi`` or be smaller than ``lo`` after
        normalisation; the CCW span from ``lo`` to ``hi`` is used either way.
        A pair with ``hi - lo >= 2*pi`` yields the full circle.
        """
        if hi - lo >= TWO_PI:
            return cls(0.0, TWO_PI)
        width = normalize_angle(hi - lo)
        if width == 0.0 and hi != lo:
            # e.g. lo=0, hi=2*pi: normalises to zero width but means "full".
            width = TWO_PI
        return cls(lo, width)

    @classmethod
    def full_circle(cls) -> "AngleInterval":
        """The unconstrained cone ``[0, 2*pi]``."""
        return cls(0.0, TWO_PI)

    @property
    def hi(self) -> float:
        """Upper edge of the cone, normalised into ``[0, 2*pi)``."""
        return normalize_angle(self.lo + self.width)

    def is_full(self) -> bool:
        """Whether the interval covers the whole circle."""
        return self.width >= TWO_PI - ANGLE_EPS

    def contains(self, theta: float) -> bool:
        """Whether direction ``theta`` lies inside the interval.

        An offset within ``ANGLE_EPS`` below ``2*pi`` counts as zero: that
        is where rounding lands when ``theta`` and ``lo`` denote the same
        direction but differ by a large multiple of ``2*pi``.
        """
        if self.is_full():
            return True
        offset = normalize_angle(theta - self.lo)
        return offset <= self.width + ANGLE_EPS or offset >= TWO_PI - ANGLE_EPS

    def overlaps(self, other: "AngleInterval") -> bool:
        """Whether two intervals share at least one direction."""
        if self.is_full() or other.is_full():
            return True
        return (
            self.contains(other.lo)
            or other.contains(self.lo)
            or self.contains(other.hi)
            or other.contains(self.hi)
        )

    def midpoint(self) -> float:
        """The central direction of the interval."""
        return normalize_angle(self.lo + self.width / 2.0)

    def expanded(self, slack: float) -> "AngleInterval":
        """A copy widened by ``slack`` radians on each side."""
        if slack < 0.0:
            raise ValueError("slack must be non-negative")
        return AngleInterval(self.lo - slack, min(self.width + 2 * slack, TWO_PI))


def circular_gaps(angles: Sequence[float]) -> List[float]:
    """Gap sizes between consecutive directions around the circle.

    Given the directions of the ``r`` rays of Figure 2(a), returns the
    atomic angles ``A_1..A_r`` (in the CCW order of the sorted rays), which
    sum to ``2*pi``.  A single ray yields one gap of ``2*pi``; no rays yield
    an empty list.

    Duplicated directions are legal and simply produce zero-width gaps.
    """
    if not angles:
        return []
    ordered = sorted(normalize_angle(a) for a in angles)
    gaps = [b - a for a, b in zip(ordered, ordered[1:])]
    gaps.append(TWO_PI - ordered[-1] + ordered[0])
    return gaps


def enclosing_interval(angles: Sequence[float]) -> AngleInterval:
    """Smallest ``AngleInterval`` containing every direction in ``angles``.

    This is the "smallest sector containing the rest of the trajectory"
    construction used to derive worker cones from taxi traces (Section 8.2):
    the tightest cone is the complement of the largest circular gap.

    Raises:
        ValueError: if ``angles`` is empty.
    """
    if not angles:
        raise ValueError("enclosing_interval() requires at least one angle")
    ordered = sorted(normalize_angle(a) for a in angles)
    if len(ordered) == 1:
        return AngleInterval(ordered[0], 0.0)
    gaps = circular_gaps(ordered)
    # The widest gap is the arc *not* covered; the interval starts right
    # after it.  gaps[i] separates ordered[i] from its CCW successor.
    widest = max(range(len(gaps)), key=gaps.__getitem__)
    start = ordered[(widest + 1) % len(ordered)]
    return AngleInterval(start, TWO_PI - gaps[widest])
