"""Shannon-entropy helpers shared by the diversity measures.

Both spatial diversity (Eq. 3) and temporal diversity (Eq. 4) are entropies
of a partition of a whole (the circle, the valid period) into fractions.
The paper leaves the logarithm base unspecified; we use the natural log
throughout — every comparison in the evaluation is base-invariant.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

#: Fractions smaller than this are treated as zero mass (0 * log 0 == 0).
_ZERO = 1e-15


def entropy_term(fraction: float) -> float:
    """The single-term contribution ``-f * ln(f)``.

    Zero fractions contribute zero (the usual ``0 log 0 = 0`` convention);
    fractions must lie in ``[0, 1]`` up to floating-point slack.

    Raises:
        ValueError: if ``fraction`` is outside ``[0, 1]`` beyond tolerance.
    """
    if fraction < -1e-9 or fraction > 1.0 + 1e-9:
        raise ValueError(f"fraction must be within [0, 1], got {fraction}")
    if fraction <= _ZERO:
        return 0.0
    if fraction >= 1.0:
        return 0.0
    return -fraction * math.log(fraction)


def entropy(fractions: Iterable[float]) -> float:
    """Shannon entropy (natural log) of a sequence of fractions.

    The caller is responsible for the fractions summing to one; this is not
    enforced so that callers may stream partial sums (the expected-diversity
    matrices accumulate per-arc terms independently).
    """
    return sum(entropy_term(f) for f in fractions)


def entropy_of_partition(parts: Sequence[float], total: float) -> float:
    """Entropy of ``parts`` normalised by ``total``.

    Handy wrapper for "entropy of interval lengths over the period length".
    A non-positive ``total`` yields zero entropy (degenerate partition).

    Raises:
        ValueError: if any part is negative beyond tolerance.
    """
    if total <= 0.0:
        return 0.0
    acc = 0.0
    for part in parts:
        if part < -1e-9:
            raise ValueError(f"parts must be non-negative, got {part}")
        acc += entropy_term(max(part, 0.0) / total)
    return acc


def max_entropy(n_parts: int) -> float:
    """Upper bound ``ln(n)`` on the entropy of an ``n``-way partition."""
    if n_parts <= 1:
        return 0.0
    return math.log(n_parts)
