"""Straight-line motion: arrival times and reachability.

Workers in the paper move with a constant registered velocity, so the time
to reach a task is simply distance over speed.  These helpers centralise
that arithmetic (and its edge cases: zero speed, zero distance) for the
validity checks, the grid index pruning and the platform simulator.
"""

from __future__ import annotations

import math

from repro.geometry.points import Point, distance


def travel_time(origin: Point, target: Point, speed: float) -> float:
    """Time to move from ``origin`` to ``target`` at ``speed``.

    A zero-speed worker can only "reach" its own location (time zero);
    any other target takes infinite time.

    Raises:
        ValueError: if ``speed`` is negative.
    """
    if speed < 0.0:
        raise ValueError(f"speed must be non-negative, got {speed}")
    dist = distance(origin, target)
    if dist == 0.0:
        return 0.0
    if speed == 0.0:
        return math.inf
    return dist / speed


def arrival_time(
    origin: Point, target: Point, speed: float, depart_time: float = 0.0
) -> float:
    """Clock time at which a worker departing at ``depart_time`` arrives."""
    return depart_time + travel_time(origin, target, speed)


def reachable_radius(speed: float, deadline: float, now: float = 0.0) -> float:
    """Maximum distance coverable before ``deadline`` starting at ``now``.

    Returns ``0.0`` when the deadline has already passed.
    """
    remaining = deadline - now
    if remaining <= 0.0:
        return 0.0
    return speed * remaining


def position_along(origin: Point, target: Point, fraction: float) -> Point:
    """The point a ``fraction`` of the way from ``origin`` to ``target``.

    Used by the platform simulator to place travelling workers mid-route.
    ``fraction`` is clamped into ``[0, 1]``.
    """
    f = min(max(fraction, 0.0), 1.0)
    return Point(
        origin.x + (target.x - origin.x) * f,
        origin.y + (target.y - origin.y) * f,
    )
