"""Immutable 2-D points and basic Euclidean geometry.

Tasks and workers both live in the unit square ``[0, 1]^2`` in the synthetic
experiments (and in a lat/lon box for the Beijing substitute); all geometry
in this reproduction is planar Euclidean, matching the paper's model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple


@dataclass(frozen=True, order=True)
class Point:
    """A point in the 2-D plane.

    ``Point`` is frozen so it can key dictionaries and live inside frozen
    tasks/workers without defensive copying.
    """

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)`` for interop with numpy and plotting code."""
        return (self.x, self.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return a.distance_to(b)


def midpoint(a: Point, b: Point) -> Point:
    """The midpoint of segment ``ab``."""
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)


def centroid(points: Iterable[Point]) -> Point:
    """Arithmetic mean of a non-empty collection of points.

    Raises:
        ValueError: if ``points`` is empty.
    """
    xs = 0.0
    ys = 0.0
    count = 0
    for p in points:
        xs += p.x
        ys += p.y
        count += 1
    if count == 0:
        raise ValueError("centroid() requires at least one point")
    return Point(xs / count, ys / count)


def bounding_box(points: Iterable[Point]) -> Tuple[Point, Point]:
    """Axis-aligned bounding box ``(lower_left, upper_right)``.

    Raises:
        ValueError: if ``points`` is empty.
    """
    iterator = iter(points)
    try:
        first = next(iterator)
    except StopIteration:
        raise ValueError("bounding_box() requires at least one point") from None
    min_x = max_x = first.x
    min_y = max_y = first.y
    for p in iterator:
        min_x = min(min_x, p.x)
        max_x = max(max_x, p.x)
        min_y = min(min_y, p.y)
        max_y = max(max_y, p.y)
    return Point(min_x, min_y), Point(max_x, max_y)
