"""The cost-model-based grid index, RDB-SC-Grid (Section 7, Appendix I).

``cell``
    One square cell: task/worker lists plus the aggregate bounds the
    cell-level pruning needs (max speed, union of cones, latest deadline).
``grid``
    The index proper: dynamic insert/remove of tasks and workers,
    ``tcell_list`` maintenance with the reachability pruning, and valid-pair
    retrieval with/without the index (the Figure 17 comparison).
``cost_model``
    The Appendix I update-cost model (Eq. 22) and the optimal cell side
    ``eta`` from Eq. 23.
``fractal``
    Correlation fractal dimension ``D2`` estimation via the box-counting
    power law [12], feeding the cost model on non-uniform data.
"""

from repro.index.cell import GridCell
from repro.index.cost_model import optimal_eta, update_cost
from repro.index.fractal import correlation_dimension
from repro.index.grid import RdbscGrid, retrieve_pairs_without_index

__all__ = [
    "GridCell",
    "RdbscGrid",
    "correlation_dimension",
    "optimal_eta",
    "retrieve_pairs_without_index",
    "update_cost",
]
