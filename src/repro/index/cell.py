"""A single cell of the RDB-SC grid.

Per Section 7.1, each cell keeps its resident task and worker records plus
aggregate bounds used for cell-level pruning: the residents' maximum speed,
an angular interval covering every resident cone, and the latest task
deadline.  Aggregates are recomputed lazily after removals (removal can
only shrink them, so stale values are conservative — pruning stays safe —
but we still refresh before exposing them).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.core.task import SpatialTask
from repro.core.worker import MovingWorker
from repro.geometry.angles import AngleInterval, enclosing_interval
from repro.geometry.points import Point


class GridCell:
    """Tasks, workers and aggregate bounds for one grid square.

    Attributes:
        cell_id: linearised cell index.
        row / col: grid coordinates.
        origin: lower-left corner of the cell square.
        side: cell side length ``eta``.
    """

    def __init__(self, cell_id: int, row: int, col: int, origin: Point, side: float) -> None:
        self.cell_id = cell_id
        self.row = row
        self.col = col
        self.origin = origin
        self.side = side
        self.tasks: Dict[int, SpatialTask] = {}
        self.workers: Dict[int, MovingWorker] = {}
        self._aggregates_stale = False

        self._v_max = 0.0
        self._e_max = -math.inf
        self._s_min = math.inf
        self._cone_union: Optional[AngleInterval] = None

    # ------------------------------------------------------------------ #
    # Geometry
    # ------------------------------------------------------------------ #

    def corners(self) -> Tuple[Point, Point, Point, Point]:
        """The four corners of the cell square."""
        x, y, s = self.origin.x, self.origin.y, self.side
        return (
            Point(x, y),
            Point(x + s, y),
            Point(x, y + s),
            Point(x + s, y + s),
        )

    def min_distance_to(self, other: "GridCell") -> float:
        """Minimum distance between any two points of the two cells."""
        dx = max(
            other.origin.x - (self.origin.x + self.side),
            self.origin.x - (other.origin.x + other.side),
            0.0,
        )
        dy = max(
            other.origin.y - (self.origin.y + self.side),
            self.origin.y - (other.origin.y + other.side),
            0.0,
        )
        return math.hypot(dx, dy)

    def max_distance_to(self, other: "GridCell") -> float:
        """Maximum distance between any two points of the two cells."""
        best = 0.0
        for a in self.corners():
            for b in other.corners():
                best = max(best, a.distance_to(b))
        return best

    # ------------------------------------------------------------------ #
    # Contents
    # ------------------------------------------------------------------ #

    def add_task(self, task: SpatialTask) -> None:
        """Place a task in the cell, widening the deadline aggregates."""
        self.tasks[task.task_id] = task
        self._e_max = max(self._e_max, task.end)
        self._s_min = min(self._s_min, task.start)

    def remove_task(self, task_id: int) -> SpatialTask:
        """Remove a resident task; aggregates go lazily stale."""
        task = self.tasks.pop(task_id)
        self._aggregates_stale = True
        return task

    def add_worker(self, worker: MovingWorker) -> None:
        """Place a worker in the cell, widening speed/cone aggregates."""
        self.workers[worker.worker_id] = worker
        self._v_max = max(self._v_max, worker.velocity)
        self._cone_union = _widen(self._cone_union, worker.cone)

    def remove_worker(self, worker_id: int) -> MovingWorker:
        """Remove a resident worker; aggregates go lazily stale."""
        worker = self.workers.pop(worker_id)
        self._aggregates_stale = True
        return worker

    def replace_worker(self, worker: MovingWorker) -> MovingWorker:
        """Swap a resident worker's record in place (same id, same cell).

        O(1): the dict slot is reused, aggregates are merely marked stale.
        Used by same-cell position/heading/confidence refreshes.
        """
        old = self.workers[worker.worker_id]
        self.workers[worker.worker_id] = worker
        self._aggregates_stale = True
        return old

    @property
    def is_empty(self) -> bool:
        """Whether the cell holds no tasks and no workers."""
        return not self.tasks and not self.workers

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #

    def _refresh(self) -> None:
        if not self._aggregates_stale:
            return
        self._v_max = max((w.velocity for w in self.workers.values()), default=0.0)
        self._e_max = max((t.end for t in self.tasks.values()), default=-math.inf)
        self._s_min = min((t.start for t in self.tasks.values()), default=math.inf)
        union: Optional[AngleInterval] = None
        for worker in self.workers.values():
            union = _widen(union, worker.cone)
        self._cone_union = union
        self._aggregates_stale = False

    @property
    def v_max(self) -> float:
        """Fastest resident worker's speed (0 with no workers)."""
        self._refresh()
        return self._v_max

    @property
    def e_max(self) -> float:
        """Latest resident task deadline (-inf with no tasks)."""
        self._refresh()
        return self._e_max

    @property
    def s_min(self) -> float:
        """Earliest resident task start (inf with no tasks)."""
        self._refresh()
        return self._s_min

    @property
    def cone_union(self) -> Optional[AngleInterval]:
        """An angular interval containing every resident worker's cone.

        ``None`` with no workers.  This is a conservative superset (interval
        union of intervals is an interval), so pruning against it is safe.
        """
        self._refresh()
        return self._cone_union


def _widen(
    current: Optional[AngleInterval], addition: AngleInterval
) -> AngleInterval:
    """Smallest interval covering both ``current`` and ``addition``."""
    if current is None:
        return addition
    if current.is_full() or addition.is_full():
        return AngleInterval.full_circle()
    if current.contains(addition.lo) and current.contains(addition.hi):
        # Possible full wrap: if addition also covers current, union is full.
        if addition.contains(current.lo) and addition.contains(current.hi):
            combined = current.width + addition.width
            if combined >= 2.0 * math.pi:
                return AngleInterval.full_circle()
        return current
    candidates = [
        AngleInterval.from_bounds(current.lo, addition.lo + addition.width),
        AngleInterval.from_bounds(addition.lo, current.lo + current.width),
    ]
    feasible = [
        c
        for c in candidates
        if c.contains(current.lo)
        and c.contains(current.hi)
        and c.contains(addition.lo)
        and c.contains(addition.hi)
    ]
    if not feasible:
        return AngleInterval.full_circle()
    return min(feasible, key=lambda c: c.width)
