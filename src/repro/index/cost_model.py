"""The Appendix I cost model for choosing the grid cell size ``eta``.

Updating the index after a worker moves means (1) scanning the cells that
intersect the worker's reachable disk of radius ``L_max`` and (2) checking
the tasks inside them.  With cells of side ``eta`` and ``N`` tasks whose
spatial distribution has correlation fractal dimension ``D2``, Eq. 22 puts
the cost at::

    cost(eta) = pi (L_max + eta)^2 / eta^2
              + (N - 1) * (pi (L_max + eta)^2)^(D2 / 2)

Minimising over ``eta`` yields Eq. 23::

    (L_max + eta)^(D2 - 2) * eta^3 = 2 pi^(1 - D2/2) L_max / (D2 (N - 1))

whose left side is strictly increasing in ``eta``, so a bisection finds the
optimum; for uniform data (``D2 = 2``) it collapses to the closed form
``eta = cbrt(L_max / (N - 1))``.
"""

from __future__ import annotations

import math


def update_cost(eta: float, l_max: float, n_tasks: int, d2: float = 2.0) -> float:
    """Eq. 22: expected index-update cost for cell side ``eta``.

    Raises:
        ValueError: for non-positive ``eta`` / ``l_max`` or ``n_tasks < 2``.
    """
    _check_args(eta=eta, l_max=l_max, n_tasks=n_tasks, d2=d2)
    reach_area = math.pi * (l_max + eta) ** 2
    cells_term = reach_area / (eta * eta)
    tasks_term = (n_tasks - 1) * reach_area ** (d2 / 2.0)
    return cells_term + tasks_term


def optimal_eta(
    l_max: float,
    n_tasks: int,
    d2: float = 2.0,
    eta_min: float = 1e-6,
    eta_max: float = 1.0,
    tolerance: float = 1e-12,
) -> float:
    """Eq. 23: the cost-minimising cell side, clamped into ``[eta_min, eta_max]``.

    For ``d2 == 2`` the closed form ``cbrt(l_max / (n_tasks - 1))`` is used
    directly; otherwise the monotone left side of Eq. 23 is bisected.
    """
    _check_args(eta=1.0, l_max=l_max, n_tasks=n_tasks, d2=d2)
    if abs(d2 - 2.0) < 1e-12:
        eta = (l_max / (n_tasks - 1)) ** (1.0 / 3.0)
        return min(max(eta, eta_min), eta_max)

    rhs = 2.0 * math.pi ** (1.0 - d2 / 2.0) * l_max / (d2 * (n_tasks - 1))

    def lhs(eta: float) -> float:
        return (l_max + eta) ** (d2 - 2.0) * eta**3

    lo, hi = eta_min, eta_max
    if lhs(hi) <= rhs:
        return hi
    if lhs(lo) >= rhs:
        return lo
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if lhs(mid) < rhs:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def numeric_optimal_eta(
    l_max: float,
    n_tasks: int,
    d2: float = 2.0,
    eta_min: float = 1e-4,
    eta_max: float = 1.0,
    iterations: int = 200,
) -> float:
    """Golden-section minimisation of Eq. 22 directly.

    Exists to cross-validate :func:`optimal_eta` (the derivation sanity
    check in the test suite) and for experimenting with modified cost
    models.
    """
    _check_args(eta=1.0, l_max=l_max, n_tasks=n_tasks, d2=d2)
    inv_phi = (math.sqrt(5.0) - 1.0) / 2.0
    lo, hi = eta_min, eta_max
    c = hi - inv_phi * (hi - lo)
    d = lo + inv_phi * (hi - lo)
    fc = update_cost(c, l_max, n_tasks, d2)
    fd = update_cost(d, l_max, n_tasks, d2)
    for _ in range(iterations):
        if fc < fd:
            hi, d, fd = d, c, fc
            c = hi - inv_phi * (hi - lo)
            fc = update_cost(c, l_max, n_tasks, d2)
        else:
            lo, c, fc = c, d, fd
            d = lo + inv_phi * (hi - lo)
            fd = update_cost(d, l_max, n_tasks, d2)
        if hi - lo < 1e-12:
            break
    return (lo + hi) / 2.0


def _check_args(eta: float, l_max: float, n_tasks: int, d2: float) -> None:
    if eta <= 0.0:
        raise ValueError(f"eta must be positive, got {eta}")
    if l_max <= 0.0:
        raise ValueError(f"l_max must be positive, got {l_max}")
    if n_tasks < 2:
        raise ValueError(f"the cost model needs at least 2 tasks, got {n_tasks}")
    if not 0.0 < d2 <= 2.0:
        raise ValueError(f"d2 must be in (0, 2], got {d2}")
