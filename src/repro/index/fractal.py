"""Correlation fractal dimension estimation (box-counting power law).

The Appendix I cost model estimates the number of tasks inside a reachable
area with the power law of Belussi & Faloutsos [12]: for a point set with
correlation dimension ``D2``, the pair-count sum ``S2(r) = sum_i c_i^2``
over boxes of side ``r`` scales as ``r^D2``.  Fitting the slope of
``log S2`` against ``log r`` over a range of box sizes yields ``D2``:
2 for uniform data, noticeably lower for clustered (SKEWED, POI-like)
distributions.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry.points import Point


def box_pair_counts(
    points: Sequence[Point], box_sizes: Sequence[float]
) -> List[Tuple[float, float]]:
    """``(r, S2(r))`` pairs for the given box sizes.

    Raises:
        ValueError: on empty input or non-positive box sizes.
    """
    if not points:
        raise ValueError("box_pair_counts() requires at least one point")
    coords = np.array([(p.x, p.y) for p in points], dtype=float)
    out: List[Tuple[float, float]] = []
    for r in box_sizes:
        if r <= 0.0:
            raise ValueError(f"box sizes must be positive, got {r}")
        bins = max(1, int(math.ceil(1.0 / r)))
        hist, _, _ = np.histogram2d(
            coords[:, 0], coords[:, 1], bins=bins, range=[[0.0, 1.0], [0.0, 1.0]]
        )
        out.append((r, float((hist**2).sum())))
    return out


def correlation_dimension(
    points: Sequence[Point],
    r_min: float = 0.0,
    r_max: float = 0.5,
    n_scales: int = 10,
) -> float:
    """Estimate ``D2`` by least-squares on the log-log pair-count curve.

    The estimate is clamped into ``(0, 2]`` — the meaningful range for
    planar data feeding the Eq. 23 solver.

    The power law only holds at scales where boxes hold multiple points;
    below the typical nearest-neighbour spacing ``S2(r)`` saturates at
    ``N`` and the fitted slope collapses.  ``r_min = 0`` (the default)
    therefore auto-selects ``~2 / sqrt(N)`` — a box expected to hold a few
    points under uniformity — so the fit stays inside the scaling regime
    for any input size.

    Raises:
        ValueError: for fewer than two points or a degenerate scale range.
    """
    if len(points) < 2:
        raise ValueError("correlation_dimension() needs at least two points")
    if r_min <= 0.0:
        r_min = min(max(2.0 / math.sqrt(len(points)), 0.01), r_max / 2.0)
    if not 0.0 < r_min < r_max <= 1.0:
        raise ValueError("need 0 < r_min < r_max <= 1")
    if n_scales < 2:
        raise ValueError("need at least two scales")
    sizes = np.geomspace(r_min, r_max, n_scales)
    counts = box_pair_counts(points, sizes)
    log_r = np.log([r for r, _ in counts])
    log_s2 = np.log([max(s2, 1.0) for _, s2 in counts])
    slope = float(np.polyfit(log_r, log_s2, deg=1)[0])
    return float(min(max(slope, 1e-6), 2.0))
