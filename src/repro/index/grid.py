"""RDB-SC-Grid: the dynamic grid index over workers and tasks (Section 7).

The unit square is divided into square cells of side ``eta`` (chosen by the
Appendix I cost model).  Each cell tracks its resident tasks and workers
with aggregate bounds; for each cell holding workers, a ``tcell_list``
records which cells contain at least one task reachable by at least one
resident worker.  Valid-pair retrieval then only probes (worker-cell,
task-cell) pairs on those lists instead of the full ``O(m * n)`` cross
product — the Figure 17 comparison.

Cell-level pruning (Section 7.1): a target cell ``cell_j`` is skipped when
the earliest possible arrival ``d_min / v_max(cell_i)`` exceeds the latest
deadline in the *target* cell, or when the direction cone union of
``cell_i``'s workers cannot point at ``cell_j`` at all.  (The paper's text
compares against ``e_max(cell_i)``; the tasks being reached live in
``cell_j``, so we prune against ``e_max(cell_j)`` — a strict improvement
with identical safety.)
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.problem import ValidPair
from repro.core.task import SpatialTask
from repro.core.validity import ValidityRule
from repro.core.worker import MovingWorker
from repro.geometry.angles import bearing, enclosing_interval
from repro.geometry.points import Point
from repro.index.cell import GridCell

#: Smallest cached ``tcell_list`` considered for compaction — rebuilding
#: shorter lists costs more than the handful of dead probes they can hold.
COMPACT_MIN_MEMBERS = 4

#: Slack widening the vectorised group-reach screen's deadline comparison.
#: The ``np.hypot``-based distances can drift from their ``math.hypot``
#: twins by ulps; the slack turns any drift into a kept candidate — whose
#: membership the exact per-worker check then decides with scalar
#: arithmetic — and never a silently skipped reachable cell.
_SCREEN_SLACK = 1e-9

#: Smallest candidate-cell count worth the vectorised group-reach screen.
#: Below it (per-shard sub-grids, sparse instances) the scalar sweep over
#: cached cell-pair distances is faster than the array set-up; above it
#: (one big grid under heavy movement churn) the array screen wins.
_VECTOR_SCREEN_MIN = 96


def cell_coords(point: Point, eta: float, n_cols: int) -> Tuple[int, int]:
    """The ``(row, col)`` grid coordinates of the cell containing ``point``.

    Points on or past the unit-square border are clamped into the edge
    cells, exactly as :class:`RdbscGrid` places residents.  The helper is
    shared with :class:`repro.engine.sharding.ShardMap` so event routing
    and grid indexing can never disagree about cell membership.
    """
    col = min(int(point.x / eta), n_cols - 1)
    row = min(int(point.y / eta), n_cols - 1)
    return max(row, 0), max(col, 0)


def retrieve_pairs_without_index(
    tasks: Sequence[SpatialTask],
    workers: Sequence[MovingWorker],
    validity: Optional[ValidityRule] = None,
) -> List[ValidPair]:
    """Baseline ``O(m * n)`` valid-pair retrieval (no index)."""
    rule = validity if validity is not None else ValidityRule()
    pairs: List[ValidPair] = []
    for worker in workers:
        for task in tasks:
            arrival = rule.effective_arrival(worker, task)
            if arrival is not None:
                pairs.append(ValidPair(task.task_id, worker.worker_id, arrival))
    return pairs


class RdbscGrid:
    """The cost-model-based grid index.

    Args:
        eta: cell side length; the Appendix I cost model supplies good
            values (see :func:`repro.index.cost_model.optimal_eta`).
        validity: pair-validity policy used by retrieval and by the exact
            confirmation step of ``tcell_list`` construction.
        exact_confirm: when true (default), cells surviving the aggregate
            pruning are confirmed by an exact worker-task probe before
            entering a ``tcell_list``, keeping lists tight; when false the
            lists are supersets built from pruning alone (cheaper updates,
            more retrieval probes).
        backend: ``"python"`` probes surviving (worker cell, task cell)
            combinations with the scalar validity rule pair by pair;
            ``"numpy"`` batches each worker cell's probes through the
            :mod:`repro.fastpath` kernel (same pair set; ``pair_checks``
            counts whole batches instead of stopping at the first hit
            during exact confirmation, and retrieved pairs come out
            task-major within a batch).
        compact_stale_ratio: superset ``tcell_list`` maintenance never
            shrinks a cached list, so week-long churn accumulates members
            that only ever yield dead probes; when the fraction of such
            members reaches this ratio (and the list has at least
            ``COMPACT_MIN_MEMBERS`` members) the list is rebuilt tight at
            the next retrieval.  ``None`` disables compaction.
    """

    def __init__(
        self,
        eta: float,
        validity: Optional[ValidityRule] = None,
        exact_confirm: bool = True,
        backend: str = "python",
        compact_stale_ratio: Optional[float] = 0.5,
    ) -> None:
        if not 0.0 < eta <= 1.0:
            raise ValueError(f"eta must be in (0, 1], got {eta}")
        if backend not in ("python", "numpy"):
            raise ValueError(f"unknown backend {backend!r}")
        if compact_stale_ratio is not None and not 0.0 < compact_stale_ratio <= 1.0:
            raise ValueError(
                f"compact_stale_ratio must be in (0, 1] or None, "
                f"got {compact_stale_ratio}"
            )
        self.eta = eta
        self.validity = validity if validity is not None else ValidityRule()
        self.exact_confirm = exact_confirm
        self.backend = backend
        self.compact_stale_ratio = compact_stale_ratio
        self.n_cols = max(1, math.ceil(1.0 / eta))
        self._cells: Dict[int, GridCell] = {}
        self._task_cell: Dict[int, int] = {}
        self._worker_cell: Dict[int, int] = {}
        # tcell_list cache per worker cell, plus reverse references so task
        # removals can re-check exactly the lists that mention their cell.
        self._tcell: Dict[int, Set[int]] = {}
        self._rtcell: Dict[int, Set[int]] = {}
        # Cell-pair rectangle distances, keyed by ordered (cell id, cell
        # id).  A cell id fixes its rectangle for the grid's lifetime, so
        # entries are never invalidated — churn only changes *residents*.
        self._rect_dist: Dict[Tuple[int, int], float] = {}
        # Persistent valid-pair cache, keyed by (worker cell, task cell).
        # An entry holds the exact ValidPair list one retrieval probe of
        # that cell pair would produce; churn drops only the affected
        # entries (dirty tracking by deletion), so valid_pairs() re-probes
        # dirty entries and streams the rest straight from the cache.
        self._pair_cache: Dict[Tuple[int, int], List[ValidPair]] = {}
        #: Counters for the Figure 17 instrumentation; the pair-cache pair
        #: records the incremental engine's hit rate.
        self.stats: Dict[str, int] = {
            "cells_pruned_time": 0,
            "cells_pruned_angle": 0,
            "cells_confirmed": 0,
            "pair_checks": 0,
            "pair_cache_hits": 0,
            "pair_cache_misses": 0,
            "tcell_compactions": 0,
            "tcell_members_dropped": 0,
        }

    # ------------------------------------------------------------------ #
    # Cell addressing
    # ------------------------------------------------------------------ #

    def _coords_of(self, point: Point) -> Tuple[int, int]:
        return cell_coords(point, self.eta, self.n_cols)

    def _cell_id(self, row: int, col: int) -> int:
        return row * self.n_cols + col

    def cell_at(self, point: Point) -> GridCell:
        """The cell containing ``point`` (created on first touch)."""
        row, col = self._coords_of(point)
        cell_id = self._cell_id(row, col)
        cell = self._cells.get(cell_id)
        if cell is None:
            cell = GridCell(
                cell_id,
                row,
                col,
                Point(col * self.eta, row * self.eta),
                self.eta,
            )
            self._cells[cell_id] = cell
        return cell

    def cells(self) -> Iterator[GridCell]:
        """All non-empty materialised cells."""
        return iter(self._cells.values())

    def cell_pair_distance(self, a: GridCell, b: GridCell) -> float:
        """Cached minimum rectangle distance between two cells.

        Cell rectangles are fixed by cell id for the grid's lifetime —
        churn moves residents, never geometry — so every (cell, cell)
        distance is computed once (``math.hypot``, exactly as the uncached
        :meth:`repro.index.cell.GridCell.min_distance_to`) and then served
        from the cache by every pruning probe.
        """
        key = (
            (a.cell_id, b.cell_id)
            if a.cell_id <= b.cell_id
            else (b.cell_id, a.cell_id)
        )
        distance = self._rect_dist.get(key)
        if distance is None:
            distance = a.min_distance_to(b)
            self._rect_dist[key] = distance
        return distance

    @property
    def num_cells(self) -> int:
        """Count of currently materialised (non-empty) cells."""
        return len(self._cells)

    # ------------------------------------------------------------------ #
    # Dynamic maintenance (Section 7.2)
    # ------------------------------------------------------------------ #

    def insert_worker(self, worker: MovingWorker) -> None:
        """O(1) placement plus an incremental tcell_list extension.

        A new resident can only *extend* its cell's reachability, so a
        cached tcell_list is kept and widened with a cheap single-worker
        reachability sweep (no pair probes) instead of being rebuilt; the
        cell's cached pair entries are dropped (the new worker may add
        pairs to any of them).
        """
        if worker.worker_id in self._worker_cell:
            raise ValueError(f"worker {worker.worker_id} already indexed")
        cell = self.cell_at(worker.location)
        cell.add_worker(worker)
        self._worker_cell[worker.worker_id] = cell.cell_id
        self._dirty_worker_cell(cell.cell_id)
        self._extend_tcell_for_worker(cell.cell_id, worker)

    def remove_worker(self, worker_id: int) -> MovingWorker:
        """Remove a worker; the home cell's tcell_list is kept as a superset.

        Removal can only shrink reachability, so the cached list stays
        *safe* (possibly over-complete — retrieval probes are exact, so a
        stale member merely yields an empty probe).  Only the cell's
        cached pair entries are dropped: the removed worker's pairs must
        vanish from the next retrieval.
        """
        cell_id = self._worker_cell.pop(worker_id)
        worker = self._cells[cell_id].remove_worker(worker_id)
        self._dirty_worker_cell(cell_id)
        self._drop_if_empty(cell_id)
        return worker

    def update_worker(self, worker: MovingWorker) -> MovingWorker:
        """Refresh an indexed worker's record; returns the previous record.

        When the worker stays in its current grid cell this is an O(1)
        in-place swap (the cell's aggregates go stale, its cached pair
        entries are dropped, and the list is widened for the new record's
        reach); a cross-cell move falls back to remove + insert.

        Raises:
            KeyError: if the worker is not indexed.
        """
        cell_id = self._worker_cell[worker.worker_id]
        cell = self._cells[cell_id]
        row, col = self._coords_of(worker.location)
        if self._cell_id(row, col) == cell_id:
            old = cell.replace_worker(worker)
            self._dirty_worker_cell(cell_id)
            self._extend_tcell_for_worker(cell_id, worker)
            return old
        old = self.remove_worker(worker.worker_id)
        self.insert_worker(worker)
        return old

    def update_workers(self, workers: Sequence[MovingWorker]) -> None:
        """Batched :meth:`update_worker`: group same-cell refreshes per cell.

        Cross-cell moves fall back to remove + insert individually; the
        (typically dominant) same-cell refreshes are grouped so each
        touched cell pays its pair-entry invalidation and its tcell_list
        widening sweep *once* per batch instead of once per worker — the
        amortisation the engine's batched per-instant event application
        relies on.  Worker ids **must** be distinct within one batch —
        the engine's batch methods and the coalescer both guarantee it;
        a cross-cell duplicate would desynchronise the remove + insert
        bookkeeping.  The widened lists may differ from the sequential
        outcome in membership but remain safe supersets of the true
        reachability, so retrieval is unaffected.

        Raises:
            KeyError: if any worker is not indexed — checked for the
                whole batch before any record moves, so a bad batch
                cannot leave earlier cross-cell members removed but
                never re-inserted.
        """
        for worker in workers:
            if worker.worker_id not in self._worker_cell:
                raise KeyError(f"worker {worker.worker_id} not indexed")
        same_cell: Dict[int, List[MovingWorker]] = {}
        moved: List[MovingWorker] = []
        for worker in workers:
            cell_id = self._worker_cell[worker.worker_id]
            target = self._cell_id(*self._coords_of(worker.location))
            if target == cell_id:
                same_cell.setdefault(cell_id, []).append(worker)
            else:
                self.remove_worker(worker.worker_id)
                moved.append(worker)
        if moved:
            # Cross-cell arrivals grouped by destination, like fresh inserts.
            self.insert_workers(moved)
        for cell_id, group in same_cell.items():
            cell = self._cells[cell_id]
            for worker in group:
                cell.replace_worker(worker)
            self._dirty_worker_cell(cell_id)
            self._extend_tcell_for_workers(cell_id, group)

    def insert_workers(self, workers: Sequence[MovingWorker]) -> None:
        """Batched :meth:`insert_worker`: one widening sweep per cell.

        All workers are placed first; each destination cell then pays one
        pair-entry invalidation and one group widening sweep, instead of
        one per arrival.  Duplicate ids (within the batch or already
        indexed) raise ValueError before any placement, so the cached
        lists are never left un-widened for a half-placed batch.
        """
        fresh: Set[int] = set()
        for worker in workers:
            if worker.worker_id in self._worker_cell or worker.worker_id in fresh:
                raise ValueError(f"worker {worker.worker_id} already indexed")
            fresh.add(worker.worker_id)
        groups: Dict[int, List[MovingWorker]] = {}
        for worker in workers:
            cell = self.cell_at(worker.location)
            cell.add_worker(worker)
            self._worker_cell[worker.worker_id] = cell.cell_id
            groups.setdefault(cell.cell_id, []).append(worker)
        for cell_id, group in groups.items():
            self._dirty_worker_cell(cell_id)
            self._extend_tcell_for_workers(cell_id, group)

    def insert_task(self, task: SpatialTask) -> None:
        """Place a task and extend existing tcell_lists incrementally.

        Every cached worker-cell list is probed once for the task's cell —
        the paper's worst case of touching all workers, but amortised to a
        single cell-level check per worker cell.
        """
        self._place_task(task)
        self._link_task_cell(self._cells[self._task_cell[task.task_id]])

    def insert_tasks(self, tasks: Sequence[SpatialTask]) -> None:
        """Batched :meth:`insert_task`: one list-extension pass per cell.

        All tasks are placed first, then each *distinct* touched cell pays
        a single sweep over the cached worker-cell lists — k same-cell
        arrivals within one instant cost one cell-level check per worker
        cell instead of k.  The resulting lists are a safe superset of the
        sequential outcome (a grouped reachability check sees the cell's
        full new content, which can only admit more members), so exact
        retrieval probes return identical pairs either way.
        """
        touched: Dict[int, GridCell] = {}
        for task in tasks:
            self._place_task(task)
            cell = self._cells[self._task_cell[task.task_id]]
            touched[cell.cell_id] = cell
        for cell in touched.values():
            self._link_task_cell(cell)

    def _place_task(self, task: SpatialTask) -> None:
        """Put a task into its cell's records (no list maintenance yet)."""
        if task.task_id in self._task_cell:
            raise ValueError(f"task {task.task_id} already indexed")
        cell = self.cell_at(task.location)
        cell.add_task(task)
        self._task_cell[task.task_id] = cell.cell_id

    def _link_task_cell(self, cell: GridCell) -> None:
        """Extend cached worker-cell lists for a cell with new tasks."""
        for worker_cell_id in list(self._tcell.keys()):
            if cell.cell_id in self._tcell[worker_cell_id]:
                # Already listed (possibly from before the cell emptied and
                # was re-materialised): re-anchor the reverse reference so
                # later task churn keeps dirtying this entry.
                self._rtcell.setdefault(cell.cell_id, set()).add(worker_cell_id)
                continue
            if self._cell_reachable(self._cells[worker_cell_id], cell):
                self._tcell[worker_cell_id].add(cell.cell_id)
                self._rtcell.setdefault(cell.cell_id, set()).add(worker_cell_id)
        self._dirty_task_cell(cell.cell_id)

    def remove_task(self, task_id: int) -> SpatialTask:
        """Remove a task; lists referencing its cell are kept as supersets.

        Removal can only shrink reachability, so no list is re-checked —
        a member that lost its last reachable task merely yields an empty
        (and cached) probe on the next retrieval.  The referencing pair
        entries are dropped so the removed task's pairs vanish.
        """
        cell_id = self._task_cell.pop(task_id)
        cell = self._cells[cell_id]
        task = cell.remove_task(task_id)
        self._dirty_task_cell(cell_id)
        self._drop_if_empty(cell_id)
        return task

    def _drop_if_empty(self, cell_id: int) -> None:
        cell = self._cells.get(cell_id)
        if cell is not None and cell.is_empty:
            del self._cells[cell_id]
            self._invalidate_tcell(cell_id)
            for worker_cell_id in self._rtcell.pop(cell_id, set()):
                self._tcell.get(worker_cell_id, set()).discard(cell_id)
                self._pair_cache.pop((worker_cell_id, cell_id), None)

    def _invalidate_tcell(self, cell_id: int) -> None:
        """Worker-side dirtying: drop the cell's list and its pair entries."""
        stale = self._tcell.pop(cell_id, None)
        if stale:
            for target in stale:
                refs = self._rtcell.get(target)
                if refs is not None:
                    refs.discard(cell_id)
                self._pair_cache.pop((cell_id, target), None)

    def _dirty_task_cell(self, cell_id: int) -> None:
        """Task-side dirtying: drop every pair entry targeting ``cell_id``."""
        for worker_cell_id in self._rtcell.get(cell_id, ()):
            self._pair_cache.pop((worker_cell_id, cell_id), None)

    def _dirty_worker_cell(self, cell_id: int) -> None:
        """Worker-side dirtying: drop the cell's own pair entries.

        The tcell_list itself is kept — worker churn is handled by keeping
        lists as safe supersets (removals) and extending them with
        single-worker sweeps (insertions), never by a full rebuild.
        """
        for target in self._tcell.get(cell_id, ()):
            self._pair_cache.pop((cell_id, target), None)

    def _extend_tcell_for_worker(self, cell_id: int, worker: MovingWorker) -> None:
        """Widen a cached tcell_list with one new resident's own reach."""
        self._extend_tcell_for_workers(cell_id, (worker,))

    def _extend_tcell_for_workers(
        self, cell_id: int, workers: Sequence[MovingWorker]
    ) -> None:
        """Widen a cached tcell_list with a group of new residents' reach.

        Cells already listed stay (the old residents' reach is unchanged);
        cells off the list join when *any of the new workers alone* might
        serve a task there — a superset of the exact condition, kept
        honest by the exact retrieval probes.  One pass over the grid's
        cells covers the whole group, and the candidate cells are first
        screened with a *vectorised* group-aggregate time bound (the
        group's fastest worker, earliest departure, against the home
        cell's rectangle distances and the candidates' latest deadlines —
        the same Section 7.1 shape as :meth:`_cell_reachable`, evaluated
        for every candidate in a handful of array operations rather than
        a scalar loop per cell).  The screen's deadline comparison is
        widened by :data:`_SCREEN_SLACK`, so it can only over-accept
        relative to the scalar arithmetic; a kept candidate's membership
        is still decided by the exact per-worker check.  Only the
        surviving minority pays that per-worker work.  No-op without a
        cached list (it will be built tight, lazily, on the next
        retrieval).
        """
        cached = self._tcell.get(cell_id)
        if cached is None:
            return
        home = self._cells[cell_id]
        v_max = max(worker.velocity for worker in workers)
        depart_min = min(worker.depart_time for worker in workers)
        candidates = [
            cell
            for cell in self._cells.values()
            if cell.tasks and cell.cell_id not in cached
        ]
        if not candidates:
            return
        if len(candidates) < _VECTOR_SCREEN_MIN:
            # Scalar sweep over the cached cell-pair distances: cheaper
            # than array set-up for the short candidate lists of per-shard
            # sub-grids, and the distance lookup is now O(1) per pair.
            for candidate in candidates:
                d_min = self.cell_pair_distance(home, candidate)
                if d_min > 0.0:
                    if v_max <= 0.0:
                        continue
                    if depart_min + d_min / v_max > candidate.e_max:
                        continue  # even the group's best composite cannot arrive
                if any(
                    self._worker_reaches_cell(worker, candidate)
                    for worker in workers
                ):
                    cached.add(candidate.cell_id)
                    self._rtcell.setdefault(candidate.cell_id, set()).add(cell_id)
            return
        n = len(candidates)
        ox = np.fromiter((cell.origin.x for cell in candidates), float, n)
        oy = np.fromiter((cell.origin.y for cell in candidates), float, n)
        side = np.fromiter((cell.side for cell in candidates), float, n)
        e_max = np.fromiter((cell.e_max for cell in candidates), float, n)
        dx = np.maximum(
            np.maximum(ox - (home.origin.x + home.side), home.origin.x - (ox + side)),
            0.0,
        )
        dy = np.maximum(
            np.maximum(oy - (home.origin.y + home.side), home.origin.y - (oy + side)),
            0.0,
        )
        d_min = np.hypot(dx, dy)
        if v_max <= 0.0:
            keep = d_min <= 0.0
        else:
            keep = (d_min <= 0.0) | (
                depart_min + d_min / v_max <= e_max + _SCREEN_SLACK
            )
        for index in np.flatnonzero(keep).tolist():
            candidate = candidates[index]
            if any(
                self._worker_reaches_cell(worker, candidate) for worker in workers
            ):
                cached.add(candidate.cell_id)
                self._rtcell.setdefault(candidate.cell_id, set()).add(cell_id)

    def _worker_reaches_cell(self, worker: MovingWorker, task_cell: GridCell) -> bool:
        """Conservative single-worker version of :meth:`_cell_reachable`.

        Same time and direction pruning, applied to one worker's own
        speed, departure and cone against the cell's aggregate deadline —
        with no exact confirmation, so a ``True`` is a may-reach verdict.
        """
        x, y = worker.location.x, worker.location.y
        dx = max(
            task_cell.origin.x - x, x - (task_cell.origin.x + task_cell.side), 0.0
        )
        dy = max(
            task_cell.origin.y - y, y - (task_cell.origin.y + task_cell.side), 0.0
        )
        d_min = math.hypot(dx, dy)
        if worker.velocity <= 0.0 and d_min > 0.0:
            return False
        t_min = d_min / worker.velocity if worker.velocity > 0.0 else 0.0
        if worker.depart_time + t_min > task_cell.e_max:
            self.stats["cells_pruned_time"] += 1
            return False
        if d_min > 0.0 and not worker.cone.is_full():
            bearings = [
                bearing(worker.location, corner)
                for corner in task_cell.corners()
                if corner != worker.location
            ]
            if bearings and not worker.cone.overlaps(enclosing_interval(bearings)):
                self.stats["cells_pruned_angle"] += 1
                return False
        return True

    # ------------------------------------------------------------------ #
    # Cell-level pruning (Section 7.1)
    # ------------------------------------------------------------------ #

    def _cell_reachable(self, worker_cell: GridCell, task_cell: GridCell) -> bool:
        """Whether some worker of ``worker_cell`` may serve ``task_cell``."""
        if not worker_cell.workers or not task_cell.tasks:
            return False
        if worker_cell.cell_id == task_cell.cell_id:
            return (
                not self.exact_confirm
                or self._confirm_exact(worker_cell, task_cell)
            )
        v_max = worker_cell.v_max
        d_min = self.cell_pair_distance(worker_cell, task_cell)
        if v_max <= 0.0 and d_min > 0.0:
            return False
        t_min = d_min / v_max if v_max > 0.0 else 0.0
        depart_min = min(w.depart_time for w in worker_cell.workers.values())
        if depart_min + t_min > task_cell.e_max:
            self.stats["cells_pruned_time"] += 1
            return False
        if d_min > 0.0:
            # With a positive gap, the set of point-to-point directions from
            # worker_cell into task_cell is the angular extent of the convex
            # Minkowski difference, which is spanned by corner-to-corner
            # bearings; the cone union missing that span proves no worker
            # can head towards any task there.
            cone = worker_cell.cone_union
            if cone is not None and not cone.is_full():
                bearings = [
                    bearing(a, b)
                    for a in worker_cell.corners()
                    for b in task_cell.corners()
                    if a != b
                ]
                if bearings and not cone.overlaps(enclosing_interval(bearings)):
                    self.stats["cells_pruned_angle"] += 1
                    return False
        if not self.exact_confirm:
            return True
        return self._confirm_exact(worker_cell, task_cell)

    def _confirm_exact(self, worker_cell: GridCell, task_cell: GridCell) -> bool:
        """Exact confirmation: does any valid (worker, task) pair exist?

        The numpy backend filters the whole cell-pair product in one
        batch, then confirms candidates with the scalar rule (so its
        verdict matches the python backend exactly); it accounts for
        every probe in ``pair_checks`` instead of short-circuiting.
        """
        if self.backend == "numpy":
            from repro.fastpath.kernels import batch_any_valid

            workers = list(worker_cell.workers.values())
            tasks = list(task_cell.tasks.values())
            self.stats["pair_checks"] += len(workers) * len(tasks)
            if batch_any_valid(tasks, workers, self.validity):
                self.stats["cells_confirmed"] += 1
                return True
            return False
        for worker in worker_cell.workers.values():
            for task in task_cell.tasks.values():
                self.stats["pair_checks"] += 1
                if self.validity.is_valid(worker, task):
                    self.stats["cells_confirmed"] += 1
                    return True
        return False

    # ------------------------------------------------------------------ #
    # tcell_list construction and retrieval
    # ------------------------------------------------------------------ #

    def tcell_list(self, worker_cell: GridCell) -> Set[int]:
        """Reachable task-cell ids for a worker cell (cached).

        Fresh builds are tight (cell-level pruning plus optional exact
        confirmation); under churn the cached list is maintained as a
        *safe superset* — removals never shrink it, worker arrivals widen
        it with a single-worker sweep — so retrieval (whose per-entry
        probes are exact) stays correct while maintenance stays O(delta).
        """
        cached = self._tcell.get(worker_cell.cell_id)
        if cached is not None:
            return cached
        reachable: Set[int] = set()
        for candidate in self._cells.values():
            if candidate.tasks and self._cell_reachable(worker_cell, candidate):
                reachable.add(candidate.cell_id)
                self._rtcell.setdefault(candidate.cell_id, set()).add(
                    worker_cell.cell_id
                )
        self._tcell[worker_cell.cell_id] = reachable
        return reachable

    def build_all_tcell_lists(self) -> int:
        """Materialise every worker cell's tcell_list; returns list count.

        This is the construction step timed in Figure 17(a).
        """
        built = 0
        for cell in list(self._cells.values()):
            if cell.workers:
                self.tcell_list(cell)
                built += 1
        return built

    def _stale_members(self, cell_id: int, members: Set[int]) -> int:
        """How many of a cached list's members a tight rebuild would drop.

        A member is stale when its target cell no longer exists or holds
        no tasks any more — superset maintenance keeps both around
        forever.  A member whose cached probe came back empty counts only
        under ``exact_confirm``: that is what a tight rebuild confirms
        away; without exact confirmation the rebuild would re-admit the
        member (it has tasks and passes cell pruning), so counting it
        would make compaction fire on every retrieval and never shrink
        anything.
        """
        stale = 0
        for target_id in members:
            target = self._cells.get(target_id)
            if target is None or not target.tasks:
                stale += 1
            elif (
                self.exact_confirm
                and self._pair_cache.get((cell_id, target_id)) == []
            ):
                stale += 1
        return stale

    def _maybe_compact_tcell(self, worker_cell: GridCell) -> Set[int]:
        """Rebuild a worker cell's superset list tight when it goes stale.

        Called per retrieval with the cached list; when the stale-member
        ratio reaches ``compact_stale_ratio`` the list is rebuilt from the
        cell-level pruning (exactly like a fresh lazy build), reverse
        references and cached pair entries of dropped members are
        discarded, and kept members retain their cached probes.  Returns
        the (possibly rebuilt) list to iterate.
        """
        members = self.tcell_list(worker_cell)
        ratio = self.compact_stale_ratio
        if ratio is None or len(members) < COMPACT_MIN_MEMBERS:
            return members
        cell_id = worker_cell.cell_id
        stale = self._stale_members(cell_id, members)
        if stale < ratio * len(members):
            return members
        del self._tcell[cell_id]
        rebuilt = self.tcell_list(worker_cell)
        for target_id in members - rebuilt:
            refs = self._rtcell.get(target_id)
            if refs is not None:
                refs.discard(cell_id)
            self._pair_cache.pop((cell_id, target_id), None)
        self.stats["tcell_compactions"] += 1
        self.stats["tcell_members_dropped"] += len(members) - len(rebuilt)
        return rebuilt

    def valid_pairs(self) -> List[ValidPair]:
        """Index-assisted valid-pair retrieval (Figure 17(b) with index).

        Retrieval is incremental across calls: each (worker cell, task
        cell) entry of a ``tcell_list`` is probed at most once and cached;
        churn (insert/remove/update of tasks and workers) drops exactly the
        affected entries, so a retrieval after a small delta re-probes only
        the dirty entries and streams the rest from the cache.  The
        returned pair set is identical to a from-scratch retrieval on a
        freshly built grid — in both backends.  Superset lists whose
        stale-member ratio crossed ``compact_stale_ratio`` are rebuilt
        tight on the way (see :meth:`_maybe_compact_tcell`), so week-long
        churn does not accumulate dead probes.

        With ``backend="numpy"`` each dirty entry is probed by one batched
        kernel call instead of a scalar double loop; pairs are identical
        (the kernel confirms candidates through the scalar rule).
        """
        pairs: List[ValidPair] = []
        for worker_cell in list(self._cells.values()):
            if not worker_cell.workers:
                continue
            for target_id in sorted(self._maybe_compact_tcell(worker_cell)):
                cached = self._pair_cache.get((worker_cell.cell_id, target_id))
                if cached is not None:
                    self.stats["pair_cache_hits"] += 1
                    pairs.extend(cached)
                    continue
                target = self._cells.get(target_id)
                if target is None:
                    continue
                entry = self._probe_pairs(worker_cell, target)
                self._pair_cache[(worker_cell.cell_id, target_id)] = entry
                self.stats["pair_cache_misses"] += 1
                pairs.extend(entry)
        return pairs

    def _probe_pairs(self, worker_cell: GridCell, target: GridCell) -> List[ValidPair]:
        """Exact valid pairs between one worker cell and one task cell."""
        if self.backend == "numpy":
            from repro.fastpath.kernels import batch_valid_pairs

            tasks = list(target.tasks.values())
            workers = list(worker_cell.workers.values())
            if not tasks:
                return []
            self.stats["pair_checks"] += len(workers) * len(tasks)
            return batch_valid_pairs(tasks, workers, self.validity)
        entry: List[ValidPair] = []
        for worker in worker_cell.workers.values():
            for task in target.tasks.values():
                self.stats["pair_checks"] += 1
                arrival = self.validity.effective_arrival(worker, task)
                if arrival is not None:
                    entry.append(ValidPair(task.task_id, worker.worker_id, arrival))
        return entry

    # ------------------------------------------------------------------ #
    # Bulk loading
    # ------------------------------------------------------------------ #

    @classmethod
    def bulk_load(
        cls,
        tasks: Sequence[SpatialTask],
        workers: Sequence[MovingWorker],
        eta: float,
        validity: Optional[ValidityRule] = None,
        exact_confirm: bool = True,
        backend: str = "python",
    ) -> "RdbscGrid":
        """Build an index over a static snapshot of tasks and workers."""
        grid = cls(eta, validity, exact_confirm, backend)
        for task in tasks:
            grid.insert_task(task)
        for worker in workers:
            grid.insert_worker(worker)
        return grid
