"""JSON serialisation for problems, assignments and results.

Reproduction workflows need instances that travel: a failing seed exported
from a benchmark, a workload shared between machines, a regression corpus
checked into a repo.  The format is deliberately plain JSON — versioned,
human-inspectable, no pickle.

Round-trip guarantees (property-tested): tasks, workers, the validity rule
and the *valid-pair graph itself* (so arrivals pinned by an index or a
platform snapshot survive), and assignments.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.assignment import Assignment
from repro.core.problem import RdbscProblem, ValidPair
from repro.core.task import SpatialTask
from repro.core.validity import ValidityRule
from repro.core.worker import MovingWorker
from repro.geometry.angles import AngleInterval
from repro.geometry.points import Point

#: Format version written into every document.
FORMAT_VERSION = 1

PathLike = Union[str, Path]


# --------------------------------------------------------------------- #
# Encoding
# --------------------------------------------------------------------- #


def task_to_dict(task: SpatialTask) -> Dict[str, Any]:
    return {
        "task_id": task.task_id,
        "x": task.location.x,
        "y": task.location.y,
        "start": task.start,
        "end": task.end,
        "beta": task.beta,
    }


def worker_to_dict(worker: MovingWorker) -> Dict[str, Any]:
    return {
        "worker_id": worker.worker_id,
        "x": worker.location.x,
        "y": worker.location.y,
        "velocity": worker.velocity,
        "cone_lo": worker.cone.lo,
        "cone_width": worker.cone.width,
        "confidence": worker.confidence,
        "depart_time": worker.depart_time,
    }


def problem_to_dict(problem: RdbscProblem) -> Dict[str, Any]:
    """Full problem document, including the valid-pair graph."""
    return {
        "format_version": FORMAT_VERSION,
        "validity": {"allow_waiting": problem.validity.allow_waiting},
        "tasks": [task_to_dict(t) for t in problem.tasks],
        "workers": [worker_to_dict(w) for w in problem.workers],
        "pairs": [
            {"task_id": p.task_id, "worker_id": p.worker_id, "arrival": p.arrival}
            for p in sorted(
                problem.valid_pairs(), key=lambda p: (p.task_id, p.worker_id)
            )
        ],
    }


def assignment_to_dict(assignment: Assignment) -> Dict[str, Any]:
    return {
        "format_version": FORMAT_VERSION,
        "pairs": [
            {"task_id": task_id, "worker_id": worker_id}
            for task_id, worker_id in sorted(assignment.pairs())
        ],
    }


# --------------------------------------------------------------------- #
# Decoding
# --------------------------------------------------------------------- #


def _check_version(document: Dict[str, Any]) -> None:
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {version!r} (expected {FORMAT_VERSION})"
        )


def task_from_dict(data: Dict[str, Any]) -> SpatialTask:
    return SpatialTask(
        task_id=int(data["task_id"]),
        location=Point(float(data["x"]), float(data["y"])),
        start=float(data["start"]),
        end=float(data["end"]),
        beta=float(data["beta"]),
    )


def worker_from_dict(data: Dict[str, Any]) -> MovingWorker:
    return MovingWorker(
        worker_id=int(data["worker_id"]),
        location=Point(float(data["x"]), float(data["y"])),
        velocity=float(data["velocity"]),
        cone=AngleInterval(float(data["cone_lo"]), float(data["cone_width"])),
        confidence=float(data["confidence"]),
        depart_time=float(data["depart_time"]),
    )


def problem_from_dict(document: Dict[str, Any]) -> RdbscProblem:
    """Rebuild a problem, reusing the stored valid-pair graph verbatim."""
    _check_version(document)
    validity = ValidityRule(
        allow_waiting=bool(document["validity"]["allow_waiting"])
    )
    tasks = [task_from_dict(d) for d in document["tasks"]]
    workers = [worker_from_dict(d) for d in document["workers"]]
    pairs = [
        ValidPair(int(d["task_id"]), int(d["worker_id"]), float(d["arrival"]))
        for d in document["pairs"]
    ]
    return RdbscProblem(tasks, workers, validity, precomputed_pairs=pairs)


def assignment_from_dict(document: Dict[str, Any]) -> Assignment:
    _check_version(document)
    return Assignment.from_pairs(
        [(int(d["task_id"]), int(d["worker_id"])) for d in document["pairs"]]
    )


# --------------------------------------------------------------------- #
# File helpers
# --------------------------------------------------------------------- #


def save_problem(problem: RdbscProblem, path: PathLike) -> None:
    """Write a problem document to ``path`` as JSON."""
    Path(path).write_text(json.dumps(problem_to_dict(problem), indent=1))


def load_problem(path: PathLike) -> RdbscProblem:
    """Read a problem document written by :func:`save_problem`."""
    return problem_from_dict(json.loads(Path(path).read_text()))


def save_assignment(assignment: Assignment, path: PathLike) -> None:
    """Write an assignment document to ``path`` as JSON."""
    Path(path).write_text(json.dumps(assignment_to_dict(assignment), indent=1))


def load_assignment(path: PathLike) -> Assignment:
    """Read an assignment document written by :func:`save_assignment`."""
    return assignment_from_dict(json.loads(Path(path).read_text()))
