"""The NP-hardness reduction of Lemma 3.2 and number-partition solvers."""

from repro.nphard.number_partition import (
    build_rdbsc_instance,
    discrepancy,
    greedy_partition,
    partition_from_assignment,
    solve_partition_exact,
)

__all__ = [
    "build_rdbsc_instance",
    "discrepancy",
    "greedy_partition",
    "partition_from_assignment",
    "solve_partition_exact",
]
