"""The Lemma 3.2 reduction: number partitioning -> RDB-SC.

Given positive integers ``a_1..a_N``, the reduction builds an RDB-SC
instance with two tasks at the ends of a segment and all workers strictly
between them, so that every approach ray coincides and the total STD is
identically zero for every assignment (we pin ``beta = 1`` so only the
degenerate spatial diversity counts).  Worker confidences are chosen as
``p_i = 1 - e^{-a_i / a_max}``, making the log-reliability weight of worker
``i`` exactly ``a_i / a_max`` — maximising the minimum task reliability is
then exactly minimising the partition discrepancy.  (The paper prints
``p_i = 1 - e^{a'_i}``, which would be negative; the sign is an obvious
typo and the proof's algebra uses the corrected form.)

The module also ships exact and greedy partition solvers so tests can close
the loop: the optimal RDB-SC assignment of a reduced instance must induce
an optimal partition.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import List, Sequence, Tuple

from repro.core.assignment import Assignment
from repro.core.problem import RdbscProblem
from repro.core.task import SpatialTask
from repro.core.worker import MovingWorker
from repro.geometry.angles import AngleInterval
from repro.geometry.points import Point

#: Task ids used by the reduction.
LEFT_TASK_ID = 0
RIGHT_TASK_ID = 1


def build_rdbsc_instance(values: Sequence[int]) -> RdbscProblem:
    """Construct the two-task collinear RDB-SC instance for ``values``.

    Raises:
        ValueError: if ``values`` is empty or contains non-positive numbers.
    """
    if not values:
        raise ValueError("the number-partition instance must be non-empty")
    if any(v <= 0 for v in values):
        raise ValueError("number partitioning is defined over positive integers")
    a_max = max(values)
    tasks = [
        SpatialTask(LEFT_TASK_ID, Point(0.0, 0.5), start=0.0, end=100.0, beta=1.0),
        SpatialTask(RIGHT_TASK_ID, Point(1.0, 0.5), start=0.0, end=100.0, beta=1.0),
    ]
    workers: List[MovingWorker] = []
    n = len(values)
    for i, value in enumerate(values):
        confidence = 1.0 - math.exp(-value / a_max)
        # Evenly spaced strictly between the two tasks, all on the segment.
        x = (i + 1) / (n + 1)
        workers.append(
            MovingWorker(
                worker_id=i,
                location=Point(x, 0.5),
                velocity=1.0,
                cone=AngleInterval.full_circle(),
                confidence=confidence,
                depart_time=0.0,
            )
        )
    return RdbscProblem(tasks, workers)


def partition_from_assignment(
    values: Sequence[int], assignment: Assignment
) -> Tuple[List[int], List[int]]:
    """Recover the two index sets from an assignment of the reduced instance.

    Workers assigned to the left task form subset 1, the rest subset 2
    (unassigned workers — impossible for solvers on this instance, but
    handled — also land in subset 2).
    """
    left: List[int] = []
    right: List[int] = []
    for i in range(len(values)):
        if assignment.task_of(i) == LEFT_TASK_ID:
            left.append(i)
        else:
            right.append(i)
    return left, right


def discrepancy(values: Sequence[int], left_indices: Sequence[int]) -> int:
    """``|sum(A_1) - sum(A_2)|`` for the split induced by ``left_indices``."""
    left_set = set(left_indices)
    left_sum = sum(v for i, v in enumerate(values) if i in left_set)
    return abs(sum(values) - 2 * left_sum)


def solve_partition_exact(values: Sequence[int]) -> Tuple[int, List[int]]:
    """Minimum discrepancy by enumeration (instances up to ~24 items).

    Returns ``(discrepancy, indices of one optimal subset)``.

    Raises:
        ValueError: for empty or oversized instances.
    """
    n = len(values)
    if n == 0:
        raise ValueError("cannot partition an empty multiset")
    if n > 24:
        raise ValueError("exact partitioning refused beyond 24 items (2^n search)")
    best_d = None
    best: List[int] = []
    indices = range(n)
    for size in range(n // 2 + 1):
        for subset in combinations(indices, size):
            d = discrepancy(values, subset)
            if best_d is None or d < best_d:
                best_d = d
                best = list(subset)
                if best_d == 0:
                    return 0, best
    assert best_d is not None
    return best_d, best


def greedy_partition(values: Sequence[int]) -> Tuple[int, List[int]]:
    """Largest-first greedy partitioning (the classical heuristic).

    Returns ``(discrepancy, indices of subset 1)``.
    """
    if not values:
        raise ValueError("cannot partition an empty multiset")
    order = sorted(range(len(values)), key=lambda i: -values[i])
    sums = [0, 0]
    sides: Tuple[List[int], List[int]] = ([], [])
    for i in order:
        side = 0 if sums[0] <= sums[1] else 1
        sums[side] += values[i]
        sides[side].append(i)
    return abs(sums[0] - sums[1]), sorted(sides[0])
