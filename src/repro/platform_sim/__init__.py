"""A gMission-style spatial-crowdsourcing platform simulator (Section 8.4).

The paper's final experiment runs its algorithms on a real deployment: 10
workers, 5 nearby task sites (about two walking minutes apart), 15-minute
task windows, and the Figure 10 *incremental updating strategy* re-assigning
available workers every ``t_interval`` minutes.  Humans are not available to
a reproduction, so this package simulates the deployment: workers travel,
answer (successfully with probability equal to their confidence), become
available again, and the platform periodically re-plans.

``ratings``
    Peer-rating bootstrap of worker reliabilities (trimmed-mean photo
    scores, Section 8.1).
``accuracy``
    The answer accuracy/error model ``beta * dtheta/pi + (1-beta) * dt/(e-s)``.
``events``
    Worker/task runtime records and the answer log.
``incremental``
    One Figure 10 update step: build the sub-instance of available workers
    and open tasks (with committed contributions pinned in), solve, dispatch.
``simulator``
    The clocked simulation loop and its Figure 18 metrics.
"""

from repro.platform_sim.accuracy import answer_accuracy, answer_error
from repro.platform_sim.events import Answer, TaskRecord, WorkerRuntime
from repro.platform_sim.incremental import incremental_update
from repro.platform_sim.ratings import bootstrap_reliabilities
from repro.platform_sim.reputation import BetaReputation, ReputationTracker
from repro.platform_sim.simulator import (
    PlatformConfig,
    PlatformRunResult,
    PlatformSimulator,
)

__all__ = [
    "Answer",
    "BetaReputation",
    "PlatformConfig",
    "PlatformRunResult",
    "PlatformSimulator",
    "ReputationTracker",
    "TaskRecord",
    "WorkerRuntime",
    "answer_accuracy",
    "answer_error",
    "bootstrap_reliabilities",
    "incremental_update",
]
