"""The answer accuracy model of the customised gMission platform.

Section 8.1: when worker ``w_j`` answers task ``t_i``, the platform records
the facing-direction error ``dtheta`` (against the requested angle) and the
timing error ``dt`` (against the requested time), and computes::

    beta_i * dtheta / pi  +  (1 - beta_i) * dt / (e_i - s_i)

The paper calls this quantity "accuracy", but it is zero for a perfect
answer and grows with error — an error score.  We expose it under both
readings: :func:`answer_error` (the paper's formula verbatim) and
:func:`answer_accuracy` (its complement in ``[0, 1]``, where 1 is perfect).
A task's score is the average over its answers.
"""

from __future__ import annotations

import math
from typing import Sequence


def answer_error(
    angle_error: float,
    time_error: float,
    beta: float,
    period: float,
) -> float:
    """The paper's Section 8.1 formula (0 = perfect, 1 = worst).

    Args:
        angle_error: ``dtheta`` in ``[0, pi]``.
        time_error: ``dt`` in ``[0, period)``.
        beta: the task's balance weight in ``[0, 1]``.
        period: the task's valid-period length ``e - s`` (positive).

    Raises:
        ValueError: when any argument leaves its documented range.
    """
    if not 0.0 <= angle_error <= math.pi + 1e-12:
        raise ValueError(f"angle_error must be in [0, pi], got {angle_error}")
    if period <= 0.0:
        raise ValueError(f"period must be positive, got {period}")
    if not 0.0 <= time_error < period + 1e-12:
        raise ValueError(f"time_error must be in [0, period), got {time_error}")
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"beta must be in [0, 1], got {beta}")
    return beta * (angle_error / math.pi) + (1.0 - beta) * (time_error / period)


def answer_accuracy(
    angle_error: float,
    time_error: float,
    beta: float,
    period: float,
) -> float:
    """``1 - answer_error``: 1 for a perfect answer, 0 for the worst."""
    return 1.0 - answer_error(angle_error, time_error, beta, period)


def task_accuracy(accuracies: Sequence[float]) -> float:
    """A task's accuracy: the average over its answers' accuracies.

    Raises:
        ValueError: with no answers (the task has no defined accuracy).
    """
    if not accuracies:
        raise ValueError("task_accuracy() needs at least one answer")
    return sum(accuracies) / len(accuracies)
