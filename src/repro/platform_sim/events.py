"""Runtime records of the platform simulation.

The simulator is clocked by the incremental-update period rather than a
full event queue — assignments only change at update instants (Figure 10),
so the state between updates is fully described by each worker's current
trip and each task's answer log.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.diversity import WorkerProfile
from repro.core.task import SpatialTask
from repro.core.worker import MovingWorker
from repro.geometry.points import Point


class WorkerStatus(enum.Enum):
    """What a platform worker is currently doing."""

    AVAILABLE = "available"
    TRAVELLING = "travelling"


@dataclass(frozen=True)
class Answer:
    """One completed task attempt.

    Attributes:
        worker_id / task_id: who answered what.
        angle: approach bearing from the task towards the worker's origin
            (feeds spatial diversity of the collected answers).
        time: clock time of the answer.
        success: whether the attempt produced a usable answer (drawn with
            the worker's confidence).
    """

    worker_id: int
    task_id: int
    angle: float
    time: float
    success: bool


@dataclass
class WorkerRuntime:
    """A worker's mutable platform state.

    ``worker`` is re-created on every relocation (frozen model object);
    the runtime wrapper tracks the trip in progress.
    """

    worker: MovingWorker
    status: WorkerStatus = WorkerStatus.AVAILABLE
    destination_task_id: Optional[int] = None
    arrival_time: Optional[float] = None
    origin: Optional[Point] = None

    def dispatch(self, task_id: int, arrival_time: float) -> None:
        """Send the worker towards a task."""
        if self.status is not WorkerStatus.AVAILABLE:
            raise ValueError(f"worker {self.worker.worker_id} is not available")
        self.status = WorkerStatus.TRAVELLING
        self.destination_task_id = task_id
        self.arrival_time = arrival_time
        self.origin = self.worker.location

    def complete_trip(self, location: Point, now: float) -> None:
        """Arrive: relocate the worker and make it available again."""
        if self.status is not WorkerStatus.TRAVELLING:
            raise ValueError(f"worker {self.worker.worker_id} is not travelling")
        self.worker = self.worker.moved_to(location, now)
        self.status = WorkerStatus.AVAILABLE
        self.destination_task_id = None
        self.arrival_time = None
        self.origin = None


@dataclass
class TaskRecord:
    """A task's platform lifecycle: spawn, assignments, answers, expiry."""

    task: SpatialTask
    answers: List[Answer] = field(default_factory=list)
    #: ids of workers ever dispatched to this task (for the final metrics).
    dispatched_worker_ids: List[int] = field(default_factory=list)
    #: the dispatched workers' profiles (angle, planned arrival, confidence)
    #: captured at dispatch time — the Figure 18 metrics are computed from
    #: these, mirroring the assignment-based metrics of the other figures.
    dispatched_profiles: List["WorkerProfile"] = field(default_factory=list)

    @property
    def is_answered(self) -> bool:
        return any(a.success for a in self.answers)

    def open_at(self, now: float) -> bool:
        """Open means not yet expired (workers may still be en route).

        Routed through :meth:`repro.core.task.SpatialTask.expired_at` so
        the deadline boundary (inclusive: ``end == now`` is still open)
        cannot drift from the session's and engine's expiry sweeps.
        """
        return not self.task.expired_at(now)
