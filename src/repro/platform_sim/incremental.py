"""One step of the incremental updating strategy (Figure 10).

At each update instant the platform gathers the *available* workers and the
*open* tasks, and re-runs an RDB-SC solver over them.  Per the paper, the
reliability and diversity of a task must account for the answers already
received and the workers already en route (``A`` and ``S_c`` in Figure 10's
line 6).  We realise that by pinning each committed contribution into the
sub-instance as a *virtual worker*: a worker whose only valid pair is its
own task, with the committed approach angle, arrival time and confidence
(see :func:`repro.engine.engine.virtual_worker`).  Solvers then optimise
the marginal value of the genuinely free workers on top of what each task
already has — no solver changes needed.

This module is the *one-shot functional form* of that step, for callers
holding plain task/worker lists.  The clocked simulator no longer builds
its sub-instances here: it feeds churn events to an
:class:`repro.engine.engine.AssignmentEngine`, whose ``epoch(now, pinned,
forbidden)`` realises the same pinning on top of incrementally maintained
state.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.algorithms.base import RngLike, Solver
from repro.core.diversity import WorkerProfile
from repro.core.problem import RdbscProblem, ValidPair
from repro.core.task import SpatialTask
from repro.core.validity import ValidityRule
from repro.core.worker import MovingWorker
from repro.engine.engine import virtual_worker


def build_update_problem(
    open_tasks: Sequence[SpatialTask],
    available_workers: Sequence[MovingWorker],
    committed: Dict[int, List[WorkerProfile]],
    now: float,
    validity: ValidityRule,
    forbidden_pairs: Optional[Set[Tuple[int, int]]] = None,
) -> RdbscProblem:
    """The sub-instance one update step solves.

    Real workers are re-anchored to depart *now* from their current spot;
    committed contributions become degree-one virtual workers (negative
    ids, so they never collide with platform worker ids).
    ``forbidden_pairs`` — ``(worker_id, task_id)`` combinations the platform
    refuses to re-issue (a user is never pushed the same question twice) —
    are excluded from the edge set.
    """
    tasks = list(open_tasks)
    workers: List[MovingWorker] = []
    pairs: List[ValidPair] = []
    forbidden = forbidden_pairs or set()

    for worker in available_workers:
        re_anchored = worker.moved_to(worker.location, now)
        workers.append(re_anchored)
        for task in tasks:
            if (re_anchored.worker_id, task.task_id) in forbidden:
                continue
            arrival = validity.effective_arrival(re_anchored, task)
            if arrival is not None:
                pairs.append(ValidPair(task.task_id, re_anchored.worker_id, arrival))

    next_virtual = -1
    task_by_id = {t.task_id: t for t in tasks}
    for task_id in sorted(committed.keys()):
        task = task_by_id.get(task_id)
        if task is None:
            continue  # contribution to an already-expired task
        for profile in committed[task_id]:
            worker, pair = virtual_worker(task, profile, next_virtual)
            workers.append(worker)
            pairs.append(pair)
            next_virtual -= 1

    return RdbscProblem(tasks, workers, validity, precomputed_pairs=pairs)


def incremental_update(
    open_tasks: Sequence[SpatialTask],
    available_workers: Sequence[MovingWorker],
    committed: Dict[int, List[WorkerProfile]],
    solver: Solver,
    now: float,
    validity: ValidityRule,
    rng: RngLike = None,
    forbidden_pairs: Optional[Set[Tuple[int, int]]] = None,
) -> Dict[int, int]:
    """Run one Figure 10 update; returns ``{real worker id -> task id}``.

    Only genuinely available platform workers appear in the result; the
    virtual committed workers are solver bookkeeping.
    """
    if not open_tasks or not available_workers:
        return {}
    problem = build_update_problem(
        open_tasks, available_workers, committed, now, validity, forbidden_pairs
    )
    result = solver.solve(problem, rng)
    dispatch: Dict[int, int] = {}
    for task_id, worker_id in result.assignment.pairs():
        if worker_id >= 0:
            dispatch[worker_id] = task_id
    return dispatch
