"""Peer-rating bootstrap of worker reliabilities (Section 8.1).

The gMission deployment derives each user's reliability from peer ratings
of their photos: every photo's score drops its highest and lowest ratings
and averages the rest; a user's score is the mean over their photos; the
normalised score becomes the reliability ``p``.  The simulator reproduces
that pipeline over synthetic latent qualities so platform runs use
realistically heterogeneous confidences rather than a parametric range.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.algorithms.base import RngLike, make_rng
from repro.utils.stats import trimmed_mean

#: Rating scale used by the simulated peers.
RATING_MIN = 0.0
RATING_MAX = 10.0


def rate_photo(
    latent_quality: float,
    n_raters: int,
    rng: RngLike = None,
    rater_noise: float = 1.0,
) -> float:
    """One photo's peer score: trimmed mean of noisy quality readings.

    Args:
        latent_quality: the photo's true quality on the rating scale.
        n_raters: number of peer ratings (at least 1).
        rater_noise: per-rater Gaussian noise sigma.
    """
    if n_raters < 1:
        raise ValueError("a photo needs at least one rater")
    generator = make_rng(rng)
    ratings = np.clip(
        generator.normal(latent_quality, rater_noise, size=n_raters),
        RATING_MIN,
        RATING_MAX,
    )
    return trimmed_mean([float(r) for r in ratings], trim_each_side=1)


def bootstrap_reliabilities(
    n_workers: int,
    rng: RngLike = None,
    photos_per_worker: Tuple[int, int] = (3, 12),
    raters_per_photo: Tuple[int, int] = (3, 8),
    quality_range: Tuple[float, float] = (5.0, 9.5),
    floor: float = 0.5,
) -> List[float]:
    """Reliabilities for ``n_workers`` via the full peer-rating pipeline.

    Each worker gets a latent quality; each of their photos is scored by a
    trimmed mean of noisy peer ratings; the worker's mean photo score,
    normalised by the scale maximum, becomes ``p`` (clamped to at least
    ``floor`` — the deployment only kept active, reasonably rated users).
    """
    if n_workers < 0:
        raise ValueError("n_workers must be non-negative")
    generator = make_rng(rng)
    reliabilities: List[float] = []
    for _ in range(n_workers):
        quality = float(generator.uniform(*quality_range))
        n_photos = int(generator.integers(photos_per_worker[0], photos_per_worker[1] + 1))
        scores = [
            rate_photo(
                quality,
                int(generator.integers(raters_per_photo[0], raters_per_photo[1] + 1)),
                generator,
            )
            for _ in range(n_photos)
        ]
        score = sum(scores) / len(scores)
        reliabilities.append(min(max(score / RATING_MAX, floor), 1.0))
    return reliabilities
