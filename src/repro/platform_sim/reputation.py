"""Reputation learning: updating worker confidences from outcomes.

The paper bootstraps worker reliabilities from peer ratings and leaves
"accuracy control ... as our future work" (Section 8.1).  This module
implements the natural version of that future work: a Beta-Bernoulli
reputation per worker.  Each worker's confidence is the posterior mean of a
Beta distribution over their success probability, updated after every
answer; the peer-rating score seeds the prior.

Used by the platform simulator (optionally) so that long deployments
converge from noisy peer-rating priors to behaviourally accurate
confidences — and testable on its own as a plain online estimator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.core.worker import MovingWorker


@dataclass
class BetaReputation:
    """A Beta(alpha, beta) posterior over one worker's success probability.

    Attributes:
        alpha: successes + prior pseudo-successes.
        beta: failures + prior pseudo-failures.
    """

    alpha: float = 1.0
    beta: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha <= 0.0 or self.beta <= 0.0:
            raise ValueError("Beta parameters must be positive")

    @classmethod
    def from_prior_mean(cls, mean: float, strength: float = 10.0) -> "BetaReputation":
        """A prior centred on ``mean`` with ``strength`` pseudo-observations.

        This is how a peer-rating score seeds a worker's reputation: the
        score becomes the prior mean, the rating volume its strength.

        Raises:
            ValueError: for a mean outside (0, 1) or non-positive strength.
        """
        if not 0.0 < mean < 1.0:
            raise ValueError(f"prior mean must be in (0, 1), got {mean}")
        if strength <= 0.0:
            raise ValueError(f"strength must be positive, got {strength}")
        return cls(alpha=mean * strength, beta=(1.0 - mean) * strength)

    @property
    def mean(self) -> float:
        """Posterior mean — the confidence estimate."""
        return self.alpha / (self.alpha + self.beta)

    @property
    def observations(self) -> float:
        """Total (pseudo-)observation count; grows with evidence."""
        return self.alpha + self.beta

    def observe(self, success: bool) -> None:
        """Record one answer outcome."""
        if success:
            self.alpha += 1.0
        else:
            self.beta += 1.0


class ReputationTracker:
    """Per-worker reputations with confidence read-back.

    Args:
        prior_strength: pseudo-observation weight of each worker's seed
            confidence.  Small values adapt fast; large values trust the
            peer-rating bootstrap longer.
    """

    def __init__(self, prior_strength: float = 10.0) -> None:
        if prior_strength <= 0.0:
            raise ValueError("prior_strength must be positive")
        self.prior_strength = prior_strength
        self._reputations: Dict[int, BetaReputation] = {}

    def seed(self, worker_id: int, confidence: float) -> None:
        """Initialise a worker's reputation from a bootstrap confidence.

        Confidences at the closed ends of [0, 1] are nudged inside: a Beta
        prior cannot express certainty, and neither should a reputation.
        """
        mean = min(max(confidence, 1e-3), 1.0 - 1e-3)
        self._reputations[worker_id] = BetaReputation.from_prior_mean(
            mean, self.prior_strength
        )

    def seed_workers(self, workers: Iterable[MovingWorker]) -> None:
        """Seed every worker from its model confidence."""
        for worker in workers:
            self.seed(worker.worker_id, worker.confidence)

    def observe(self, worker_id: int, success: bool) -> None:
        """Record an answer outcome (auto-seeds unknown workers at 0.5)."""
        if worker_id not in self._reputations:
            self.seed(worker_id, 0.5)
        self._reputations[worker_id].observe(success)

    def confidence(self, worker_id: int, default: float = 0.5) -> float:
        """Current confidence estimate for a worker."""
        reputation = self._reputations.get(worker_id)
        return reputation.mean if reputation is not None else default

    def reputation(self, worker_id: int) -> Optional[BetaReputation]:
        """The raw posterior, or ``None`` if never seeded."""
        return self._reputations.get(worker_id)

    def refreshed_worker(self, worker: MovingWorker) -> MovingWorker:
        """A copy of ``worker`` carrying the learned confidence."""
        learned = self.confidence(worker.worker_id, default=worker.confidence)
        return MovingWorker(
            worker.worker_id,
            worker.location,
            worker.velocity,
            worker.cone,
            learned,
            worker.depart_time,
        )
