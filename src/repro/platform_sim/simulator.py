"""The clocked platform simulation (Section 8.4 / Figure 18).

The deployment being simulated: ``n_sites`` task sites a couple of walking
minutes apart, ``n_workers`` workers with peer-rating-derived
reliabilities, tasks with 15-minute windows spawning at the sites, and the
Figure 10 incremental updating strategy re-planning every ``t_interval``
minutes with a pluggable RDB-SC solver.

The simulator owns only the *physics*: trips, answer attempts (succeeding
with probability equal to the worker's true confidence), reputation
updates, and the Figure 18 metrics log.  All assignment state lives in an
:class:`repro.engine.engine.AssignmentEngine`: task spawns and trip
completions are emitted as typed engine events through one time-ordered
:class:`repro.engine.scheduler.EventQueue`, and every re-planning instant
is an engine epoch with the committed contributions pinned in (``A`` /
``S_c`` of Figure 10's line 6) and already-issued (worker, task) pairs
forbidden.  A dispatched worker is *held* in place rather than removed —
solver-invisible while travelling, released with one in-place update at
the task site when the trip completes — so dispatch causes no index
churn and warm-mode epochs keep their plan.  Between update instants nothing re-plans: travelling workers
finish their trips and wait at the site until the next epoch makes them
available again.  The Figure 18 metrics — minimum reliability and total
expected STD over tasks that received workers — are computed from the
dispatched workers' profiles, matching the assignment-based metrics used in
every other experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.algorithms.base import RngLike, Solver, make_rng
from repro.core.diversity import WorkerProfile, approach_angle
from repro.core.reliability import log_to_reliability
from repro.core.expected import expected_std
from repro.core.task import SpatialTask
from repro.core.validity import ValidityRule
from repro.core.worker import MovingWorker
from repro.engine.engine import AssignmentEngine
from repro.engine.events import EpochTick, TaskArrive, WorkerUpdate
from repro.engine.metrics import EngineMetrics
from repro.engine.scheduler import EventQueue, epoch_ticks
from repro.geometry.angles import AngleInterval
from repro.geometry.points import Point
from repro.platform_sim.events import Answer, TaskRecord
from repro.platform_sim.ratings import bootstrap_reliabilities


@dataclass(frozen=True)
class PlatformConfig:
    """Deployment parameters (defaults mirror the paper's Section 8.1 setup).

    Attributes:
        n_workers: platform users (paper: 10 hired active users).
        n_sites: task sites (paper: 5 nearby sites).
        sim_minutes: experiment length.
        t_interval: minutes between incremental updates (Figure 18's x-axis).
        task_open_minutes: task window length (paper: 15 minutes).
        task_spawn_every: per-site spawn period for new tasks.
        site_radius: circumradius of the regular site polygon, in unit-square
            units; with ``walk_minutes_between_sites`` it fixes worker speed
            so adjacent sites are about two minutes apart, as in the paper.
        walk_minutes_between_sites: walking time between adjacent sites.
        answer_minutes: time spent producing the answer after arrival.
        beta: spatial/temporal weight of the platform's tasks.
        learn_reputations: when true, worker confidences are re-estimated
            online from answer outcomes with a Beta-Bernoulli reputation
            (the paper's "accuracy control" future work); planning then
            uses the learned confidences instead of the static bootstrap.
    """

    n_workers: int = 10
    n_sites: int = 5
    sim_minutes: float = 60.0
    t_interval: float = 1.0
    task_open_minutes: float = 15.0
    task_spawn_every: float = 7.5
    site_radius: float = 0.12
    walk_minutes_between_sites: float = 2.0
    answer_minutes: float = 0.5
    beta: float = 0.5
    learn_reputations: bool = False

    def __post_init__(self) -> None:
        if self.n_workers < 1 or self.n_sites < 1:
            raise ValueError("need at least one worker and one site")
        if self.t_interval <= 0.0 or self.sim_minutes <= 0.0:
            raise ValueError("t_interval and sim_minutes must be positive")
        if self.task_open_minutes <= 0.0 or self.task_spawn_every <= 0.0:
            raise ValueError("task timing parameters must be positive")

    def site_locations(self) -> List[Point]:
        """The sites: a regular polygon around the square centre."""
        sites: List[Point] = []
        for k in range(self.n_sites):
            angle = 2.0 * math.pi * k / self.n_sites
            sites.append(
                Point(
                    0.5 + self.site_radius * math.cos(angle),
                    0.5 + self.site_radius * math.sin(angle),
                )
            )
        return sites

    def worker_speed(self) -> float:
        """Speed making adjacent sites ``walk_minutes_between_sites`` apart."""
        if self.n_sites == 1:
            return self.site_radius / max(self.walk_minutes_between_sites, 1e-9)
        edge = 2.0 * self.site_radius * math.sin(math.pi / self.n_sites)
        return edge / self.walk_minutes_between_sites


@dataclass
class PlatformRunResult:
    """Outcome of one simulated deployment.

    ``min_reliability`` / ``total_std`` are the Figure 18 series; the rest
    are behavioural counters for tests and reporting.
    """

    min_reliability: float
    total_std: float
    tasks_spawned: int
    tasks_dispatched: int
    tasks_answered: int
    dispatches: int
    answers: List[Answer] = field(default_factory=list)
    #: The engine's lifetime counters and per-epoch records for the run
    #: (event counts, pair-cache hit rate, epoch costs).
    engine_metrics: Optional[EngineMetrics] = None

    @property
    def success_rate(self) -> float:
        """Fraction of answer attempts that succeeded."""
        if not self.answers:
            return 0.0
        return sum(1 for a in self.answers if a.success) / len(self.answers)


class PlatformSimulator:
    """Runs one deployment under a given solver and update interval.

    Args:
        config: deployment parameters.
        backend: forwarded to the :class:`AssignmentEngine` that owns the
            assignment state — ``"python"`` or ``"numpy"`` dirty-pair
            probing; identical dispatches either way.
        solve_mode: forwarded to the engine — ``"warm"`` repairs the
            previous epoch's plan during quiet update instants (see
            :mod:`repro.solvers.incremental`).  Dispatches *hold* workers
            in place (no index churn) and trip completions are in-place
            updates, so the per-epoch churn is just the holds, releases
            and re-anchored idle workers — small enough that warm mode
            genuinely engages on deployment workloads.
        warm_churn_threshold: churn fraction above which a warm-mode
            epoch falls back to a full solve.
        solve_executor: forwarded to the engine — parallelise each
            re-planning instant's solve (``None``, a pinned-process count,
            or a :class:`repro.engine.parallel.ParallelSolveExecutor`).
            Dispatches are bit-identical to the serial simulator.  An
            executor *instance* is shared across :meth:`run` calls and
            closed by the caller; a process count builds one per run,
            closed when the run finishes.
        durable_path: forwarded to the engine — the run's churn events,
            epoch markers (with pinned contributions and forbidden pairs)
            and snapshots go to this SQLite write-ahead log
            (:mod:`repro.engine.durable`), so a crashed deployment's
            assignment state is recoverable and the dispatch history is
            queryable without re-simulating.  One log holds one session:
            a second :meth:`run` against the same path raises.  Note the
            simulator draws answer outcomes from the *same* generator the
            engine solves with, so a recovered engine replays the logged
            history bit-exactly but epochs beyond it may diverge from a
            never-crashed run (the outside draws are not in the log).
    """

    def __init__(
        self,
        config: Optional[PlatformConfig] = None,
        backend: str = "python",
        solve_mode: str = "full",
        warm_churn_threshold: float = 0.25,
        solve_executor=None,
        durable_path=None,
    ) -> None:
        self.config = config if config is not None else PlatformConfig()
        self.backend = backend
        self.solve_mode = solve_mode
        self.warm_churn_threshold = warm_churn_threshold
        self.solve_executor = solve_executor
        self.durable_path = durable_path
        #: Early arrivals wait at the site until the window opens, as human
        #: workers on the real platform do.
        self.validity = ValidityRule(allow_waiting=True)

    # ------------------------------------------------------------------ #

    def _spawn_schedule(self) -> List[SpatialTask]:
        """All tasks of the run, in spawn order."""
        config = self.config
        sites = config.site_locations()
        tasks: List[SpatialTask] = []
        task_id = 0
        for site_index, site in enumerate(sites):
            # Stagger sites so updates always see a mix of fresh and aging
            # tasks, like a live deployment.
            offset = (site_index / config.n_sites) * config.task_spawn_every
            spawn = offset
            while spawn < config.sim_minutes:
                tasks.append(
                    SpatialTask(
                        task_id=task_id,
                        location=site,
                        start=spawn,
                        end=spawn + config.task_open_minutes,
                        beta=config.beta,
                    )
                )
                task_id += 1
                spawn += config.task_spawn_every
        tasks.sort(key=lambda t: (t.start, t.task_id))
        return tasks

    def _initial_workers(self, rng) -> List[MovingWorker]:
        config = self.config
        speed = config.worker_speed()
        reliabilities = bootstrap_reliabilities(config.n_workers, rng)
        workers: List[MovingWorker] = []
        for worker_id in range(config.n_workers):
            location = Point(
                0.5 + float(rng.uniform(-2.0, 2.0)) * config.site_radius,
                0.5 + float(rng.uniform(-2.0, 2.0)) * config.site_radius,
            )
            workers.append(
                MovingWorker(
                    worker_id=worker_id,
                    location=location,
                    velocity=speed,
                    cone=AngleInterval.full_circle(),
                    confidence=reliabilities[worker_id],
                    depart_time=0.0,
                )
            )
        return workers

    # ------------------------------------------------------------------ #

    def run(self, solver: Solver, rng: RngLike = None) -> PlatformRunResult:
        """Simulate one deployment with the given solver.

        The whole run flows through one :class:`EventQueue`: the spawn
        schedule and the epoch clock are pushed up front, worker
        re-arrivals are pushed as trips complete, and the engine applies
        them in time order.  Re-planning is ``engine.epoch(now, pinned,
        forbidden)`` — the simulator holds no assignment state of its own.
        """
        generator = make_rng(rng)
        engine = AssignmentEngine(
            solver=solver,
            validity=self.validity,
            rng=generator,
            backend=self.backend,
            reanchor_on_epoch=True,
            solve_mode=self.solve_mode,
            warm_churn_threshold=self.warm_churn_threshold,
            solve_executor=self.solve_executor,
            durable_path=self.durable_path,
        )
        try:
            return self._run_with_engine(engine, generator)
        finally:
            # Release an engine-owned solve executor even when the solver
            # (or an unexpected event) raises mid-run.
            engine.close()

    def _run_with_engine(self, engine: AssignmentEngine, generator) -> PlatformRunResult:
        """The simulation loop proper, once the engine exists."""
        config = self.config
        queue = EventQueue()
        for task in self._spawn_schedule():
            queue.push(TaskArrive(time=task.start, task=task))
        ticks = epoch_ticks(config.t_interval, config.sim_minutes)
        for tick in ticks:
            queue.push(tick)
        horizon = ticks[-1].time

        records: Dict[int, TaskRecord] = {}
        answers: List[Answer] = []
        dispatches = 0
        #: A user is never pushed the same question twice.
        issued: Set[Tuple[int, int]] = set()
        #: In-flight trips: worker id -> (task id, planned arrival, the
        #: dispatched worker record).  Success draws use the *true*
        #: (bootstrap) confidence even when planning runs on learned ones.
        in_flight: Dict[int, Tuple[int, float, MovingWorker]] = {}
        true_confidence: Dict[int, float] = {}

        tracker = None
        if config.learn_reputations:
            from repro.platform_sim.reputation import ReputationTracker

            tracker = ReputationTracker()

        initial = self._initial_workers(generator)
        for worker in initial:
            true_confidence[worker.worker_id] = worker.confidence
            engine.add_worker(worker)
        if tracker is not None:
            tracker.seed_workers(initial)

        while queue and queue.next_time <= horizon + 1e-9:
            event = queue.pop()
            if isinstance(event, TaskArrive):
                records[event.task.task_id] = TaskRecord(event.task)
                engine.apply(event)
                continue
            if isinstance(event, WorkerUpdate):
                # A trip completing: attempt the answer, then release the
                # held worker with an in-place update to the task's site —
                # no remove + re-add churn, so warm mode keeps its plan.
                worker = event.worker
                task_id, arrival, dispatched = in_flight.pop(worker.worker_id)
                record = records[task_id]
                attempt_time = max(arrival, record.task.start)
                success = bool(
                    generator.uniform() < true_confidence[worker.worker_id]
                ) and attempt_time <= record.task.end
                answer = Answer(
                    worker_id=worker.worker_id,
                    task_id=task_id,
                    angle=approach_angle(record.task, dispatched),
                    time=attempt_time,
                    success=success,
                )
                record.answers.append(answer)
                answers.append(answer)
                if tracker is not None:
                    tracker.observe(worker.worker_id, success)
                engine.release_worker(worker.worker_id)
                engine.apply(event)
                continue
            if not isinstance(event, EpochTick):  # pragma: no cover
                raise TypeError(f"unexpected event {type(event).__name__}")

            now = event.time
            # Planning confidences: refresh learned reputations in place
            # (an O(1) same-cell update per changed worker).
            if tracker is not None:
                for worker in list(engine.workers.values()):
                    if worker.worker_id in engine.held_workers:
                        continue  # in flight: refreshed on release instead
                    refreshed = tracker.refreshed_worker(worker)
                    if refreshed.confidence != worker.confidence:
                        engine.update_worker(refreshed)

            # Committed contributions still relevant: the engine pins them
            # as degree-one virtual workers (and drops entries whose task
            # has expired out of its live set).
            pinned: Dict[int, List[WorkerProfile]] = {
                rec.task.task_id: list(rec.dispatched_profiles)
                for rec in records.values()
                if rec.dispatched_profiles
            }
            result = engine.epoch(now, pinned=pinned, forbidden=issued)

            # Dispatch the chosen workers: held in place (solver-invisible,
            # zero index churn) until their trip completes.
            for worker_id, task_id in sorted(result.dispatch.items()):
                record = records[task_id]
                worker_now = engine.workers[worker_id]
                arrival = self.validity.effective_arrival(worker_now, record.task)
                if arrival is None:
                    continue  # defensive: solver honoured precomputed pairs
                engine.hold_worker(worker_id)
                issued.add((worker_id, task_id))
                record.dispatched_worker_ids.append(worker_id)
                record.dispatched_profiles.append(
                    WorkerProfile(
                        worker_id,
                        approach_angle(record.task, worker_now),
                        arrival,
                        true_confidence[worker_id],
                    )
                )
                dispatches += 1
                in_flight[worker_id] = (task_id, arrival, worker_now)
                queue.push(
                    WorkerUpdate(
                        time=arrival,
                        worker=worker_now.moved_to(
                            record.task.location,
                            arrival + config.answer_minutes,
                        ),
                    )
                )

        return self._final_metrics(records, answers, dispatches, engine.metrics)

    # ------------------------------------------------------------------ #

    def _final_metrics(
        self,
        records: Dict[int, TaskRecord],
        answers: List[Answer],
        dispatches: int,
        engine_metrics: Optional[EngineMetrics] = None,
    ) -> PlatformRunResult:
        min_r = math.inf
        total_std = 0.0
        dispatched_tasks = 0
        for record in records.values():
            profiles = record.dispatched_profiles
            if not profiles:
                continue
            dispatched_tasks += 1
            r_value = 0.0
            for profile in profiles:
                if profile.confidence >= 1.0:
                    r_value = math.inf
                    break
                r_value += -math.log(1.0 - profile.confidence)
            min_r = min(min_r, r_value)
            total_std += expected_std(record.task, profiles)
        min_rel = 0.0 if math.isinf(min_r) and dispatched_tasks == 0 else (
            1.0 if math.isinf(min_r) else log_to_reliability(min_r)
        )
        if dispatched_tasks == 0:
            min_rel = 0.0
        return PlatformRunResult(
            min_reliability=min_rel,
            total_std=total_std,
            tasks_spawned=len(records),
            tasks_dispatched=dispatched_tasks,
            tasks_answered=sum(1 for r in records.values() if r.is_answered),
            dispatches=dispatches,
            answers=answers,
            engine_metrics=engine_metrics,
        )
