"""The clocked platform simulation (Section 8.4 / Figure 18).

The deployment being simulated: ``n_sites`` task sites a couple of walking
minutes apart, ``n_workers`` workers with peer-rating-derived
reliabilities, tasks with 15-minute windows spawning at the sites, and the
Figure 10 incremental updating strategy re-planning every ``t_interval``
minutes with a pluggable RDB-SC solver.

Between update instants nothing re-plans: travelling workers finish their
trips, attempt their task on arrival (succeeding with probability equal to
their confidence), and wait at the site until the next update makes them
available again.  The Figure 18 metrics — minimum reliability and total
expected STD over tasks that received workers — are computed from the
dispatched workers' profiles, matching the assignment-based metrics used in
every other experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.algorithms.base import RngLike, Solver, make_rng
from repro.core.diversity import WorkerProfile, approach_angle
from repro.core.reliability import log_to_reliability
from repro.core.expected import expected_std
from repro.core.task import SpatialTask
from repro.core.validity import ValidityRule
from repro.core.worker import MovingWorker
from repro.geometry.angles import AngleInterval
from repro.geometry.points import Point
from repro.platform_sim.events import Answer, TaskRecord, WorkerRuntime, WorkerStatus
from repro.platform_sim.incremental import incremental_update
from repro.platform_sim.ratings import bootstrap_reliabilities


@dataclass(frozen=True)
class PlatformConfig:
    """Deployment parameters (defaults mirror the paper's Section 8.1 setup).

    Attributes:
        n_workers: platform users (paper: 10 hired active users).
        n_sites: task sites (paper: 5 nearby sites).
        sim_minutes: experiment length.
        t_interval: minutes between incremental updates (Figure 18's x-axis).
        task_open_minutes: task window length (paper: 15 minutes).
        task_spawn_every: per-site spawn period for new tasks.
        site_radius: circumradius of the regular site polygon, in unit-square
            units; with ``walk_minutes_between_sites`` it fixes worker speed
            so adjacent sites are about two minutes apart, as in the paper.
        walk_minutes_between_sites: walking time between adjacent sites.
        answer_minutes: time spent producing the answer after arrival.
        beta: spatial/temporal weight of the platform's tasks.
        learn_reputations: when true, worker confidences are re-estimated
            online from answer outcomes with a Beta-Bernoulli reputation
            (the paper's "accuracy control" future work); planning then
            uses the learned confidences instead of the static bootstrap.
    """

    n_workers: int = 10
    n_sites: int = 5
    sim_minutes: float = 60.0
    t_interval: float = 1.0
    task_open_minutes: float = 15.0
    task_spawn_every: float = 7.5
    site_radius: float = 0.12
    walk_minutes_between_sites: float = 2.0
    answer_minutes: float = 0.5
    beta: float = 0.5
    learn_reputations: bool = False

    def __post_init__(self) -> None:
        if self.n_workers < 1 or self.n_sites < 1:
            raise ValueError("need at least one worker and one site")
        if self.t_interval <= 0.0 or self.sim_minutes <= 0.0:
            raise ValueError("t_interval and sim_minutes must be positive")
        if self.task_open_minutes <= 0.0 or self.task_spawn_every <= 0.0:
            raise ValueError("task timing parameters must be positive")

    def site_locations(self) -> List[Point]:
        """The sites: a regular polygon around the square centre."""
        sites: List[Point] = []
        for k in range(self.n_sites):
            angle = 2.0 * math.pi * k / self.n_sites
            sites.append(
                Point(
                    0.5 + self.site_radius * math.cos(angle),
                    0.5 + self.site_radius * math.sin(angle),
                )
            )
        return sites

    def worker_speed(self) -> float:
        """Speed making adjacent sites ``walk_minutes_between_sites`` apart."""
        if self.n_sites == 1:
            return self.site_radius / max(self.walk_minutes_between_sites, 1e-9)
        edge = 2.0 * self.site_radius * math.sin(math.pi / self.n_sites)
        return edge / self.walk_minutes_between_sites


@dataclass
class PlatformRunResult:
    """Outcome of one simulated deployment.

    ``min_reliability`` / ``total_std`` are the Figure 18 series; the rest
    are behavioural counters for tests and reporting.
    """

    min_reliability: float
    total_std: float
    tasks_spawned: int
    tasks_dispatched: int
    tasks_answered: int
    dispatches: int
    answers: List[Answer] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        """Fraction of answer attempts that succeeded."""
        if not self.answers:
            return 0.0
        return sum(1 for a in self.answers if a.success) / len(self.answers)


class PlatformSimulator:
    """Runs one deployment under a given solver and update interval."""

    def __init__(self, config: Optional[PlatformConfig] = None) -> None:
        self.config = config if config is not None else PlatformConfig()
        #: Early arrivals wait at the site until the window opens, as human
        #: workers on the real platform do.
        self.validity = ValidityRule(allow_waiting=True)

    # ------------------------------------------------------------------ #

    def _spawn_schedule(self) -> List[SpatialTask]:
        """All tasks of the run, in spawn order."""
        config = self.config
        sites = config.site_locations()
        tasks: List[SpatialTask] = []
        task_id = 0
        for site_index, site in enumerate(sites):
            # Stagger sites so updates always see a mix of fresh and aging
            # tasks, like a live deployment.
            offset = (site_index / config.n_sites) * config.task_spawn_every
            spawn = offset
            while spawn < config.sim_minutes:
                tasks.append(
                    SpatialTask(
                        task_id=task_id,
                        location=site,
                        start=spawn,
                        end=spawn + config.task_open_minutes,
                        beta=config.beta,
                    )
                )
                task_id += 1
                spawn += config.task_spawn_every
        tasks.sort(key=lambda t: (t.start, t.task_id))
        return tasks

    def _initial_workers(self, rng) -> List[WorkerRuntime]:
        config = self.config
        speed = config.worker_speed()
        reliabilities = bootstrap_reliabilities(config.n_workers, rng)
        runtimes: List[WorkerRuntime] = []
        for worker_id in range(config.n_workers):
            location = Point(
                0.5 + float(rng.uniform(-2.0, 2.0)) * config.site_radius,
                0.5 + float(rng.uniform(-2.0, 2.0)) * config.site_radius,
            )
            runtimes.append(
                WorkerRuntime(
                    MovingWorker(
                        worker_id=worker_id,
                        location=location,
                        velocity=speed,
                        cone=AngleInterval.full_circle(),
                        confidence=reliabilities[worker_id],
                        depart_time=0.0,
                    )
                )
            )
        return runtimes

    # ------------------------------------------------------------------ #

    def run(self, solver: Solver, rng: RngLike = None) -> PlatformRunResult:
        """Simulate one deployment with the given solver."""
        generator = make_rng(rng)
        config = self.config
        schedule = self._spawn_schedule()
        next_spawn = 0
        records: Dict[int, TaskRecord] = {}
        runtimes = self._initial_workers(generator)
        answers: List[Answer] = []
        dispatches = 0
        # A user is never pushed the same question twice.
        issued: set = set()
        tracker = None
        if config.learn_reputations:
            from repro.platform_sim.reputation import ReputationTracker

            tracker = ReputationTracker()
            tracker.seed_workers(rt.worker for rt in runtimes)

        now = 0.0
        while now <= config.sim_minutes + 1e-9:
            # 1. Complete trips that finished by now.
            for runtime in runtimes:
                if (
                    runtime.status is WorkerStatus.TRAVELLING
                    and runtime.arrival_time is not None
                    and runtime.arrival_time <= now
                ):
                    record = records[runtime.destination_task_id]
                    arrival = runtime.arrival_time
                    origin = runtime.origin or runtime.worker.location
                    attempt_time = max(arrival, record.task.start)
                    success = bool(
                        generator.uniform() < runtime.worker.confidence
                    ) and attempt_time <= record.task.end
                    answer = Answer(
                        worker_id=runtime.worker.worker_id,
                        task_id=record.task.task_id,
                        angle=approach_angle(record.task, runtime.worker),
                        time=attempt_time,
                        success=success,
                    )
                    record.answers.append(answer)
                    answers.append(answer)
                    if tracker is not None:
                        tracker.observe(runtime.worker.worker_id, success)
                    runtime.complete_trip(
                        record.task.location, arrival + config.answer_minutes
                    )

            # 2. Spawn tasks due by now.
            while next_spawn < len(schedule) and schedule[next_spawn].start <= now:
                task = schedule[next_spawn]
                records[task.task_id] = TaskRecord(task)
                next_spawn += 1

            # 3. Plan: open tasks, available workers, committed contributions.
            open_tasks = [
                rec.task for rec in records.values() if rec.open_at(now)
            ]
            available = [
                rt for rt in runtimes if rt.status is WorkerStatus.AVAILABLE
            ]
            committed: Dict[int, List[WorkerProfile]] = {}
            for rec in records.values():
                if not rec.open_at(now):
                    continue
                profiles = list(rec.dispatched_profiles)
                if profiles:
                    committed[rec.task.task_id] = profiles

            planning_workers = [rt.worker for rt in available]
            if tracker is not None:
                planning_workers = [
                    tracker.refreshed_worker(worker) for worker in planning_workers
                ]
            dispatch = incremental_update(
                open_tasks,
                planning_workers,
                committed,
                solver,
                now,
                self.validity,
                generator,
                forbidden_pairs=issued,
            )

            # 4. Dispatch the chosen workers.
            by_id = {rt.worker.worker_id: rt for rt in available}
            for worker_id, task_id in sorted(dispatch.items()):
                runtime = by_id[worker_id]
                record = records[task_id]
                worker_now = runtime.worker.moved_to(runtime.worker.location, now)
                arrival = self.validity.effective_arrival(worker_now, record.task)
                if arrival is None:
                    continue  # defensive: solver honoured precomputed pairs
                runtime.worker = worker_now
                runtime.dispatch(task_id, arrival)
                issued.add((worker_id, task_id))
                record.dispatched_worker_ids.append(worker_id)
                record.dispatched_profiles.append(
                    WorkerProfile(
                        worker_id,
                        approach_angle(record.task, worker_now),
                        arrival,
                        worker_now.confidence,
                    )
                )
                dispatches += 1

            now += config.t_interval

        return self._final_metrics(records, answers, dispatches)

    # ------------------------------------------------------------------ #

    def _final_metrics(
        self,
        records: Dict[int, TaskRecord],
        answers: List[Answer],
        dispatches: int,
    ) -> PlatformRunResult:
        min_r = math.inf
        total_std = 0.0
        dispatched_tasks = 0
        for record in records.values():
            profiles = record.dispatched_profiles
            if not profiles:
                continue
            dispatched_tasks += 1
            r_value = 0.0
            for profile in profiles:
                if profile.confidence >= 1.0:
                    r_value = math.inf
                    break
                r_value += -math.log(1.0 - profile.confidence)
            min_r = min(min_r, r_value)
            total_std += expected_std(record.task, profiles)
        min_rel = 0.0 if math.isinf(min_r) and dispatched_tasks == 0 else (
            1.0 if math.isinf(min_r) else log_to_reliability(min_r)
        )
        if dispatched_tasks == 0:
            min_rel = 0.0
        return PlatformRunResult(
            min_reliability=min_rel,
            total_std=total_std,
            tasks_spawned=len(records),
            tasks_dispatched=dispatched_tasks,
            tasks_answered=sum(1 for r in records.values() if r.is_answered),
            dispatches=dispatches,
            answers=answers,
        )
