"""The service tier: an asyncio front-end over the assignment engine.

The engine family (:mod:`repro.engine`) absorbs churn and re-plans per
epoch but assumes an in-process driver.  This package is the deployment
face the paper's platform implies — task submissions and worker pings
arriving over the network while solves run:

``protocol``
    The versioned JSON-lines wire vocabulary: typed request/response
    codecs reusing the durable layer's bit-exact task/worker rows.
``batcher``
    The bounded ingestion buffer with the supersede-fold load-shed
    policy (a stale in-place worker ping is replaced by its successor
    before it can cost a grid-cell invalidation) plus
    :class:`~repro.serve.batcher.ServeMetrics`.
``scheduler``
    :class:`~repro.serve.scheduler.EngineDriver` (all engine access
    serialised and thread-offloaded, so ingestion never blocks on a
    solve) and :class:`~repro.serve.scheduler.DeadlineLoop` (the
    wall-clock re-planning cadence, with deadline-miss accounting).
``server``
    :class:`~repro.serve.server.AssignmentServer` — the TCP endpoint,
    admission control (wait vs reject), decision streaming to
    subscribers, and ``resume()`` over the durable log.
``client``
    The reference asyncio client the tests and examples drive through.
``loadgen``
    The open-loop Poisson soak harness behind ``benchmarks/
    bench_serve.py`` and the CI soak smoke test.

``python -m repro.serve`` runs a server process; see ``docs/SERVING.md``
for the wire protocol, the backpressure policy and restart semantics.
"""

from repro.serve.batcher import (
    DEFAULT_CAPACITY,
    IngestBatcher,
    ServeMetrics,
    fold_trace,
)
from repro.serve.client import ServeClient, ServeError
from repro.serve.loadgen import LoadGenerator, LoadReport, percentile
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.scheduler import DeadlineLoop, EngineDriver
from repro.serve.server import AssignmentServer

__all__ = [
    "DEFAULT_CAPACITY",
    "AssignmentServer",
    "DeadlineLoop",
    "EngineDriver",
    "IngestBatcher",
    "LoadGenerator",
    "LoadReport",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeClient",
    "ServeError",
    "ServeMetrics",
    "fold_trace",
    "percentile",
]
