"""Run an :class:`~repro.serve.server.AssignmentServer` as a process.

``python -m repro.serve --port 0 --durable session.db`` starts a fresh
durable session; add ``--resume`` to recover a SIGKILLed one from the
same log and continue serving mid-session.  The process prints a single
``READY {port}`` line on stdout once the listener is bound — the
kill-and-resume test (and any supervisor) waits for that line before
sending traffic.

The flags mirror the engine's constructor knobs; a ``--shards N`` above
1 serves a :class:`repro.engine.sharding.ShardedAssignmentEngine`.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import Optional

from repro.algorithms.greedy import GreedySolver
from repro.algorithms.sampling import SamplingSolver
from repro.engine.durable import DurableLog
from repro.engine.engine import AssignmentEngine
from repro.engine.sharding import ShardedAssignmentEngine
from repro.serve.server import AssignmentServer


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve an RDB-SC assignment engine over JSON-lines TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 picks a free port")
    parser.add_argument(
        "--solver", choices=("greedy", "sampling"), default="greedy"
    )
    parser.add_argument("--samples", type=int, default=40, help="sampling draws")
    parser.add_argument("--seed", type=int, default=7, help="engine RNG seed")
    parser.add_argument("--backend", choices=("python", "numpy"), default="python")
    parser.add_argument("--eta", type=float, default=0.125, help="grid cell size")
    parser.add_argument(
        "--shards", type=int, default=1, help=">1 serves the sharded engine"
    )
    parser.add_argument("--durable", default=None, help="WAL/snapshot SQLite path")
    parser.add_argument(
        "--resume",
        action="store_true",
        help="recover the engine from --durable instead of starting fresh",
    )
    parser.add_argument("--snapshot-every", type=int, default=16)
    parser.add_argument(
        "--capacity", type=int, default=8192, help="ingestion buffer bound"
    )
    parser.add_argument("--admission", choices=("wait", "reject"), default="wait")
    parser.add_argument(
        "--epoch-interval",
        type=float,
        default=None,
        help="wall seconds between deadline epochs (default: explicit epochs only)",
    )
    parser.add_argument(
        "--epoch-dt",
        type=float,
        default=1.0,
        help="virtual session time per deadline epoch",
    )
    return parser


def build_solver(args: argparse.Namespace):
    """The solver instance the flags describe."""
    if args.solver == "greedy":
        return GreedySolver()
    return SamplingSolver(num_samples=args.samples)


def solver_from_log(durable_path: str):
    """Rebuild the solver a durable log was written with, from its meta.

    ``restore_engine`` validates both the solver class name and its
    constructor fingerprint, so the resumed process must reconstruct the
    original solver exactly; the CLI supports the two solvers it can
    start (greedy, sampling) and fails loudly for anything else.
    """
    log = DurableLog(durable_path)
    try:
        meta = log.meta()
    finally:
        log.close()
    if not meta:
        raise SystemExit(f"{durable_path} holds no durable engine session")
    name = meta.get("solver")
    config = meta.get("solver_config") or {}
    if name == "GreedySolver":
        return GreedySolver(**config)
    if name == "SamplingSolver":
        return SamplingSolver(**config)
    raise SystemExit(
        f"cannot resume a session solved by {name!r} from the CLI; "
        "use AssignmentServer.resume(path, solver=...) instead"
    )


def build_server(args: argparse.Namespace) -> AssignmentServer:
    """Engine + server per the parsed flags (fresh or resumed)."""
    server_kwargs = dict(
        host=args.host,
        port=args.port,
        capacity=args.capacity,
        admission=args.admission,
        epoch_interval=args.epoch_interval,
        epoch_dt=args.epoch_dt,
    )
    if args.resume:
        if args.durable is None:
            raise SystemExit("--resume requires --durable")
        return AssignmentServer.resume(
            args.durable, solver=solver_from_log(args.durable), **server_kwargs
        )
    solver = build_solver(args)
    if args.shards > 1:
        engine = ShardedAssignmentEngine(
            solver=solver,
            eta=args.eta,
            rng=args.seed,
            backend=args.backend,
            num_shards=args.shards,
            durable_path=args.durable,
            durable_snapshot_every=args.snapshot_every,
        )
    else:
        engine = AssignmentEngine(
            solver=solver,
            eta=args.eta,
            rng=args.seed,
            backend=args.backend,
            durable_path=args.durable,
            durable_snapshot_every=args.snapshot_every,
        )
    return AssignmentServer(engine, **server_kwargs)


async def serve(args: argparse.Namespace) -> None:
    """Start the server, announce readiness, and run until stopped."""
    server = build_server(args)
    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(
            signum, lambda: loop.create_task(server.stop())
        )
    print(f"READY {server.bound_port}", flush=True)
    await server.wait_stopped()


def main(argv: Optional[list] = None) -> None:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    asyncio.run(serve(args))


if __name__ == "__main__":
    sys.exit(main())
