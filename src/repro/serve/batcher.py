"""Bounded ingestion queue with a supersede-fold load-shed policy.

The service tier sits between an open-loop stream of pings/submissions
and the engine's per-epoch batch path.  :class:`IngestBatcher` is the
buffer in between: typed events accumulate in arrival order and are
drained at each epoch into an :class:`repro.engine.scheduler.EventQueue`
(whose per-instant batches flow through ``coalesce_churn`` — the
existing amortised index path), so the wire hop changes *where* events
wait, never *what* the engine applies.

Two policies make the buffer safe under overload:

* **Load shed (supersede fold).**  An in-place :class:`repro.engine.
  events.WorkerUpdate` still waiting in the buffer is dead weight the
  moment a newer update from the same worker arrives: only the state at
  the next epoch matters, updates on the same entity are last-write-wins,
  and no event between the two touches that worker (arrivals, leaves,
  holds, releases and non-churn events all clear the fold slot).  The
  batcher therefore *replaces* the stale update in place and counts the
  drop — the superseded ping never reaches the engine, never dirties a
  grid cell, and never chops a ``coalesce_churn`` run at its repeated id.
  ``tests/test_serve.py`` proves by property that folding never changes
  the final plan.
* **Admission control.**  The buffer is bounded (``capacity``); an event
  that cannot fold into an existing slot is refused when the buffer is
  full, and the server turns that refusal into backpressure (await
  space) or rejection, per its policy.  A fold is always admitted — it
  never grows the buffer.

The batcher is synchronous and single-consumer by design: the server's
event loop is the only writer, the flush happens at epoch boundaries,
and all cross-thread concerns stay in :mod:`repro.serve.scheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.engine import events as ev

#: Default buffered-event bound (events, not bytes); the soak benchmark
#: sizes this well above one epoch interval's arrivals.
DEFAULT_CAPACITY = 8192


@dataclass
class ServeMetrics:
    """Lifetime counters for the service tier.

    Everything here is about the wire/buffer layer; solver-side counters
    stay in :class:`repro.engine.metrics.EngineMetrics`.  All fields are
    plain ints so :meth:`counters` is trivially JSON-safe.
    """

    #: Decoded requests by op name (malformed frames are not requests).
    requests: Dict[str, int] = field(default_factory=dict)
    #: Frames that failed protocol validation (JSON/version/op/field).
    protocol_errors: int = 0
    #: Ingest ops refused by the server's id-registry validation (update
    #: of an unknown worker, duplicate task id, ...).
    rejected_invalid: int = 0
    #: Churn events admitted into the batcher (folds count once: the
    #: superseded event moves to ``updates_shed`` instead).
    events_ingested: int = 0
    #: Stale in-place ``WorkerUpdate``s dropped by the supersede fold
    #: before they could cost a cell invalidation.
    updates_shed: int = 0
    #: Times a producer had to wait for buffer space (backpressure).
    admission_waits: int = 0
    #: Non-foldable events refused outright under the ``reject`` policy.
    admission_rejects: int = 0
    #: Largest buffered-event count observed.
    queue_high_watermark: int = 0
    #: Batches drained into the engine, and the events they carried.
    batches_flushed: int = 0
    events_flushed: int = 0
    #: Epochs the scheduler ran (requested + deadline ticks).
    epochs: int = 0
    #: Deadline ticks skipped because the previous epoch was still
    #: running (the epoch loop never re-enters the engine).
    deadline_misses: int = 0
    #: Decision frames streamed to subscribers / dropped because a slow
    #: subscriber's bounded outbox was full (connection flow control).
    frames_streamed: int = 0
    frames_dropped: int = 0
    #: Connections accepted over the server's lifetime.
    connections: int = 0

    def count_request(self, op: str) -> None:
        """Increment the per-op request counter."""
        self.requests[op] = self.requests.get(op, 0) + 1

    def counters(self) -> Dict[str, object]:
        """All counters as one plain JSON-safe dict (the ``stats`` op)."""
        return {
            "requests": dict(self.requests),
            "protocol_errors": self.protocol_errors,
            "rejected_invalid": self.rejected_invalid,
            "events_ingested": self.events_ingested,
            "updates_shed": self.updates_shed,
            "admission_waits": self.admission_waits,
            "admission_rejects": self.admission_rejects,
            "queue_high_watermark": self.queue_high_watermark,
            "batches_flushed": self.batches_flushed,
            "events_flushed": self.events_flushed,
            "epochs": self.epochs,
            "deadline_misses": self.deadline_misses,
            "frames_streamed": self.frames_streamed,
            "frames_dropped": self.frames_dropped,
            "connections": self.connections,
        }


class IngestBatcher:
    """Bounded, fold-aware buffer of typed churn events.

    Args:
        capacity: largest number of buffered events; a non-foldable add
            beyond it is refused (the server decides between waiting and
            rejecting).  A fold never grows the buffer and is always
            admitted.
        metrics: the :class:`ServeMetrics` the fold/admission counters
            land in (a private one is built when omitted).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        metrics: Optional[ServeMetrics] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self._pending: List[Optional[ev.Event]] = []
        #: Live event count (``_pending`` may carry folded-away ``None``
        #: holes between compactions; they are skipped at drain).
        self._live = 0
        #: worker id -> index of its foldable pending ``WorkerUpdate``.
        self._update_slots: Dict[int, int] = {}

    def __len__(self) -> int:
        return self._live

    @property
    def full(self) -> bool:
        """True when a non-foldable event would be refused right now."""
        return self._live >= self.capacity

    def _barrier(self, event: ev.Event) -> None:
        """Clear fold slots the event conflicts with.

        Worker arrive/leave/hold/release conflict with a pending update
        of the same worker (their relative order is semantic); any
        non-churn event (expiry sweeps, ticks) is a global barrier —
        cheap, rare, and makes the fold's correctness argument purely
        local: between a superseded update and its successor, *nothing*
        the engine could observe differently ever happened.
        """
        if isinstance(event, (ev.WorkerArrive,)):
            self._update_slots.pop(event.worker.worker_id, None)
        elif isinstance(event, (ev.WorkerLeave, ev.WorkerHold, ev.WorkerRelease)):
            self._update_slots.pop(event.worker_id, None)
        elif not isinstance(
            event, (ev.WorkerUpdate, ev.TaskArrive, ev.TaskWithdraw)
        ):
            self._update_slots.clear()

    def try_add(self, event: ev.Event) -> bool:
        """Admit one event; returns False when full and not foldable.

        A :class:`~repro.engine.events.WorkerUpdate` whose worker already
        has a pending update (with no conflicting event in between) folds
        into that slot in place — the stale update is shed, the buffer
        does not grow, and admission always succeeds.  Everything else
        appends, subject to ``capacity``.
        """
        metrics = self.metrics
        if isinstance(event, ev.WorkerUpdate):
            slot = self._update_slots.get(event.worker.worker_id)
            if slot is not None:
                self._pending[slot] = event
                metrics.updates_shed += 1
                return True
            if self._live >= self.capacity:
                return False
            self._update_slots[event.worker.worker_id] = len(self._pending)
            self._pending.append(event)
        else:
            if self._live >= self.capacity:
                return False
            self._barrier(event)
            self._pending.append(event)
        self._live += 1
        metrics.events_ingested += 1
        if self._live > metrics.queue_high_watermark:
            metrics.queue_high_watermark = self._live
        return True

    def drain(self) -> List[ev.Event]:
        """Remove and return every pending event, in arrival order.

        Folded updates sit at their *superseded predecessor's* position —
        sound because nothing between the two positions touched that
        worker (the fold slot would have been cleared), and every event
        in between touches a distinct entity, so the stream commutes into
        this order.  The flush boundary also ends every fold window.
        """
        batch = [event for event in self._pending if event is not None]
        self._pending.clear()
        self._update_slots.clear()
        self._live = 0
        if batch:
            self.metrics.batches_flushed += 1
            self.metrics.events_flushed += len(batch)
        return batch


def fold_trace(
    events: Iterable[ev.Event],
    flush_before: Optional[type] = None,
) -> List[ev.Event]:
    """A whole trace as the batcher would deliver it, for reference runs.

    The differential tests drive one copy of a trace through the wire
    (server-side batcher) and one directly; this helper applies the same
    fold semantics to the direct copy so both engines consume the
    identical event stream.  ``flush_before`` (e.g. ``EpochTick``) marks
    the epoch boundaries: the buffer drains before each such event, just
    as the server flushes before each epoch, and the boundary event
    itself passes through unbuffered.
    """
    batcher = IngestBatcher(capacity=1 << 30)
    folded: List[ev.Event] = []
    for event in events:
        if flush_before is not None and isinstance(event, flush_before):
            folded.extend(batcher.drain())
            folded.append(event)
            continue
        admitted = batcher.try_add(event)
        assert admitted  # unbounded reference capacity never refuses
    folded.extend(batcher.drain())
    return folded
