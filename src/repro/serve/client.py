"""A small asyncio client for the JSON-lines wire protocol.

:class:`ServeClient` is what the differential tests, the kill-and-resume
harness, the load generator and the examples speak through: it owns one
TCP connection, assigns request ids, correlates responses, and parks
server pushes (subscribed epoch decisions) in :attr:`pushes`.

It is deliberately not a public SDK — just enough client to prove the
server end to end — but it is the reference for writing one: every op
has a typed method, and the only state is the id counter.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional

from repro.core.task import SpatialTask
from repro.core.worker import MovingWorker
from repro.serve import protocol as proto


class ServeError(RuntimeError):
    """An error response from the server (code + message)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


class ServeClient:
    """One connection to an :class:`~repro.serve.server.AssignmentServer`.

    Use as an async context manager, or pair :meth:`connect` with
    :meth:`close`.  Requests are issued one at a time per client (the
    wire allows pipelining; the reference client keeps correlation
    trivial instead).
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._next_id = 0
        #: Server pushes received while waiting for responses, in order.
        self.pushes: List[Dict[str, Any]] = []

    async def connect(self) -> "ServeClient":
        """Open the TCP connection."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "ServeClient":
        """Async-context entry: connect."""
        return await self.connect()

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        """Async-context exit: close."""
        await self.close()

    # ------------------------------------------------------------------ #
    # Core request/response machinery
    # ------------------------------------------------------------------ #

    async def request(self, request: proto.Request) -> Dict[str, Any]:
        """Send one typed request and await its correlated response.

        Pushes arriving in between are appended to :attr:`pushes`.

        Raises:
            ServeError: for an ``ok: false`` response.
            ConnectionError: when the server goes away mid-request.
        """
        assert self._writer is not None and self._reader is not None
        self._writer.write(proto.encode_request(request))
        await self._writer.drain()
        while True:
            line = await self._reader.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            frame = proto.decode_frame(line)
            if "push" in frame:
                self.pushes.append(frame)
                continue
            if frame.get("id") != request.request_id:
                continue  # stale response from a dropped request
            if not frame.get("ok"):
                raise ServeError(
                    frame.get("code", "error"), frame.get("error", "")
                )
            return frame

    def _fresh_id(self) -> int:
        self._next_id += 1
        return self._next_id

    async def drain_pushes(self, minimum: int, timeout: float = 5.0) -> None:
        """Read until at least ``minimum`` pushes have arrived."""
        assert self._reader is not None
        deadline = asyncio.get_running_loop().time() + timeout
        while len(self.pushes) < minimum:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise TimeoutError(
                    f"only {len(self.pushes)}/{minimum} pushes arrived"
                )
            line = await asyncio.wait_for(
                self._reader.readline(), timeout=remaining
            )
            if not line:
                raise ConnectionError("server closed the connection")
            frame = proto.decode_frame(line)
            if "push" in frame:
                self.pushes.append(frame)

    # ------------------------------------------------------------------ #
    # Typed ops
    # ------------------------------------------------------------------ #

    async def submit_task(self, time: float, task: SpatialTask) -> Dict[str, Any]:
        """Post a task."""
        return await self.request(
            proto.SubmitTask(self._fresh_id(), time, task)
        )

    async def withdraw_task(self, time: float, task_id: int) -> Dict[str, Any]:
        """Withdraw a task."""
        return await self.request(
            proto.WithdrawTask(self._fresh_id(), time, task_id)
        )

    async def ping(self, time: float, worker: MovingWorker) -> Dict[str, Any]:
        """Report a worker's location (registers unknown workers)."""
        return await self.request(proto.WorkerPing(self._fresh_id(), time, worker))

    async def worker_leave(self, time: float, worker_id: int) -> Dict[str, Any]:
        """Deregister a worker."""
        return await self.request(
            proto.WorkerLeave(self._fresh_id(), time, worker_id)
        )

    async def hold(self, time: float, worker_id: int) -> Dict[str, Any]:
        """Mark a worker in-flight (solver-invisible)."""
        return await self.request(
            proto.WorkerHold(self._fresh_id(), time, worker_id)
        )

    async def release(self, time: float, worker_id: int) -> Dict[str, Any]:
        """Release a held worker."""
        return await self.request(
            proto.WorkerRelease(self._fresh_id(), time, worker_id)
        )

    async def expire(self, time: float) -> Dict[str, Any]:
        """Run an expiry sweep at ``time``."""
        return await self.request(proto.Expire(self._fresh_id(), time))

    async def epoch(self, time: float) -> Dict[str, Any]:
        """Flush pending ingestion and re-plan at ``time``."""
        return await self.request(proto.Epoch(self._fresh_id(), time))

    async def subscribe(self) -> Dict[str, Any]:
        """Stream subsequent epoch decisions to this connection."""
        return await self.request(proto.Subscribe(self._fresh_id()))

    async def stats(self) -> Dict[str, Any]:
        """Fetch serve + engine counters."""
        return await self.request(proto.Stats(self._fresh_id()))

    async def shutdown(self) -> Dict[str, Any]:
        """Ask the server to stop."""
        return await self.request(proto.Shutdown(self._fresh_id()))
