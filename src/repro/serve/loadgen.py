"""Open-loop traffic generation and latency accounting for the server.

A closed-loop client (send, wait, send) measures only itself: when the
server slows down, a closed loop politely slows its offered load and the
latency numbers stay flattering.  The soak harness is therefore
**open-loop**: arrival times are drawn up front from a seeded Poisson
process (exponential inter-arrivals at ``rate_hz``), and each request is
fired at its scheduled wall-clock instant whether or not earlier
responses have returned — the coordinated-omission-resistant shape real
ingestion traffic has.

Each request's ingestion latency (write → correlated ack) is recorded;
the report carries p50/p95/p99 over the run, the sustained RPS actually
acknowledged, and the error/shed accounting needed to tell load shedding
(by design) from loss (a bug).  ``benchmarks/bench_serve.py`` records
these into ``BENCH_serve.json``; the soak smoke test asserts the zero-
loss invariant at CI scale.
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

import numpy as np

from repro.core.worker import MovingWorker
from repro.geometry.points import Point
from repro.serve import protocol as proto


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0 < q <= 1) by the nearest-rank method.

    Nearest-rank on the sorted sample: deterministic, never interpolates
    a latency that was not observed, and matches the convention load
    -testing tools report.  Returns ``nan`` for an empty sample.
    """
    if not values:
        return math.nan
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclass
class LoadReport:
    """One soak run's outcome.

    Attributes:
        offered: requests the schedule fired.
        acked: requests positively acknowledged.
        errors: error responses (admission rejects, invalid ops).
        lost: requests with no response at all by the end of the run.
        duration_seconds: wall time from first send to last ack.
        sustained_rps: ``acked / duration_seconds``.
        latency_p50_ms / latency_p95_ms / latency_p99_ms: ingestion
            latency percentiles (send → ack) in milliseconds.
        latencies_ms: the full sample, for custom analysis.
        server: the server's ``stats`` payload at the end of the run
            (serve counters, engine counters, pending events).
    """

    offered: int = 0
    acked: int = 0
    errors: int = 0
    lost: int = 0
    duration_seconds: float = 0.0
    sustained_rps: float = 0.0
    latency_p50_ms: float = math.nan
    latency_p95_ms: float = math.nan
    latency_p99_ms: float = math.nan
    latencies_ms: List[float] = field(default_factory=list)
    server: Dict[str, Any] = field(default_factory=dict)

    def summary_row(self) -> Dict[str, Any]:
        """The JSON-safe row the benchmark writer records."""
        return {
            "offered": self.offered,
            "acked": self.acked,
            "errors": self.errors,
            "lost": self.lost,
            "duration_seconds": self.duration_seconds,
            "sustained_rps": self.sustained_rps,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "latency_p99_ms": self.latency_p99_ms,
        }


class LoadGenerator:
    """Seeded open-loop Poisson ping traffic against one server.

    Args:
        host / port: the server endpoint.
        workers: the worker population whose pings are generated; ids
            must already be known to the server (register them first) so
            every ping is an in-place — and therefore sheddable — update.
        rate_hz: mean arrival rate of the Poisson process.
        duration_s: schedule horizon in wall seconds.
        seed: RNG seed for arrival times and movement jitter.
        jitter: per-ping movement scale (unit-square units).
    """

    def __init__(
        self,
        host: str,
        port: int,
        workers: Sequence[MovingWorker],
        rate_hz: float = 200.0,
        duration_s: float = 2.0,
        seed: int = 7,
        jitter: float = 0.02,
    ) -> None:
        if rate_hz <= 0 or duration_s <= 0:
            raise ValueError("rate_hz and duration_s must be positive")
        if not workers:
            raise ValueError("need at least one worker to ping")
        self.host = host
        self.port = port
        self.workers = list(workers)
        self.rate_hz = rate_hz
        self.duration_s = duration_s
        self.seed = seed
        self.jitter = jitter

    def schedule(self) -> List[float]:
        """Arrival offsets (seconds from start), drawn up front."""
        rng = np.random.default_rng(self.seed)
        offsets: List[float] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / self.rate_hz))
            if t >= self.duration_s:
                return offsets
            offsets.append(t)

    def _ping_worker(self, rng: np.random.Generator, k: int) -> MovingWorker:
        """The k-th ping's payload: a jittered move of a random worker."""
        worker = self.workers[int(rng.integers(0, len(self.workers)))]
        return worker.moved_to(
            Point(
                float(np.clip(worker.location.x + rng.normal(0.0, self.jitter), 0.0, 1.0)),
                float(np.clip(worker.location.y + rng.normal(0.0, self.jitter), 0.0, 1.0)),
            ),
            worker.depart_time,
        )

    async def run(self, settle_s: float = 2.0) -> LoadReport:
        """Fire the schedule, collect acks, and report.

        One connection carries the whole run (a JSON-lines frame is far
        smaller than a TCP segment; connection count is not the variable
        under test).  Writes happen at their scheduled instants; a
        reader task correlates acks by request id as they come back.
        ``settle_s`` bounds how long stragglers may trail the schedule.
        """
        rng = np.random.default_rng(self.seed + 1)
        offsets = self.schedule()
        reader, writer = await asyncio.open_connection(self.host, self.port)
        send_times: Dict[int, float] = {}
        latencies: List[float] = []
        report = LoadReport(offered=len(offsets))
        done = asyncio.Event()

        async def collect() -> None:
            pending = len(offsets)
            while pending > 0:
                line = await reader.readline()
                if not line:
                    break
                frame = proto.decode_frame(line)
                if "push" in frame or frame.get("id") not in send_times:
                    continue
                now = time.perf_counter()
                latencies.append((now - send_times.pop(frame["id"])) * 1000.0)
                if frame.get("ok"):
                    report.acked += 1
                else:
                    report.errors += 1
                pending -= 1
            done.set()

        collector = asyncio.get_running_loop().create_task(collect())
        start = time.perf_counter()
        for k, offset in enumerate(offsets):
            delay = (start + offset) - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            request = proto.WorkerPing(k + 1, float(offset), self._ping_worker(rng, k))
            send_times[request.request_id] = time.perf_counter()
            writer.write(proto.encode_request(request))
            # Open loop: no drain await per request — the socket buffer
            # absorbs bursts, and a full buffer is genuine backpressure.
        await writer.drain()
        try:
            await asyncio.wait_for(done.wait(), timeout=settle_s)
        except asyncio.TimeoutError:
            pass
        collector.cancel()
        report.lost = len(send_times)
        report.duration_seconds = time.perf_counter() - start
        report.latencies_ms = latencies
        report.sustained_rps = (
            report.acked / report.duration_seconds
            if report.duration_seconds > 0
            else 0.0
        )
        report.latency_p50_ms = percentile(latencies, 0.50)
        report.latency_p95_ms = percentile(latencies, 0.95)
        report.latency_p99_ms = percentile(latencies, 0.99)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        return report


async def fetch_stats(host: str, port: int) -> Dict[str, Any]:
    """One-shot ``stats`` request on a fresh connection."""
    from repro.serve.client import ServeClient

    async with ServeClient(host, port) as client:
        return await client.stats()
