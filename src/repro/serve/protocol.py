"""Typed request/response codecs for the JSON-lines wire protocol.

One request or response per line, UTF-8 JSON, newline-terminated.  Every
frame carries the protocol version (``"v"``); a server rejects frames
from a different major version instead of guessing at field semantics,
so the schema can evolve without silent misreads.

Requests are typed dataclasses (one per ``op``) with a registry-driven
decoder: :func:`decode_request` validates the version, the op name and
every field's presence and JSON type before the server touches any
state, so a malformed line costs one error response, never a
half-applied event.  Task and worker payloads reuse the durable layer's
flat-row codecs (:func:`repro.engine.durable.task_row` /
``worker_row``), which round-trip floats bit-exactly — the differential
tests in ``tests/test_serve.py`` rely on a wire hop being invisible to
the solver.

Frame shapes::

    request:   {"v": 1, "id": 7, "op": "worker_ping", "worker": [...]}
    response:  {"v": 1, "id": 7, "ok": true, ...}
               {"v": 1, "id": 7, "ok": false, "code": "...", "error": "..."}
    push:      {"v": 1, "push": "epoch", "now": 3.0, "mode": "full", ...}

Pushes are server-initiated frames streamed to subscribed connections
(no ``id`` — nothing to correlate).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.core.task import SpatialTask
from repro.core.worker import MovingWorker
from repro.engine.durable import (
    task_from_row,
    task_row,
    worker_from_row,
    worker_row,
)
from repro.engine.engine import EpochResult

#: Wire protocol version; bumped on any incompatible frame-shape change.
PROTOCOL_VERSION = 1

#: Bytes per frame the reader will buffer before rejecting the line
#: (guards the server against a connection streaming an unbounded line).
MAX_FRAME_BYTES = 1 << 20


class ProtocolError(ValueError):
    """A frame that cannot be decoded into a valid typed request.

    Attributes:
        code: short machine-readable reason (``"version"``, ``"op"``,
            ``"field"``, ``"json"``), echoed in the error response.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class Request:
    """Base wire request: a correlation id plus op-specific fields."""

    request_id: int

    #: The wire op name; each concrete request class overrides this.
    op = "base"


@dataclass(frozen=True)
class SubmitTask(Request):
    """A requester posts a task (``TaskArrive`` on flush)."""

    time: float
    task: SpatialTask

    op = "submit_task"


@dataclass(frozen=True)
class WithdrawTask(Request):
    """A task is cancelled or completed (``TaskWithdraw`` on flush)."""

    time: float
    task_id: int

    op = "withdraw_task"


@dataclass(frozen=True)
class WorkerPing(Request):
    """A worker's periodic location report.

    The server resolves a ping against its live id registry: an unknown
    worker id registers (``WorkerArrive``), a known one refreshes in
    place (``WorkerUpdate``).  In-place refreshes are the sheddable
    traffic class — a pending ping superseded by a newer one from the
    same worker is folded away by the batcher before it can cost a cell
    invalidation.
    """

    time: float
    worker: MovingWorker

    op = "worker_ping"


@dataclass(frozen=True)
class WorkerLeave(Request):
    """A worker deregisters (``WorkerLeave`` event on flush)."""

    time: float
    worker_id: int

    op = "worker_leave"


@dataclass(frozen=True)
class WorkerHold(Request):
    """Mark a worker in-flight: registered but solver-invisible."""

    time: float
    worker_id: int

    op = "worker_hold"


@dataclass(frozen=True)
class WorkerRelease(Request):
    """Make a held worker solver-visible again."""

    time: float
    worker_id: int

    op = "worker_release"


@dataclass(frozen=True)
class Expire(Request):
    """Retire every task whose valid period closed before ``time``."""

    time: float

    op = "expire"


@dataclass(frozen=True)
class Epoch(Request):
    """Flush pending ingestion and re-plan at clock time ``time``.

    The response carries the epoch's objective, mode and dispatch map;
    subscribed connections receive the same decision frame as a push.
    """

    time: float

    op = "epoch"


@dataclass(frozen=True)
class Subscribe(Request):
    """Stream every subsequent epoch's decisions to this connection."""

    op = "subscribe"


@dataclass(frozen=True)
class Stats(Request):
    """Fetch the server's :class:`~repro.serve.batcher.ServeMetrics` and
    the engine's replay-deterministic counters."""

    op = "stats"


@dataclass(frozen=True)
class Shutdown(Request):
    """Ask the server to stop accepting and shut down cleanly."""

    op = "shutdown"


#: ``op`` name -> request class, the decoder's dispatch table.
REQUEST_TYPES: Dict[str, Type[Request]] = {
    cls.op: cls
    for cls in (
        SubmitTask,
        WithdrawTask,
        WorkerPing,
        WorkerLeave,
        WorkerHold,
        WorkerRelease,
        Expire,
        Epoch,
        Subscribe,
        Stats,
        Shutdown,
    )
}

#: Wire field name and JSON check per dataclass field (beyond request_id).
_FIELD_CODECS = {
    "time": ("time", lambda v: isinstance(v, (int, float)) and not isinstance(v, bool)),
    "task_id": ("task_id", lambda v: isinstance(v, int) and not isinstance(v, bool)),
    "worker_id": (
        "worker_id",
        lambda v: isinstance(v, int) and not isinstance(v, bool),
    ),
    "task": ("task", lambda v: isinstance(v, list)),
    "worker": ("worker", lambda v: isinstance(v, list)),
}


def encode_request(request: Request) -> bytes:
    """One typed request as a newline-terminated JSON-lines frame."""
    frame: Dict[str, Any] = {
        "v": PROTOCOL_VERSION,
        "id": request.request_id,
        "op": request.op,
    }
    for field in fields(request):
        if field.name == "request_id":
            continue
        value = getattr(request, field.name)
        if field.name == "task":
            value = task_row(value)
        elif field.name == "worker":
            value = worker_row(value)
        frame[field.name] = value
    return (json.dumps(frame) + "\n").encode("utf-8")


def decode_request(line: bytes) -> Request:
    """Parse and validate one frame into its typed request.

    Raises:
        ProtocolError: on malformed JSON, a version or op mismatch, or a
            missing/mistyped field — with a ``code`` naming which.
    """
    try:
        frame = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("json", f"unparseable frame: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError("json", "frame is not a JSON object")
    if frame.get("v") != PROTOCOL_VERSION:
        raise ProtocolError(
            "version",
            f"protocol version {frame.get('v')!r} is not the supported "
            f"version {PROTOCOL_VERSION}",
        )
    op = frame.get("op")
    request_cls = REQUEST_TYPES.get(op)
    if request_cls is None:
        raise ProtocolError("op", f"unknown op {op!r}")
    request_id = frame.get("id")
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise ProtocolError("field", "missing or non-integer request id")
    kwargs: Dict[str, Any] = {"request_id": request_id}
    for field in fields(request_cls):
        if field.name == "request_id":
            continue
        wire_name, check = _FIELD_CODECS[field.name]
        if wire_name not in frame:
            raise ProtocolError("field", f"{op}: missing field {wire_name!r}")
        value = frame[wire_name]
        if not check(value):
            raise ProtocolError("field", f"{op}: bad value for {wire_name!r}")
        if field.name == "task":
            try:
                value = task_from_row(value)
            except (TypeError, ValueError, IndexError) as exc:
                raise ProtocolError("field", f"{op}: bad task row: {exc}") from exc
        elif field.name == "worker":
            try:
                value = worker_from_row(value)
            except (TypeError, ValueError, IndexError) as exc:
                raise ProtocolError(
                    "field", f"{op}: bad worker row: {exc}"
                ) from exc
        kwargs[field.name] = value
    return request_cls(**kwargs)


# ---------------------------------------------------------------------- #
# Responses and pushes
# ---------------------------------------------------------------------- #


def encode_ok(request_id: int, **payload: Any) -> bytes:
    """A success response frame for ``request_id``."""
    frame = {"v": PROTOCOL_VERSION, "id": request_id, "ok": True}
    frame.update(payload)
    return (json.dumps(frame) + "\n").encode("utf-8")


def encode_error(request_id: Optional[int], code: str, message: str) -> bytes:
    """An error response frame (``request_id`` may be unknowable)."""
    frame = {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "code": code,
        "error": message,
    }
    return (json.dumps(frame) + "\n").encode("utf-8")


def epoch_payload(result: EpochResult) -> Dict[str, Any]:
    """An :class:`~repro.engine.engine.EpochResult` as wire fields.

    The dispatch map is sorted ``[worker_id, task_id]`` pairs — the same
    canonical shape the durable log's epoch markers record, so wire
    consumers and cold analytics agree byte for byte.
    """
    return {
        "now": result.now,
        "mode": result.mode,
        "objective": [
            result.objective.min_reliability,
            result.objective.total_std,
        ],
        "dispatch": sorted([w, t] for w, t in result.dispatch.items()),
        "expired": sorted(result.expired),
        "num_tasks": result.num_tasks,
        "num_workers": result.num_workers,
        "num_pairs": result.num_pairs,
    }


def encode_push(kind: str, payload: Dict[str, Any]) -> bytes:
    """A server-initiated push frame (no correlation id)."""
    frame: Dict[str, Any] = {"v": PROTOCOL_VERSION, "push": kind}
    frame.update(payload)
    return (json.dumps(frame) + "\n").encode("utf-8")


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one server-side frame (response or push) for clients.

    Raises:
        ProtocolError: on malformed JSON or a version mismatch.
    """
    try:
        frame = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("json", f"unparseable frame: {exc}") from exc
    if not isinstance(frame, dict) or frame.get("v") != PROTOCOL_VERSION:
        raise ProtocolError("version", "unexpected frame version")
    return frame


def plan_from_payload(payload: Dict[str, Any]) -> List[Tuple[int, int]]:
    """The canonical ``(worker_id, task_id)`` plan list of an epoch frame."""
    return [(int(w), int(t)) for w, t in payload["dispatch"]]
