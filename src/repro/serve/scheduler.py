"""Deadline-driven epoch scheduling over a thread-offloaded engine.

The engine is deliberately single-threaded (its grid, slabs and solver
state mutate in lock-step), while the server's ingestion is an asyncio
event loop that must keep accepting pings during a solve.  This module
is the boundary between the two:

* :class:`EngineDriver` serialises *all* engine access behind one
  ``threading.Lock`` and runs it off the event loop (``asyncio
  .to_thread``), so a multi-second epoch never blocks frame reads —
  ingestion keeps landing in the batcher, and the next flush delivers
  it.  The flush + epoch pair is atomic under the lock: a drained batch
  and its tick flow through one :class:`repro.engine.scheduler.
  EventQueue`, whose per-instant batches hit the engine's
  ``coalesce_churn`` path exactly as an in-process driver's would.
* :class:`DeadlineLoop` is the re-planning clock of a deployment: every
  ``interval`` wall seconds it advances the session's virtual clock by
  ``epoch_dt`` and runs a flush + epoch, skipping (and counting) a
  deadline whose predecessor is still solving instead of ever
  re-entering the engine.

Decisions stream back through a caller-provided broadcast callback, so
the loop knows nothing about connections.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Awaitable, Callable, List, Optional, Sequence

from repro.engine import events as ev
from repro.engine.engine import EpochResult
from repro.engine.scheduler import EventQueue
from repro.serve.batcher import IngestBatcher, ServeMetrics


class EngineDriver:
    """Thread-safe façade over one engine: flush batches, run epochs.

    Args:
        engine: the :class:`repro.engine.engine.AssignmentEngine` (or
            sharded subclass) being served.  The driver becomes the only
            sanctioned way to touch it while the server runs.
        batcher: the ingestion buffer drained at each epoch.
        metrics: the service-tier counters (epoch counts land here).
    """

    def __init__(
        self,
        engine,
        batcher: IngestBatcher,
        metrics: ServeMetrics,
    ) -> None:
        self.engine = engine
        self.batcher = batcher
        self.metrics = metrics
        #: Serialises every engine touch; epochs can take seconds, so the
        #: lock is taken in a worker thread, never on the event loop.
        self.lock = threading.Lock()
        #: Coroutine-level ordering: drain + apply must be atomic across
        #: the await, or two concurrent epoch requests could drain in one
        #: order and acquire the thread lock in the other.
        self._order = asyncio.Lock()

    def _flush_and_epoch(
        self, batch: Sequence[ev.Event], now: float
    ) -> EpochResult:
        """Apply a drained batch plus one tick atomically (worker thread)."""
        with self.lock:
            queue = EventQueue(batch)
            queue.push(ev.EpochTick(time=now))
            results = self.engine.process(queue)
        assert len(results) == 1  # exactly the tick we pushed
        return results[0]

    async def run_epoch(self, now: float) -> EpochResult:
        """Drain the batcher and re-plan at ``now``, off-thread.

        The drain happens on the event loop (the batcher is loop-owned),
        the engine work in a thread; events that arrive while the solve
        runs buffer for the next epoch — exactly the semantics of churn
        landing between two of Figure 10's re-planning instants.
        """
        async with self._order:
            batch = self.batcher.drain()
            result = await asyncio.to_thread(self._flush_and_epoch, batch, now)
        self.metrics.epochs += 1
        return result

    async def run_expire(self, now: float) -> List[int]:
        """Run an expiry sweep at ``now`` off-thread (pending churn first)."""
        async with self._order:
            batch = self.batcher.drain()

            def _flush_and_expire() -> List[int]:
                with self.lock:
                    if batch:
                        self.engine.apply_batch(batch)
                    return self.engine.expire_tasks(now)

            return await asyncio.to_thread(_flush_and_expire)


class DeadlineLoop:
    """The wall-clock re-planning cadence of a deployed session.

    Args:
        driver: the :class:`EngineDriver` epochs run through.
        interval: wall seconds between deadline ticks.
        epoch_dt: how far the session's virtual clock advances per tick
            (the engine's ``now`` is session time, not wall time, so a
            replayed trace and a live deployment share one clock axis).
        broadcast: awaited with each epoch's result; the server fans the
            decision frame out to subscribers here.
        start_now: virtual clock of the first tick (a resumed session
            continues from the restored engine's watermark).
    """

    def __init__(
        self,
        driver: EngineDriver,
        interval: float,
        epoch_dt: float = 1.0,
        broadcast: Optional[Callable[[EpochResult], Awaitable[None]]] = None,
        start_now: float = 0.0,
    ) -> None:
        if interval <= 0.0:
            raise ValueError("interval must be positive")
        self.driver = driver
        self.interval = interval
        self.epoch_dt = epoch_dt
        self.broadcast = broadcast
        self.next_now = start_now
        self._task: Optional[asyncio.Task] = None
        self._stopping = asyncio.Event()
        #: Guard against a tick firing while the previous epoch solves.
        self._epoch_running = False

    @property
    def running(self) -> bool:
        """True while the loop task is live."""
        return self._task is not None and not self._task.done()

    def start(self) -> None:
        """Spawn the loop task on the running event loop."""
        if self.running:
            raise RuntimeError("deadline loop already running")
        self._stopping.clear()
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Stop ticking; an in-flight epoch completes first."""
        self._stopping.set()
        if self._task is not None:
            await self._task
            self._task = None

    async def tick(self) -> Optional[EpochResult]:
        """Run one deadline epoch now (shared with the loop body).

        Returns ``None`` — and counts a deadline miss — when the
        previous epoch is still solving: the engine is never re-entered,
        the session clock does not advance, and the skipped work folds
        into the next tick's flush.
        """
        if self._epoch_running:
            self.driver.metrics.deadline_misses += 1
            return None
        self._epoch_running = True
        try:
            now = self.next_now
            result = await self.driver.run_epoch(now)
            self.next_now = now + self.epoch_dt
        finally:
            self._epoch_running = False
        if self.broadcast is not None:
            await self.broadcast(result)
        return result

    async def _run(self) -> None:
        """Tick every ``interval`` wall seconds until stopped."""
        loop = asyncio.get_running_loop()
        next_deadline = loop.time() + self.interval
        while not self._stopping.is_set():
            delay = next_deadline - loop.time()
            if delay > 0:
                try:
                    await asyncio.wait_for(
                        self._stopping.wait(), timeout=delay
                    )
                    break  # stop() won the race
                except asyncio.TimeoutError:
                    pass
            next_deadline += self.interval
            await self.tick()
