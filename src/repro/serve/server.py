"""The asyncio ingestion server: JSON-lines over TCP, one engine behind.

:class:`AssignmentServer` is the deployment face of the engine stack:
connections stream typed requests (:mod:`repro.serve.protocol`), churn
lands in the bounded :class:`repro.serve.batcher.IngestBatcher`, epochs
run through the thread-offloaded :class:`repro.serve.scheduler.
EngineDriver` — either on the wall-clock :class:`~repro.serve.scheduler.
DeadlineLoop` or on explicit ``epoch`` requests (the replayable mode the
differential tests pin) — and every decision streams to subscribed
connections.

Overload policy, end to end:

* **Load shed** — a stale in-place worker ping superseded by a newer one
  folds away in the batcher (``ServeMetrics.updates_shed``) before it
  can cost a grid-cell invalidation.
* **Admission control** — when the batcher is full, a non-foldable event
  either backpressures the producing connection (``admission="wait"``:
  the handler awaits space, so the TCP window throttles the client) or
  is refused with an ``overloaded`` error (``admission="reject"``).
  Either way the engine is never driven past its buffer.
* **Connection flow control** — each subscriber owns a bounded outbox
  drained by its own writer task (with TCP backpressure via ``drain``);
  a slow subscriber loses oldest-first decision frames
  (``frames_dropped``) instead of stalling the epoch loop.

Durability passes straight through: ``durable_path=`` hands the engine a
WAL (:mod:`repro.engine.durable`), and :meth:`AssignmentServer.resume`
rebuilds a SIGKILLed server from that log mid-session — the remaining
epochs are bit-identical to an uninterrupted run
(``tests/test_serve.py::TestKillAndResume``).
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Set

from repro.engine.durable import restore_engine
from repro.engine.engine import AssignmentEngine, EpochResult
from repro.engine import events as ev
from repro.serve import protocol as proto
from repro.serve.batcher import DEFAULT_CAPACITY, IngestBatcher, ServeMetrics
from repro.serve.scheduler import DeadlineLoop, EngineDriver

#: Decision frames a slow subscriber may queue before oldest-first drops.
SUBSCRIBER_OUTBOX = 256


class _Connection:
    """Per-connection state: the writer, its outbox and its pump task."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.outbox: asyncio.Queue = asyncio.Queue(maxsize=SUBSCRIBER_OUTBOX)
        self.pump: Optional[asyncio.Task] = None
        self.subscribed = False

    async def run_pump(self) -> None:
        """Drain the outbox to the socket with TCP backpressure."""
        try:
            while True:
                frame = await self.outbox.get()
                if frame is None:
                    break
                self.writer.write(frame)
                await self.writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass

    def send(self, frame: bytes, metrics: ServeMetrics) -> None:
        """Queue a frame, dropping the oldest push when the outbox is full."""
        while True:
            try:
                self.outbox.put_nowait(frame)
                return
            except asyncio.QueueFull:
                try:
                    self.outbox.get_nowait()
                    metrics.frames_dropped += 1
                except asyncio.QueueEmpty:  # raced with the pump
                    continue


class AssignmentServer:
    """Serve one assignment engine over a JSON-lines TCP endpoint.

    Args:
        engine: the engine to serve; built by the caller (tests pass a
            configured one) or by :meth:`resume`.  ``durable_path=`` on
            the engine makes the whole service crash-recoverable.
        host / port: bind address (port 0 picks a free port; see
            ``bound_port`` after :meth:`start`).
        capacity: batcher bound (see :class:`~repro.serve.batcher.
            IngestBatcher`).
        admission: ``"wait"`` (default) backpressures a producer when the
            buffer is full; ``"reject"`` answers ``overloaded`` instead.
        epoch_interval: wall seconds between deadline epochs; ``None``
            (default) runs no clock — epochs happen on explicit ``epoch``
            requests, the mode replayable traces use.
        epoch_dt: virtual session time each deadline epoch advances.
    """

    def __init__(
        self,
        engine: AssignmentEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        capacity: int = DEFAULT_CAPACITY,
        admission: str = "wait",
        epoch_interval: Optional[float] = None,
        epoch_dt: float = 1.0,
    ) -> None:
        if admission not in ("wait", "reject"):
            raise ValueError(f"unknown admission policy {admission!r}")
        self.engine = engine
        self.host = host
        self.port = port
        self.admission = admission
        self.metrics = ServeMetrics()
        self.batcher = IngestBatcher(capacity=capacity, metrics=self.metrics)
        self.driver = EngineDriver(engine, self.batcher, self.metrics)
        self.deadline_loop: Optional[DeadlineLoop] = None
        if epoch_interval is not None:
            self.deadline_loop = DeadlineLoop(
                driver=self.driver,
                interval=epoch_interval,
                epoch_dt=epoch_dt,
                broadcast=self._broadcast,
                start_now=engine._clock + epoch_dt if engine.metrics.epochs else 0.0,
            )
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Set[_Connection] = set()
        self._space = asyncio.Condition()
        self._stopped = asyncio.Event()
        # The ingest-time id registries: pings resolve arrive-vs-update
        # against these, and invalid churn is refused before it can reach
        # the engine half-applied.  Seeded from the engine so a resumed
        # session knows its live population.
        self._known_workers: Set[int] = set(engine.workers)
        self._known_tasks: Set[int] = set(engine.tasks)
        self._held: Set[int] = set(engine.held_workers)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @classmethod
    def resume(
        cls,
        durable_path,
        solver=None,
        solve_executor=None,
        shard_executor: Optional[str] = None,
        **server_kwargs: Any,
    ) -> "AssignmentServer":
        """A server over the engine recovered from a durable log.

        The engine comes back via :func:`repro.engine.durable.
        restore_engine` — snapshot + tail replay, adopting the log — so
        the served session continues exactly where the killed one
        stopped: same plans, same counters, same RNG position.
        """
        engine = restore_engine(
            durable_path,
            solver=solver,
            solve_executor=solve_executor,
            shard_executor=shard_executor,
        )
        return cls(engine, **server_kwargs)

    @property
    def bound_port(self) -> int:
        """The actual listening port (after :meth:`start`)."""
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind the listener and start the deadline loop, if configured."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        if self.deadline_loop is not None:
            self.deadline_loop.start()

    async def stop(self) -> None:
        """Stop the clock, close connections and the engine."""
        if self.deadline_loop is not None and self.deadline_loop.running:
            await self.deadline_loop.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for connection in list(self._connections):
            await self._close_connection(connection)

        def _close_engine() -> None:
            # Take the driver lock so close never races an epoch thread.
            with self.driver.lock:
                self.engine.close()

        await asyncio.to_thread(_close_engine)
        self._stopped.set()

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` has completed (``shutdown`` op)."""
        await self._stopped.wait()

    async def _close_connection(self, connection: _Connection) -> None:
        self._connections.discard(connection)
        if connection.pump is not None:
            connection.outbox.put_nowait(None)
            try:
                await asyncio.wait_for(connection.pump, timeout=1.0)
            except asyncio.TimeoutError:
                connection.pump.cancel()
        try:
            connection.writer.close()
            await connection.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------ #
    # Broadcast + epochs
    # ------------------------------------------------------------------ #

    async def _broadcast(self, result: EpochResult) -> None:
        """Push one epoch's decision frame to every subscriber."""
        payload = proto.epoch_payload(result)
        frame = proto.encode_push("epoch", payload)
        for connection in list(self._connections):
            if connection.subscribed:
                connection.send(frame, self.metrics)
                self.metrics.frames_streamed += 1
        # An epoch drained the batcher: wake producers blocked on space.
        async with self._space:
            self._space.notify_all()

    async def _run_epoch(self, now: float) -> EpochResult:
        result = await self.driver.run_epoch(now)
        self._known_tasks.difference_update(result.expired)
        await self._broadcast(result)
        return result

    # ------------------------------------------------------------------ #
    # Request handling
    # ------------------------------------------------------------------ #

    def _resolve_event(self, request: proto.Request) -> ev.Event:
        """Map one validated ingest request to its typed engine event.

        Pure validation: the id registries are only *read* here.  The
        bookkeeping happens in :meth:`_commit_event` once admission
        succeeds, so a load-shed rejection leaves no phantom
        registration behind (a later ping of a rejected-arrival worker
        must still resolve to an arrival, not an update of a worker the
        engine never saw).

        Raises:
            ValueError: when the request is inconsistent with the live id
                registries (unknown worker, duplicate task, ...).
        """
        if isinstance(request, proto.WorkerPing):
            if request.worker.worker_id in self._known_workers:
                return ev.WorkerUpdate(time=request.time, worker=request.worker)
            return ev.WorkerArrive(time=request.time, worker=request.worker)
        if isinstance(request, proto.WorkerLeave):
            if request.worker_id not in self._known_workers:
                raise ValueError(f"worker {request.worker_id} not registered")
            return ev.WorkerLeave(time=request.time, worker_id=request.worker_id)
        if isinstance(request, proto.WorkerHold):
            if request.worker_id not in self._known_workers:
                raise ValueError(f"worker {request.worker_id} not registered")
            return ev.WorkerHold(time=request.time, worker_id=request.worker_id)
        if isinstance(request, proto.WorkerRelease):
            if request.worker_id not in self._known_workers:
                raise ValueError(f"worker {request.worker_id} not registered")
            return ev.WorkerRelease(
                time=request.time, worker_id=request.worker_id
            )
        if isinstance(request, proto.SubmitTask):
            if request.task.task_id in self._known_tasks:
                raise ValueError(
                    f"task {request.task.task_id} already registered"
                )
            return ev.TaskArrive(time=request.time, task=request.task)
        if isinstance(request, proto.WithdrawTask):
            if request.task_id not in self._known_tasks:
                raise ValueError(f"task {request.task_id} not registered")
            return ev.TaskWithdraw(time=request.time, task_id=request.task_id)
        if isinstance(request, proto.Expire):
            return ev.ExpireTasks(time=request.time)
        raise TypeError(f"not an ingest request: {type(request).__name__}")

    def _commit_event(self, event: ev.Event) -> None:
        """Registry bookkeeping for an *admitted* event."""
        if isinstance(event, ev.WorkerArrive):
            self._known_workers.add(event.worker.worker_id)
        elif isinstance(event, ev.WorkerLeave):
            self._known_workers.discard(event.worker_id)
            self._held.discard(event.worker_id)
        elif isinstance(event, ev.WorkerHold):
            self._held.add(event.worker_id)
        elif isinstance(event, ev.WorkerRelease):
            self._held.discard(event.worker_id)
        elif isinstance(event, ev.TaskArrive):
            self._known_tasks.add(event.task.task_id)
        elif isinstance(event, ev.TaskWithdraw):
            self._known_tasks.discard(event.task_id)

    async def _admit(self, event: ev.Event) -> bool:
        """Admit one event under the configured overload policy."""
        if self.batcher.try_add(event):
            return True
        if self.admission == "reject":
            self.metrics.admission_rejects += 1
            return False
        self.metrics.admission_waits += 1
        async with self._space:
            while not self.batcher.try_add(event):
                await self._space.wait()
        return True

    async def _handle_request(
        self, request: proto.Request, connection: _Connection
    ) -> bytes:
        """One validated request to one response frame."""
        self.metrics.count_request(request.op)
        if isinstance(request, proto.Epoch):
            result = await self._run_epoch(request.time)
            return proto.encode_ok(
                request.request_id, **proto.epoch_payload(result)
            )
        if isinstance(request, proto.Subscribe):
            connection.subscribed = True
            return proto.encode_ok(request.request_id)
        if isinstance(request, proto.Stats):
            return proto.encode_ok(
                request.request_id,
                serve=self.metrics.counters(),
                engine=self.engine.metrics.counters(),
                pending=len(self.batcher),
            )
        if isinstance(request, proto.Shutdown):
            asyncio.get_running_loop().create_task(self.stop())
            return proto.encode_ok(request.request_id)
        # Everything else is ingestion: registry-validate, map, admit.
        try:
            event = self._resolve_event(request)
        except ValueError as exc:
            self.metrics.rejected_invalid += 1
            return proto.encode_error(request.request_id, "invalid", str(exc))
        if isinstance(request, proto.Expire):
            expired = await self.driver.run_expire(request.time)
            self._known_tasks.difference_update(expired)
            return proto.encode_ok(request.request_id, expired=sorted(expired))
        if not await self._admit(event):
            return proto.encode_error(
                request.request_id, "overloaded", "ingestion queue is full"
            )
        self._commit_event(event)
        return proto.encode_ok(request.request_id, pending=len(self.batcher))

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Per-connection read loop: decode, handle, respond, repeat."""
        connection = _Connection(writer)
        connection.pump = asyncio.get_running_loop().create_task(
            connection.run_pump()
        )
        self._connections.add(connection)
        self.metrics.connections += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, ValueError):
                    # ValueError: the stream limit tripped on an
                    # overlong line — drop the connection rather than
                    # resynchronise mid-frame.
                    break
                if not line:
                    break
                if len(line) > proto.MAX_FRAME_BYTES:
                    self.metrics.protocol_errors += 1
                    connection.send(
                        proto.encode_error(None, "frame", "frame too large"),
                        self.metrics,
                    )
                    continue
                try:
                    request = proto.decode_request(line)
                except proto.ProtocolError as exc:
                    self.metrics.protocol_errors += 1
                    connection.send(
                        proto.encode_error(None, exc.code, str(exc)),
                        self.metrics,
                    )
                    continue
                response = await self._handle_request(request, connection)
                connection.send(response, self.metrics)
        finally:
            await self._close_connection(connection)

    # ------------------------------------------------------------------ #
    # Context manager sugar for in-process tests and examples
    # ------------------------------------------------------------------ #

    async def __aenter__(self) -> "AssignmentServer":
        """Start serving; the bound port is available afterwards."""
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        """Stop the server and close the engine."""
        if not self._stopped.is_set():
            await self.stop()


def snapshot_counters(engine) -> Dict[str, object]:
    """The engine's replay-deterministic counters (differential tests)."""
    return engine.metrics.counters()
