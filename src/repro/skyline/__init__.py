"""Pareto-dominance utilities (skyline operator, top-k dominating scores).

The paper ranks bi-objective candidates the way the skyline literature does
([13] Börzsönyi et al. for dominance filtering, [22] Yiu & Mamoulis for
dominating-count ranking): filter out dominated candidates, then prefer the
candidate that dominates the most others.
"""

from repro.skyline.dominance import (
    best_index_by_dominance,
    dominance_counts,
    dominates_tuple,
    skyline_indices,
)

__all__ = [
    "best_index_by_dominance",
    "dominance_counts",
    "dominates_tuple",
    "skyline_indices",
]
