"""Dominance filtering and dominating-count ranking over 2-D score vectors.

All functions treat *larger as better* in every coordinate, matching the
paper's (reliability increase, diversity increase) and
(min reliability, total STD) pairs.  Implementations are quadratic in the
candidate count — candidate sets here are per-round greedy pair lists and
sample pools, both small by construction; the grid index keeps them so.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

#: Tolerance applied to every comparison so that candidates differing only
#: by floating-point noise count as ties rather than dominations.
EPS = 1e-12

Score = Tuple[float, float]


def dominates_tuple(a: Score, b: Score, eps: float = EPS) -> bool:
    """Whether score ``a`` Pareto-dominates score ``b``.

    ``a`` must be at least as large as ``b`` in both coordinates and
    strictly larger in at least one (beyond ``eps``).
    """
    if a[0] < b[0] - eps or a[1] < b[1] - eps:
        return False
    return a[0] > b[0] + eps or a[1] > b[1] + eps


def skyline_indices(scores: Sequence[Score], eps: float = EPS) -> List[int]:
    """Indices of the non-dominated scores, in input order.

    Deliberately the O(n^2) definition rather than the sort-and-sweep
    skyline: with an epsilon-tolerant dominance relation the sweep's
    invariant breaks on near-ties of the sort coordinate (a later point can
    dominate an earlier kept one), and the candidate sets here are small —
    per-round greedy pair lists and sample pools — while the companion
    :func:`dominance_counts` is quadratic anyway.
    """
    return [
        i
        for i, score in enumerate(scores)
        if not any(
            dominates_tuple(other, score, eps)
            for j, other in enumerate(scores)
            if j != i
        )
    ]


def dominance_counts(scores: Sequence[Score], eps: float = EPS) -> List[int]:
    """For each score, how many other scores it dominates.

    This is the [22]-style ranking the greedy and sampling algorithms use:
    a candidate that beats many alternatives is a safer pick than one that
    merely sits on the skyline edge.
    """
    n = len(scores)
    counts = [0] * n
    for i in range(n):
        a = scores[i]
        for j in range(n):
            if i != j and dominates_tuple(a, scores[j], eps):
                counts[i] += 1
    return counts


def best_index_by_dominance(scores: Sequence[Score], eps: float = EPS) -> int:
    """Index of the best candidate: skyline member with top dominating count.

    Ties break towards the larger score tuple, then the smaller index, so
    the choice is deterministic.

    Raises:
        ValueError: if ``scores`` is empty.
    """
    if not scores:
        raise ValueError("no candidates to choose from")
    sky = skyline_indices(scores, eps)
    counts = dominance_counts(scores, eps)
    return max(sky, key=lambda i: (counts[i], scores[i], -i))
