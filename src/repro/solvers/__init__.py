"""Solver-side incrementality for the long-lived engine era.

``repro.algorithms`` holds the paper-faithful *one-shot* solvers: each
``solve`` call looks at a problem instance cold.  This package layers the
operational counterpart on top — solvers that exploit what the previous
epoch already computed:

``incremental``
    Warm-start variants of GREEDY and SAMPLING
    (:class:`~repro.solvers.incremental.WarmStartGreedySolver`,
    :class:`~repro.solvers.incremental.WarmStartSamplingSolver`): repair
    the previous epoch's plan against the current valid-pair graph,
    re-score only workers whose candidate sets changed, and fall back to a
    full solve when the churn delta is too large for repair to pay off.

The :class:`repro.engine.engine.AssignmentEngine` drives these through its
``solve_mode="warm"`` epoch path; the classes also work standalone for
callers that manage their own epochs.
"""

from repro.solvers.incremental import (
    EpochDelta,
    PreviousPlan,
    WarmStartGreedySolver,
    WarmStartSamplingSolver,
    WarmStartSolver,
    candidate_signatures,
    dirty_workers,
    repair_assignment,
    warm_variant,
)

__all__ = [
    "EpochDelta",
    "PreviousPlan",
    "WarmStartGreedySolver",
    "WarmStartSamplingSolver",
    "WarmStartSolver",
    "candidate_signatures",
    "dirty_workers",
    "repair_assignment",
    "warm_variant",
]
