"""Warm-start GREEDY and SAMPLING: repair the previous epoch's plan.

Under the Section 7.2 operating mode the engine re-solves every
``t_interval`` even when only a handful of entities churned in between —
after PR 2 made event *application* amortised-O(delta), from-scratch
solver time dominates long-lived sessions.  The previous epoch's
assignment is a near-feasible starting plan whenever churn is small, so
the warm-start solvers here reuse it instead of recomputing:

1. **Diff** — compare each worker's current candidate set (task ids and
   effective arrivals) against the previous epoch's
   (:func:`candidate_signatures` / :func:`dirty_workers`); a worker whose
   set is unchanged would be scored on exactly the same numbers as last
   time.
2. **Repair** — drop plan entries touching dead or invalidated pairs
   (:func:`repair_assignment`); everything else carries over verbatim.
3. **Re-insert** — re-score only the dirty workers:
   :class:`WarmStartGreedySolver` runs the ordinary greedy rounds over
   just those workers on top of the repaired plan, and
   :class:`WarmStartSamplingSolver` enters the repaired plan as an extra
   candidate next to freshly drawn samples.

The :class:`repro.engine.engine.AssignmentEngine` drives this behind
``solve_mode="warm"``, falling back to a full solve whenever the epoch's
churn fraction exceeds its ``warm_churn_threshold`` (repairing a mostly
invalidated plan costs more than solving cold) — see the engine docs and
``docs/ARCHITECTURE.md`` for the epoch lifecycle.  Equivalence and
quality are pinned by ``tests/test_warmstart.py``; the speedup is
recorded by ``benchmarks/bench_warmstart.py`` into
``BENCH_warmstart.json``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.algorithms.base import RngLike, Solver, SolverResult, make_rng
from repro.algorithms.greedy import GreedySolver
from repro.algorithms.sampling import SamplingSolver
from repro.core.assignment import Assignment
from repro.core.objectives import IncrementalEvaluator, evaluate_assignment
from repro.core.problem import RdbscProblem
from repro.skyline.dominance import best_index_by_dominance

#: A worker's candidate signature: its valid (task id, effective arrival)
#: pairs in canonical (sorted) order.  Two epochs in which a worker has the
#: same signature would score that worker on exactly the same numbers.
Signature = Tuple[Tuple[int, float], ...]


@dataclass
class EpochDelta:
    """Accumulated churn between two consecutive epochs.

    The engine notes every state change here as it applies events; at the
    next epoch tick the delta decides between warm repair and full-solve
    fallback, then :meth:`clear` resets it for the next interval.  Entity
    ids are kept as sets so an entity churned repeatedly within one
    interval counts once.
    """

    workers_arrived: Set[int] = field(default_factory=set)
    workers_left: Set[int] = field(default_factory=set)
    workers_updated: Set[int] = field(default_factory=set)
    #: Workers touched only by the engine's own per-epoch re-anchor sweep
    #: (departure pulled to ``now``, position unchanged).  They are forced
    #: dirty — their arrivals drift, so the warm solvers must re-score
    #: them — but they are *endogenous clock bookkeeping*, not external
    #: churn: every clocked deployment re-anchors its idle frontier every
    #: epoch, and counting that against ``warm_churn_threshold`` would
    #: push warm mode into permanent fallback regardless of how quiet the
    #: actual workload is.
    workers_reanchored: Set[int] = field(default_factory=set)
    #: Workers *held* since the previous epoch (dispatched in-flight, see
    #: :meth:`repro.engine.engine.AssignmentEngine.hold_worker`).  A hold
    #: is plan-entry fulfilment, not invalidation: the previous epoch
    #: chose the worker for exactly the task it is now travelling to, the
    #: contribution re-enters the next epoch as a pinned profile, and no
    #: other entry's validity changes — so holds are forced dirty (their
    #: candidates vanish) but do not count toward the fallback fraction.
    #: The *release* at trip completion is ordinary update churn.
    workers_held: Set[int] = field(default_factory=set)
    tasks_arrived: Set[int] = field(default_factory=set)
    tasks_removed: Set[int] = field(default_factory=set)

    def churn_size(self) -> int:
        """Distinct externally churned entities since the previous epoch.

        Re-anchor-only workers are excluded (see ``workers_reanchored``);
        a worker that also arrived or was externally updated in the same
        interval still counts once.
        """
        workers = self.workers_arrived | self.workers_left | self.workers_updated
        tasks = self.tasks_arrived | self.tasks_removed
        return len(workers) + len(tasks)

    def churn_fraction(self, population: int) -> float:
        """Churn size relative to the previous epoch's live population."""
        return self.churn_size() / max(1, population)

    def touched_workers(self) -> Set[int]:
        """Workers the delta names directly (arrived, updated, re-anchored).

        Updated workers are forced dirty even when their candidate
        *signature* is unchanged: an in-place confidence refresh moves no
        arrival, yet can change which task the worker should serve.
        Re-anchored and held workers are forced dirty too — arrivals
        moved with the clock, or candidates vanished into a hold — even
        though neither counts as churn.
        """
        return (
            self.workers_arrived
            | self.workers_updated
            | self.workers_reanchored
            | self.workers_held
        )

    def clear(self) -> None:
        """Reset all sets (called by the engine after each epoch)."""
        self.workers_arrived.clear()
        self.workers_left.clear()
        self.workers_updated.clear()
        self.workers_reanchored.clear()
        self.workers_held.clear()
        self.tasks_arrived.clear()
        self.tasks_removed.clear()


@dataclass(frozen=True)
class PreviousPlan:
    """What one epoch hands the next: the plan and its scoring context.

    Attributes:
        assignment: the epoch's solved assignment over *real* workers
            (virtual pinned workers are regenerated per epoch and excluded).
        signatures: per-worker candidate signatures of the solved
            sub-instance, for the next epoch's dirty diff.
        population: live entity count (tasks + real workers) at solve
            time — the denominator of the churn-fraction fallback test.
    """

    assignment: Assignment
    signatures: Dict[int, Signature]
    population: int


def candidate_signatures(
    problem: RdbscProblem, exclude: FrozenSet[int] = frozenset()
) -> Dict[int, Signature]:
    """Each worker's canonical (task id, arrival) candidate signature.

    O(pairs) over the problem's already-canonicalised candidate lists.
    Workers in ``exclude`` (the engine passes its per-epoch virtual worker
    ids) are left out, as are zero-degree workers — a worker with no valid
    task has the empty signature implicitly, so arrivals into and out of
    degree zero still diff as changes.
    """
    signatures: Dict[int, Signature] = {}
    for worker in problem.workers:
        worker_id = worker.worker_id
        if worker_id in exclude:
            continue
        candidates = problem.candidate_tasks(worker_id)
        if not candidates:
            continue
        signatures[worker_id] = tuple(
            (task_id, problem.arrival(task_id, worker_id)) for task_id in candidates
        )
    return signatures


def dirty_workers(
    problem: RdbscProblem,
    plan: PreviousPlan,
    signatures: Optional[Dict[int, Signature]] = None,
    forced: FrozenSet[int] = frozenset(),
) -> Set[int]:
    """Workers whose scoring context changed since the previous epoch.

    A worker is dirty when its candidate signature differs from the plan's
    (it is new, a task in its reach arrived/expired/was withdrawn, it
    moved, or a forbidden-pair filter changed its edges) or when the
    engine forces it (``forced`` — in-place updates such as confidence
    refreshes, which can leave every arrival untouched).  Clean workers
    would be re-scored on exactly the same numbers as last epoch, so the
    warm solvers leave their plan entries in place.
    """
    current = signatures if signatures is not None else candidate_signatures(problem)
    dirty: Set[int] = {
        worker_id
        for worker_id, signature in current.items()
        if plan.signatures.get(worker_id) != signature
    }
    for worker_id in forced:
        if worker_id in problem.workers_by_id:
            dirty.add(worker_id)
    return dirty


def repair_assignment(
    problem: RdbscProblem,
    previous: Assignment,
    dirty: FrozenSet[int] = frozenset(),
) -> Assignment:
    """The previous plan with dead and invalidated entries dropped.

    Keeps every (task, worker) entry whose endpoints are still live, whose
    edge is still valid in ``problem``, and whose worker is not in
    ``dirty``; iteration is in sorted pair order so the repaired plan is
    independent of the previous assignment's insertion history.
    """
    repaired = Assignment()
    for task_id, worker_id in sorted(previous.pairs()):
        if worker_id in dirty:
            continue
        if worker_id not in problem.workers_by_id:
            continue
        if not problem.is_valid_pair(task_id, worker_id):
            continue
        repaired.assign(task_id, worker_id)
    return repaired


class WarmStartSolver(Solver):
    """Base class: a solver that can repair a previous epoch's plan.

    Wraps a one-shot base solver.  :meth:`solve` simply delegates to the
    base (a warm-start solver is a drop-in :class:`Solver`, and the
    engine's full-solve fallback uses exactly this path); subclasses add
    :meth:`warm_solve`, which additionally receives the previous plan.
    """

    def __init__(self, base: Solver) -> None:
        self.base = base
        self.name = f"WARM+{base.name}"

    def solve(self, problem: RdbscProblem, rng: RngLike = None) -> SolverResult:
        """Cold solve: delegate to the wrapped base solver."""
        return self.base.solve(problem, rng=rng)

    def warm_solve(
        self,
        problem: RdbscProblem,
        plan: PreviousPlan,
        forced_dirty: FrozenSet[int] = frozenset(),
        rng: RngLike = None,
        log_weights: Optional[Dict[int, float]] = None,
        signatures: Optional[Dict[int, Signature]] = None,
    ) -> SolverResult:
        """Solve ``problem`` starting from the previous epoch's plan.

        Args:
            problem: the current epoch's sub-instance.
            plan: the previous epoch's plan and candidate signatures.
            forced_dirty: worker ids the caller knows changed even if their
                signatures did not (in-place updates).
            rng: seed/generator, as for :meth:`solve`.
            log_weights: optional Eq. 8 weight map for workers that must be
                re-scored (the engine gathers it from the packed slot
                slabs on the numpy backend); ignored by solvers that do
                not score with it.
            signatures: the problem's :func:`candidate_signatures`, when
                the caller already computed them (the engine shares one
                pass per epoch between the dirty diff here and the next
                plan it stores); computed on demand when omitted.
        """
        raise NotImplementedError


class WarmStartGreedySolver(WarmStartSolver):
    """GREEDY warm start: repair the plan, re-run rounds on dirty workers.

    The repaired previous plan is loaded into the incremental evaluator as
    if those rounds had already been played, then the ordinary greedy
    round loop (:meth:`repro.algorithms.greedy.GreedySolver.run_rounds` —
    same scoring, same Lemma 4.3 pruning, same backend kernels) runs over
    only the workers whose candidate sets changed.  With zero churn the
    result is bit-identical to a full solve; under small churn it touches
    O(dirty) workers instead of O(n).

    One *widening* pass keeps quality honest: a task that lost one of its
    planned workers to the churn (the worker left, or its pair was
    invalidated) is re-balanced by also re-scoring that task's remaining
    candidate workers — without it the frozen plan could leave a churn-hit
    task under-served while the full solve would have re-covered it.  The
    pass is capped by objective contribution: only tasks whose coverage
    the *churn* took count as hurt, so losses the widening itself inflicts
    (a freed worker's other entries) do not propagate — the freed workers
    are in the re-scoring pool anyway — and a dense instance's candidate
    component is never chased transitively.  The widened set stays
    O(delta * per-task candidates), not O(n).

    Args:
        base: the full GREEDY solver used for scoring and for cold solves.
    """

    def __init__(self, base: Optional[GreedySolver] = None) -> None:
        super().__init__(base if base is not None else GreedySolver())

    def warm_solve(
        self,
        problem: RdbscProblem,
        plan: PreviousPlan,
        forced_dirty: FrozenSet[int] = frozenset(),
        rng: RngLike = None,
        log_weights: Optional[Dict[int, float]] = None,
        signatures: Optional[Dict[int, Signature]] = None,
    ) -> SolverResult:
        """Repair the previous plan and greedily re-insert dirty workers."""
        if signatures is None:
            signatures = candidate_signatures(problem)
        dirty = dirty_workers(problem, plan, signatures, forced_dirty)
        # Widen to the tasks whose reliability actually dropped: a task
        # that lost planned coverage *to the churn itself* (its worker
        # left, its pair was invalidated, or the worker is dirty) releases
        # its remaining candidates for re-scoring, so greedy can
        # re-balance it.  The widening is deliberately **capped at one
        # pass**: a task that loses a worker only because this widening
        # freed it has not lost reliability to churn — the freed worker
        # sits in the greedy pool and can be re-inserted anywhere,
        # including right back.  The earlier fixpoint propagation chased
        # those self-inflicted losses transitively and could touch a dense
        # instance's whole candidate component on one churned worker; the
        # cap keeps the re-scored set at O(churn * per-task candidates)
        # (pinned by the dense-chain regression test).
        repaired = repair_assignment(problem, plan.assignment, frozenset(dirty))
        hurt_tasks = {
            task_id
            for task_id, worker_id in plan.assignment.pairs()
            if task_id in problem.tasks_by_id
            and repaired.task_of(worker_id) != task_id
        }
        widened = set(dirty)
        for task_id in hurt_tasks:
            widened.update(problem.candidate_workers(task_id))
        if widened != dirty:
            dirty = widened
            repaired = repair_assignment(problem, plan.assignment, frozenset(dirty))
        evaluator = IncrementalEvaluator(problem)
        for task_id, worker_id in sorted(repaired.pairs()):
            evaluator.apply(task_id, worker_id)
        unassigned = sorted(
            worker.worker_id
            for worker in problem.workers
            if problem.degree(worker.worker_id) > 0
            and not evaluator.assignment.is_assigned(worker.worker_id)
        )
        base = self.base
        assert isinstance(base, GreedySolver)
        stats = base.run_rounds(problem, evaluator, unassigned, log_weights)
        stats["warm"] = 1.0
        stats["kept_pairs"] = float(len(repaired))
        stats["dirty_workers"] = float(len(dirty))
        return SolverResult(
            assignment=evaluator.assignment,
            objective=evaluator.value(),
            stats=stats,
        )


class WarmStartSamplingSolver(WarmStartSolver):
    """SAMPLING warm start: carry the repaired plan, draw fewer samples.

    The previous plan — repaired against the current pair graph and
    completed so that every positive-degree worker is assigned, as in any
    member of the Section 5.1 population — enters the pool as candidate
    zero next to ``ceil(K * fresh_fraction)`` freshly drawn samples; the
    dominance-rank winner is returned.  The fresh draws consume the RNG
    stream exactly as a full solve does, so for the same seed sample ``i``
    is bit-identical between warm and full mode (the differential suite
    pins this) — and with ``fresh_fraction=1.0`` the warm pool is a strict
    superset of the full pool, so the warm winner is never Pareto-dominated
    by the full winner.

    Args:
        base: the full SAMPLING solver (sample-size plan, backend).
        fresh_fraction: fraction of the full sample budget drawn fresh per
            warm epoch, in (0, 1]; the carried plan covers the rest of the
            quality.
        min_fresh: lower bound on fresh draws, so heavy-churn epochs just
            under the engine's fallback threshold still explore.
    """

    def __init__(
        self,
        base: Optional[SamplingSolver] = None,
        fresh_fraction: float = 0.25,
        min_fresh: int = 4,
    ) -> None:
        super().__init__(base if base is not None else SamplingSolver())
        if not 0.0 < fresh_fraction <= 1.0:
            raise ValueError(f"fresh_fraction must be in (0, 1], got {fresh_fraction}")
        if min_fresh < 1:
            raise ValueError(f"min_fresh must be at least 1, got {min_fresh}")
        self.fresh_fraction = fresh_fraction
        self.min_fresh = min_fresh

    def carried_candidate(
        self, problem: RdbscProblem, plan: PreviousPlan
    ) -> Assignment:
        """The repaired-and-completed previous plan.

        Entries touching dead or invalidated pairs are dropped; workers
        left unassigned by the repair (new arrivals, workers whose task
        expired, pinned virtual workers) then deterministically take their
        first candidate task, so the carried candidate assigns every
        positive-degree worker — a feasible member of the sample
        population that consumes no randomness.
        """
        carried = repair_assignment(problem, plan.assignment)
        for worker in problem.workers:
            worker_id = worker.worker_id
            if carried.is_assigned(worker_id):
                continue
            candidates = problem.candidate_tasks(worker_id)
            if candidates:
                carried.assign(candidates[0], worker_id)
        return carried

    def fresh_sample_count(self, problem: RdbscProblem) -> int:
        """Fresh draws for a warm epoch: the budget scaled by the fraction."""
        full = self.base.resolve_sample_count(problem)
        return min(full, max(self.min_fresh, math.ceil(full * self.fresh_fraction)))

    def warm_solve(
        self,
        problem: RdbscProblem,
        plan: PreviousPlan,
        forced_dirty: FrozenSet[int] = frozenset(),
        rng: RngLike = None,
        log_weights: Optional[Dict[int, float]] = None,
        signatures: Optional[Dict[int, Signature]] = None,
    ) -> SolverResult:
        """Pick the dominance winner among carried plan + fresh samples."""
        base = self.base
        assert isinstance(base, SamplingSolver)
        generator = make_rng(rng)
        carried = self.carried_candidate(problem, plan)
        fresh = self.fresh_sample_count(problem)
        sample_pool = base.scored_sample_pool(problem, generator, fresh)
        carried_value = evaluate_assignment(problem, carried)
        pool_scores = [
            (carried_value.min_reliability, carried_value.total_std)
        ] + list(sample_pool.scores)
        best = best_index_by_dominance(pool_scores)
        winner = carried if best == 0 else sample_pool.assignment(best - 1)
        return SolverResult(
            assignment=winner,
            objective=evaluate_assignment(problem, winner),
            stats={
                "warm": 1.0,
                "samples": float(fresh),
                "carried_won": float(best == 0),
            },
        )


def warm_variant(solver: Solver) -> Optional[WarmStartSolver]:
    """The warm-start wrapper for a solver, if one exists.

    Already-wrapped solvers pass through unchanged; GREEDY and SAMPLING
    get their dedicated wrappers with default knobs.  ``None`` signals the
    engine that this solver has no warm path and every epoch must solve in
    full (RANDOM, D&C, exhaustive, ...).
    """
    if isinstance(solver, WarmStartSolver):
        return solver
    if isinstance(solver, GreedySolver):
        return WarmStartGreedySolver(solver)
    if isinstance(solver, SamplingSolver):
        return WarmStartSamplingSolver(solver)
    return None
