"""Small self-contained utilities built from scratch for the reproduction."""

from repro.utils.disjoint_set import DisjointSet
from repro.utils.stats import trimmed_mean

__all__ = ["DisjointSet", "trimmed_mean"]
