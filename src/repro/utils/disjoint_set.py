"""Union-find (disjoint set) with path compression and union by size.

Used by ``SA_Merge`` to group dependent conflicting workers: workers sharing
an assigned task in either sub-solution must have their copy deletions
decided together (Lemma 6.2).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, TypeVar

T = TypeVar("T", bound=Hashable)


class DisjointSet:
    """Classic disjoint-set forest over hashable items.

    Items are added lazily on first touch; ``find`` uses path compression
    and ``union`` merges by size, giving effectively-constant operations.
    """

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._parent: Dict[T, T] = {}
        self._size: Dict[T, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: T) -> None:
        """Register ``item`` as its own singleton set (idempotent)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: T) -> T:
        """Representative of the set containing ``item`` (adds if new)."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: T, b: T) -> T:
        """Merge the sets of ``a`` and ``b``; returns the new representative."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def connected(self, a: T, b: T) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def groups(self) -> List[List[T]]:
        """All sets, each as a list, deterministic order."""
        by_root: Dict[T, List[T]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), []).append(item)
        return [sorted(group) for _, group in sorted(by_root.items())]
