"""Host metadata stamped into benchmark result files.

Every ``benchmarks/bench_*.py`` writer records its rows into a
``BENCH_*.json`` at the repo root; those trajectories are only
comparable across machines when each file says what it was recorded on
(the ROADMAP notes the reference records come from a 1-core container).
The bench modules are loaded through isolated ``importlib`` specs (see
``tests/test_bench_smoke.py``), so this helper lives in the package —
not in ``benchmarks/`` — where every writer can import it.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Dict


def host_metadata() -> Dict[str, object]:
    """The recording host's shape, as one JSON-safe dict.

    Keys:
        ``cpu_count``: logical CPUs visible to the process (``None`` when
            the platform cannot say).
        ``platform``: ``platform.platform()`` — OS, release, machine.
        ``machine``: the bare architecture string (``x86_64``, ...).
        ``python``: the interpreter version recording the numbers.
    """
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
    }
