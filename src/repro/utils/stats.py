"""Tiny statistics helpers.

The gMission-style platform bootstraps worker reliabilities from peer photo
ratings: "the score of each photo is given by first removing the highest and
lowest scores, and then averaging the rest" — i.e. a 1-element trimmed mean.
"""

from __future__ import annotations

from typing import Sequence


def trimmed_mean(values: Sequence[float], trim_each_side: int = 1) -> float:
    """Mean after dropping the ``trim_each_side`` largest and smallest values.

    When trimming would consume every value, falls back to the plain mean
    (a two-rating photo still deserves a score).

    Raises:
        ValueError: if ``values`` is empty or trim count is negative.
    """
    if not values:
        raise ValueError("trimmed_mean() of empty sequence")
    if trim_each_side < 0:
        raise ValueError("trim_each_side must be non-negative")
    ordered = sorted(values)
    if len(ordered) > 2 * trim_each_side:
        kept = ordered[trim_each_side : len(ordered) - trim_each_side]
    else:
        kept = ordered
    return sum(kept) / len(kept)
