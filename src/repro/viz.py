"""Terminal visualisation: instances, assignments and series.

A library shipped for a paper about *spatial* crowdsourcing should let a
user see an instance without leaving the terminal.  Pure-text renderers,
no plotting dependency:

``render_instance``
    A character map of the unit square: task and worker positions, with
    multiplicity digits when entities share a cell.
``render_assignment``
    The instance map plus a per-task summary of who serves what.
``sparkline``
    A one-line unicode mini-chart for a numeric series (used to eyeball
    benchmark series in logs).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.assignment import Assignment
from repro.core.problem import RdbscProblem

#: Sparkline glyphs from low to high.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def _cell_of(x: float, y: float, width: int, height: int) -> tuple:
    col = min(int(x * width), width - 1)
    row = min(int((1.0 - y) * height), height - 1)  # row 0 at the top
    return max(row, 0), max(col, 0)


def render_instance(
    problem: RdbscProblem, width: int = 48, height: int = 20
) -> str:
    """An ASCII map of the instance.

    ``t`` marks a task, ``w`` a worker, ``*`` a cell holding both; digits
    2-9 mark multiplicity of a single kind ('+' past 9).

    Raises:
        ValueError: on non-positive dimensions.
    """
    if width < 1 or height < 1:
        raise ValueError("width and height must be positive")
    tasks: Dict[tuple, int] = {}
    workers: Dict[tuple, int] = {}
    for task in problem.tasks:
        key = _cell_of(task.location.x, task.location.y, width, height)
        tasks[key] = tasks.get(key, 0) + 1
    for worker in problem.workers:
        key = _cell_of(worker.location.x, worker.location.y, width, height)
        workers[key] = workers.get(key, 0) + 1

    def glyph(cell: tuple) -> str:
        n_tasks = tasks.get(cell, 0)
        n_workers = workers.get(cell, 0)
        if n_tasks and n_workers:
            return "*"
        count, symbol = (n_tasks, "t") if n_tasks else (n_workers, "w")
        if count == 0:
            return "."
        if count == 1:
            return symbol
        return str(count) if count <= 9 else "+"

    rows = [
        "".join(glyph((row, col)) for col in range(width))
        for row in range(height)
    ]
    legend = (
        f"[{problem.num_tasks} tasks 't', {problem.num_workers} workers 'w', "
        f"'*' both, digits = multiplicity]"
    )
    return "\n".join([*rows, legend])


def render_assignment(
    problem: RdbscProblem,
    assignment: Assignment,
    max_tasks: int = 12,
) -> str:
    """The instance map plus a per-task worker summary.

    Lists the ``max_tasks`` busiest tasks with their assigned worker ids
    and the task reliability.
    """
    from repro.core.reliability import task_reliability

    lines = [render_instance(problem), ""]
    busy = sorted(
        assignment.assigned_tasks(),
        key=lambda t: (-len(assignment.workers_for(t)), t),
    )
    shown = busy[:max_tasks]
    lines.append(
        f"assignment: {len(assignment)} workers on "
        f"{len(busy)} tasks (top {len(shown)} shown)"
    )
    for task_id in shown:
        worker_ids = sorted(assignment.workers_for(task_id))
        rel = task_reliability(problem, assignment, task_id)
        lines.append(
            f"  task {task_id:>4}: rel={rel:.3f} workers={worker_ids}"
        )
    if len(busy) > len(shown):
        lines.append(f"  ... and {len(busy) - len(shown)} more tasks")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line unicode chart; empty input yields an empty string."""
    if not values:
        return ""
    lo = min(values)
    hi = max(values)
    if hi <= lo:
        return _SPARK_LEVELS[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def series_with_sparkline(
    label: str, values: Sequence[float], precision: int = 3
) -> str:
    """``label: sparkline  [first .. last]`` summary line."""
    if not values:
        return f"{label}: (empty)"
    return (
        f"{label}: {sparkline(values)}  "
        f"[{values[0]:.{precision}f} .. {values[-1]:.{precision}f}]"
    )
