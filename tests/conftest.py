"""Shared factories for the test suite.

Beyond the single-entity factories (``make_task`` / ``make_worker``),
this module holds the scenario builders the engine-era test files used
to duplicate:

* :func:`make_pools` — seeded task/worker pools from the experiment
  generator (sized and tuned per call site).
* :func:`seed_population` — load an engine with a canonical random
  population.
* :class:`ScriptedChurn` / :func:`drive` — the canonical deterministic
  small-churn trace: every differential test family (durable replay,
  wire-vs-direct, kill-and-resume) consumes this one stream, so "same
  trace" always means the same bytes.
* :class:`MarchingChurn` / :class:`HotspotChurn` /
  :class:`OscillatingChurn` (``DRIFT_SCENARIOS``) — adversarial load
  drift traces for the elastic-shard differential tests.
* :func:`populate_small` — the two-entity population lifecycle tests use.
"""

import math

import numpy as np
import pytest

from repro.core.task import SpatialTask
from repro.core.worker import MovingWorker
from repro.geometry.angles import AngleInterval
from repro.geometry.points import Point


def make_task(
    task_id: int = 0,
    x: float = 0.5,
    y: float = 0.5,
    start: float = 0.0,
    end: float = 10.0,
    beta: float = 0.5,
) -> SpatialTask:
    """A task with innocuous defaults."""
    return SpatialTask(task_id, Point(x, y), start, end, beta)


def make_worker(
    worker_id: int = 0,
    x: float = 0.0,
    y: float = 0.0,
    velocity: float = 1.0,
    cone: AngleInterval = None,
    confidence: float = 0.9,
    depart_time: float = 0.0,
) -> MovingWorker:
    """A worker with innocuous defaults (full-circle cone)."""
    return MovingWorker(
        worker_id,
        Point(x, y),
        velocity,
        cone if cone is not None else AngleInterval.full_circle(),
        confidence,
        depart_time,
    )


def make_pools(
    seed,
    num_tasks=60,
    num_workers=120,
    velocity_range=None,
    expiration_range=None,
):
    """Seeded task/worker pools from the experiment generator.

    The optional range overrides serve call sites with special needs
    (e.g. the sharding tests' slow workers, which make a sub-unit halo
    provably safe).
    """
    from repro.datagen import ExperimentConfig, generate_tasks, generate_workers

    config = ExperimentConfig.scaled_defaults(
        num_tasks=num_tasks, num_workers=num_workers
    )
    updates = {}
    if velocity_range is not None:
        updates["velocity_range"] = velocity_range
    if expiration_range is not None:
        updates["expiration_range"] = expiration_range
    if updates:
        config = config.with_updates(**updates)
    rng = np.random.default_rng(seed)
    return list(generate_tasks(config, rng)), list(generate_workers(config, rng))


def seed_population(engine, num_tasks=10, num_workers=30, seed=7, end_lo=3.0):
    """Load an engine with a canonical random starting population."""
    rng = np.random.default_rng(seed)
    engine.add_tasks(
        [
            make_task(
                i,
                x=float(rng.uniform()),
                y=float(rng.uniform()),
                end=float(rng.uniform(end_lo, end_lo + 4.0)),
            )
            for i in range(num_tasks)
        ]
    )
    engine.add_workers(
        [
            make_worker(
                i,
                x=float(rng.uniform()),
                y=float(rng.uniform()),
                velocity=0.3,
                confidence=0.8,
            )
            for i in range(num_workers)
        ]
    )


class ScriptedChurn:
    """The canonical deterministic churn stream differential twins share.

    Step ``k`` adds worker ``1000 + k``, moves worker ``k`` on even
    steps, and adds task ``500 + k`` when ``k % 3 == 2`` — enough kinds
    of churn to exercise arrivals, in-place updates and task arrivals
    while staying bit-reproducible from the seed.
    """

    def __init__(self, seed=42):
        self.rng = np.random.default_rng(seed)

    def step(self, engine, k):
        """Apply step ``k``'s churn to ``engine`` (advances the RNG)."""
        engine.add_worker(
            make_worker(
                1000 + k,
                x=float(self.rng.uniform()),
                y=float(self.rng.uniform()),
                velocity=0.25,
                confidence=0.7,
                depart_time=float(k),
            )
        )
        if k % 2 == 0 and k in engine.workers:
            moved = engine.workers[k].moved_to(
                Point(float(self.rng.uniform()), float(self.rng.uniform())),
                float(k),
            )
            engine.update_worker(moved)
        if k % 3 == 2 and (500 + k) not in engine.tasks:
            engine.add_task(
                make_task(
                    500 + k,
                    x=float(self.rng.uniform()),
                    y=float(self.rng.uniform()),
                    start=float(k),
                    end=float(k) + 4.0,
                )
            )

    def events(self, engine_view, k):
        """Step ``k`` as typed events instead of engine calls.

        ``engine_view`` only needs ``workers``/``tasks`` mappings; the
        wire tests use this to send the identical trace through a server
        while a twin engine consumes :meth:`step` directly.
        """
        from repro.engine import events as ev

        out = [
            ev.WorkerArrive(
                time=float(k),
                worker=make_worker(
                    1000 + k,
                    x=float(self.rng.uniform()),
                    y=float(self.rng.uniform()),
                    velocity=0.25,
                    confidence=0.7,
                    depart_time=float(k),
                ),
            )
        ]
        if k % 2 == 0 and k in engine_view.workers:
            out.append(
                ev.WorkerUpdate(
                    time=float(k),
                    worker=engine_view.workers[k].moved_to(
                        Point(
                            float(self.rng.uniform()), float(self.rng.uniform())
                        ),
                        float(k),
                    ),
                )
            )
        if k % 3 == 2 and (500 + k) not in engine_view.tasks:
            out.append(
                ev.TaskArrive(
                    time=float(k),
                    task=make_task(
                        500 + k,
                        x=float(self.rng.uniform()),
                        y=float(self.rng.uniform()),
                        start=float(k),
                        end=float(k) + 4.0,
                    ),
                )
            )
        return out


def drive(engine, churn, epochs, start=0):
    """Run the scripted trace: churn + epoch per step, plans collected."""
    plans = []
    for k in range(start, epochs):
        churn.step(engine, k)
        result = engine.epoch(float(k))
        plans.append((sorted(result.dispatch.items()), result.mode))
    return plans


class MarchingChurn:
    """A worker cohort marching left-to-right across the unit square.

    Step 0 lands ``cohort`` workers near ``x = 0.04`` plus a lane of
    long-lived tasks; every later step advances each cohort worker by
    ``stride`` with a seeded y-jitter, and every third step drops a
    fresh task just ahead of the front.  The load mass crosses shard
    block boundaries as it marches, which is exactly what provokes the
    elastic engine's split/migrate decisions.
    """

    def __init__(self, seed=11, cohort=18, stride=0.09):
        self.rng = np.random.default_rng(seed)
        self.cohort = cohort
        self.stride = stride

    def step(self, engine, k):
        """Apply step ``k``'s churn to ``engine`` (advances the RNG)."""
        if k == 0:
            ys = self.rng.uniform(0.05, 0.95, size=self.cohort)
            engine.add_workers(
                [
                    make_worker(
                        2000 + i,
                        x=0.04,
                        y=float(ys[i]),
                        velocity=0.3,
                        confidence=0.8,
                    )
                    for i in range(self.cohort)
                ]
            )
            lane = self.rng.uniform(0.05, 0.95, size=(6, 2))
            engine.add_tasks(
                [
                    make_task(
                        800 + j,
                        x=float(lane[j, 0]),
                        y=float(lane[j, 1]),
                        end=40.0,
                    )
                    for j in range(6)
                ]
            )
            return
        jitter = self.rng.uniform(-0.04, 0.04, size=self.cohort)
        front = 0.0
        for i in range(self.cohort):
            worker = engine.workers[2000 + i]
            x = min(0.96, worker.location.x + self.stride)
            y = min(0.96, max(0.04, worker.location.y + float(jitter[i])))
            front = max(front, x)
            engine.update_worker(worker.moved_to(Point(x, y), float(k)))
        ahead = self.rng.uniform(0.04, 0.96)
        if k % 3 == 0:
            engine.add_task(
                make_task(
                    850 + k,
                    x=min(0.96, front + 0.05),
                    y=float(ahead),
                    start=float(k),
                    end=float(k) + 8.0,
                )
            )


class HotspotChurn:
    """Flash crowds: worker bursts pile onto one spot, then vanish.

    Every even step spawns a burst of ``burst`` workers tightly packed
    around a seeded hotspot (plus a task at its centre); each burst is
    removed wholesale ``life`` steps later.  Shard loads spike and drain
    abruptly — the scenario that exercises merge-of-drained-shards.
    """

    def __init__(self, seed=13, burst=10, life=3):
        self.rng = np.random.default_rng(seed)
        self.burst = burst
        self.life = life

    def step(self, engine, k):
        """Apply step ``k``'s churn to ``engine`` (advances the RNG)."""
        centre = self.rng.uniform(0.1, 0.9, size=2)
        spread = self.rng.uniform(-0.03, 0.03, size=(self.burst, 2))
        if k % 2 == 0:
            engine.add_workers(
                [
                    make_worker(
                        3000 + 100 * k + i,
                        x=float(centre[0] + spread[i, 0]),
                        y=float(centre[1] + spread[i, 1]),
                        velocity=0.3,
                        confidence=0.8,
                    )
                    for i in range(self.burst)
                ]
            )
            engine.add_task(
                make_task(
                    900 + k,
                    x=float(centre[0]),
                    y=float(centre[1]),
                    start=float(k),
                    end=float(k) + 6.0,
                )
            )
        expired = k - self.life
        if expired >= 0 and expired % 2 == 0:
            for i in range(self.burst):
                worker_id = 3000 + 100 * expired + i
                if worker_id in engine.workers:
                    engine.remove_worker(worker_id)


class OscillatingChurn:
    """A cohort sloshing between opposite corners every ``period`` steps.

    The whole population teleports its drift target between the lower
    left and upper right corners, so shard loads oscillate instead of
    trending — the adversarial case for a rebalancer that chases the
    current hot block (it must not thrash the topology into a bad
    state or break plan identity while doing so).
    """

    def __init__(self, seed=17, cohort=16, period=3):
        self.rng = np.random.default_rng(seed)
        self.cohort = cohort
        self.period = period

    def step(self, engine, k):
        """Apply step ``k``'s churn to ``engine`` (advances the RNG)."""
        offsets = self.rng.uniform(0.0, 0.25, size=(self.cohort, 2))
        if k == 0:
            engine.add_workers(
                [
                    make_worker(
                        4000 + i,
                        x=float(0.05 + offsets[i, 0]),
                        y=float(0.05 + offsets[i, 1]),
                        velocity=0.3,
                        confidence=0.8,
                    )
                    for i in range(self.cohort)
                ]
            )
            spots = self.rng.uniform(0.1, 0.9, size=(5, 2))
            engine.add_tasks(
                [
                    make_task(
                        950 + j,
                        x=float(spots[j, 0]),
                        y=float(spots[j, 1]),
                        end=40.0,
                    )
                    for j in range(5)
                ]
            )
            return
        corner = 0.05 if (k // self.period) % 2 == 0 else 0.70
        for i in range(self.cohort):
            worker = engine.workers[4000 + i]
            engine.update_worker(
                worker.moved_to(
                    Point(
                        float(corner + offsets[i, 0]),
                        float(corner + offsets[i, 1]),
                    ),
                    float(k),
                )
            )


DRIFT_SCENARIOS = {
    "marching": MarchingChurn,
    "hotspot": HotspotChurn,
    "oscillating": OscillatingChurn,
}


def populate_small(engine):
    """The two-entity population the lifecycle tests solve over."""
    engine.add_task(make_task(0, end=9.0))
    engine.add_worker(make_worker(0, x=0.2, y=0.5))


@pytest.fixture
def task_factory():
    return make_task


@pytest.fixture
def worker_factory():
    return make_worker
